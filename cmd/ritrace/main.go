// Command ritrace generates, inspects and converts demand traces in
// the formats the paper's evaluation uses.
//
// Usage:
//
//	ritrace gen -out traces/ -pergroup 10 -hours 2000   # synthetic cohort as EC2 logs
//	ritrace inspect -trace traces/user-g1-000.csv       # stats for one log
//	ritrace gen-gtrace -out tasks.csv -pergroup 5       # Google-style task events
//	ritrace convert -in tasks.csv -out traces/          # task events -> EC2 logs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rimarket/internal/cli"
	"rimarket/internal/gtrace"
	"rimarket/internal/stats"
	"rimarket/internal/workload"
)

func main() {
	if err := runStderr(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ritrace:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run keeps the historical test entry point; observability notices
// (pprof address) are discarded without a stderr.
func run(args []string, w io.Writer) error { return runStderr(args, w, io.Discard) }

func runStderr(args []string, w, stderr io.Writer) error {
	if len(args) == 0 {
		return cli.Usagef("usage: ritrace <gen|gen-gtrace|inspect|convert> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "gen":
		return genCohort(rest, w, stderr)
	case "gen-gtrace":
		return genGTrace(rest, w, stderr)
	case "inspect":
		return inspect(rest, w, stderr)
	case "convert":
		return convert(rest, w, stderr)
	default:
		return cli.Usagef("unknown subcommand %q", cmd)
	}
}

func cohortFlags(fs *flag.FlagSet) (perGroup *int, hours *int, seed *int64) {
	perGroup = fs.Int("pergroup", 5, "users per fluctuation group")
	hours = fs.Int("hours", 2000, "trace length in hours")
	seed = fs.Int64("seed", 2018, "cohort seed")
	return perGroup, hours, seed
}

func genCohort(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", ".", "output directory for EC2-usage-log files")
	perGroup, hours, seed := cohortFlags(fs)
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if mf := sess.Manifest(); mf != nil {
			mf.Seed = *seed
		}
		traces, err := workload.NewCohort(workload.CohortConfig{PerGroup: *perGroup, Hours: *hours, Seed: *seed})
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		for _, tr := range traces {
			path := filepath.Join(*out, tr.User+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := gtrace.WriteEC2Log(f, tr); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "wrote %d traces to %s\n", len(traces), *out)
		return nil
	})
}

func genGTrace(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("gen-gtrace", flag.ContinueOnError)
	out := fs.String("out", "task_events.csv", "output task-events CSV")
	compress := fs.Bool("gz", false, "gzip the output (like the real clusterdata files)")
	perGroup, hours, seed := cohortFlags(fs)
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if mf := sess.Manifest(); mf != nil {
			mf.Seed = *seed
		}
		traces, err := workload.NewCohort(workload.CohortConfig{PerGroup: *perGroup, Hours: *hours, Seed: *seed})
		if err != nil {
			return err
		}
		events, err := gtrace.SynthesizeTaskEvents(traces, gtrace.DefaultCapacity)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		write := gtrace.WriteTaskEvents
		if *compress {
			write = gtrace.WriteTaskEventsGZ
		}
		if err := write(f, events); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d task events for %d users to %s\n", len(events), len(traces), *out)
		return nil
	})
}

func inspect(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	path := fs.String("trace", "", "EC2-usage-log CSV to inspect")
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if *path == "" {
			return fmt.Errorf("pass -trace FILE")
		}
		f, err := os.Open(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := gtrace.ReadEC2LogAuto(f)
		if err != nil {
			return err
		}
		fl := tr.Floats()
		fmt.Fprintf(w, "user: %s\nhours: %d\ntotal instance-hours: %d\npeak demand: %d\nmean: %.2f\nsigma/mu: %.2f\ngroup: %v\n",
			tr.User, tr.Len(), tr.TotalDemand(), tr.MaxDemand(), stats.Mean(fl), tr.FluctuationRatio(), workload.Classify(tr))
		edges, counts, err := stats.Histogram(fl, 8)
		if err == nil {
			fmt.Fprintln(w, "\ndemand histogram:")
			fmt.Fprint(w, stats.RenderHistogram(edges, counts, 40))
		}
		return nil
	})
}

func convert(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "task-events CSV to convert")
	out := fs.String("out", ".", "output directory for per-user EC2 logs")
	cpu := fs.Float64("cpu", gtrace.DefaultCapacity.CPU, "per-instance CPU capacity")
	mem := fs.Float64("mem", gtrace.DefaultCapacity.Memory, "per-instance memory capacity")
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if *in == "" {
			return fmt.Errorf("pass -in FILE")
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		events, err := gtrace.ReadTaskEventsAuto(f)
		if err != nil {
			return err
		}
		traces, err := gtrace.AggregateByUser(events, gtrace.InstanceCapacity{CPU: *cpu, Memory: *mem, Disk: 1})
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		for _, tr := range traces {
			path := filepath.Join(*out, tr.User+".csv")
			g, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := gtrace.WriteEC2Log(g, tr); err != nil {
				g.Close()
				return err
			}
			if err := g.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "converted %d events into %d user traces in %s\n", len(events), len(traces), *out)
		return nil
	})
}
