// Command ritrace generates, inspects and converts demand traces in
// the formats the paper's evaluation uses.
//
// Usage:
//
//	ritrace gen -out traces/ -pergroup 10 -hours 2000   # synthetic cohort as EC2 logs
//	ritrace inspect -trace traces/user-g1-000.csv       # stats for one log
//	ritrace inspect -trace cohort.colt                  # summarize a columnar store
//	ritrace gen-gtrace -out tasks.csv -pergroup 5       # Google-style task events
//	ritrace convert -in tasks.csv -out traces/          # task events -> EC2 logs
//	ritrace convert -from ec2-log -to colt -in traces/ -out cohort.colt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rimarket/internal/cli"
	"rimarket/internal/coltrace"
	"rimarket/internal/gtrace"
	"rimarket/internal/stats"
	"rimarket/internal/workload"
)

func main() {
	if err := runStderr(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ritrace:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run keeps the historical test entry point; observability notices
// (pprof address) are discarded without a stderr.
func run(args []string, w io.Writer) error { return runStderr(args, w, io.Discard) }

func runStderr(args []string, w, stderr io.Writer) error {
	if len(args) == 0 {
		return cli.Usagef("usage: ritrace <gen|gen-gtrace|inspect|convert> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "gen":
		return genCohort(rest, w, stderr)
	case "gen-gtrace":
		return genGTrace(rest, w, stderr)
	case "inspect":
		return inspect(rest, w, stderr)
	case "convert":
		return convert(rest, w, stderr)
	default:
		return cli.Usagef("unknown subcommand %q", cmd)
	}
}

func cohortFlags(fs *flag.FlagSet) (perGroup *int, hours *int, seed *int64) {
	perGroup = fs.Int("pergroup", 5, "users per fluctuation group")
	hours = fs.Int("hours", 2000, "trace length in hours")
	seed = fs.Int64("seed", 2018, "cohort seed")
	return perGroup, hours, seed
}

func genCohort(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", ".", "output directory for EC2-usage-log files")
	perGroup, hours, seed := cohortFlags(fs)
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if mf := sess.Manifest(); mf != nil {
			mf.Seed = *seed
		}
		traces, err := workload.NewCohort(workload.CohortConfig{PerGroup: *perGroup, Hours: *hours, Seed: *seed})
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		for _, tr := range traces {
			path := filepath.Join(*out, tr.User+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := gtrace.WriteEC2Log(f, tr); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "wrote %d traces to %s\n", len(traces), *out)
		return nil
	})
}

func genGTrace(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("gen-gtrace", flag.ContinueOnError)
	out := fs.String("out", "task_events.csv", "output task-events CSV")
	compress := fs.Bool("gz", false, "gzip the output (like the real clusterdata files)")
	perGroup, hours, seed := cohortFlags(fs)
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if mf := sess.Manifest(); mf != nil {
			mf.Seed = *seed
		}
		traces, err := workload.NewCohort(workload.CohortConfig{PerGroup: *perGroup, Hours: *hours, Seed: *seed})
		if err != nil {
			return err
		}
		events, err := gtrace.SynthesizeTaskEvents(traces, gtrace.DefaultCapacity)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		write := gtrace.WriteTaskEvents
		if *compress {
			write = gtrace.WriteTaskEventsGZ
		}
		if err := write(f, events); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d task events for %d users to %s\n", len(events), len(traces), *out)
		return nil
	})
}

func inspect(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	path := fs.String("trace", "", "EC2-usage-log CSV to inspect")
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if *path == "" {
			return fmt.Errorf("pass -trace FILE")
		}
		if strings.HasSuffix(*path, coltrace.Ext) {
			return inspectColt(w, *path)
		}
		f, err := os.Open(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := gtrace.ReadEC2LogAuto(f)
		if err != nil {
			return err
		}
		fl := tr.Floats()
		fmt.Fprintf(w, "user: %s\nhours: %d\ntotal instance-hours: %d\npeak demand: %d\nmean: %.2f\nsigma/mu: %.2f\ngroup: %v\n",
			tr.User, tr.Len(), tr.TotalDemand(), tr.MaxDemand(), stats.Mean(fl), tr.FluctuationRatio(), workload.Classify(tr))
		edges, counts, err := stats.Histogram(fl, 8)
		if err == nil {
			fmt.Fprintln(w, "\ndemand histogram:")
			fmt.Fprint(w, stats.RenderHistogram(edges, counts, 40))
		}
		return nil
	})
}

// inspectColt summarizes a columnar cohort store: per record its
// shape, demand volume and whether a reservation column is present,
// then store-wide totals.
func inspectColt(w io.Writer, path string) error {
	cohorts, err := coltrace.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "store: %s\nformat: colt v%d\ncohorts: %d\n", path, coltrace.FormatVersion, len(cohorts))
	totalUsers, totalHours := 0, 0
	var totalDemand int64
	for i, c := range cohorts {
		var sum int64
		var peak int32
		for _, d := range c.Demand {
			sum += int64(d)
			if d > peak {
				peak = d
			}
		}
		res := "no"
		if c.NewRes != nil {
			res = "yes"
		}
		fmt.Fprintf(w, "cohort %d: %d users x %d hours, total demand %d, peak %d, reservations: %s\n",
			i, len(c.Users), c.Hours, sum, peak, res)
		totalUsers += len(c.Users)
		totalHours += len(c.Users) * c.Hours
		totalDemand += sum
	}
	fmt.Fprintf(w, "total: %d users, %d instance-hours of demand over %d trace-hours\n",
		totalUsers, totalDemand, totalHours)
	return nil
}

func convert(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input: task-events CSV (-from task-events) or EC2-log directory (-from ec2-log)")
	out := fs.String("out", ".", "output: directory for per-user EC2 logs (-to ec2-log) or columnar store path (-to colt)")
	from := fs.String("from", "task-events", "input format: task-events (Google-style CSV) or ec2-log (directory of .csv/.csv.gz usage logs)")
	to := fs.String("to", "ec2-log", "output format: ec2-log (per-user CSV files) or colt (one columnar cohort store)")
	cpu := fs.Float64("cpu", gtrace.DefaultCapacity.CPU, "per-instance CPU capacity")
	mem := fs.Float64("mem", gtrace.DefaultCapacity.Memory, "per-instance memory capacity")
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	// Reject unknown formats before touching the input: a typo in -from
	// or -to is a usage error, not a half-finished conversion.
	switch *from {
	case "task-events", "ec2-log":
	default:
		return cli.Usagef("unknown -from format %q (want task-events or ec2-log)", *from)
	}
	switch *to {
	case "ec2-log", "colt":
	default:
		return cli.Usagef("unknown -to format %q (want ec2-log or colt)", *to)
	}
	return obsFlags.Run("ritrace", args, stderr, func(sess *cli.ObsSession) error {
		if *in == "" {
			return fmt.Errorf("pass -in FILE")
		}
		var traces []workload.Trace
		var source string
		switch *from {
		case "task-events":
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			events, err := gtrace.ReadTaskEventsAuto(f)
			if err != nil {
				return err
			}
			traces, err = gtrace.AggregateByUser(events, gtrace.InstanceCapacity{CPU: *cpu, Memory: *mem, Disk: 1})
			if err != nil {
				return err
			}
			source = fmt.Sprintf("%d events", len(events))
		case "ec2-log":
			var err error
			traces, _, err = gtrace.LoadEC2LogDir(*in)
			if err != nil {
				return err
			}
			source = fmt.Sprintf("%d log files", len(traces))
		}
		switch *to {
		case "ec2-log":
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			for _, tr := range traces {
				path := filepath.Join(*out, tr.User+".csv")
				g, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := gtrace.WriteEC2Log(g, tr); err != nil {
					g.Close()
					return err
				}
				if err := g.Close(); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "converted %s into %d user traces in %s\n", source, len(traces), *out)
		case "colt":
			cohorts, err := coltrace.GroupTraces(traces)
			if err != nil {
				return err
			}
			if err := coltrace.WriteFile(*out, cohorts...); err != nil {
				return err
			}
			fmt.Fprintf(w, "converted %s into %d users across %d cohorts in %s\n", source, len(traces), len(cohorts), *out)
		}
		return nil
	})
}
