package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenAndInspect(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"gen", "-out", dir, "-pergroup", "2", "-hours", "400", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 6 traces") {
		t.Errorf("gen output: %s", out.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("files = %d, want 6", len(entries))
	}

	out.Reset()
	path := filepath.Join(dir, entries[0].Name())
	if err := run([]string{"inspect", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"user:", "sigma/mu:", "group:", "demand histogram"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGenGTraceAndConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "tasks.csv")
	var out strings.Builder
	if err := run([]string{"gen-gtrace", "-out", events, "-pergroup", "1", "-hours", "200", "-seed", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "task events for 3 users") {
		t.Errorf("gen-gtrace output: %s", out.String())
	}

	conv := filepath.Join(dir, "converted")
	out.Reset()
	if err := run([]string{"convert", "-in", events, "-out", conv}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 user traces") {
		t.Errorf("convert output: %s", out.String())
	}
	entries, err := os.ReadDir(conv)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("converted files = %d, want 3", len(entries))
	}
	// Converted traces must inspect cleanly.
	out.Reset()
	if err := run([]string{"inspect", "-trace", filepath.Join(conv, entries[0].Name())}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no subcommand", args: nil},
		{name: "unknown subcommand", args: []string{"frobnicate"}},
		{name: "inspect without trace", args: []string{"inspect"}},
		{name: "inspect missing file", args: []string{"inspect", "-trace", "/nonexistent.csv"}},
		{name: "convert without input", args: []string{"convert"}},
		{name: "convert missing file", args: []string{"convert", "-in", "/nonexistent.csv"}},
		{name: "gen bad flag", args: []string{"gen", "-zzz"}},
		{name: "gen bad pergroup", args: []string{"gen", "-pergroup", "0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tt.args, &out); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestGenGTraceGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "tasks.csv.gz")
	var out strings.Builder
	if err := run([]string{"gen-gtrace", "-out", events, "-gz", "-pergroup", "1", "-hours", "150", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	conv := filepath.Join(dir, "converted")
	out.Reset()
	if err := run([]string{"convert", "-in", events, "-out", conv}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 user traces") {
		t.Errorf("convert output: %s", out.String())
	}
}
