package main

// Tests for the columnar-store paths of ritrace: convert -to colt must
// round-trip a directory of EC2 usage logs bit-exactly, inspect must
// summarize a committed fixture byte-for-byte (golden, regenerate with
// go test ./cmd/ritrace -run TestInspectColtGolden -update), and every
// failure must map onto the shared internal/cli exit-code vocabulary.

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rimarket/internal/cli"
	"rimarket/internal/coltrace"
	"rimarket/internal/gtrace"
	"rimarket/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files and fixtures with current output")

// assertSameTraces compares two trace sets user by user. Packing into
// a store groups traces by length, so the merged order differs from
// the loader's file-name order; what must survive exactly is the set
// of users and every user's full demand vector.
func assertSameTraces(t *testing.T, got, want []workload.Trace) {
	t.Helper()
	byUser := make(map[string][]int, len(got))
	for _, tr := range got {
		byUser[tr.User] = tr.Demand
	}
	if len(byUser) != len(want) {
		t.Fatalf("store has %d users, logs have %d", len(byUser), len(want))
	}
	for _, tr := range want {
		if !reflect.DeepEqual(byUser[tr.User], tr.Demand) {
			t.Errorf("user %s: demand %v, want %v", tr.User, byUser[tr.User], tr.Demand)
		}
	}
}

// TestConvertEC2LogToColtRoundTrip pins the satellite round trip: a
// seeded cohort written as per-user CSVs, packed into a .colt store,
// must decode back to exactly the traces the CSV loader sees. Cohort
// traces have group-dependent active lengths, so the store carries one
// rectangular record per distinct length (4 at this seed).
func TestConvertEC2LogToColtRoundTrip(t *testing.T) {
	logs := t.TempDir()
	var out strings.Builder
	if err := run([]string{"gen", "-out", logs, "-pergroup", "2", "-hours", "300", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}

	store := filepath.Join(t.TempDir(), "cohort.colt")
	out.Reset()
	if err := run([]string{"convert", "-from", "ec2-log", "-to", "colt", "-in", logs, "-out", store}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "6 users across 4 cohorts") {
		t.Errorf("convert output: %s", out.String())
	}

	want, _, err := gtrace.LoadEC2LogDir(logs)
	if err != nil {
		t.Fatal(err)
	}
	cohorts, err := coltrace.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coltrace.MergeTraces(cohorts...)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTraces(t, got, want)

	// The store must also inspect cleanly.
	out.Reset()
	if err := run([]string{"inspect", "-trace", store}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cohorts: 4") {
		t.Errorf("inspect output: %s", out.String())
	}
}

// TestConvertRaggedTracesToColt adds a hand-written short trace to a
// generated directory and checks that conversion never pads, clips or
// zero-fills: every demand vector comes back at its original length.
func TestConvertRaggedTracesToColt(t *testing.T) {
	logs := t.TempDir()
	var out strings.Builder
	if err := run([]string{"gen", "-out", logs, "-pergroup", "1", "-hours", "200", "-seed", "11"}, &out); err != nil {
		t.Fatal(err)
	}
	short := workload.Trace{User: "short-lived", Demand: []int{9, 0, 9}}
	f, err := os.Create(filepath.Join(logs, "short-lived.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := gtrace.WriteEC2Log(f, short); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	store := filepath.Join(t.TempDir(), "ragged.colt")
	out.Reset()
	if err := run([]string{"convert", "-from", "ec2-log", "-to", "colt", "-in", logs, "-out", store}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 users across") {
		t.Errorf("convert output: %s", out.String())
	}

	want, _, err := gtrace.LoadEC2LogDir(logs)
	if err != nil {
		t.Fatal(err)
	}
	cohorts, err := coltrace.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := coltrace.MergeTraces(cohorts...)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTraces(t, merged, want)
}

// TestInspectColtGolden pins the inspect rendering of a committed
// two-cohort store (one record carrying a reservation column) byte for
// byte. The fixture itself is regenerated together with the golden, so
// -update also re-exercises the encoder.
func TestInspectColtGolden(t *testing.T) {
	fixture := filepath.Join("testdata", "cohort.colt")
	golden := filepath.Join("testdata", "inspect-colt.golden")
	if *update {
		traces := []workload.Trace{
			{User: "web", Demand: []int{3, 3, 2, 1, 0, 4}},
			{User: "db", Demand: []int{2, 2, 2, 2, 2, 2}},
			{User: "cron", Demand: []int{0, 5, 0}},
		}
		cohorts, err := coltrace.GroupTraces(traces)
		if err != nil {
			t.Fatal(err)
		}
		// Give the first record a reservation column so the golden
		// covers both "reservations: yes" and "reservations: no".
		cohorts[0].NewRes = make([]int32, len(cohorts[0].Demand))
		cohorts[0].NewRes[0] = 2
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := coltrace.WriteFile(fixture, cohorts...); err != nil {
			t.Fatal(err)
		}
	}

	var out strings.Builder
	if err := run([]string{"inspect", "-trace", fixture}, &out); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s (run with -update after intentional changes)\n--- want\n%s--- got\n%s",
			golden, want, got)
	}
}

// TestColtExitCodes maps each colt failure mode onto the shared
// internal/cli vocabulary: malformed command lines exit 2, bad inputs
// exit 1, success exits 0.
func TestColtExitCodes(t *testing.T) {
	corrupt := filepath.Join(t.TempDir(), "bad.colt")
	if err := os.WriteFile(corrupt, []byte("RICTgarbage-not-a-store"), 0o644); err != nil {
		t.Fatal(err)
	}
	logs := t.TempDir()
	var setup strings.Builder
	if err := run([]string{"gen", "-out", logs, "-pergroup", "1", "-hours", "50", "-seed", "2"}, &setup); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name    string
		args    []string
		code    int
		mention string
	}{
		{
			name: "convert to colt succeeds",
			args: []string{"convert", "-from", "ec2-log", "-to", "colt", "-in", logs,
				"-out", filepath.Join(t.TempDir(), "ok.colt")},
			code: cli.ExitOK,
		},
		{
			name:    "unknown -from is usage",
			args:    []string{"convert", "-from", "parquet", "-in", logs},
			code:    cli.ExitUsage,
			mention: "parquet",
		},
		{
			// -to is rejected before the input is read: no -in needed.
			name:    "unknown -to is usage",
			args:    []string{"convert", "-from", "ec2-log", "-to", "parquet"},
			code:    cli.ExitUsage,
			mention: "parquet",
		},
		{
			name:    "bad convert flag is usage",
			args:    []string{"convert", "-zzz"},
			code:    cli.ExitUsage,
			mention: "zzz",
		},
		{
			name: "missing ec2-log input is runtime error",
			args: []string{"convert", "-from", "ec2-log", "-to", "colt",
				"-in", "/nonexistent-dir", "-out", filepath.Join(t.TempDir(), "x.colt")},
			code: cli.ExitError,
		},
		{
			name:    "corrupt store is runtime error",
			args:    []string{"inspect", "-trace", corrupt},
			code:    cli.ExitError,
			mention: "bad.colt",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tt.args, &out)
			if got := cli.ExitCode(err); got != tt.code {
				t.Fatalf("exit code = %d (err %v), want %d", got, err, tt.code)
			}
			if tt.mention != "" && (err == nil || !strings.Contains(err.Error(), tt.mention)) {
				t.Errorf("error %v does not mention %q", err, tt.mention)
			}
		})
	}
}
