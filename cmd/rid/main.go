// Command rid is the resident recommendation daemon: it builds the
// same deterministic evaluation state as riexp — pricing catalog,
// cohort reservation plans, Keep-Reserved baselines — and serves
// "should user U sell instance I at hour h?" over HTTP/JSON.
//
// Usage:
//
//	rid                                  # test-scale synthetic cohort on localhost:8377
//	rid -addr :9000 -scale full          # paper-scale cohort
//	rid -tracedir traces/                # real ec2-log traces instead of the cohort
//
// Endpoints: POST /v1/recommend evaluates one typed Query; GET
// /v1/info describes the served snapshot; /healthz and /readyz are
// liveness and readiness probes; /metricsz (with -metrics) snapshots
// the serving counters.
//
// Signals: SIGHUP rebuilds the snapshot (re-reading -tracedir) and
// swaps it in atomically — a failed rebuild keeps the old snapshot
// serving. The first SIGINT/SIGTERM drains gracefully within
// -drain-timeout; a second hard-exits with code 3.
//
// Exit codes: 0 after a clean drain, 1 on a run error, 2 on
// command-line misuse, 3 when the drain deadline cut off in-flight
// requests (partial: every completed response was correct, the
// remainder never finished).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rimarket/internal/cli"
	"rimarket/internal/experiments"
	"rimarket/internal/gtrace"
	"rimarket/internal/pricing"
	"rimarket/internal/ridserver"
)

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rid:", err)
	}
	os.Exit(cli.ExitCode(err))
}

// params is the parsed rid command line, split from flag handling so
// the serving path is testable without a flag set.
type params struct {
	addr          string
	maxInflight   int
	reqTimeout    time.Duration
	drainTimeout  time.Duration
	reloadTimeout time.Duration
	maxBody       int64

	scale         string
	perGroup      int
	seed          int64
	discount, fee float64
	term, par     int
	traceDir      string
}

func run(ctx context.Context, args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("rid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var p params
	fs.StringVar(&p.addr, "addr", "localhost:8377", "listen `address`; port 0 picks a free port (the chosen address is printed on startup)")
	fs.IntVar(&p.maxInflight, "max-inflight", ridserver.DefaultMaxInflight, "bound on concurrently admitted requests; excess load is shed with 503 + Retry-After")
	fs.DurationVar(&p.reqTimeout, "request-timeout", ridserver.DefaultRequestTimeout, "per-request deadline; requests past it answer 504")
	fs.DurationVar(&p.drainTimeout, "drain-timeout", ridserver.DefaultDrainTimeout, "graceful-shutdown budget: admitted requests get this long to finish before connections are cut (exit 3)")
	fs.DurationVar(&p.reloadTimeout, "reload-timeout", ridserver.DefaultReloadTimeout, "budget for one SIGHUP snapshot rebuild; a stalled rebuild fails and the old snapshot keeps serving")
	fs.Int64Var(&p.maxBody, "max-body", ridserver.DefaultMaxBodyBytes, "maximum request body size in `bytes`; larger bodies answer 413")
	fs.StringVar(&p.scale, "scale", "test", "snapshot scale: test (fast) or full (paper: 300 users, 1-year horizon)")
	fs.IntVar(&p.perGroup, "pergroup", 0, "override users per fluctuation group")
	fs.Int64Var(&p.seed, "seed", 0, "override cohort seed")
	fs.Float64Var(&p.discount, "a", 0, "override selling discount a in (0, 1]")
	fs.Float64Var(&p.fee, "fee", 0, "marketplace fee in [0, 1) applied to sale income")
	fs.IntVar(&p.term, "term", 1, "reservation term in years (1 or 3)")
	fs.IntVar(&p.par, "parallelism", 0, "worker goroutines building the snapshot; 0 means GOMAXPROCS (the snapshot is identical at any setting)")
	fs.StringVar(&p.traceDir, "tracedir", "", "serve real ec2-log traces (.csv/.csv.gz) from this `directory` instead of the synthetic cohort; SIGHUP re-reads it")
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return cli.Usage(err)
	}

	sess, err := obsFlags.Start("rid", args, stderr)
	if err != nil {
		return err
	}
	return sess.Finish(runParsed(sess.Context(ctx), p, sess, w, stderr))
}

func runParsed(ctx context.Context, p params, sess *cli.ObsSession, w, stderr io.Writer) error {
	cfg, err := buildConfig(p)
	if err != nil {
		return err
	}
	if mf := sess.Manifest(); mf != nil {
		mf.Seed = cfg.Seed
		mf.Config = cfg
	}

	srv, err := ridserver.New(ctx, ridserver.Config{
		Load:           snapshotLoader(cfg, p),
		MaxInflight:    p.maxInflight,
		RequestTimeout: p.reqTimeout,
		MaxBodyBytes:   p.maxBody,
		DrainTimeout:   p.drainTimeout,
		ReloadTimeout:  p.reloadTimeout,
		Metrics:        sess.Metrics(),
		Log:            stderr,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return fmt.Errorf("listen on %q: %w", p.addr, err)
	}
	// The chosen address goes to stdout as the one machine-readable
	// startup line: with -addr :0 it is how callers learn the port.
	fmt.Fprintf(w, "rid: listening on %s\n", ln.Addr())

	// SIGHUP → rebuild-and-swap. The watcher stops when serving ends;
	// reload failures are logged (by the server) and reported here, and
	// never interrupt serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	stopHup := make(chan struct{})
	defer func() {
		signal.Stop(hup)
		close(stopHup)
	}()
	go func() {
		for {
			select {
			case <-stopHup:
				return
			case <-hup:
				if err := srv.Reload(ctx); err != nil {
					fmt.Fprintln(stderr, "rid:", err)
				}
			}
		}
	}()

	if err := srv.Serve(ctx, ln); err != nil {
		if errors.Is(err, ridserver.ErrDrainTimeout) {
			// Completed responses were correct; the cut-off remainder makes
			// the run partial, not failed.
			return fmt.Errorf("%w: %w", err, cli.ErrPartial)
		}
		return err
	}
	return nil
}

// buildConfig maps the cohort flags onto an experiments.Config with
// the same semantics riexp uses, so a rid snapshot and a riexp run
// from the same flags answer identically.
func buildConfig(p params) (experiments.Config, error) {
	var cfg experiments.Config
	switch p.scale {
	case "test":
		cfg = experiments.TestScaleConfig()
	case "full":
		cfg = experiments.DefaultConfig()
	default:
		return cfg, cli.Usagef("unknown scale %q (want test or full)", p.scale)
	}
	switch p.term {
	case 1:
		// The default 1-year card is already in place.
	case 3:
		three, err := pricing.ThreeYearTerm(pricing.D2XLarge())
		if err != nil {
			return cfg, err
		}
		if p.scale == "test" {
			// Apply the same 6x shrink as TestScaleConfig, preserving
			// alpha and theta.
			three.PeriodHours /= 6
			three.Upfront /= 6
		}
		cfg.Instance = three
		cfg.Hours = three.PeriodHours
	default:
		return cfg, cli.Usagef("unsupported term %d (want 1 or 3)", p.term)
	}
	if p.perGroup > 0 {
		cfg.PerGroup = p.perGroup
	}
	if p.seed != 0 {
		cfg.Seed = p.seed
	}
	if p.discount != 0 {
		cfg.SellingDiscount = p.discount
	}
	cfg.MarketFee = p.fee
	cfg.Parallelism = p.par
	return cfg, nil
}

// snapshotLoader returns the Load closure the server calls at startup
// and on every SIGHUP: plan the cohort (or re-read the trace
// directory) and precompute the decision tables. Trace loading is
// strict — a daemon must not come up, or swap to, a partial snapshot.
func snapshotLoader(cfg experiments.Config, p params) func(context.Context) (*experiments.DecisionSet, error) {
	return func(ctx context.Context) (*experiments.DecisionSet, error) {
		plan, err := buildPlan(ctx, cfg, p)
		if err != nil {
			return nil, err
		}
		return plan.Decisions(ctx)
	}
}

func buildPlan(ctx context.Context, cfg experiments.Config, p params) (*experiments.CohortPlan, error) {
	if p.traceDir == "" {
		return experiments.NewCohortPlan(ctx, cfg)
	}
	traces, _, err := gtrace.LoadEC2LogFS(os.DirFS(p.traceDir), gtrace.LoadOptions{Policy: gtrace.Strict})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.traceDir, err)
	}
	return experiments.PlanTraces(ctx, cfg, traces)
}
