package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rimarket/internal/cli"
	"rimarket/internal/experiments"
)

// TestRunUsageErrors pins the exit-code vocabulary at the flag layer:
// command-line misuse is exit 2, runtime failures are exit 1.
func TestRunUsageErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"unknown scale", []string{"-scale", "bogus"}, cli.ExitUsage},
		{"unsupported term", []string{"-term", "2"}, cli.ExitUsage},
		{"unknown flag", []string{"-no-such-flag"}, cli.ExitUsage},
		{"bad discount type", []string{"-a", "lots"}, cli.ExitUsage},
		{"missing trace dir", []string{"-tracedir", "/no/such/dir"}, cli.ExitError},
		{"unlistenable addr", []string{"-pergroup", "2", "-addr", "256.256.256.256:0"}, cli.ExitError},
	} {
		err := run(context.Background(), tc.args, io.Discard, io.Discard)
		if err == nil {
			t.Errorf("%s: run succeeded, want exit %d", tc.name, tc.want)
			continue
		}
		if got := cli.ExitCode(err); got != tc.want {
			t.Errorf("%s: exit code %d (%v), want %d", tc.name, got, err, tc.want)
		}
	}
	if err := run(context.Background(), []string{"-h"}, io.Discard, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: err = %v, want flag.ErrHelp", err)
	}
}

// offlineSet builds the same snapshot rid serves for
// "-pergroup 2" at test scale, through the offline pipeline.
func offlineSet(t testing.TB) *experiments.DecisionSet {
	t.Helper()
	cfg := experiments.TestScaleConfig()
	cfg.PerGroup = 2
	plan, err := experiments.NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Decisions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// offlineQueries is the bit-identity corpus: request bodies paired
// with the exact bytes the daemon must answer, computed offline.
type offlineQuery struct {
	body []byte
	want []byte
}

func offlineQueries(t testing.TB, set *experiments.DecisionSet) []offlineQuery {
	t.Helper()
	var out []offlineQuery
	hours := []int{0, set.Horizon() / 2, set.Horizon() - 1}
	for ui := 0; ui < set.Users(); ui++ {
		if set.Reserved(ui) == 0 {
			continue
		}
		for _, policy := range set.Policies() {
			q := experiments.Query{User: set.UserName(ui), Policy: policy, Hour: hours[ui%len(hours)]}
			rec, err := set.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			body, err := json.Marshal(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, offlineQuery{body: body, want: append(want, '\n')})
		}
	}
	if len(out) == 0 {
		t.Fatal("offline corpus is empty; no user has reserved instances")
	}
	return out
}

// postRecommend issues one evaluation request and returns status and
// raw body bytes.
func postRecommend(base string, body []byte) (int, []byte, error) {
	resp, err := http.Post(base+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// syncBuffer is a mutex-guarded bytes.Buffer: run's stdout/stderr are
// written from server goroutines while the test polls them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitListening polls out for the startup line and returns the bound
// address; a run error or 30s without the line is fatal.
func waitListening(t *testing.T, out *syncBuffer, errc <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, "rid: listening on "); i >= 0 {
			rest := s[i+len("rid: listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return rest[:j]
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("run exited before listening: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("no listening line within 30s; stdout: %q", out.String())
	return ""
}

// TestRunServesReloadsAndDrains is the in-process end-to-end test:
// run() with -addr :0, real HTTP queries bit-identical to the offline
// pipeline, a SIGHUP reload that swaps without changing answers, and a
// context cancellation that drains to a nil return.
func TestRunServesReloadsAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pergroup", "2"}, stdout, stderr)
	}()
	base := "http://" + waitListening(t, stdout, errc)

	corpus := offlineQueries(t, offlineSet(t))
	check := func(stage string) {
		t.Helper()
		for _, q := range corpus {
			status, got, err := postRecommend(base, q.body)
			if err != nil {
				t.Fatalf("%s: %s: %v", stage, q.body, err)
			}
			if status != http.StatusOK {
				t.Fatalf("%s: %s: status %d, body %s", stage, q.body, status, got)
			}
			if !bytes.Equal(got, q.want) {
				t.Fatalf("%s: %s: daemon diverges from offline pipeline:\n  got  %s\n  want %s", stage, q.body, got, q.want)
			}
		}
	}
	check("initial snapshot")

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}

	// SIGHUP lands on this process; run's watcher rebuilds and swaps.
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(stderr.String(), "snapshot reloaded") {
		if time.Now().After(deadline) {
			t.Fatalf("no reload within 30s; stderr: %q", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	check("after SIGHUP reload")

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run after clean drain = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
}

// helperEnv marks the re-exec'ed copy of this test binary that plays
// the rid process in the SIGKILL chaos test.
const helperEnv = "RID_HELPER_PROCESS"

// TestRidHelperProcess is not a test: re-exec'ed with helperEnv set,
// it becomes cmd/rid's main() — SignalContext, run, exit-code mapping
// — so the chaos test below can SIGKILL and restart a real process.
func TestRidHelperProcess(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process for TestKillRestartBitIdentical")
	}
	ctx, stop := cli.SignalContext()
	err := run(ctx, strings.Fields(os.Getenv("RID_HELPER_ARGS")), os.Stdout, os.Stderr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rid:", err)
	}
	os.Exit(cli.ExitCode(err))
}

// startHelper launches the re-exec'ed daemon and returns the running
// command plus its bound address, parsed from the startup line.
func startHelper(t *testing.T, args string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestRidHelperProcess$")
	cmd.Env = append(os.Environ(), helperEnv+"=1", "RID_HELPER_ARGS="+args)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "rid: listening on "); ok {
			// Keep draining so the child never blocks on a full pipe.
			go io.Copy(io.Discard, stdout)
			return cmd, addr
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("helper exited without printing a listening line")
	return nil, ""
}

// TestKillRestartBitIdentical is the crash-safety acceptance test:
// SIGKILL a serving rid process mid-load, restart it with the same
// flags, and require every answer — before the kill and after the
// restart — bit-identical to the offline pipeline. The snapshot is a
// pure function of the flags, so an uncontrolled death loses nothing.
func TestKillRestartBitIdentical(t *testing.T) {
	corpus := offlineQueries(t, offlineSet(t))
	const args = "-addr 127.0.0.1:0 -pergroup 2"

	check := func(stage, addr string) {
		t.Helper()
		for _, q := range corpus {
			status, got, err := postRecommend("http://"+addr, q.body)
			if err != nil {
				t.Fatalf("%s: %s: %v", stage, q.body, err)
			}
			if status != http.StatusOK {
				t.Fatalf("%s: %s: status %d, body %s", stage, q.body, status, got)
			}
			if !bytes.Equal(got, q.want) {
				t.Fatalf("%s: %s: diverges from offline pipeline:\n  got  %s\n  want %s", stage, q.body, got, q.want)
			}
		}
	}

	first, addr := startHelper(t, args)
	check("before kill", addr)

	// Put the process under live load, then SIGKILL it mid-flight. The
	// in-flight requests die with their connections — the point is that
	// nothing the process was doing can corrupt what a restart serves.
	stopLoad := make(chan struct{})
	var load sync.WaitGroup
	for w := 0; w < 4; w++ {
		load.Add(1)
		go func(w int) {
			defer load.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				postRecommend("http://"+addr, corpus[(i+w)%len(corpus)].body)
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err := first.Wait()
	close(stopLoad)
	load.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("killed helper Wait = %v, want an ExitError", err)
	}

	second, addr2 := startHelper(t, args)
	check("after restart", addr2)

	// Shut the survivor down the operator's way: one SIGINT, clean
	// drain, exit 0.
	if err := second.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := second.Wait(); err != nil {
		t.Fatalf("helper after SIGINT = %v, want exit 0", err)
	}
}
