package main

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyTree copies the module source at root into dst, skipping VCS
// metadata and test caches — enough of the tree that `go list ./...`
// in the copy sees the same packages as the original.
func copyTree(t *testing.T, root, dst string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mutate applies a line-level edit to one file of the copied tree.
func mutate(t *testing.T, path string, edit func(src string) string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := edit(string(data))
	if out == string(data) {
		t.Fatalf("mutation of %s was a no-op; the smoke test would prove nothing", path)
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSmokeRealTreeMutations proves the concurrency analyzers guard
// the real tree, not just fixtures: deleting the shard pool's
// wg.Wait and un-freezing a DecisionSet field write in a copy of the
// module each produce a finding.
func TestSmokeRealTreeMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the whole module twice")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("removing the shard join is a gojoin finding", func(t *testing.T) {
		dir := t.TempDir()
		copyTree(t, root, dir)
		mutate(t, filepath.Join(dir, "internal", "experiments", "shard.go"), func(src string) string {
			return strings.Replace(src, "wg.Wait()", "_ = wg", 1)
		})
		var out, errOut bytes.Buffer
		err := run([]string{"-C", dir, "./internal/experiments/"}, &out, &errOut)
		if err == nil {
			t.Fatal("rilint passed a tree whose shard pool never joins")
		}
		if !strings.Contains(out.String(), "gojoin") || !strings.Contains(out.String(), "WaitGroup.Add but never calls Wait") {
			t.Errorf("expected the abandoned-pool gojoin finding, got:\n%s", out.String())
		}
	})

	t.Run("post-construction DecisionSet write is a frozen finding", func(t *testing.T) {
		dir := t.TempDir()
		copyTree(t, root, dir)
		mutate(t, filepath.Join(dir, "internal", "experiments", "recommend.go"), func(src string) string {
			return src + "\n// poke mutates the snapshot after publication.\nfunc (s *DecisionSet) poke() { s.horizon++ }\n"
		})
		var out, errOut bytes.Buffer
		err := run([]string{"-C", dir, "./internal/experiments/"}, &out, &errOut)
		if err == nil {
			t.Fatal("rilint passed a tree that mutates a published DecisionSet")
		}
		if !strings.Contains(out.String(), "frozen") || !strings.Contains(out.String(), "DecisionSet") {
			t.Errorf("expected the frozen DecisionSet finding, got:\n%s", out.String())
		}
	})
}
