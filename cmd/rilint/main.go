// Command rilint runs the repo's custom invariant analyzers (see
// DESIGN.md §4.3) over the packages matched by its arguments —
// `./...` by default. It is the mechanical enforcement of the rules
// the differential tests and CLI contract otherwise only catch after
// the fact: float determinism in the engines, context threading in
// the drivers, %w error chains, the internal/cli exit-code
// vocabulary, and the no-panic containment rule.
//
// Usage:
//
//	rilint [-C dir] [-format text|json|sarif] [-analyzers] [patterns...]
//
// `-format text` (the default) prints one finding per line; `json`
// emits a stable findings envelope for scripting; `sarif` emits a
// SARIF 2.1.0 document with a rule descriptor per analyzer, for CI
// artifact viewers. Exit codes follow the shared vocabulary: 0 when
// the tree is clean, 1 when findings are reported (or the load
// fails), 2 on usage errors. A reviewed, sanctioned violation is silenced in source with
//
//	//rilint:allow <analyzer> -- <justification>
//
// on the offending line or the line above; the justification is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rimarket/internal/cli"
	"rimarket/internal/rilint"
	"rimarket/internal/rilint/analyzers"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rilint:", err)
	}
	os.Exit(cli.ExitCode(err))
}

func run(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("rilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory to resolve package patterns in (a module root or below)")
	format := fs.String("format", rilint.FormatText, "output format: text, json, or sarif")
	list := fs.Bool("analyzers", false, "print the analyzer catalog and exit")
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	switch *format {
	case rilint.FormatText, rilint.FormatJSON, rilint.FormatSARIF:
	default:
		return cli.Usage(fmt.Errorf("unknown -format %q (want %s, %s or %s)",
			*format, rilint.FormatText, rilint.FormatJSON, rilint.FormatSARIF))
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(w, "%-16s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := rilint.Run(*dir, patterns, suite)
	if err != nil {
		return err
	}
	if err := rilint.WriteDiagnostics(w, *format, diags, suite); err != nil {
		return err
	}
	if len(diags) > 0 {
		return fmt.Errorf("%d finding(s); fix them or annotate with //rilint:allow <name> -- <why>", len(diags))
	}
	return nil
}
