package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rimarket/internal/cli"
)

// writeViolatingModule builds a synthetic module with one violation
// per analyzer, so the smoke test proves the whole suite fires
// end-to-end through the real loader.
func writeViolatingModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"internal/core/core.go": `package core

import (
	"math/rand"
	"time"
)

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

func Jitter() float64 { return rand.Float64() }

func Stamp() time.Time { return time.Now() }
`,
		"internal/lib/lib.go": `package lib

import (
	"context"
	"fmt"
	"os"
)

func Root() context.Context { return context.Background() }

func Flatten(err error) error { return fmt.Errorf("failed: %v", err) }

func Die() { os.Exit(1) }

func Explode() { panic("boom") }
`,
		"internal/conc/conc.go": `package conc

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) Mixed() int64 { return c.n }

// Box is a published snapshot.
//
//rilint:frozen
type Box struct {
	V int
}

func New() *Box { return &Box{} }

func (b *Box) Poke() { b.V++ }

func Leak() {
	go func() {
		_ = 1
	}()
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunFlagsSyntheticViolations(t *testing.T) {
	dir := writeViolatingModule(t)
	var out, errOut bytes.Buffer
	err := run([]string{"-C", dir, "./..."}, &out, &errOut)
	if err == nil {
		t.Fatalf("rilint reported a clean tree for the violating module; output:\n%s", out.String())
	}
	for _, name := range []string{"floatdet", "ctxrule", "errwrap", "exitdiscipline", "nopanic", "atomicfield", "frozen", "gojoin"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("no %s finding in output:\n%s", name, out.String())
		}
	}
}

func TestFixturesExitNonzero(t *testing.T) {
	// Each analyzer's want-comment fixture is a violating module: the
	// full suite must report findings (exit nonzero) on every one.
	for _, name := range []string{"floatdet", "ctxrule", "errwrap", "exitdiscipline", "nopanic", "atomicfield", "frozen", "gojoin"} {
		t.Run(name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "rilint", "analyzers", "testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			var out, errOut bytes.Buffer
			err = run([]string{"-C", dir, "./..."}, &out, &errOut)
			if err == nil {
				t.Fatalf("suite reported the %s fixture clean", name)
			}
			if code := cli.ExitCode(err); code != cli.ExitError {
				t.Errorf("fixture findings map to exit %d, want %d", code, cli.ExitError)
			}
			if !strings.Contains(out.String(), name+":") {
				t.Errorf("no %s finding on its own fixture:\n%s", name, out.String())
			}
		})
	}
}

func TestRunCleanOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-C", root, "./..."}, &out, &errOut); err != nil {
		t.Fatalf("rilint on the real tree: %v\n%s", err, out.String())
	}
}

func TestAnalyzerCatalogListing(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-analyzers"}, &out, &errOut); err != nil {
		t.Fatalf("-analyzers: %v", err)
	}
	for _, name := range []string{"floatdet", "ctxrule", "errwrap", "exitdiscipline", "nopanic", "atomicfield", "frozen", "gojoin"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("catalog listing is missing %s:\n%s", name, out.String())
		}
	}
}

func TestUsageErrorExitsUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-no-such-flag"}, &out, &errOut)
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if code := cli.ExitCode(err); code != cli.ExitUsage {
		t.Errorf("flag misuse maps to exit code %d, want %d", code, cli.ExitUsage)
	}
}

func TestFormatJSON(t *testing.T) {
	dir := writeViolatingModule(t)
	var out, errOut bytes.Buffer
	err := run([]string{"-C", dir, "-format", "json", "./..."}, &out, &errOut)
	if err == nil {
		t.Fatal("violating module reported clean")
	}
	var envelope struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &envelope); err != nil {
		t.Fatalf("-format json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(envelope.Findings) == 0 {
		t.Fatal("-format json envelope holds no findings for the violating module")
	}
	for _, f := range envelope.Findings {
		if f.Analyzer == "" || f.File == "" || f.Line < 1 || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

func TestFormatSARIF(t *testing.T) {
	dir := writeViolatingModule(t)
	var out, errOut bytes.Buffer
	err := run([]string{"-C", dir, "-format", "sarif", "./..."}, &out, &errOut)
	if err == nil {
		t.Fatal("violating module reported clean")
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-format sarif output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	rules := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, name := range []string{"floatdet", "ctxrule", "errwrap", "exitdiscipline", "nopanic", "atomicfield", "frozen", "gojoin", "rilint", "allowledger"} {
		if !rules[name] {
			t.Errorf("SARIF rule catalog is missing a descriptor for %q", name)
		}
	}
	if len(log.Runs[0].Results) == 0 {
		t.Error("SARIF run holds no results for the violating module")
	}
	for _, r := range log.Runs[0].Results {
		if !rules[r.RuleID] {
			t.Errorf("result ruleId %q has no matching rule descriptor", r.RuleID)
		}
	}
}

func TestUnknownFormatExitsUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-format", "xml"}, &out, &errOut)
	if err == nil {
		t.Fatal("unknown format accepted")
	}
	if code := cli.ExitCode(err); code != cli.ExitUsage {
		t.Errorf("unknown format maps to exit code %d, want %d", code, cli.ExitUsage)
	}
}

func TestFindingsExitError(t *testing.T) {
	dir := writeViolatingModule(t)
	var out, errOut bytes.Buffer
	err := run([]string{"-C", dir, "./..."}, &out, &errOut)
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("findings map to exit code %d, want %d", code, cli.ExitError)
	}
}
