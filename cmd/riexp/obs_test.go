package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rimarket/internal/cli"
	"rimarket/internal/obs"
)

// runObs invokes the CLI capturing stdout and stderr separately.
func runObs(t *testing.T, args []string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errw bytes.Buffer
	err = run(context.Background(), args, &out, &errw)
	return out.String(), errw.String(), err
}

// readFile loads a file the run was expected to produce.
func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// TestObsMetricsManifest runs a small grid with -metrics and checks the
// manifest file records the run's provenance and counters.
func TestObsMetricsManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	args := fastArgs("-exp", "table2", "-seed", "42", "-metrics", path)
	stdout, _, err := runObs(t, args)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout, "Table II") {
		t.Fatalf("stdout missing Table II:\n%s", stdout)
	}

	var mf obs.Manifest
	data := readFile(t, path)
	if err := json.Unmarshal(data, &mf); err != nil {
		t.Fatalf("manifest parse: %v\n%s", err, data)
	}
	if mf.Schema != obs.ManifestSchema {
		t.Errorf("schema = %d, want %d", mf.Schema, obs.ManifestSchema)
	}
	if mf.Tool != "riexp" {
		t.Errorf("tool = %q, want riexp", mf.Tool)
	}
	if mf.Seed != 42 {
		t.Errorf("seed = %d, want 42 (resolved config seed)", mf.Seed)
	}
	if mf.Outcome.ExitCode != cli.ExitOK || mf.Outcome.Error != "" {
		t.Errorf("outcome = %+v, want exit 0, no error", mf.Outcome)
	}
	if mf.Metrics == nil {
		t.Fatal("manifest has no metrics snapshot")
	}
	if mf.Metrics.EngineRuns == 0 || mf.Metrics.JobsDone == 0 {
		t.Errorf("metrics look empty: engine_runs=%d jobs_done=%d",
			mf.Metrics.EngineRuns, mf.Metrics.JobsDone)
	}
	if mf.Metrics.JobsDone != mf.Metrics.JobsTotal {
		t.Errorf("jobs done %d != total %d on a clean run",
			mf.Metrics.JobsDone, mf.Metrics.JobsTotal)
	}
	if mf.GoVersion == "" {
		t.Error("manifest missing go_version")
	}
	if mf.Mem == nil || mf.Mem.Mallocs == 0 {
		t.Error("manifest missing mem snapshot")
	}
	if mf.Config == nil {
		t.Error("manifest missing resolved config")
	}
	if mf.WallNs < 0 || mf.End.Before(mf.Start) {
		t.Errorf("bad timing: start=%v end=%v wall=%d", mf.Start, mf.End, mf.WallNs)
	}
}

// TestObsStdoutIdentical proves the observability flags do not perturb
// the experiment output: stdout is byte-identical with and without
// -metrics/-progress.
func TestObsStdoutIdentical(t *testing.T) {
	base := fastArgs("-exp", "fig2", "-seed", "7")
	plain, _, err := runObs(t, base)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	observed, stderrText, err := runObs(t, append(append([]string{}, base...), "-metrics", path, "-progress"))
	if err != nil {
		t.Fatalf("observed run: %v", err)
	}
	if plain != observed {
		t.Errorf("stdout differs with observability on:\n--- plain ---\n%s\n--- observed ---\n%s", plain, observed)
	}
	if plain == "" {
		t.Fatal("vacuous: no output produced")
	}
	if !strings.Contains(stderrText, "cells") || !strings.Contains(stderrText, "jobs") {
		t.Errorf("-progress printed no final progress line; stderr:\n%s", stderrText)
	}
}

// TestObsPprof exercises the live pprof listener on an OS-assigned port
// and verifies the advertised endpoint answers while the run is active.
func TestObsPprof(t *testing.T) {
	// The pprof server only lives for the duration of the run; the
	// -pprof flow with address validation is the real subject here. A
	// bound :0 listener must start (exit 0) and report its address.
	_, stderrText, err := runObs(t, fastArgs("-exp", "table2", "-pprof", "127.0.0.1:0"))
	if err != nil {
		t.Fatalf("run with -pprof: %v", err)
	}
	if !strings.Contains(stderrText, "pprof listening on http://") {
		t.Errorf("stderr missing pprof banner:\n%s", stderrText)
	}
	// After Finish the server must be down: extract the address and
	// confirm the port no longer answers.
	line := stderrText[strings.Index(stderrText, "http://"):]
	addr := strings.TrimSpace(strings.TrimPrefix(strings.Fields(line)[0], "http://"))
	addr = strings.TrimSuffix(addr, "/debug/pprof/")
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Errorf("pprof server at %s still answering after Finish", addr)
	}
}

// TestObsFlagValidation pins the exit codes for bad observability
// flag values: failures surface before any experiment work runs.
func TestObsFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		code int
		want string
	}{
		{
			name: "bad pprof address",
			args: fastArgs("-exp", "table2", "-pprof", "999.999.999.999:bogus"),
			code: cli.ExitError,
			want: "pprof listen",
		},
		{
			name: "unwritable metrics path",
			args: fastArgs("-exp", "table2", "-metrics", filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")),
			code: cli.ExitError,
			want: "metrics manifest",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := runObs(t, tc.args)
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := cli.ExitCode(err); got != tc.code {
				t.Errorf("exit code = %d, want %d (err: %v)", got, tc.code, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestObsManifestRecordsFailure checks a failed run still writes the
// manifest, with the error and exit code in the outcome block.
func TestObsManifestRecordsFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fail.json")
	_, _, err := runObs(t, fastArgs("-exp", "no-such-experiment", "-metrics", path))
	if err == nil {
		t.Fatal("expected a usage error")
	}
	if got := cli.ExitCode(err); got != cli.ExitUsage {
		t.Fatalf("exit code = %d, want %d", got, cli.ExitUsage)
	}
	var mf obs.Manifest
	if jerr := json.Unmarshal(readFile(t, path), &mf); jerr != nil {
		t.Fatalf("manifest parse: %v", jerr)
	}
	if mf.Outcome.ExitCode != cli.ExitUsage {
		t.Errorf("manifest exit code = %d, want %d", mf.Outcome.ExitCode, cli.ExitUsage)
	}
	if !strings.Contains(mf.Outcome.Error, "unknown experiment") {
		t.Errorf("manifest error = %q, want the run error", mf.Outcome.Error)
	}
}

// TestObsManifestPartialIngestion checks the manifest records skipped
// trace files and the partial exit code on best-effort ingestion.
func TestObsManifestPartialIngestion(t *testing.T) {
	dir := writeMixedTraceDir(t)
	path := filepath.Join(t.TempDir(), "partial.json")
	_, _, err := runObs(t, []string{"-exp", "table3",
		"-tracedir", dir, "-trace-errors", "best-effort", "-metrics", path})
	if err == nil {
		t.Fatal("expected a partial-ingestion error")
	}
	if got := cli.ExitCode(err); got != cli.ExitPartial {
		t.Fatalf("exit code = %d, want %d (err: %v)", got, cli.ExitPartial, err)
	}
	var mf obs.Manifest
	if jerr := json.Unmarshal(readFile(t, path), &mf); jerr != nil {
		t.Fatalf("manifest parse: %v", jerr)
	}
	if mf.Trace == nil {
		t.Fatal("manifest missing trace ingestion block")
	}
	if len(mf.Trace.Loaded) != 2 || len(mf.Trace.Skipped) != 1 {
		t.Fatalf("trace block = %+v, want 2 loaded + 1 skipped", mf.Trace)
	}
	if mf.Trace.Skipped[0].File != "corrupt.csv" || mf.Trace.Skipped[0].Err == "" {
		t.Errorf("skipped entry incomplete: %+v", mf.Trace.Skipped[0])
	}
	if mf.Outcome.ExitCode != cli.ExitPartial {
		t.Errorf("manifest exit code = %d, want %d", mf.Outcome.ExitCode, cli.ExitPartial)
	}
}
