package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rimarket/internal/cli"
	"rimarket/internal/gtrace"
)

// fastArgs shrinks the cohort so every CLI test is quick.
func fastArgs(extra ...string) []string {
	return append([]string{"-pergroup", "5"}, extra...)
}

func TestRunExperiments(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "table1",
			args: []string{"-exp", "table1"},
			want: []string{"Table I", "d2.xlarge", "Partial Upfront", "$1506"},
		},
		{
			name: "table2",
			args: fastArgs("-exp", "table2"),
			want: []string{"Table II", "A_{3T/4}", "Keep-Reserved"},
		},
		{
			name: "table3",
			args: fastArgs("-exp", "table3"),
			want: []string{"Table III", "Group 1", "All users"},
		},
		{
			name: "fig2",
			args: fastArgs("-exp", "fig2"),
			want: []string{"Fig. 2", "Group 1", "Group 3"},
		},
		{
			name: "fig3a",
			args: fastArgs("-exp", "fig3a"),
			want: []string{"Fig. 3", "A_{3T/4}", "users saving"},
		},
		{
			name: "fig3b",
			args: fastArgs("-exp", "fig3b"),
			want: []string{"A_{T/2}"},
		},
		{
			name: "fig3c",
			args: fastArgs("-exp", "fig3c"),
			want: []string{"A_{T/4}"},
		},
		{
			name: "fig4a",
			args: fastArgs("-exp", "fig4a"),
			want: []string{"Fig. 4", "Group 1", "mean normalized cost"},
		},
		{
			name: "fig4c",
			args: fastArgs("-exp", "fig4c"),
			want: []string{"Group 3"},
		},
		{
			name: "bounds",
			args: fastArgs("-exp", "bounds"),
			want: []string{"Competitive-ratio bounds", "A_{3T/4}", "adversarial measured"},
		},
		{
			name: "sweep-k",
			args: []string{"-exp", "sweep-k", "-pergroup", "3"},
			want: []string{"checkpoint fraction", "users saving"},
		},
		{
			name: "sweep-a",
			args: []string{"-exp", "sweep-a", "-pergroup", "3"},
			want: []string{"selling discount"},
		},
		{
			name: "sweep-fee",
			args: []string{"-exp", "sweep-fee", "-pergroup", "3"},
			want: []string{"marketplace fee"},
		},
		{
			name: "extensions",
			args: []string{"-exp", "extensions", "-pergroup", "3"},
			want: []string{"A_rand", "Multi"},
		},
		{
			name: "market",
			args: []string{"-exp", "market", "-pergroup", "3"},
			want: []string{"realized income", "buyers/hour"},
		},
		{
			name: "sensitivity",
			args: []string{"-exp", "sensitivity", "-pergroup", "2"},
			want: []string{"a \\ k"},
		},
		{
			name: "audit",
			args: []string{"-exp", "audit", "-pergroup", "2"},
			want: []string{"Competitive-ratio audit", "A_{3T/4}"},
		},
		{
			name: "resell",
			args: []string{"-exp", "resell", "-pergroup", "3"},
			want: []string{"hour-resell", "winner"},
		},
		{
			name: "custom discount and seed",
			args: fastArgs("-exp", "table3", "-a", "0.5", "-seed", "99"),
			want: []string{"Table III"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(context.Background(), tt.args, &out, io.Discard); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			for _, want := range tt.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "all", "-pergroup", "4"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "Fig. 2", "Fig. 3", "Fig. 4", "Table II", "Table III", "Competitive-ratio"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("all output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown experiment", args: []string{"-exp", "nope"}},
		{name: "unknown scale", args: []string{"-scale", "huge"}},
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "bad discount", args: []string{"-exp", "table3", "-a", "7", "-pergroup", "2"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(context.Background(), tt.args, &out, io.Discard); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestRunExports(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "cohort.json")
	csvPath := filepath.Join(dir, "users.csv")
	var out strings.Builder
	args := []string{"-exp", "table3", "-pergroup", "3", "-json", jsonPath, "-csv", csvPath}
	if err := run(context.Background(), args, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, csvPath} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("export %s: %v", path, err)
		}
		if info.Size() == 0 {
			t.Errorf("export %s is empty", path)
		}
	}
	// Unwritable export path surfaces as an error.
	if err := run(context.Background(), []string{"-exp", "table3", "-pergroup", "2", "-json", "/nonexistent-dir/x.json"}, &out, io.Discard); err == nil {
		t.Error("bad export path accepted")
	}
}

func TestRunTraceDir(t *testing.T) {
	dir := t.TempDir()
	// Three small traces with distinct fluctuation profiles.
	files := map[string]string{
		"stable.csv":   "# user: s1\nhour,instances\n",
		"volatile.csv": "# user: v1\nhour,instances\n0,40\n",
	}
	for h := 0; h < 300; h++ {
		files["stable.csv"] += fmt.Sprintf("%d,5\n", h)
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "table3", "-tracedir", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table III") {
		t.Errorf("output:\n%s", out.String())
	}
	// Empty directory errors.
	if err := run(context.Background(), []string{"-exp", "table3", "-tracedir", t.TempDir()}, &out, io.Discard); err == nil {
		t.Error("empty trace dir accepted")
	}
}

// writeMixedTraceDir builds a real directory with good traces and one
// corrupt file, the shape of a partially-damaged usage-log download.
func writeMixedTraceDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	stable := "# user: s1\nhour,instances\n"
	for h := 0; h < 300; h++ {
		stable += fmt.Sprintf("%d,5\n", h)
	}
	files := map[string]string{
		"corrupt.csv":  "not,a,trace\n",
		"stable.csv":   stable,
		"volatile.csv": "# user: v1\nhour,instances\n0,40\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunTraceDirBestEffort(t *testing.T) {
	dir := writeMixedTraceDir(t)
	var out, warn strings.Builder
	err := run(context.Background(), []string{"-exp", "table3", "-tracedir", dir, "-trace-errors", "best-effort"}, &out, &warn)
	if err == nil {
		t.Fatal("partial ingestion completed without the partial error")
	}
	if !errors.Is(err, cli.ErrPartial) {
		t.Fatalf("err = %v, want cli.ErrPartial in chain", err)
	}
	if code := cli.ExitCode(err); code != cli.ExitPartial {
		t.Errorf("exit code %d, want %d", code, cli.ExitPartial)
	}
	// The run still rendered its results for the files that loaded.
	if !strings.Contains(out.String(), "Table III") {
		t.Errorf("partial run produced no table:\n%s", out.String())
	}
	for _, want := range []string{"partial ingestion", "corrupt.csv", "1 of 3"} {
		if !strings.Contains(warn.String(), want) {
			t.Errorf("warning missing %q:\n%s", want, warn.String())
		}
	}
}

func TestRunTraceDirStrict(t *testing.T) {
	dir := writeMixedTraceDir(t)
	var out strings.Builder
	// Strict is the default: the corrupt file fails the whole run.
	err := run(context.Background(), []string{"-exp", "table3", "-tracedir", dir}, &out, io.Discard)
	if err == nil {
		t.Fatal("strict run over a corrupt file succeeded")
	}
	var perr *gtrace.ParseError
	if !errors.As(err, &perr) || perr.File != "corrupt.csv" {
		t.Fatalf("err = %v, want *gtrace.ParseError naming corrupt.csv", err)
	}
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("exit code %d, want %d", code, cli.ExitError)
	}
}

func TestRunTraceDirBudgetExceeded(t *testing.T) {
	dir := writeMixedTraceDir(t)
	if err := os.WriteFile(filepath.Join(dir, "also-corrupt.csv"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-exp", "table3", "-tracedir", dir, "-trace-errors", "best-effort", "-trace-error-budget", "1"}
	err := run(context.Background(), args, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "failure budget") {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("exit code %d, want %d (budget overrun is a failure, not a partial success)", code, cli.ExitError)
	}
}

func TestRunUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown trace-errors policy", args: []string{"-trace-errors", "lenient"}},
		{name: "negative budget", args: []string{"-trace-error-budget", "-1"}},
		{name: "unknown flag", args: []string{"-bogus"}},
		{name: "unknown scale", args: []string{"-scale", "huge"}},
		{name: "unknown experiment", args: []string{"-exp", "nope", "-pergroup", "2"}},
		{name: "bad term", args: []string{"-term", "2"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			err := run(context.Background(), tt.args, &out, io.Discard)
			if code := cli.ExitCode(err); code != cli.ExitUsage {
				t.Errorf("run(%v) = %v (exit %d), want usage error (exit %d)", tt.args, err, code, cli.ExitUsage)
			}
		})
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, fastArgs("-exp", "table3"), &out, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("exit code %d, want %d", code, cli.ExitError)
	}
}

func TestRunThreeYearTerm(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "table3", "-term", "3", "-pergroup", "3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table III") {
		t.Errorf("output:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-exp", "table3", "-term", "2"}, &out, io.Discard); err == nil {
		t.Error("term 2 accepted")
	}
}
