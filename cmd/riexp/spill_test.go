package main

// Acceptance tests for -spill / -resume: flag plumbing, the on-disk
// store a spilling run leaves behind, and — the issue's headline — a
// run cancelled mid-grid through the real SIGINT signal path exiting 3
// with a partial spill directory that a second invocation resumes to
// byte-identical stdout.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rimarket/internal/cli"
	"rimarket/internal/obs"
)

// sensitivityArgs is the grid experiment the spill tests drive: 25
// cells, small cohort, long enough to interrupt.
func sensitivityArgs(extra ...string) []string {
	return append([]string{"-exp", "sensitivity", "-pergroup", "2", "-seed", "11"}, extra...)
}

func TestSpillLeavesResumableStore(t *testing.T) {
	ref, _, err := runObs(t, sensitivityArgs())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	got, _, err := runObs(t, sensitivityArgs("-spill", dir))
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("stdout with -spill differs from plain run:\n--- plain ---\n%s\n--- spill ---\n%s", ref, got)
	}
	store := filepath.Join(dir, "sensitivity")
	if _, err := os.Stat(filepath.Join(store, "spec.json")); err != nil {
		t.Fatalf("spill store has no spec.json: %v", err)
	}
	shards, err := filepath.Glob(filepath.Join(store, "shard-*.grid"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("spill store has no shards (err=%v)", err)
	}

	// Resuming the completed store recomputes nothing: every cell is
	// resumed, none recomputed, and stdout is still byte-identical.
	manifest := filepath.Join(t.TempDir(), "resume.json")
	got, _, err = runObs(t, sensitivityArgs("-resume", dir, "-metrics", manifest))
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("stdout after no-op resume differs from plain run")
	}
	mf := readManifest(t, manifest)
	if mf.Metrics.CellsResumed != 25 || mf.Metrics.CellsDone != 0 {
		t.Errorf("no-op resume: cells_resumed=%d cells_done=%d, want 25/0",
			mf.Metrics.CellsResumed, mf.Metrics.CellsDone)
	}
}

func TestSpillResumeMutuallyExclusive(t *testing.T) {
	dir := t.TempDir()
	_, _, err := runObs(t, sensitivityArgs("-spill", dir, "-resume", dir))
	if err == nil {
		t.Fatal("-spill with -resume accepted")
	}
	if cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("exit code %d, want %d (usage)", cli.ExitCode(err), cli.ExitUsage)
	}
}

func TestResumeConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runObs(t, sensitivityArgs("-spill", dir)); err != nil {
		t.Fatal(err)
	}
	// A different seed is a different grid: the store must refuse to
	// merge, loudly, instead of serving stale cells.
	_, _, err := runObs(t, []string{"-exp", "sensitivity", "-pergroup", "2", "-seed", "12", "-resume", dir})
	if err == nil {
		t.Fatal("resume with mismatched config accepted")
	}
	if !strings.Contains(err.Error(), "config hash") && !strings.Contains(err.Error(), "seed") {
		t.Errorf("mismatch error %v does not name the mismatch", err)
	}
}

// TestSpillInterruptAndResume is the crash/resume acceptance test: a
// spilling run is cancelled mid-grid by a real SIGINT through
// cli.SignalContext, must exit 3 pointing at -resume, and the resumed
// invocation must print stdout byte-identical to a never-interrupted
// run while the manifest records the resumed-vs-recomputed split.
func TestSpillInterruptAndResume(t *testing.T) {
	// A larger cohort than the other spill tests: the run must outlive
	// the watcher goroutine's signal, or there is nothing to resume.
	interruptArgs := func(extra ...string) []string {
		return append([]string{"-exp", "sensitivity", "-pergroup", "12", "-seed", "11"}, extra...)
	}
	ref, _, err := runObs(t, interruptArgs())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, stop := cli.SignalContext()
	defer stop()
	// Pull the trigger as soon as the run has spilled its first cell:
	// early enough to leave work undone, late enough that the partial
	// store is non-trivial.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			shards, _ := filepath.Glob(filepath.Join(dir, "sensitivity", "shard-*.grid"))
			for _, sh := range shards {
				if info, err := os.Stat(sh); err == nil && info.Size() > 0 {
					_ = syscall.Kill(os.Getpid(), syscall.SIGINT)
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	var out, errw bytes.Buffer
	err = run(ctx, interruptArgs("-spill", dir), &out, &errw)
	stop()
	<-watcherDone
	if err == nil {
		t.Skip("run finished before the signal landed; nothing to resume")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled in chain", err)
	}
	if cli.ExitCode(err) != cli.ExitPartial {
		t.Fatalf("interrupted spill run exit code %d, want %d (partial)", cli.ExitCode(err), cli.ExitPartial)
	}
	if !strings.Contains(err.Error(), "-resume") {
		t.Errorf("interrupt error %v does not tell the user how to resume", err)
	}

	manifest := filepath.Join(t.TempDir(), "resume.json")
	got, _, err := runObs(t, interruptArgs("-resume", dir, "-metrics", manifest))
	if err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	if got != ref {
		t.Errorf("resumed stdout differs from uninterrupted run:\n--- reference ---\n%s\n--- resumed ---\n%s", ref, got)
	}
	mf := readManifest(t, manifest)
	if mf.Metrics.CellsResumed < 1 {
		t.Error("resume manifest records no resumed cells despite the partial store")
	}
	if mf.Metrics.CellsTotal != 25 {
		t.Errorf("cells_total = %d, want 25", mf.Metrics.CellsTotal)
	}
	if mf.Metrics.CellsResumed+mf.Metrics.CellsDone != mf.Metrics.CellsTotal {
		t.Errorf("resumed %d + recomputed %d != total %d: the manifest split must account for every cell",
			mf.Metrics.CellsResumed, mf.Metrics.CellsDone, mf.Metrics.CellsTotal)
	}
}

func readManifest(t *testing.T, path string) obs.Manifest {
	t.Helper()
	var mf obs.Manifest
	if err := json.Unmarshal(readFile(t, path), &mf); err != nil {
		t.Fatalf("manifest parse: %v", err)
	}
	if mf.Metrics == nil {
		t.Fatal("manifest has no metrics snapshot")
	}
	return mf
}
