package main

// Golden tests pin riexp's sweep and sensitivity output at the default
// test scale (TestScaleConfig: 90 users, 60-day horizon, seed 2018).
// Every quantity in these tables is deterministic — the cohort, the
// purchasing behaviors and the selling policies are all seeded — so
// the files assert byte-exact output. Regenerate after an intentional
// change with:
//
//	go test ./cmd/riexp -run TestGolden -update

import (
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs use the full test-scale cohort; skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
	}{
		{name: "sweep-k", args: []string{"-exp", "sweep-k"}},
		{name: "sweep-a", args: []string{"-exp", "sweep-a"}},
		{name: "sensitivity", args: []string{"-exp", "sensitivity"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(context.Background(), tc.args, &out, io.Discard); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got := out.String(); got != string(want) {
				t.Errorf("output differs from %s (run with -update after intentional changes)\n--- want\n%s--- got\n%s",
					path, want, got)
			}
		})
	}
}

// TestGoldenParallelismSmoke asserts the -parallelism flag is accepted
// and does not change results: the golden comparison above runs at the
// default worker count, so matching it at explicit worker counts pins
// the whole CLI path's determinism.
func TestGoldenParallelismSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs use the full test-scale cohort; skipped in -short mode")
	}
	var ref strings.Builder
	if err := run(context.Background(), []string{"-exp", "sweep-k", "-parallelism", "1"}, &ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, par := range []string{"2", "8"} {
		var out strings.Builder
		if err := run(context.Background(), []string{"-exp", "sweep-k", "-parallelism", par}, &out, io.Discard); err != nil {
			t.Fatalf("parallelism %s: %v", par, err)
		}
		if out.String() != ref.String() {
			t.Errorf("parallelism %s output differs from serial:\n%s", par, out.String())
		}
	}
}
