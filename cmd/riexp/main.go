// Command riexp regenerates the paper's tables and figures.
//
// Usage:
//
//	riexp -exp all                 # everything, test scale (fast)
//	riexp -exp table3 -scale full  # one experiment at the paper's scale
//	riexp -exp fig3a -pergroup 50  # override the cohort size
//
// Experiments: table1, table2, table3, fig2, fig3a, fig3b, fig3c,
// fig4a, fig4b, fig4c, bounds, sweep-k, sweep-a, sweep-fee,
// extensions, market, sensitivity, audit, resell, all.
//
// Exit codes: 0 on success, 1 on a run error, 2 on command-line
// misuse, 3 when the run produced usable partial results — a
// best-effort trace load skipped files, or a -spill run was
// interrupted with completed cells safe on disk. SIGINT/SIGTERM cancel
// the run gracefully: in-flight users drain, the error reports which
// grid cells completed, and with -spill those cells are already
// spilled, so `riexp -resume DIR` continues where the signal landed.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flag"

	"rimarket/internal/analysis"
	"rimarket/internal/cli"
	"rimarket/internal/coltrace"
	"rimarket/internal/core"
	"rimarket/internal/experiments"
	"rimarket/internal/gtrace"
	"rimarket/internal/obs"
	"rimarket/internal/pricing"
	"rimarket/internal/workload"
)

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "riexp:", err)
	}
	os.Exit(cli.ExitCode(err))
}

// params is the parsed riexp command line; the flag set collapses to
// this struct so the observed part of the run (runParsed) is separable
// from flag parsing and the obs session bracketing it.
type params struct {
	exp, scale         string
	perGroup           int
	seed               int64
	discount, fee      float64
	term, par          int
	batch              bool
	traceDir, traceErr string
	traceFmt           string
	traceBud           int
	jsonOut, csvOut    string
	spill, resume      string
}

func run(ctx context.Context, args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("riexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var p params
	fs.StringVar(&p.exp, "exp", "all", "experiment to run (table1|table2|table3|fig2|fig3a|fig3b|fig3c|fig4a|fig4b|fig4c|bounds|sweep-k|sweep-a|sweep-fee|extensions|market|sensitivity|audit|resell|all)")
	fs.StringVar(&p.scale, "scale", "test", "experiment scale: test (fast) or full (paper: 300 users, 1-year horizon)")
	fs.IntVar(&p.perGroup, "pergroup", 0, "override users per fluctuation group")
	fs.Int64Var(&p.seed, "seed", 0, "override cohort seed")
	fs.Float64Var(&p.discount, "a", 0, "override selling discount a in (0, 1]")
	fs.Float64Var(&p.fee, "fee", 0, "marketplace fee in [0, 1) applied to sale income")
	fs.IntVar(&p.term, "term", 1, "reservation term in years (1 or 3)")
	fs.IntVar(&p.par, "parallelism", 0, "worker goroutines evaluating users and grid cells; 0 means GOMAXPROCS (results are identical at any setting)")
	fs.BoolVar(&p.batch, "batch", false, "advance whole cohorts through the streaming batch engine (one struct-of-arrays pass per grid cell) instead of one engine run per user; results are bit-identical either way")
	fs.StringVar(&p.traceDir, "tracedir", "", "run on real trace files from this directory instead of the synthetic cohort (see -trace-format)")
	fs.StringVar(&p.traceFmt, "trace-format", "ec2-log", "format of -tracedir files: ec2-log (.csv/.csv.gz usage logs) or colt (columnar cohort stores, .colt)")
	fs.StringVar(&p.traceErr, "trace-errors", "strict", "error policy for -tracedir files: strict (fail on the first bad file) or best-effort (skip bad files, warn, exit 3)")
	fs.IntVar(&p.traceBud, "trace-error-budget", 0, "max files best-effort may skip before failing anyway; 0 means unlimited")
	fs.StringVar(&p.jsonOut, "json", "", "also write the full cohort result as JSON to this file")
	fs.StringVar(&p.csvOut, "csv", "", "also write per-user costs as CSV to this file")
	fs.StringVar(&p.spill, "spill", "", "stream each completed grid cell to a resumable on-disk store under this `directory` (one subdirectory per grid); an interrupted run exits 3 and can be continued with -resume")
	fs.StringVar(&p.resume, "resume", "", "resume an interrupted -spill run from this `directory`: valid spilled cells are loaded, only missing or invalid cells are recomputed, and new cells keep spilling there")
	var obsFlags cli.ObsFlags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return cli.Usage(err)
	}

	// The session brackets the whole parsed run: its metrics ride ctx
	// into the drivers, and Finish writes the manifest with the run's
	// outcome — including usage errors from bad flag values below.
	sess, err := obsFlags.Start("riexp", args, stderr)
	if err != nil {
		return err
	}
	return sess.Finish(spillOutcome(runParsed(sess.Context(ctx), p, sess, w, stderr), p))
}

// spillOutcome maps an interrupted spilling run onto the partial exit
// code: the cells completed before the signal are safe on disk, so the
// run produced usable — resumable — partial results, which is exactly
// what exit code 3 means. Runs without a spill store keep the plain
// cancellation error (exit 1): nothing was kept, nothing is resumable.
func spillOutcome(err error, p params) error {
	dir := p.spill
	if p.resume != "" {
		dir = p.resume
	}
	if err == nil || dir == "" {
		return err
	}
	var ce *experiments.CancelError
	if !errors.As(err, &ce) {
		return err
	}
	return fmt.Errorf("%w; completed cells are spilled under %s — continue with -resume %s: %w",
		err, dir, dir, cli.ErrPartial)
}

func runParsed(ctx context.Context, p params, sess *cli.ObsSession, w, stderr io.Writer) error {
	var loadOpts gtrace.LoadOptions
	switch p.traceErr {
	case "strict":
		loadOpts.Policy = gtrace.Strict
	case "best-effort":
		loadOpts.Policy = gtrace.BestEffort
	default:
		return cli.Usagef("unknown -trace-errors policy %q (want strict or best-effort)", p.traceErr)
	}
	if p.traceBud < 0 {
		return cli.Usagef("-trace-error-budget %d must be non-negative", p.traceBud)
	}
	loadOpts.FailureBudget = p.traceBud
	switch p.traceFmt {
	case "ec2-log", "colt":
	default:
		return cli.Usagef("unknown -trace-format %q (want ec2-log or colt)", p.traceFmt)
	}

	var cfg experiments.Config
	switch p.scale {
	case "test":
		cfg = experiments.TestScaleConfig()
	case "full":
		cfg = experiments.DefaultConfig()
	default:
		return cli.Usagef("unknown scale %q (want test or full)", p.scale)
	}
	switch p.term {
	case 1:
		// The default 1-year card is already in place.
	case 3:
		three, err := pricing.ThreeYearTerm(pricing.D2XLarge())
		if err != nil {
			return err
		}
		if p.scale == "test" {
			// Apply the same 6x shrink as TestScaleConfig, preserving
			// alpha and theta.
			three.PeriodHours /= 6
			three.Upfront /= 6
		}
		cfg.Instance = three
		cfg.Hours = three.PeriodHours
	default:
		return cli.Usagef("unsupported term %d (want 1 or 3)", p.term)
	}
	if p.perGroup > 0 {
		cfg.PerGroup = p.perGroup
	}
	if p.seed != 0 {
		cfg.Seed = p.seed
	}
	if p.discount != 0 {
		cfg.SellingDiscount = p.discount
	}
	cfg.MarketFee = p.fee
	cfg.Parallelism = p.par
	cfg.Batch = p.batch
	if p.spill != "" && p.resume != "" {
		return cli.Usagef("-spill and -resume are mutually exclusive: -resume already keeps spilling into its directory")
	}
	cfg.SpillDir = p.spill
	if p.resume != "" {
		cfg.SpillDir = p.resume
		cfg.Resume = true
	}

	// Record the resolved experiment parameters (not just the raw argv)
	// in the run manifest: this is the provenance a result file needs.
	if mf := sess.Manifest(); mf != nil {
		mf.Seed = cfg.Seed
		mf.Config = cfg
	}

	// Table I always reports the real (unscaled) price card — the test
	// scale shrinks the period and upfront proportionally for speed, but
	// the paper's pricing table is about the actual Jan-2018 sheet.
	table1Card, err := pricing.StandardLinuxUSEast().Lookup(cfg.Instance.Name)
	if err != nil {
		table1Card = cfg.Instance
	}
	if p.exp == "table1" {
		fmt.Fprint(w, experiments.Table1(table1Card))
		return nil
	}
	if p.exp == "bounds" {
		return printBounds(w, cfg)
	}
	if sweep, ok := map[string]bool{"sweep-k": true, "sweep-a": true, "sweep-fee": true}[p.exp]; ok && sweep {
		return printSweep(ctx, w, cfg, p.exp)
	}
	if p.exp == "resell" {
		rows, err := experiments.HourResellComparison(ctx, cfg, []float64{0.1, 0.25, 0.5, 0.75, 1.0})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderHourResell(rows))
		return nil
	}
	if p.exp == "audit" {
		var results []experiments.AuditResult
		for _, k := range []float64{core.Fraction3T4, core.FractionT2, core.FractionT4} {
			r, err := experiments.RatioAudit(ctx, cfg, k)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		fmt.Fprint(w, experiments.RenderAudit(results))
		return nil
	}
	if p.exp == "sensitivity" {
		grid, err := experiments.Sensitivity(ctx, cfg,
			[]float64{0.2, 0.4, 0.6, 0.8, 1.0},
			[]float64{0.125, 0.25, 0.5, 0.75, 0.875})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderSensitivity(grid))
		return nil
	}
	if p.exp == "market" {
		points, err := experiments.MarketSession(ctx, cfg, []float64{0.05, 0.2, 1, 5})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderMarket(points))
		return nil
	}
	if p.exp == "extensions" {
		rows, err := experiments.Extensions(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderExtensions(rows))
		return nil
	}

	var res *experiments.CohortResult
	var report *gtrace.LoadReport
	if p.traceDir != "" {
		var traces []workload.Trace
		var rep *gtrace.LoadReport
		var err error
		if p.traceFmt == "colt" {
			traces, rep, err = loadColtDir(p.traceDir, loadOpts)
		} else {
			traces, rep, err = gtrace.LoadEC2LogDirOpts(p.traceDir, loadOpts)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", p.traceDir, err)
		}
		report = rep
		if mf := sess.Manifest(); mf != nil {
			mf.Trace = traceIngest(report)
		}
		if report.Partial() {
			fmt.Fprintf(stderr, "riexp: warning: partial ingestion: %d of %d trace files skipped:\n",
				len(report.Skipped), len(report.Skipped)+len(report.Loaded))
			for _, sk := range report.Skipped {
				fmt.Fprintf(stderr, "riexp: warning:   %s: %v\n", sk.File, sk.Err)
			}
		}
		res, err = experiments.RunTraces(ctx, cfg, traces)
		if err != nil {
			return err
		}
	} else {
		var err error
		res, err = experiments.RunCohort(ctx, cfg)
		if err != nil {
			return err
		}
	}
	if err := exportResult(res, p.jsonOut, p.csvOut); err != nil {
		return err
	}
	if err := printExperiment(w, cfg, table1Card, res, p.exp); err != nil {
		return err
	}
	if report.Partial() {
		return fmt.Errorf("%d of %d trace files skipped: %w",
			len(report.Skipped), len(report.Skipped)+len(report.Loaded), cli.ErrPartial)
	}
	return nil
}

// loadColtDir reads every columnar cohort store (.colt) in a directory
// into traces, sorted by file name, under the same error policy as the
// EC2-log loader: Strict fails on the first undecodable store,
// BestEffort skips it (within the failure budget) and records it in
// the report. Duplicate user ids across stores fail under either
// policy, like gtrace's *DuplicateUserError — the cohort would be
// ambiguous, not merely smaller.
func loadColtDir(dir string, opts gtrace.LoadOptions) ([]workload.Trace, *gtrace.LoadReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), coltrace.Ext) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no %s cohort stores (convert traces with: ritrace convert)", coltrace.Ext)
	}
	sort.Strings(names)
	report := &gtrace.LoadReport{}
	var cohorts []*coltrace.Cohort
	for _, name := range names {
		cs, err := coltrace.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if opts.Policy == gtrace.BestEffort {
				report.Skipped = append(report.Skipped, gtrace.SkippedFile{File: name, Err: err})
				if opts.FailureBudget > 0 && len(report.Skipped) > opts.FailureBudget {
					return nil, report, fmt.Errorf("failure budget of %d exceeded: %w", opts.FailureBudget, err)
				}
				continue
			}
			return nil, report, err
		}
		cohorts = append(cohorts, cs...)
		report.Loaded = append(report.Loaded, name)
	}
	if len(cohorts) == 0 {
		return nil, report, fmt.Errorf("all %d cohort stores skipped", len(names))
	}
	traces, err := coltrace.MergeTraces(cohorts...)
	if err != nil {
		return nil, report, err
	}
	return traces, report, nil
}

// traceIngest converts a gtrace load report to the manifest's
// dependency-free mirror (obs deliberately does not import gtrace).
func traceIngest(report *gtrace.LoadReport) *obs.TraceIngest {
	if report == nil {
		return nil
	}
	ti := &obs.TraceIngest{Loaded: report.Loaded}
	for _, sk := range report.Skipped {
		ti.Skipped = append(ti.Skipped, obs.SkippedFile{File: sk.File, Err: sk.Err.Error()})
	}
	return ti
}

// printExperiment renders the cohort-backed experiments.
func printExperiment(w io.Writer, cfg experiments.Config, table1Card pricing.InstanceType, res *experiments.CohortResult, exp string) error {
	switch exp {
	case "table2":
		out, err := experiments.Table2(res)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
	case "table3":
		fmt.Fprint(w, experiments.RenderTable3(experiments.Table3(res)))
	case "fig2":
		fmt.Fprint(w, experiments.RenderFig2(experiments.Fig2(res)))
	case "fig3a", "fig3b", "fig3c":
		policy := map[string]string{
			"fig3a": experiments.PolicyA3T4,
			"fig3b": experiments.PolicyAT2,
			"fig3c": experiments.PolicyAT4,
		}[exp]
		sum, err := experiments.Fig3(res.Users, policy)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderFig3(sum))
	case "fig4a", "fig4b", "fig4c":
		idx := map[string]int{"fig4a": 0, "fig4b": 1, "fig4c": 2}[exp]
		fmt.Fprint(w, experiments.RenderFig4(experiments.Fig4(res)[idx]))
	case "all":
		fmt.Fprint(w, experiments.Table1(table1Card))
		fmt.Fprintln(w)
		fmt.Fprint(w, experiments.RenderFig2(experiments.Fig2(res)))
		fmt.Fprintln(w)
		for _, p := range experiments.SellingPolicies {
			sum, err := experiments.Fig3(res.Users, p)
			if err != nil {
				return err
			}
			fmt.Fprint(w, experiments.RenderFig3(sum))
			fmt.Fprintln(w)
		}
		for _, fg := range experiments.Fig4(res) {
			fmt.Fprint(w, experiments.RenderFig4(fg))
			fmt.Fprintln(w)
		}
		t2, err := experiments.Table2(res)
		if err != nil {
			return err
		}
		fmt.Fprint(w, t2)
		fmt.Fprintln(w)
		fmt.Fprint(w, experiments.RenderTable3(experiments.Table3(res)))
		fmt.Fprintln(w)
		if err := printBounds(w, cfg); err != nil {
			return err
		}
	default:
		return cli.Usagef("unknown experiment %q", exp)
	}
	return nil
}

// exportResult writes optional machine-readable dumps of the cohort.
func exportResult(res *experiments.CohortResult, jsonPath, csvPath string) error {
	write := func(path string, fn func(io.Writer, *experiments.CohortResult) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f, res); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(jsonPath, experiments.WriteJSON); err != nil {
		return err
	}
	return write(csvPath, experiments.WriteUsersCSV)
}

// printBounds reports the proven competitive ratios for the catalog
// and the experiment's instance, plus the adversarially achieved
// ratios and the randomized algorithm's expected ratio.
func printBounds(w io.Writer, cfg experiments.Config) error {
	fmt.Fprintf(w, "Competitive-ratio bounds (a = %.2f)\n", cfg.SellingDiscount)
	cat := pricing.StandardLinuxUSEast()
	stats := cat.Stats()
	fmt.Fprintf(w, "catalog: %d types, alpha in [%.3f, %.3f], theta in [%.2f, %.2f]\n",
		cat.Len(), stats.AlphaMin, stats.AlphaMax, stats.ThetaMin, stats.ThetaMax)
	for _, k := range []float64{core.Fraction3T4, core.FractionT2, core.FractionT4} {
		rep, err := analysis.AnalyzeCatalog(cat, k, cfg.SellingDiscount)
		if err != nil {
			return err
		}
		policy, err := core.NewThreshold(cfg.Instance, cfg.SellingDiscount, k)
		if err != nil {
			return err
		}
		worst, err := analysis.WorstMeasuredRatio(policy, cfg.SellingDiscount)
		if err != nil {
			return err
		}
		instBound, err := analysis.BoundForInstance(cfg.Instance, k, cfg.SellingDiscount)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s catalog worst bound %.4f (%s, %s); %s bound %.4f, adversarial measured %.4f\n",
			policy.Name(), rep.WorstBound.Ratio, rep.WorstInstance, rep.WorstBound.Regime,
			cfg.Instance.Name, instBound.Ratio, worst)
	}

	// The Section VII speculation, quantified: the randomized
	// algorithm's expected ratio on the fixed algorithm's own worst
	// cases, against an unrestricted OPT.
	randomized, err := core.NewRandomized(cfg.Instance, cfg.SellingDiscount, core.ExponentialFractions{}, cfg.Seed)
	if err != nil {
		return err
	}
	fixed, err := core.NewAT4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return err
	}
	sellMistake, keepMistake, err := analysis.AdversarialSchedules(fixed)
	if err != nil {
		return err
	}
	for _, c := range []struct {
		name  string
		sched []bool
	}{
		{name: "sell-mistake", sched: sellMistake},
		{name: "keep-mistake", sched: keepMistake},
	} {
		fixedRatio, err := analysis.FixedUnrestrictedRatio(c.sched, fixed)
		if err != nil {
			return err
		}
		randRatio, err := analysis.RandomizedExpectedRatio(c.sched, randomized, 128)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "randomized vs A_{T/4} on its %-12s worst case (unrestricted OPT): fixed %.4f, E[randomized] %.4f\n",
			c.name, fixedRatio, randRatio)
	}
	return nil
}

func printSweep(ctx context.Context, w io.Writer, cfg experiments.Config, which string) error {
	switch which {
	case "sweep-k":
		points, err := experiments.SweepFraction(ctx, cfg, []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderSweep("Ablation — checkpoint fraction k of A_{kT}", "k", points))
	case "sweep-a":
		points, err := experiments.SweepDiscount(ctx, cfg, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderSweep("Ablation — selling discount a of A_{3T/4}", "a", points))
	case "sweep-fee":
		points, err := experiments.SweepMarketFee(ctx, cfg, []float64{0, 0.06, 0.12, 0.24})
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderSweep("Ablation — marketplace fee under A_{3T/4}", "fee", points))
	}
	return nil
}
