package main

// Stdout-identity suite for -batch: the streaming batch engine must be
// invisible in the output — every experiment's rendering is
// byte-identical to the default per-user path at parallelism
// {1, 4, NumCPU} — and -trace-format colt must reproduce the CSV
// loader's output byte for byte from a converted store.

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"rimarket/internal/coltrace"
	"rimarket/internal/gtrace"
	"rimarket/internal/workload"
)

// batchParallelisms is the worker-count matrix the issue pins the
// stdout identity at.
func batchParallelisms() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

func runStdout(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(context.Background(), args, &out, io.Discard); err != nil {
		t.Fatalf("riexp %s: %v", strings.Join(args, " "), err)
	}
	return out.String()
}

func TestBatchStdoutIdentity(t *testing.T) {
	exps := []struct {
		name string
		args []string
	}{
		{name: "all", args: []string{"-exp", "all", "-pergroup", "4"}},
		{name: "sweep-k", args: []string{"-exp", "sweep-k", "-pergroup", "3"}},
		{name: "sweep-a", args: []string{"-exp", "sweep-a", "-pergroup", "3"}},
		{name: "sensitivity", args: []string{"-exp", "sensitivity", "-pergroup", "2"}},
		{name: "extensions", args: []string{"-exp", "extensions", "-pergroup", "3"}},
		{name: "market", args: []string{"-exp", "market", "-pergroup", "3"}},
		{name: "resell", args: []string{"-exp", "resell", "-pergroup", "3"}},
		{name: "audit", args: []string{"-exp", "audit", "-pergroup", "2"}},
	}
	for _, exp := range exps {
		t.Run(exp.name, func(t *testing.T) {
			ref := runStdout(t, exp.args...)
			for _, par := range batchParallelisms() {
				got := runStdout(t, append([]string{"-batch", "-parallelism", fmt.Sprint(par)}, exp.args...)...)
				if got != ref {
					t.Fatalf("-batch -parallelism %d output differs from the per-user path", par)
				}
			}
		})
	}
}

// writeTraceDirs builds a CSV trace directory and its converted .colt
// twin, returning both.
func writeTraceDirs(t *testing.T) (csvDir, coltDir string) {
	t.Helper()
	csvDir, coltDir = t.TempDir(), t.TempDir()
	stable := "# user: s1\nhour,instances\n"
	for h := 0; h < 300; h++ {
		stable += fmt.Sprintf("%d,5\n", h)
	}
	files := map[string]string{
		"stable.csv":   stable,
		"volatile.csv": "# user: v1\nhour,instances\n0,40\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(csvDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	traces, _, err := gtrace.LoadEC2LogDirOpts(csvDir, gtrace.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One cohort per trace: lengths differ, and the columnar format is
	// rectangular per cohort.
	for _, tr := range traces {
		c, err := coltrace.FromTraces([]workload.Trace{tr})
		if err != nil {
			t.Fatal(err)
		}
		if err := coltrace.WriteFile(filepath.Join(coltDir, tr.User+coltrace.Ext), c); err != nil {
			t.Fatal(err)
		}
	}
	return csvDir, coltDir
}

func TestTraceFormatColtStdoutIdentity(t *testing.T) {
	csvDir, coltDir := writeTraceDirs(t)
	ref := runStdout(t, "-exp", "table3", "-tracedir", csvDir)
	got := runStdout(t, "-exp", "table3", "-tracedir", coltDir, "-trace-format", "colt")
	if got != ref {
		t.Fatalf("-trace-format colt output differs from the CSV loader:\n--- csv\n%s\n--- colt\n%s", ref, got)
	}
	batch := runStdout(t, "-exp", "table3", "-tracedir", coltDir, "-trace-format", "colt", "-batch")
	if batch != ref {
		t.Fatal("-trace-format colt -batch output differs from the CSV loader")
	}
}

func TestTraceFormatErrors(t *testing.T) {
	var out strings.Builder
	// Unknown format is a usage error.
	err := run(context.Background(), []string{"-trace-format", "parquet"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "trace-format") {
		t.Fatalf("err = %v, want unknown -trace-format usage error", err)
	}
	// A directory without stores names the converter.
	err = run(context.Background(), []string{"-exp", "table3", "-tracedir", t.TempDir(), "-trace-format", "colt"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "ritrace convert") {
		t.Fatalf("err = %v, want missing-store error pointing at ritrace convert", err)
	}
	// A corrupt store fails strict loads with a classified coltrace error.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.colt"), []byte("RICTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(context.Background(), []string{"-exp", "table3", "-tracedir", dir, "-trace-format", "colt"}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "bad.colt") {
		t.Fatalf("err = %v, want error naming bad.colt", err)
	}
}
