package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSyntheticProfiles(t *testing.T) {
	for _, profile := range []string{"stable", "moderate", "volatile"} {
		t.Run(profile, func(t *testing.T) {
			var out strings.Builder
			args := []string{"-synthetic", profile, "-hours", "9000"}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"Keep-Reserved", "A_{3T/4}", "A_{T/2}", "A_{T/4}", "All-Selling"} {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

func TestRunBehaviors(t *testing.T) {
	for _, behavior := range []string{"all-reserved", "random", "wang-online", "wang-variant"} {
		t.Run(behavior, func(t *testing.T) {
			var out strings.Builder
			args := []string{"-synthetic", "stable", "-behavior", behavior, "-hours", "9000"}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), behavior) {
				t.Errorf("output missing behavior %q", behavior)
			}
		})
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var b strings.Builder
	b.WriteString("# user: filetest\nhour,instances\n")
	for h := 0; h < 400; h++ {
		fmt.Fprintf(&b, "%d,3\n", h)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-trace", path, "-hours", "9000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "filetest") {
		t.Errorf("output missing trace user:\n%s", out.String())
	}
}

func TestRunShortHorizonNote(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-synthetic", "stable", "-hours", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "earliest checkpoint") {
		t.Errorf("short-horizon note missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no input", args: nil},
		{name: "both inputs", args: []string{"-trace", "x", "-synthetic", "stable"}},
		{name: "unknown profile", args: []string{"-synthetic", "weird"}},
		{name: "unknown instance", args: []string{"-synthetic", "stable", "-instance", "z9.mega"}},
		{name: "unknown behavior", args: []string{"-synthetic", "stable", "-behavior", "yolo"}},
		{name: "missing trace file", args: []string{"-trace", "/nonexistent/x.csv"}},
		{name: "bad flag", args: []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tt.args, &out); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestRunExtraPolicies(t *testing.T) {
	for _, policy := range []string{"multi", "rand-exp", "rand-uniform", "0.6"} {
		t.Run(policy, func(t *testing.T) {
			var out strings.Builder
			args := []string{"-synthetic", "stable", "-hours", "9000", "-policy", policy}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			// Six rows now: the base five plus the extension.
			if got := strings.Count(out.String(), "\n"); got < 9 {
				t.Errorf("output too short for six policies:\n%s", out.String())
			}
		})
	}
	var out strings.Builder
	if err := run([]string{"-synthetic", "stable", "-policy", "bogus"}, &out); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-synthetic", "stable", "-policy", "1.5"}, &out); err == nil {
		t.Error("invalid fraction accepted")
	}
}

func TestRunDumpHours(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hours.csv")
	var out strings.Builder
	if err := run([]string{"-synthetic", "stable", "-hours", "9000", "-dump", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "hour,demand") {
		t.Errorf("dump header: %.40s", data)
	}
	if err := run([]string{"-synthetic", "stable", "-dump", "/nonexistent-dir/x.csv"}, &out); err == nil {
		t.Error("bad dump path accepted")
	}
}
