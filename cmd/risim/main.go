// Command risim simulates one user's instance costs over a demand
// trace: it plans reservations with a chosen purchasing behavior, then
// compares every selling policy's total cost.
//
// Usage:
//
//	risim -trace usage.csv                     # EC2-usage-log format
//	risim -synthetic volatile -hours 2000      # synthetic demand
//	risim -instance m4.xlarge -behavior wang-online -a 0.6
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"rimarket/internal/cli"
	"rimarket/internal/core"
	"rimarket/internal/gtrace"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/workload"
)

func main() {
	if err := runStderr(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "risim:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run keeps the historical test entry point; observability notices
// (pprof address) are discarded without a stderr.
func run(args []string, w io.Writer) error { return runStderr(args, w, io.Discard) }

func runStderr(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("risim", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "EC2-usage-log CSV to simulate (hour,instances)")
		synthetic = fs.String("synthetic", "", "generate demand instead: stable, moderate or volatile")
		hours     = fs.Int("hours", 0, "horizon in hours (default: one reservation period)")
		instance  = fs.String("instance", "d2.xlarge", "instance type from the built-in catalog")
		behavior  = fs.String("behavior", "all-reserved", "purchasing behavior: all-reserved, random, wang-online, wang-variant")
		discount  = fs.Float64("a", 0.8, "selling discount a in (0, 1]")
		extra     = fs.String("policy", "", "add one extension policy to the comparison: multi, rand-exp, rand-uniform, or a fraction like 0.6 for A_{0.6T}")
		dump      = fs.String("dump", "", "write the A_{3T/4} run's per-hour accounting (d,n,r,o,s) as CSV to this file")
		fee       = fs.Float64("fee", 0, "marketplace fee in [0, 1)")
		seed      = fs.Int64("seed", 1, "seed for synthetic demand and random behavior")
	)
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("risim", args, stderr, func(sess *cli.ObsSession) error {
		return simulateCmd(w, sess, *tracePath, *synthetic, *hours, *instance, *behavior, *discount, *extra, *dump, *fee, *seed)
	})
}

// simulateCmd is the parsed risim run, bracketed by the obs session.
func simulateCmd(w io.Writer, sess *cli.ObsSession, tracePath, synthetic string, hours int, instance, behavior string, discount float64, extra, dump string, fee float64, seed int64) error {
	if mf := sess.Manifest(); mf != nil {
		mf.Seed = seed
	}

	it, err := pricing.StandardLinuxUSEast().Lookup(instance)
	if err != nil {
		return err
	}
	horizon := hours
	if horizon <= 0 {
		horizon = it.PeriodHours
	}

	tr, err := loadTrace(tracePath, synthetic, horizon, seed)
	if err != nil {
		return err
	}
	if tr.Len() > horizon {
		tr = tr.Clip(horizon)
	}
	if tr.Len() < horizon {
		padded := make([]int, horizon)
		copy(padded, tr.Demand)
		tr.Demand = padded
	}

	planner, err := plannerFor(behavior, it, seed)
	if err != nil {
		return err
	}
	newRes, err := purchasing.PlanReservations(tr.Demand, it.PeriodHours, planner)
	if err != nil {
		return err
	}
	reserved := 0
	for _, n := range newRes {
		reserved += n
	}

	fmt.Fprintf(w, "user %s: %d hours, peak demand %d, sigma/mu %.2f (%v)\n",
		tr.User, tr.Len(), tr.MaxDemand(), tr.FluctuationRatio(), workload.Classify(tr))
	fmt.Fprintf(w, "instance %s: p=$%.4g/h, R=$%.4g, alpha=%.3f, T=%dh; behavior %s reserved %d\n",
		it.Name, it.OnDemandHourly, it.Upfront, it.Alpha(), it.PeriodHours, behavior, reserved)

	if horizon <= it.PeriodHours/4 {
		fmt.Fprintf(w, "note: horizon %d h is not past the earliest checkpoint (T/4 = %d h); no selling decision can occur — raise -hours or pick a shorter-period instance\n",
			horizon, it.PeriodHours/4)
	}

	policies, err := allPolicies(it, discount)
	if err != nil {
		return err
	}
	if extra != "" {
		np, err := extraPolicy(extra, it, discount, seed)
		if err != nil {
			return err
		}
		policies = append(policies, np)
	}
	cfg := simulate.Config{Instance: it, SellingDiscount: discount, MarketFee: fee, Metrics: sess.Engine()}
	var keepCost float64
	fmt.Fprintf(w, "\n%-18s %12s %12s %10s %8s\n", "policy", "total cost", "vs keep", "on-demand", "sold")
	for _, np := range policies {
		res, err := simulate.Run(tr.Demand, newRes, cfg, np.policy)
		if err != nil {
			return err
		}
		if dump != "" && np.name == "A_{3T/4}" {
			if err := dumpHours(dump, res); err != nil {
				return err
			}
		}
		total := res.Cost.Total()
		if np.name == "Keep-Reserved" {
			keepCost = total
		}
		rel := "-"
		if keepCost != 0 {
			rel = fmt.Sprintf("%.4f", total/keepCost)
		}
		fmt.Fprintf(w, "%-18s %12.2f %12s %10.2f %8d\n",
			np.name, total, rel, res.Cost.OnDemand, res.SoldCount())
	}
	return nil
}

type namedPolicy struct {
	name   string
	policy simulate.SellingPolicy
}

func allPolicies(it pricing.InstanceType, a float64) ([]namedPolicy, error) {
	a3, err := core.NewA3T4(it, a)
	if err != nil {
		return nil, err
	}
	a2, err := core.NewAT2(it, a)
	if err != nil {
		return nil, err
	}
	a4, err := core.NewAT4(it, a)
	if err != nil {
		return nil, err
	}
	s3, err := core.NewAllSelling(core.Fraction3T4)
	if err != nil {
		return nil, err
	}
	return []namedPolicy{
		{name: "Keep-Reserved", policy: core.KeepReserved{}},
		{name: "A_{3T/4}", policy: a3},
		{name: "A_{T/2}", policy: a2},
		{name: "A_{T/4}", policy: a4},
		{name: "All-Selling@3T/4", policy: s3},
	}, nil
}

// dumpHours writes a run's per-hour accounting to a CSV file.
func dumpHours(path string, res simulate.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteHoursCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// extraPolicy resolves the -policy flag into an extension policy.
func extraPolicy(name string, it pricing.InstanceType, a float64, seed int64) (namedPolicy, error) {
	switch name {
	case "multi":
		p, err := core.NewPaperMultiThreshold(it, a)
		if err != nil {
			return namedPolicy{}, err
		}
		return namedPolicy{name: "Multi{T/4,T/2,3T/4}", policy: p}, nil
	case "rand-exp":
		p, err := core.NewRandomized(it, a, core.ExponentialFractions{}, seed)
		if err != nil {
			return namedPolicy{}, err
		}
		return namedPolicy{name: "A_rand " + p.Dist().String(), policy: p}, nil
	case "rand-uniform":
		p, err := core.NewRandomized(it, a, core.UniformFractions{Lo: 0.2, Hi: 0.8}, seed)
		if err != nil {
			return namedPolicy{}, err
		}
		return namedPolicy{name: "A_rand " + p.Dist().String(), policy: p}, nil
	default:
		k, err := strconv.ParseFloat(name, 64)
		if err != nil {
			return namedPolicy{}, fmt.Errorf("unknown policy %q (want multi, rand-exp, rand-uniform, or a fraction)", name)
		}
		p, err := core.NewThreshold(it, a, k)
		if err != nil {
			return namedPolicy{}, err
		}
		return namedPolicy{name: p.Name(), policy: p}, nil
	}
}

func plannerFor(behavior string, it pricing.InstanceType, seed int64) (purchasing.Policy, error) {
	switch behavior {
	case "all-reserved":
		return purchasing.AllReserved{}, nil
	case "random":
		return purchasing.NewRandom(seed), nil
	case "wang-online":
		return purchasing.NewWangOnline(it), nil
	case "wang-variant":
		return purchasing.NewWangVariant(it), nil
	default:
		return nil, fmt.Errorf("unknown behavior %q", behavior)
	}
}

func loadTrace(path, synthetic string, hours int, seed int64) (workload.Trace, error) {
	switch {
	case path != "" && synthetic != "":
		return workload.Trace{}, fmt.Errorf("pass either -trace or -synthetic, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return workload.Trace{}, err
		}
		defer f.Close()
		return gtrace.ReadEC2LogAuto(f)
	case synthetic != "":
		rng := rand.New(rand.NewSource(seed))
		var gen workload.Generator
		switch synthetic {
		case "stable":
			gen = workload.StableGenerator{Base: 8, Jitter: 1.2, DiurnalAmp: 1.6}
		case "moderate":
			gen = workload.DiurnalGenerator{Peak: 16, Trough: 0, Noise: 2, WeekendDip: 0.2}
		case "volatile":
			gen = workload.BurstyGenerator{BurstHeight: 24, BurstRate: 0.004, MeanBurstLen: 6}
		default:
			return workload.Trace{}, fmt.Errorf("unknown synthetic profile %q", synthetic)
		}
		return gen.Generate("synthetic-"+synthetic, hours, rng), nil
	default:
		return workload.Trace{}, fmt.Errorf("pass -trace FILE or -synthetic PROFILE")
	}
}
