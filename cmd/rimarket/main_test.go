package main

import (
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "6", "-buyers", "3", "-seed", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"listing 6 reservations", "buyers arrive", "clearing summary", "fee"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-seed", "42"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "42"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunSalesAreOrderedByPrice(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sellers", "8", "-buyers", "8", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	// Every listed reservation eventually sells when buyers outnumber
	// listings; the clearing summary must say 8 sales.
	if !strings.Contains(out.String(), "8 sales") {
		t.Errorf("expected full clearing:\n%s", out.String())
	}
}

func TestRunSession(t *testing.T) {
	args := []string{"-session", "-per-group", "4", "-instances", "d2.xlarge,m4.large"}
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"emergent sale probability", "P(sale)", "d2.xlarge", "m4.large", "totals: buyers paid"} {
		if !strings.Contains(s, want) {
			t.Errorf("session output missing %q:\n%s", want, s)
		}
	}
	// The session is deterministic: batch mode and a parallelism bound
	// must reproduce it byte for byte.
	var again strings.Builder
	if err := run(append(args, "-batch", "-parallelism", "2"), &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != s {
		t.Errorf("batch session diverged:\n--- got ---\n%s--- want ---\n%s", again.String(), s)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown instance", args: []string{"-instance", "nope.large"}},
		{name: "bad fee", args: []string{"-fee", "1.5"}},
		{name: "bad flag", args: []string{"-zzz"}},
		{name: "session unknown type", args: []string{"-session", "-instances", "nope.large"}},
		{name: "session no types", args: []string{"-session", "-instances", ","}},
		{name: "session bad scale", args: []string{"-session", "-scale", "0.5"}},
		{name: "session bad discount", args: []string{"-session", "-discount", "1.5", "-per-group", "2"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tt.args, &out); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}
