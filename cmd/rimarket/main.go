// Command rimarket demonstrates the reserved-instance marketplace
// simulator: a population of sellers lists underutilized reservations
// at varying discounts and a stream of buyers clears the book, showing
// the lowest-upfront-first selling sequence and the fee flows of
// Section III.B.
//
// Usage:
//
//	rimarket -sellers 12 -buyers 5 -instance d2.xlarge -fee 0.12
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"rimarket/internal/cli"
	"rimarket/internal/marketplace"
	"rimarket/internal/pricing"
)

func main() {
	if err := runStderr(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rimarket:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run keeps the historical test entry point; observability notices
// (pprof address) are discarded without a stderr.
func run(args []string, w io.Writer) error { return runStderr(args, w, io.Discard) }

func runStderr(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("rimarket", flag.ContinueOnError)
	var (
		sellers  = fs.Int("sellers", 12, "number of sellers listing one reservation each")
		buyers   = fs.Int("buyers", 5, "number of buyers, each requesting a random count")
		instance = fs.String("instance", "d2.xlarge", "instance type from the built-in catalog")
		fee      = fs.Float64("fee", marketplace.AmazonFee, "marketplace service fee")
		seed     = fs.Int64("seed", 7, "seed for discounts and buyer demand")
	)
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("rimarket", args, stderr, func(sess *cli.ObsSession) error {
		if mf := sess.Manifest(); mf != nil {
			mf.Seed = *seed
		}
		return session(w, *sellers, *buyers, *instance, *fee, *seed)
	})
}

// session runs one marketplace demonstration.
func session(w io.Writer, sellers, buyers int, instance string, fee float64, seed int64) error {
	it, err := pricing.StandardLinuxUSEast().Lookup(instance)
	if err != nil {
		return err
	}
	m, err := marketplace.New(marketplace.WithFee(fee))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))

	fmt.Fprintf(w, "listing %d reservations of %s (R = $%.0f, T = %d h)\n",
		sellers, it.Name, it.Upfront, it.PeriodHours)
	for i := 0; i < sellers; i++ {
		seller := fmt.Sprintf("seller-%02d", i)
		remaining := it.PeriodHours / 4 * (1 + rng.Intn(3)) // T/4, T/2 or 3T/4 left
		discount := 0.5 + rng.Float64()*0.5
		id, err := m.ListAtDiscount(seller, it, remaining, discount)
		if err != nil {
			return err
		}
		cap := marketplace.ProratedCap(it, remaining)
		fmt.Fprintf(w, "  #%d %s: %4d h remaining, cap $%7.2f, ask $%7.2f (%.0f%% of cap)\n",
			id, seller, remaining, cap, discount*cap, discount*100)
	}

	fmt.Fprintf(w, "\nbuyers arrive (lowest ask sells first):\n")
	for i := 0; i < buyers; i++ {
		buyer := fmt.Sprintf("buyer-%02d", i)
		want := 1 + rng.Intn(3)
		sales, err := m.Buy(buyer, it.Name, want)
		if err != nil {
			fmt.Fprintf(w, "  %s wanted %d: %v\n", buyer, want, err)
			continue
		}
		for _, s := range sales {
			fmt.Fprintf(w, "  %s bought #%d from %s for $%.2f (seller nets $%.2f, fee $%.2f)\n",
				buyer, s.Listing.ID, s.Listing.Seller, s.PricePaid, s.SellerProceeds, s.Fee)
		}
	}

	fmt.Fprintf(w, "\nclearing summary: %d sales, marketplace fees $%.2f, %d listings still open\n",
		len(m.Sales()), m.FeesCollected(), len(m.OpenListings(it.Name)))
	return nil
}
