// Command rimarket demonstrates the reserved-instance marketplace
// simulator. Its default mode lists a population of sellers'
// underutilized reservations at varying discounts and clears the book
// with a stream of buyers, showing the lowest-upfront-first selling
// sequence and the fee flows of Section III.B.
//
// With -session it instead runs the two-sided cohort market session:
// sellers come from the paper's online selling algorithms, buyers from
// the cohort's planned reservations shopping the order book before
// buying fresh, and the output is the per-instance-type table of
// emergent sale probability and time-to-sale — the paper's exogenous
// alpha as a measured quantity.
//
// Usage:
//
//	rimarket -sellers 12 -buyers 5 -instance d2.xlarge -fee 0.12
//	rimarket -session -instances d2.xlarge,m4.large -discount 0.8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"rimarket/internal/cli"
	"rimarket/internal/experiments"
	"rimarket/internal/marketplace"
	"rimarket/internal/pricing"
)

func main() {
	if err := runStderr(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rimarket:", err)
		os.Exit(cli.ExitCode(err))
	}
}

// run keeps the historical test entry point; observability notices
// (pprof address) are discarded without a stderr.
func run(args []string, w io.Writer) error { return runStderr(args, w, io.Discard) }

func runStderr(args []string, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("rimarket", flag.ContinueOnError)
	var (
		sellers  = fs.Int("sellers", 12, "number of sellers listing one reservation each")
		buyers   = fs.Int("buyers", 5, "number of buyers, each requesting a random count")
		instance = fs.String("instance", "d2.xlarge", "instance type from the built-in catalog")
		fee      = fs.Float64("fee", marketplace.AmazonFee, "marketplace service fee")
		seed     = fs.Int64("seed", 7, "seed for discounts and buyer demand")

		runSession  = fs.Bool("session", false, "run the two-sided cohort market session instead of the book demo")
		instances   = fs.String("instances", "d2.xlarge,m4.large", "comma-separated catalog types traded in the -session book")
		discount    = fs.Float64("discount", 0.8, "-session sellers' listing discount a (fraction of the prorated cap)")
		perGroup    = fs.Int("per-group", 8, "-session cohort users per fluctuation group")
		scale       = fs.Float64("scale", 6, "-session period divisor: scales the 1-year term down for fast runs")
		parallelism = fs.Int("parallelism", 0, "-session worker bound for cohort planning (0 = GOMAXPROCS)")
		batch       = fs.Bool("batch", false, "-session uses the streaming batch engine for the seller runs")
	)
	var obsFlags cli.ObsFlags
	obsFlags.RegisterBasic(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	return obsFlags.Run("rimarket", args, stderr, func(sess *cli.ObsSession) error {
		if mf := sess.Manifest(); mf != nil {
			mf.Seed = *seed
		}
		if *runSession {
			return marketSession(sess.Context(context.Background()), w,
				*instances, *discount, *fee, *perGroup, *scale, *seed, *parallelism, *batch)
		}
		return session(w, *sellers, *buyers, *instance, *fee, *seed)
	})
}

// marketSession runs the two-sided cohort market session and prints
// its per-instance-type outcome table.
func marketSession(ctx context.Context, w io.Writer, instances string, discount, fee float64,
	perGroup int, scale float64, seed int64, parallelism int, batch bool) error {
	if scale < 1 {
		return fmt.Errorf("scale %v below 1", scale)
	}
	cat := pricing.StandardLinuxUSEast()
	var cards []pricing.InstanceType
	for _, name := range strings.Split(instances, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		it, err := cat.Lookup(name)
		if err != nil {
			return err
		}
		// Scale the term down with the upfront fee, keeping alpha and
		// theta — and hence every break-even — unchanged.
		it.PeriodHours = int(float64(it.PeriodHours) / scale)
		it.Upfront /= scale
		cards = append(cards, it)
	}
	if len(cards) == 0 {
		return fmt.Errorf("no instance types in %q", instances)
	}
	for _, it := range cards[1:] {
		if it.PeriodHours != cards[0].PeriodHours {
			return fmt.Errorf("instance periods differ (%s: %d h, %s: %d h); the session shares one horizon",
				cards[0].Name, cards[0].PeriodHours, it.Name, it.PeriodHours)
		}
	}
	sc := experiments.MarketScenario{
		Base: experiments.Config{
			Instance:        cards[0],
			SellingDiscount: discount,
			MarketFee:       fee,
			PerGroup:        perGroup,
			Hours:           cards[0].PeriodHours,
			Seed:            seed,
			Parallelism:     parallelism,
			Batch:           batch,
		},
		Cards: cards,
	}
	res, err := experiments.RunMarketScenario(ctx, sc)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, experiments.RenderMarketOutcomes(res))
	return err
}

// session runs one marketplace demonstration.
func session(w io.Writer, sellers, buyers int, instance string, fee float64, seed int64) error {
	it, err := pricing.StandardLinuxUSEast().Lookup(instance)
	if err != nil {
		return err
	}
	m, err := marketplace.New(marketplace.WithFee(fee))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))

	fmt.Fprintf(w, "listing %d reservations of %s (R = $%.0f, T = %d h)\n",
		sellers, it.Name, it.Upfront, it.PeriodHours)
	for i := 0; i < sellers; i++ {
		seller := fmt.Sprintf("seller-%02d", i)
		remaining := it.PeriodHours / 4 * (1 + rng.Intn(3)) // T/4, T/2 or 3T/4 left
		discount := 0.5 + rng.Float64()*0.5
		id, err := m.ListAtDiscount(seller, it, remaining, discount)
		if err != nil {
			return err
		}
		cap := marketplace.ProratedCap(it, remaining)
		fmt.Fprintf(w, "  #%d %s: %4d h remaining, cap $%7.2f, ask $%7.2f (%.0f%% of cap)\n",
			id, seller, remaining, cap, discount*cap, discount*100)
	}

	fmt.Fprintf(w, "\nbuyers arrive (lowest ask sells first):\n")
	for i := 0; i < buyers; i++ {
		buyer := fmt.Sprintf("buyer-%02d", i)
		want := 1 + rng.Intn(3)
		sales, err := m.Buy(buyer, it.Name, want)
		if err != nil {
			fmt.Fprintf(w, "  %s wanted %d: %v\n", buyer, want, err)
			continue
		}
		for _, s := range sales {
			fmt.Fprintf(w, "  %s bought #%d from %s for $%.2f (seller nets $%.2f, fee $%.2f)\n",
				buyer, s.Listing.ID, s.Listing.Seller, s.PricePaid, s.SellerProceeds, s.Fee)
		}
	}

	fmt.Fprintf(w, "\nclearing summary: %d sales, marketplace fees $%.2f, %d listings still open\n",
		len(m.Sales()), m.FeesCollected(), len(m.OpenListings(it.Name)))
	return nil
}
