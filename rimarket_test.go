package rimarket_test

import (
	"strings"
	"testing"

	"rimarket"
)

// TestQuickstartFlow exercises the doc-comment quick start end to end
// through the public facade only.
func TestQuickstartFlow(t *testing.T) {
	it := rimarket.TestScaleConfig().Instance
	policy, err := rimarket.NewA3T4(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !policy.ShouldSell(rimarket.Checkpoint{Worked: 0}) {
		t.Error("idle instance not sold")
	}

	demand := make([]int, it.PeriodHours)
	for i := 0; i < it.PeriodHours/10; i++ {
		demand[i] = 2
	}
	plan, err := rimarket.PlanReservations(demand, it.PeriodHours, rimarket.AllReserved{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rimarket.Run(demand, plan, rimarket.SimConfig{
		Instance:        it,
		SellingDiscount: 0.8,
	}, policy)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := rimarket.Run(demand, plan, rimarket.SimConfig{
		Instance:        it,
		SellingDiscount: 0.8,
	}, rimarket.KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	// Demand stops at 10% of the period (below break-even): selling must
	// beat keeping.
	if res.Cost.Total() >= keep.Cost.Total() {
		t.Errorf("selling cost %v >= keeping cost %v", res.Cost.Total(), keep.Cost.Total())
	}
}

func TestFacadeCatalogAndRatios(t *testing.T) {
	cat := rimarket.StandardCatalog()
	if cat.Len() < 30 {
		t.Fatalf("catalog = %d types", cat.Len())
	}
	d2 := rimarket.D2XLarge()
	b, err := rimarket.RatioA3T4(d2.Alpha(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Ratio <= 1 || b.Ratio >= 2 {
		t.Errorf("headline bound = %v", b.Ratio)
	}
}

func TestFacadeMarketplace(t *testing.T) {
	m, err := rimarket.NewMarket()
	if err != nil {
		t.Fatal(err)
	}
	it := rimarket.D2XLarge()
	if _, err := m.ListAtDiscount("seller", it, it.PeriodHours/2, 0.8); err != nil {
		t.Fatal(err)
	}
	sales, err := m.Buy("buyer", it.Name, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sales) != 1 || sales[0].SellerProceeds <= 0 {
		t.Errorf("sales = %+v", sales)
	}
}

func TestFacadeCohortPipeline(t *testing.T) {
	cfg := rimarket.TestScaleConfig()
	cfg.PerGroup = 4
	res, err := rimarket.RunCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	table := rimarket.RenderTable3(rimarket.Table3(res))
	if !strings.Contains(table, "Table III") {
		t.Errorf("table:\n%s", table)
	}
}

func TestFacadeWorkloadAndBounds(t *testing.T) {
	traces, err := rimarket.NewCohort(rimarket.CohortConfig{PerGroup: 2, Hours: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 6 {
		t.Fatalf("traces = %d", len(traces))
	}
	for _, tr := range traces {
		if g := rimarket.Classify(tr); g < rimarket.GroupStable || g > rimarket.GroupVolatile {
			t.Errorf("group = %v", g)
		}
	}

	it := rimarket.TestScaleConfig().Instance
	policy, err := rimarket.NewAT2(it, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	schedule := make([]bool, it.PeriodHours)
	measured, bound, err := rimarket.VerifyBound(schedule, policy, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if measured > bound.Ratio {
		t.Errorf("measured %v > bound %v", measured, bound.Ratio)
	}
}

func TestFacadePortfolio(t *testing.T) {
	it := rimarket.TestScaleConfig().Instance
	demand := make([]int, it.PeriodHours)
	demand[0] = 1
	res, err := rimarket.EvaluatePortfolio([]rimarket.PortfolioService{
		{Name: "svc", Instance: it, Demand: demand},
	}, rimarket.PortfolioConfig{
		SellingDiscount: 0.8,
		Policy: func(card rimarket.InstanceType) (rimarket.SellingPolicy, error) {
			return rimarket.NewA3T4(card, 0.8)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SavingsFraction() <= 0 {
		t.Errorf("savings = %v, want positive (idle instance sold)", res.SavingsFraction())
	}
	m, err := rimarket.NewMarket(rimarket.WithMarketFee(0.12))
	if err != nil {
		t.Fatal(err)
	}
	listed, err := rimarket.ListPortfolioOnMarket(m, res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if listed != 1 {
		t.Errorf("listed = %d, want 1", listed)
	}
}

func TestFacadeFutureWorkPolicies(t *testing.T) {
	it := rimarket.TestScaleConfig().Instance
	if _, err := rimarket.NewRandomized(it, 0.8, rimarket.DiscreteFractions{Fractions: []float64{0.5}}, 1); err != nil {
		t.Fatal(err)
	}
	multi, err := rimarket.NewPaperMultiThreshold(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(multi.CheckpointAges(it.PeriodHours)); got != 3 {
		t.Errorf("checkpoints = %d, want 3", got)
	}
	if _, err := rimarket.NewMultiThreshold(it, 0.8, []float64{0.3, 0.6}); err != nil {
		t.Fatal(err)
	}
	uni := rimarket.UniformFractions{Lo: 0.2, Hi: 0.8}
	if got := uni.Sample(0.5); got != 0.5 {
		t.Errorf("uniform sample = %v", got)
	}
}

func TestFacadeTraceLoading(t *testing.T) {
	if _, _, err := rimarket.LoadEC2LogDir("/nonexistent"); err == nil {
		t.Error("missing dir accepted")
	}
	cfg := rimarket.TestScaleConfig()
	traces := []rimarket.Trace{{User: "u", Demand: []int{1, 2, 3}}}
	res, err := rimarket.RunTraces(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != 1 {
		t.Errorf("users = %d", len(res.Users))
	}
}
