package rimarket_test

import (
	"fmt"

	"rimarket"
)

// ExampleThreshold_ShouldSell shows the paper's headline decision: at
// the 3T/4 checkpoint a d2.xlarge that served little demand is sold.
func ExampleThreshold_ShouldSell() {
	it := rimarket.D2XLarge()
	policy, err := rimarket.NewA3T4(it, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("break-even: %.0f working hours\n", policy.BreakEven())
	fmt.Println("idle instance  ->", decision(policy.ShouldSell(rimarket.Checkpoint{Worked: 100})))
	fmt.Println("busy instance  ->", decision(policy.ShouldSell(rimarket.Checkpoint{Worked: 5000})))
	// Output:
	// break-even: 1744 working hours
	// idle instance  -> sell
	// busy instance  -> keep
}

func decision(sell bool) string {
	if sell {
		return "sell"
	}
	return "keep"
}

// ExampleRun replays a small demand trace against one reservation.
func ExampleRun() {
	it := rimarket.InstanceType{
		Name:           "demo.large",
		OnDemandHourly: 1.0,
		Upfront:        20,
		ReservedHourly: 0.25,
		PeriodHours:    40,
	}
	// Busy for 5 hours, then the project ends.
	demand := make([]int, 40)
	for h := 0; h < 5; h++ {
		demand[h] = 1
	}
	plan := make([]int, 40)
	plan[0] = 1

	policy, err := rimarket.NewAT2(it, 0.8) // decide at T/2
	if err != nil {
		panic(err)
	}
	res, err := rimarket.Run(demand, plan, rimarket.SimConfig{
		Instance:        it,
		SellingDiscount: 0.8,
	}, policy)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sold %d instance(s), total cost $%.2f\n", res.SoldCount(), res.Cost.Total())
	// Output:
	// sold 1 instance(s), total cost $17.00
}

// ExampleOptimalSell computes the clairvoyant benchmark for a
// front-loaded usage schedule.
func ExampleOptimalSell() {
	it := rimarket.InstanceType{
		Name:           "demo.large",
		OnDemandHourly: 1.0,
		Upfront:        20,
		ReservedHourly: 0.25,
		PeriodHours:    40,
	}
	schedule := make([]bool, 40)
	for h := 0; h < 10; h++ {
		schedule[h] = true // busy for the first quarter only
	}
	dec, err := rimarket.OptimalSell(schedule, rimarket.OfflineParams{
		Instance:        it,
		SellingDiscount: 0.8,
		Billing:         rimarket.BillWhenUsed,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sell at age %d for $%.2f (keeping costs $%.2f)\n", dec.SellAge, dec.Cost, dec.KeepCost)
	// Output:
	// sell at age 10 for $10.50 (keeping costs $22.50)
}

// ExampleRatioA3T4 reproduces the abstract's competitive ratio for the
// d2.xlarge discount alpha = 0.25 and selling discount a = 0.8.
func ExampleRatioA3T4() {
	bound, err := rimarket.RatioA3T4(0.25, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("A_{3T/4} is %.2f-competitive (2 - alpha - a/4)\n", bound.Ratio)
	// Output:
	// A_{3T/4} is 1.55-competitive (2 - alpha - a/4)
}

// ExampleMarket walks the paper's Section III.B t2.nano sale.
func ExampleMarket() {
	cat := rimarket.StandardCatalog()
	t2nano, err := cat.Lookup("t2.nano")
	if err != nil {
		panic(err)
	}
	m, err := rimarket.NewMarket() // Amazon's 12% fee
	if err != nil {
		panic(err)
	}
	// Sell the remaining half of the cycle at 20% off the $9 cap.
	if _, err := m.ListAtDiscount("seller", t2nano, t2nano.PeriodHours/2, 0.8); err != nil {
		panic(err)
	}
	sales, err := m.Buy("buyer", "t2.nano", 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("buyer pays $%.2f, seller receives $%.3f\n",
		sales[0].PricePaid, sales[0].SellerProceeds)
	// Output:
	// buyer pays $7.20, seller receives $6.336
}

// ExamplePlanReservations shows the ICAC'13 online purchaser reserving
// once demand has paid a reservation's worth of on-demand fees.
func ExamplePlanReservations() {
	it := rimarket.InstanceType{
		Name:           "demo.large",
		OnDemandHourly: 1.0,
		Upfront:        10,
		ReservedHourly: 0.5,
		PeriodHours:    20,
	}
	demand := make([]int, 30)
	for h := range demand {
		demand[h] = 1
	}
	plan, err := rimarket.PlanReservations(demand, it.PeriodHours, rimarket.NewWangOnline(it))
	if err != nil {
		panic(err)
	}
	for hour, n := range plan {
		if n > 0 {
			fmt.Printf("reserve %d at hour %d (break-even reached)\n", n, hour)
		}
	}
	// Output:
	// reserve 1 at hour 19 (break-even reached)
}

// ExampleNewRandomized runs the paper's future-work direction: a
// randomized checkpoint drawn per instance.
func ExampleNewRandomized() {
	it := rimarket.TestScaleConfig().Instance
	policy, err := rimarket.NewRandomized(it, 0.8, rimarket.ExponentialFractions{}, 42)
	if err != nil {
		panic(err)
	}
	// Two idle instances reserved at different hours get different,
	// deterministic checkpoints.
	fmt.Println(policy.InstanceCheckpointAge(0, 1, it.PeriodHours) !=
		policy.InstanceCheckpointAge(100, 1, it.PeriodHours))
	// Output:
	// true
}
