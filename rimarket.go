// Package rimarket is a Go reproduction of "To Sell or Not To Sell:
// Trading Your Reserved Instances in Amazon EC2 Marketplace"
// (Yang, Pan, Wang, Liu — ICDCS 2018).
//
// It provides the paper's online reserved-instance selling algorithms
// A_{3T/4}, A_{T/2} and A_{T/4} (and their generalization A_{kT}), the
// per-instance optimal offline benchmark, the competitive-ratio theory,
// and every substrate the evaluation needs: an EC2 pricing catalog, an
// hourly cost-simulation engine, reservation-purchasing behaviors, a
// reserved-instance marketplace simulator, demand-trace generators and
// parsers, and drivers that regenerate each of the paper's tables and
// figures.
//
// # Quick start
//
// Decide whether to sell one reserved d2.xlarge whose first three
// quarters you have observed:
//
//	it := rimarket.D2XLarge()
//	policy, err := rimarket.NewA3T4(it, 0.8) // list at 80% of prorated upfront
//	if err != nil { ... }
//	sell := policy.ShouldSell(rimarket.Checkpoint{
//	    Worked: workedHours, // hours the instance served demand so far
//	})
//
// Replay a whole demand trace through purchasing and selling:
//
//	plan, err := rimarket.PlanReservations(demand, it.PeriodHours, rimarket.AllReserved{})
//	res, err := rimarket.Run(demand, plan, rimarket.SimConfig{
//	    Instance:        it,
//	    SellingDiscount: 0.8,
//	}, policy)
//	fmt.Println(res.Cost.Total())
//
// Regenerate the paper's evaluation:
//
//	cohort, err := rimarket.RunCohort(rimarket.TestScaleConfig())
//	fmt.Println(rimarket.RenderTable3(rimarket.Table3(cohort)))
package rimarket

import (
	"context"

	"rimarket/internal/analysis"
	"rimarket/internal/core"
	"rimarket/internal/experiments"
	"rimarket/internal/gtrace"
	"rimarket/internal/marketplace"
	"rimarket/internal/portfolio"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/workload"
)

// Pricing substrate.
type (
	// InstanceType is one EC2 instance type's 1-year price card.
	InstanceType = pricing.InstanceType
	// Catalog is a set of instance-type price cards.
	Catalog = pricing.Catalog
	// Plan is one purchasable configuration (payment option + fees).
	Plan = pricing.Plan
	// PaymentOption enumerates reserved payment options and on-demand.
	PaymentOption = pricing.PaymentOption
)

// Payment options (Table I).
const (
	NoUpfront      = pricing.NoUpfront
	PartialUpfront = pricing.PartialUpfront
	AllUpfront     = pricing.AllUpfront
	OnDemand       = pricing.OnDemand
)

// HoursPerYear is the hour count of a 1-year reservation term.
const HoursPerYear = pricing.HoursPerYear

// StandardCatalog returns the curated catalog of 1-year standard
// (Linux, US East) instance prices as of January 2018.
func StandardCatalog() *Catalog { return pricing.StandardLinuxUSEast() }

// D2XLarge returns the paper's running-example price card (Table I).
func D2XLarge() InstanceType { return pricing.D2XLarge() }

// NewCatalog builds a validated catalog from price cards.
func NewCatalog(types []InstanceType) (*Catalog, error) { return pricing.NewCatalog(types) }

// Selling algorithms (the paper's contribution).
type (
	// Threshold is the generalized online selling algorithm A_{kT}.
	Threshold = core.Threshold
	// AllSelling is the benchmark that sells every instance at its
	// checkpoint.
	AllSelling = core.AllSelling
	// KeepReserved is the benchmark that never sells.
	KeepReserved = core.KeepReserved
	// SellingPolicy decides whether to sell an instance at its checkpoint.
	SellingPolicy = simulate.SellingPolicy
	// Checkpoint is the information a selling policy sees.
	Checkpoint = simulate.Checkpoint
)

// Checkpoint fractions of the paper's three algorithms.
const (
	Fraction3T4 = core.Fraction3T4
	FractionT2  = core.FractionT2
	FractionT4  = core.FractionT4
)

// NewA3T4 builds the paper's primary algorithm A_{3T/4} (Algorithm 1).
func NewA3T4(it InstanceType, sellingDiscount float64) (Threshold, error) {
	return core.NewA3T4(it, sellingDiscount)
}

// NewAT2 builds A_{T/2} (Algorithm 2).
func NewAT2(it InstanceType, sellingDiscount float64) (Threshold, error) {
	return core.NewAT2(it, sellingDiscount)
}

// NewAT4 builds A_{T/4} (Section V).
func NewAT4(it InstanceType, sellingDiscount float64) (Threshold, error) {
	return core.NewAT4(it, sellingDiscount)
}

// NewThreshold builds the generalized A_{kT} for any checkpoint
// fraction in (0, 1).
func NewThreshold(it InstanceType, sellingDiscount, fraction float64) (Threshold, error) {
	return core.NewThreshold(it, sellingDiscount, fraction)
}

// NewAllSelling builds the All-Selling benchmark at a checkpoint
// fraction.
func NewAllSelling(fraction float64) (AllSelling, error) { return core.NewAllSelling(fraction) }

// Offline optimum (Section IV.A).
type (
	// OfflineParams configures the per-instance offline optimum.
	OfflineParams = core.OfflineParams
	// OfflineDecision is the offline optimum's outcome.
	OfflineDecision = core.OfflineDecision
	// Billing selects how reserved hours are charged in per-instance
	// accounting.
	Billing = core.Billing
)

// Billing modes.
const (
	BillWhenUsed    = core.BillWhenUsed
	BillWhileActive = core.BillWhileActive
)

// OptimalSell computes the optimal offline selling decision for one
// instance's busy schedule.
func OptimalSell(schedule []bool, params OfflineParams) (OfflineDecision, error) {
	return core.OptimalSell(schedule, params)
}

// Simulation engine (Eq. 1 cost model).
type (
	// SimConfig parameterizes one engine run.
	SimConfig = simulate.Config
	// SimResult is a completed engine run.
	SimResult = simulate.Result
	// CostBreakdown decomposes a run's cost.
	CostBreakdown = simulate.CostBreakdown
	// HourRecord is the per-hour accounting row (d_t, n_t, r_t, o_t, s_t).
	HourRecord = simulate.HourRecord
	// InstanceRecord is one reserved instance's lifecycle.
	InstanceRecord = simulate.InstanceRecord
)

// Run replays a demand series against a reservation series under a
// selling policy and returns the full cost accounting.
func Run(demand, newRes []int, cfg SimConfig, policy SellingPolicy) (SimResult, error) {
	return simulate.Run(demand, newRes, cfg, policy)
}

// Purchasing behaviors (Section VI.A).
type (
	// Purchaser decides how many instances to newly reserve each hour.
	Purchaser = purchasing.Policy
	// AllReserved reserves whenever demand exceeds active reservations.
	AllReserved = purchasing.AllReserved
	// WangOnline is the ICAC'13 online purchasing algorithm.
	WangOnline = purchasing.WangOnline
)

// NewRandomPurchaser returns the random reservation behavior.
func NewRandomPurchaser(seed int64) *purchasing.Random { return purchasing.NewRandom(seed) }

// NewWangOnline returns the ICAC'13 online purchasing policy.
func NewWangOnline(it InstanceType) *WangOnline { return purchasing.NewWangOnline(it) }

// NewWangVariant returns the ICAC'13 policy with a halved break-even.
func NewWangVariant(it InstanceType) *WangOnline { return purchasing.NewWangVariant(it) }

// PlanReservations replays demand through a purchasing policy and
// returns the per-hour new-reservation series.
func PlanReservations(demand []int, periodHours int, p Purchaser) ([]int, error) {
	return purchasing.PlanReservations(demand, periodHours, p)
}

// Competitive-ratio theory (Propositions 1-3).
type (
	// Bound is a proven competitive-ratio bound.
	Bound = analysis.Bound
	// Regime labels the binding proof case.
	Regime = analysis.Regime
)

// RatioA3T4 returns Proposition 1's bound (2 - alpha - a/4 at theta=4).
func RatioA3T4(alpha, a float64) (Bound, error) { return analysis.RatioA3T4(alpha, a) }

// RatioAT2 returns Propositions 2a/2b's bound.
func RatioAT2(alpha, a float64) (Bound, error) { return analysis.RatioAT2(alpha, a) }

// RatioAT4 returns Propositions 3a/3b's bound.
func RatioAT4(alpha, a float64) (Bound, error) { return analysis.RatioAT4(alpha, a) }

// RatioForFraction returns the generalized bound for A_{kT}.
func RatioForFraction(k, alpha, a, theta float64) (Bound, error) {
	return analysis.RatioForFraction(k, alpha, a, theta)
}

// VerifyBound checks a measured online/OPT ratio against the proven
// bound for one instance schedule.
func VerifyBound(schedule []bool, policy Threshold, a float64) (measured float64, bound Bound, err error) {
	return analysis.VerifyBound(schedule, policy, a)
}

// Marketplace simulator (Section III.B).
type (
	// Market is a deterministic reserved-instance marketplace.
	Market = marketplace.Market
	// Listing is one reservation offered for sale.
	Listing = marketplace.Listing
	// Sale records a completed purchase.
	Sale = marketplace.Sale
)

// AmazonFee is the marketplace service fee Amazon charges (12%).
const AmazonFee = marketplace.AmazonFee

// NewMarket returns an empty marketplace (fee defaults to AmazonFee).
func NewMarket(opts ...marketplace.Option) (*Market, error) { return marketplace.New(opts...) }

// WithMarketFee overrides the marketplace service fee.
func WithMarketFee(fee float64) marketplace.Option { return marketplace.WithFee(fee) }

// Workload substrate.
type (
	// Trace is a per-user hourly demand series.
	Trace = workload.Trace
	// Group is a demand-fluctuation band (Fig. 2).
	Group = workload.Group
	// CohortConfig describes a synthetic user population.
	CohortConfig = workload.CohortConfig
	// Generator produces synthetic demand traces.
	Generator = workload.Generator
)

// Fluctuation groups.
const (
	GroupStable   = workload.GroupStable
	GroupModerate = workload.GroupModerate
	GroupVolatile = workload.GroupVolatile
)

// NewCohort synthesizes the experiment population (PerGroup users in
// each fluctuation band).
func NewCohort(cfg CohortConfig) ([]Trace, error) { return workload.NewCohort(cfg) }

// Classify returns a trace's fluctuation group.
func Classify(tr Trace) Group { return workload.Classify(tr) }

// Trace formats (Section VI.A's datasets).
type (
	// TaskEvent is one row of a Google cluster-usage task-events table.
	TaskEvent = gtrace.TaskEvent
	// InstanceCapacity converts resource requests to instance counts.
	InstanceCapacity = gtrace.InstanceCapacity
	// LoadReport is the structured outcome of a trace-directory load.
	LoadReport = gtrace.LoadReport
)

// AggregateByUser converts task events to per-user demand traces.
func AggregateByUser(events []TaskEvent, cap InstanceCapacity) ([]Trace, error) {
	return gtrace.AggregateByUser(events, cap)
}

// Portfolio management (multi-service adoption layer).
type (
	// Portfolio is a multi-service reservation portfolio evaluation.
	Portfolio = portfolio.Result
	// PortfolioService is one workload in a portfolio.
	PortfolioService = portfolio.Service
	// PortfolioConfig parameterizes a portfolio evaluation.
	PortfolioConfig = portfolio.Config
	// PortfolioServiceResult is one service's evaluation.
	PortfolioServiceResult = portfolio.ServiceResult
)

// EvaluatePortfolio plans reservations and runs the selling policy for
// every service in the portfolio.
func EvaluatePortfolio(services []PortfolioService, cfg PortfolioConfig) (Portfolio, error) {
	return portfolio.Evaluate(services, cfg)
}

// ListPortfolioOnMarket lists every sold reservation's remaining
// period on the market and returns the listing count.
func ListPortfolioOnMarket(m *Market, res Portfolio, discount float64) (int, error) {
	return portfolio.ListOnMarket(m, res, discount)
}

// Future-work extensions (Section VII).
type (
	// Randomized is the randomized online selling algorithm A_{rand}.
	Randomized = core.Randomized
	// MultiThreshold revisits the decision at several checkpoints.
	MultiThreshold = core.MultiThreshold
	// FractionDist draws per-instance checkpoint fractions.
	FractionDist = core.FractionDist
	// UniformFractions draws uniformly from [Lo, Hi].
	UniformFractions = core.UniformFractions
	// ExponentialFractions is the ski-rental e^x/(e-1) density.
	ExponentialFractions = core.ExponentialFractions
	// DiscreteFractions draws from a fixed set of fractions.
	DiscreteFractions = core.DiscreteFractions
)

// NewRandomized builds the randomized selling policy (the paper's
// stated future work), deterministic in the seed.
func NewRandomized(it InstanceType, sellingDiscount float64, dist FractionDist, seed int64) (Randomized, error) {
	return core.NewRandomized(it, sellingDiscount, dist, seed)
}

// NewMultiThreshold revisits the sell-or-keep decision at several
// checkpoint fractions.
func NewMultiThreshold(it InstanceType, sellingDiscount float64, fractions []float64) (MultiThreshold, error) {
	return core.NewMultiThreshold(it, sellingDiscount, fractions)
}

// NewPaperMultiThreshold builds MultiThreshold over T/4, T/2, 3T/4.
func NewPaperMultiThreshold(it InstanceType, sellingDiscount float64) (MultiThreshold, error) {
	return core.NewPaperMultiThreshold(it, sellingDiscount)
}

// Experiments (Section VI).
type (
	// ExperimentConfig parameterizes a cohort experiment.
	ExperimentConfig = experiments.Config
	// CohortResult is a completed cohort experiment.
	CohortResult = experiments.CohortResult
	// UserResult is one user's outcome across selling policies.
	UserResult = experiments.UserResult
	// Fig3Summary is one Fig. 3 panel.
	Fig3Summary = experiments.Fig3Summary
	// Table3Row is one Table III row.
	Table3Row = experiments.Table3Row
)

// DefaultConfig returns the paper's full-scale experiment settings.
func DefaultConfig() ExperimentConfig { return experiments.DefaultConfig() }

// TestScaleConfig returns the fast scaled-down experiment settings.
func TestScaleConfig() ExperimentConfig { return experiments.TestScaleConfig() }

// RunCohort executes the full evaluation pipeline. It is the
// non-cancellable convenience form; use RunCohortContext to wire in
// SIGINT/SIGTERM or timeouts.
func RunCohort(cfg ExperimentConfig) (*CohortResult, error) {
	//rilint:allow ctxrule -- documented back-compat facade for pre-PR3 callers; the cancellable form is RunCohortContext.
	return experiments.RunCohort(context.Background(), cfg)
}

// RunCohortContext is RunCohort with cancellation: cancelling ctx
// drains in-flight engine runs and returns an error satisfying
// errors.Is(err, context.Canceled).
func RunCohortContext(ctx context.Context, cfg ExperimentConfig) (*CohortResult, error) {
	return experiments.RunCohort(ctx, cfg)
}

// RunTraces executes the evaluation pipeline on externally supplied
// traces (e.g. real usage logs loaded with LoadEC2LogDir).
func RunTraces(cfg ExperimentConfig, traces []Trace) (*CohortResult, error) {
	//rilint:allow ctxrule -- documented back-compat facade for pre-PR3 callers; the cancellable form is RunTracesContext.
	return experiments.RunTraces(context.Background(), cfg, traces)
}

// RunTracesContext is RunTraces with cancellation.
func RunTracesContext(ctx context.Context, cfg ExperimentConfig, traces []Trace) (*CohortResult, error) {
	return experiments.RunTraces(ctx, cfg, traces)
}

// LoadEC2LogDir reads every EC2-usage-log file (.csv/.csv.gz) in a
// directory into demand traces. The report names the files that loaded
// cleanly and is returned even alongside an error.
func LoadEC2LogDir(dir string) ([]Trace, *LoadReport, error) { return gtrace.LoadEC2LogDir(dir) }

// Table3 computes the paper's Table III rows.
func Table3(r *CohortResult) []Table3Row { return experiments.Table3(r) }

// RenderTable3 renders Table III as text.
func RenderTable3(rows []Table3Row) string { return experiments.RenderTable3(rows) }
