package linttest

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestLintScriptExitCodes runs scripts/lint_test.sh, which drives
// scripts/lint.sh against a stubbed toolchain: a failing rilint must
// fail the pass (exit 1, named in the summary) without aborting the
// remaining checks, and a clean pass with optional tools missing must
// skip them with a warning and exit 0.
func TestLintScriptExitCodes(t *testing.T) {
	bash, err := exec.LookPath("bash")
	if err != nil {
		t.Skip("bash not available")
	}
	script, err := filepath.Abs(filepath.Join("..", "lint_test.sh"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bash, script).CombinedOutput()
	if err != nil {
		t.Fatalf("lint_test.sh: %v\n%s", err, out)
	}
}
