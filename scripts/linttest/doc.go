// Package linttest wraps scripts/lint_test.sh in a Go test, so the
// lint pass's exit-code contract — a failing check fails the whole
// pass with a summary naming it; missing optional tools skip with a
// warning — is pinned by the ordinary `go test ./...` tier, without
// requiring bats or any other shell test framework.
package linttest
