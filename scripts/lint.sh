#!/usr/bin/env bash
# Run the repo's full lint pass locally with the same checks and
# flags as the CI `lint` job (.github/workflows/ci.yml):
#
#   gofmt       fail on any unformatted file (including testdata fixtures)
#   bash -n     syntax-check every script in scripts/
#   go vet      the stock analyzers
#   rilint      the repo's custom invariant suite (DESIGN.md §4.3, §4.8)
#   staticcheck honnef.co staticcheck, if installed
#   govulncheck known-vulnerability scan, if installed
#
# staticcheck and govulncheck are optional locally: this environment
# may not have them installed and the repo vendors no tools. A missing
# optional tool skips with a warning; CI installs the pinned versions
# below, so a clean CI run is the source of truth for those two.
# Install them locally with:
#
#   go install honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION
#   go install golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION
#
# Every check runs even after one fails; the script records each
# failure, prints a summary naming the failed checks, and exits 1 iff
# any check failed. (A plain `set -e` script aborts at the first
# failing command with no summary and, worse, lets a failure inside a
# $(...) capture slip through — scripts/lint_test.sh pins the exit-code
# contract.)
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned tool versions; keep in sync with .github/workflows/ci.yml.
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2023.1.7}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.3}"

failed=()

# run_check <name> <command...> runs one check, recording (not
# aborting on) failure so later checks still run and the summary can
# name every offender. The `|| status=$?` capture keeps `set -e` from
# short-circuiting the script on a failing check.
run_check() {
	local name="$1"
	shift
	echo "==> $name"
	local status=0
	"$@" || status=$?
	if [[ "$status" -ne 0 ]]; then
		echo "lint: $name failed (exit $status)" >&2
		failed+=("$name")
	fi
}

check_gofmt() {
	local unformatted
	unformatted="$(gofmt -l .)" || return 1
	if [[ -n "$unformatted" ]]; then
		echo "gofmt: needs formatting:" >&2
		echo "$unformatted" >&2
		return 1
	fi
}

check_scripts() {
	local sh ok=0
	for sh in scripts/*.sh; do
		bash -n "$sh" || ok=1
	done
	return "$ok"
}

check_staticcheck() {
	if ! command -v staticcheck >/dev/null 2>&1; then
		echo "staticcheck not installed; skipping (CI pins $STATICCHECK_VERSION)" >&2
		return 0
	fi
	staticcheck ./...
}

check_govulncheck() {
	if ! command -v govulncheck >/dev/null 2>&1; then
		echo "govulncheck not installed; skipping (CI pins $GOVULNCHECK_VERSION)" >&2
		return 0
	fi
	govulncheck ./...
}

run_check gofmt check_gofmt
run_check "bash -n scripts/*.sh" check_scripts
run_check "go vet" go vet ./...
run_check rilint go run ./cmd/rilint ./...
run_check staticcheck check_staticcheck
run_check govulncheck check_govulncheck

if [[ "${#failed[@]}" -ne 0 ]]; then
	echo "lint: FAILED: ${failed[*]}" >&2
	exit 1
fi
echo "lint: ok"
