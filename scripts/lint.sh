#!/usr/bin/env bash
# Run the repo's full lint pass locally with the same checks and
# flags as the CI `lint` job (.github/workflows/ci.yml):
#
#   gofmt       fail on any unformatted file (including testdata fixtures)
#   go vet      the stock analyzers
#   rilint      the repo's custom invariant suite (DESIGN.md §4.3)
#   staticcheck honnef.co staticcheck, if installed
#   govulncheck known-vulnerability scan, if installed
#
# staticcheck and govulncheck are optional locally: this environment
# may not have them installed and the repo vendors no tools. CI
# installs the pinned versions below, so a clean CI run is the source
# of truth for those two. Install them locally with:
#
#   go install honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION
#   go install golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned tool versions; keep in sync with .github/workflows/ci.yml.
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2023.1.7}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.3}"

fail=0

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	fail=1
fi

echo "==> bash -n scripts/*.sh"
for sh in scripts/*.sh; do
	bash -n "$sh" || fail=1
done

echo "==> go vet ./..."
go vet ./... || fail=1

echo "==> rilint ./..."
go run ./cmd/rilint ./... || fail=1

echo "==> staticcheck ./..."
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./... || fail=1
else
	echo "staticcheck not installed; skipping (CI pins $STATICCHECK_VERSION)" >&2
fi

echo "==> govulncheck ./..."
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./... || fail=1
else
	echo "govulncheck not installed; skipping (CI pins $GOVULNCHECK_VERSION)" >&2
fi

if [[ "$fail" -ne 0 ]]; then
	echo "lint: FAILED" >&2
	exit 1
fi
echo "lint: ok"
