#!/usr/bin/env bash
# Refresh the committed benchmark baseline (BENCH_6.json).
#
# Runs the BenchmarkEngineRun matrix (terms x checkpoint density x
# schedule recording), BenchmarkObsOverhead (the engine hot path with
# the obs hook off and on), and BenchmarkGridSkewed (the sharded
# worker pool on uniform vs heavy-tailed grids, stealing on and off)
# with -benchmem, takes the minimum over COUNT repeats, and writes the
# baseline JSON that CI's benchgate step enforces — 20% regression
# tolerance on time, and exactly-equal allocs/op for the ObsOverhead
# pair, pinning the hook's zero-alloc contract. The GridSkewed rows
# hold the scheduler's wall time on skewed grids, so a work-stealing
# regression shows up as a benchgate failure, not a slow sweep. Run it
# on an idle machine after any change to internal/simulate,
# internal/obs, or the internal/experiments pool, and commit the
# result:
#
#   scripts/bench.sh             # writes BENCH_6.json
#   COUNT=10 scripts/bench.sh    # more repeats, tighter minima
#   OUT=/tmp/b.json scripts/bench.sh   # write elsewhere for comparison
#
# The benchgate helper is ordinary module code (rimarket/scripts/benchgate):
# it is built by `go build ./...`, linted by `scripts/lint.sh` and the
# rilint suite, and maps its exit codes through internal/cli (0 within
# tolerance / baseline written, 1 regression or bad input, 2 usage).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_6.json}"

go test -run '^$' -bench '^(BenchmarkEngineRun|BenchmarkObsOverhead|BenchmarkGridSkewed)$' -benchmem -count "$COUNT" . ./internal/experiments |
	tee /dev/stderr |
	go run ./scripts/benchgate -update -baseline "$OUT"
