#!/usr/bin/env bash
# Refresh the committed engine benchmark baseline (BENCH_2.json).
#
# Runs the BenchmarkEngineRun matrix (terms x checkpoint density x
# schedule recording) with -benchmem, takes the minimum over COUNT
# repeats, and writes the baseline JSON that CI's benchgate step
# enforces with a 20% regression tolerance. Run it on an idle machine
# after any change to internal/simulate, and commit the result:
#
#   scripts/bench.sh             # writes BENCH_2.json
#   COUNT=10 scripts/bench.sh    # more repeats, tighter minima
#   OUT=/tmp/b.json scripts/bench.sh   # write elsewhere for comparison
#
# The benchgate helper is ordinary module code (rimarket/scripts/benchgate):
# it is built by `go build ./...`, linted by `scripts/lint.sh` and the
# rilint suite, and maps its exit codes through internal/cli (0 within
# tolerance / baseline written, 1 regression or bad input, 2 usage).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_2.json}"

go test -run '^$' -bench '^BenchmarkEngineRun$' -benchmem -count "$COUNT" . |
	tee /dev/stderr |
	go run ./scripts/benchgate -update -baseline "$OUT"
