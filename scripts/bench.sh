#!/usr/bin/env bash
# Refresh the committed benchmark baselines (BENCH_8.json and
# BENCH_10.json).
#
# Runs the BenchmarkEngineRun matrix (terms x checkpoint density x
# schedule recording), BenchmarkObsOverhead (the engine hot path with
# the obs hook off and on), BenchmarkGridSkewed (the sharded worker
# pool on uniform vs heavy-tailed grids, stealing on and off),
# BenchmarkRidServe (the rid daemon's serving hot path: sequential
# cost, p99 tail latency published as that mode's ns/op, and parallel
# throughput), and BenchmarkMillionUsers (a 100k-user aliased cohort
# through one 1-year cell of the streaming batch engine) with
# -benchmem, takes the minimum over repeats, and writes the baseline
# JSON that CI's benchgate step enforces — 20% regression tolerance on
# time, and exactly-equal allocs/op for the ObsOverhead pair, pinning
# the hook's zero-alloc contract. The GridSkewed rows hold the
# scheduler's wall time on skewed grids, so a work-stealing regression
# shows up as a benchgate failure, not a slow sweep; the MillionUsers
# row holds the batch engine's cohort throughput, so losing the
# struct-of-arrays layout (or accidentally falling back to one Run per
# user) costs integer factors and trips the gate; the RidServe rows
# hold the serving envelope's cost, so a lock or allocation slipped
# into the lock-free evaluation path fails the gate rather than
# surfacing as production tail latency. One MillionUsers op is tens of
# engine-seconds of simulated time, so it repeats MU_COUNT times
# (default 2) instead of COUNT. Run on an idle machine after any
# change to internal/simulate, internal/obs, internal/ridserver, or
# the internal/experiments pool, and commit the result:
#
#   scripts/bench.sh             # writes BENCH_8.json and BENCH_10.json
#   COUNT=10 scripts/bench.sh    # more repeats, tighter minima
#   OUT=/tmp/b.json scripts/bench.sh   # write elsewhere for comparison
#
# BENCH_10.json holds BenchmarkMarketMatch: order-book matching
# throughput with one million (and one hundred thousand) listings open
# concurrently, each buy-and-relist round trip timed at a fixed op
# count so the book's depth — and the allocs/op, gated exactly in CI —
# stay deterministic. Losing the per-type heap or the absolute-hour
# event buckets costs integer factors here and trips the gate.
#
# The benchgate helper is ordinary module code (rimarket/scripts/benchgate):
# it is built by `go build ./...`, linted by `scripts/lint.sh` and the
# rilint suite, and maps its exit codes through internal/cli (0 within
# tolerance / baseline written, 1 regression or bad input, 2 usage).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
MU_COUNT="${MU_COUNT:-2}"
OUT="${OUT:-BENCH_8.json}"
MARKET_OUT="${MARKET_OUT:-BENCH_10.json}"

{
	go test -run '^$' -bench '^(BenchmarkEngineRun|BenchmarkObsOverhead|BenchmarkGridSkewed)$' -benchmem -count "$COUNT" . ./internal/experiments
	go test -run '^$' -bench '^BenchmarkRidServe$' -benchmem -count "$COUNT" ./internal/ridserver
	go test -run '^$' -bench '^BenchmarkMillionUsers$' -benchmem -count "$MU_COUNT" -timeout 30m .
} |
	tee /dev/stderr |
	go run ./scripts/benchgate -update -baseline "$OUT"

go test -run '^$' -bench '^BenchmarkMarketMatch$' -benchmem -benchtime=50000x -count "$COUNT" ./internal/marketplace |
	tee /dev/stderr |
	go run ./scripts/benchgate -update -baseline "$MARKET_OUT" \
		-note "Marketplace order-book matching baseline; refresh with scripts/bench.sh (see EXPERIMENTS.md)."
