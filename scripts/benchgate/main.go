// Command benchgate parses `go test -bench` output on stdin and either
// records a benchmark baseline JSON (-update) or enforces one: with an
// existing baseline it exits non-zero when any benchmark regresses by
// more than the tolerance in time/op or allocs/op.
//
// Record/refresh the committed baseline (scripts/bench.sh does this):
//
//	go test -run '^$' -bench '^(BenchmarkEngineRun|BenchmarkObsOverhead)$' -benchmem -count 5 . |
//	    go run ./scripts/benchgate -update -baseline BENCH_5.json
//
// Enforce it (the CI regression gate):
//
//	go test -run '^$' -bench '^(BenchmarkEngineRun|BenchmarkObsOverhead)$' -benchmem -count 3 . |
//	    go run ./scripts/benchgate -baseline BENCH_5.json -exact-allocs '^BenchmarkObsOverhead'
//
// With -count > 1 the minimum over repeats is used on both sides,
// which is the standard way to damp scheduler noise.
//
// Exit codes follow the shared internal/cli vocabulary: 0 when the
// run is within tolerance (or the baseline was written), 1 on a
// regression or on bad input (unreadable baseline, no benchmark lines
// on stdin), 2 on command-line misuse.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"rimarket/internal/cli"
)

// Entry is one benchmark's recorded costs. GOMAXPROCS suffixes are
// stripped from names so baselines transfer across machines.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_*.json document.
type Baseline struct {
	Note       string  `json:"note"`
	Tolerance  float64 `json:"tolerance"`
	Benchmarks []Entry `json:"benchmarks"`
}

// errRegression marks a benchmark run beyond tolerance; it maps to
// the plain failure exit code.
var errRegression = errors.New("regression beyond tolerance")

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output and returns per-benchmark
// minima over repeated runs.
func parseBench(r io.Reader) ([]Entry, error) {
	byName := map[string]*Entry{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		e := Entry{Name: name, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if e.NsPerOp < 0 {
			continue
		}
		prev, ok := byName[name]
		if !ok {
			cp := e
			byName[name] = &cp
			order = append(order, name)
			continue
		}
		if e.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = e.NsPerOp
		}
		if e.BytesPerOp >= 0 && (prev.BytesPerOp < 0 || e.BytesPerOp < prev.BytesPerOp) {
			prev.BytesPerOp = e.BytesPerOp
		}
		if e.AllocsPerOp >= 0 && (prev.AllocsPerOp < 0 || e.AllocsPerOp < prev.AllocsPerOp) {
			prev.AllocsPerOp = e.AllocsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: reading bench output: %w", err)
	}
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
	}
	os.Exit(cli.ExitCode(err))
}

func run(args []string, stdin io.Reader, w, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_5.json", "baseline JSON path")
	update := fs.Bool("update", false, "write the parsed results as the new baseline instead of checking")
	tolerance := fs.Float64("tolerance", 0.20, "allowed fractional regression in allocs/op (and time/op unless -time-tolerance is set)")
	timeTolerance := fs.Float64("time-tolerance", -1,
		"allowed fractional regression in time/op; defaults to -tolerance. Allocs are deterministic, wall time is not: on shared CI runners give time extra headroom — it still catches algorithmic regressions, which cost integer factors, not percents")
	note := fs.String("note", "Engine benchmark baseline; refresh with scripts/bench.sh (see EXPERIMENTS.md).",
		"note stored in the baseline on -update")
	exactAllocs := fs.String("exact-allocs", "",
		"regexp of benchmark names whose allocs/op must equal the baseline exactly, no tolerance — for allocation-free invariants (the obs hook), where even +1 alloc/op is a broken contract, not noise")
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	var exactRe *regexp.Regexp
	if *exactAllocs != "" {
		re, err := regexp.Compile(*exactAllocs)
		if err != nil {
			return cli.Usagef("bad -exact-allocs regexp %q: %v", *exactAllocs, err)
		}
		exactRe = re
	}

	current, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return errors.New("no benchmark lines on stdin")
	}

	if *update {
		sort.Slice(current, func(i, j int) bool { return current[i].Name < current[j].Name })
		doc := Baseline{Note: *note, Tolerance: *tolerance, Benchmarks: current}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding baseline: %w", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*baselinePath, buf, 0o644); err != nil {
			return fmt.Errorf("writing baseline: %w", err)
		}
		fmt.Fprintf(w, "benchgate: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return nil
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}
	tol := *tolerance
	explicitTol := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "tolerance" {
			explicitTol = true
		}
	})
	if !explicitTol && base.Tolerance > 0 {
		tol = base.Tolerance
	}
	timeTol := *timeTolerance
	if timeTol < 0 {
		timeTol = tol
	}

	baseByName := map[string]Entry{}
	for _, e := range base.Benchmarks {
		baseByName[e.Name] = e
	}
	curByName := map[string]Entry{}
	for _, e := range current {
		curByName[e.Name] = e
	}

	failed := false
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			fmt.Fprintf(w, "MISSING  %s: in baseline but not in this run\n", b.Name)
			failed = true
			continue
		}
		timeRatio := c.NsPerOp / b.NsPerOp
		status := "ok      "
		if timeRatio > 1+timeTol {
			status = "REGRESS "
			failed = true
		}
		fmt.Fprintf(w, "%s %s: time/op %.0f -> %.0f ns (%+.1f%%)\n",
			status, b.Name, b.NsPerOp, c.NsPerOp, 100*(timeRatio-1))
		switch {
		case exactRe != nil && exactRe.MatchString(b.Name):
			if c.AllocsPerOp != b.AllocsPerOp {
				fmt.Fprintf(w, "EXACT    %s: allocs/op %.0f -> %.0f, must equal the baseline exactly\n",
					b.Name, b.AllocsPerOp, c.AllocsPerOp)
				failed = true
			}
		case b.AllocsPerOp > 0 || c.AllocsPerOp > 0:
			allocRatio := (c.AllocsPerOp + 1) / (b.AllocsPerOp + 1) // +1: tolerate zero baselines
			if allocRatio > 1+tol {
				fmt.Fprintf(w, "REGRESS  %s: allocs/op %.0f -> %.0f (%+.1f%%)\n",
					b.Name, b.AllocsPerOp, c.AllocsPerOp, 100*(allocRatio-1))
				failed = true
			}
		}
	}
	for _, c := range current {
		if _, ok := baseByName[c.Name]; !ok {
			fmt.Fprintf(w, "NEW      %s: not in baseline; refresh with scripts/bench.sh\n", c.Name)
		}
	}
	if failed {
		return fmt.Errorf("%w (time %.0f%%, allocs %.0f%%) vs %s",
			errRegression, 100*timeTol, 100*tol, *baselinePath)
	}
	fmt.Fprintf(w, "benchgate: %d benchmarks within tolerance (time %.0f%%, allocs %.0f%%) of %s\n",
		len(base.Benchmarks), 100*timeTol, 100*tol, *baselinePath)
	return nil
}
