// Command benchgate parses `go test -bench` output on stdin and either
// records a benchmark baseline JSON (-update) or enforces one: with an
// existing baseline it exits non-zero when any benchmark regresses by
// more than the tolerance in time/op or allocs/op.
//
// Record/refresh the committed baseline (scripts/bench.sh does this):
//
//	go test -run '^$' -bench '^BenchmarkEngineRun$' -benchmem -count 5 . |
//	    go run ./scripts/benchgate -update -baseline BENCH_2.json
//
// Enforce it (the CI regression gate):
//
//	go test -run '^$' -bench '^BenchmarkEngineRun$' -benchmem -count 3 . |
//	    go run ./scripts/benchgate -baseline BENCH_2.json
//
// With -count > 1 the minimum over repeats is used on both sides,
// which is the standard way to damp scheduler noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded costs. GOMAXPROCS suffixes are
// stripped from names so baselines transfer across machines.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_*.json document.
type Baseline struct {
	Note       string  `json:"note"`
	Tolerance  float64 `json:"tolerance"`
	Benchmarks []Entry `json:"benchmarks"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output and returns per-benchmark
// minima over repeated runs.
func parseBench(f *os.File) ([]Entry, error) {
	byName := map[string]*Entry{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		e := Entry{Name: name, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if e.NsPerOp < 0 {
			continue
		}
		prev, ok := byName[name]
		if !ok {
			cp := e
			byName[name] = &cp
			order = append(order, name)
			continue
		}
		if e.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = e.NsPerOp
		}
		if e.BytesPerOp >= 0 && (prev.BytesPerOp < 0 || e.BytesPerOp < prev.BytesPerOp) {
			prev.BytesPerOp = e.BytesPerOp
		}
		if e.AllocsPerOp >= 0 && (prev.AllocsPerOp < 0 || e.AllocsPerOp < prev.AllocsPerOp) {
			prev.AllocsPerOp = e.AllocsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_2.json", "baseline JSON path")
	update := flag.Bool("update", false, "write the parsed results as the new baseline instead of checking")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression in allocs/op (and time/op unless -time-tolerance is set)")
	timeTolerance := flag.Float64("time-tolerance", -1,
		"allowed fractional regression in time/op; defaults to -tolerance. Allocs are deterministic, wall time is not: on shared CI runners give time extra headroom — it still catches algorithmic regressions, which cost integer factors, not percents")
	note := flag.String("note", "Engine benchmark baseline; refresh with scripts/bench.sh (see EXPERIMENTS.md).",
		"note stored in the baseline on -update")
	flag.Parse()

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *update {
		sort.Slice(current, func(i, j int) bool { return current[i].Name < current[j].Name })
		doc := Baseline{Note: *note, Tolerance: *tolerance, Benchmarks: current}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*baselinePath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	tol := *tolerance
	explicitTol := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "tolerance" {
			explicitTol = true
		}
	})
	if !explicitTol && base.Tolerance > 0 {
		tol = base.Tolerance
	}
	timeTol := *timeTolerance
	if timeTol < 0 {
		timeTol = tol
	}

	baseByName := map[string]Entry{}
	for _, e := range base.Benchmarks {
		baseByName[e.Name] = e
	}
	curByName := map[string]Entry{}
	for _, e := range current {
		curByName[e.Name] = e
	}

	failed := false
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			fmt.Printf("MISSING  %s: in baseline but not in this run\n", b.Name)
			failed = true
			continue
		}
		timeRatio := c.NsPerOp / b.NsPerOp
		status := "ok      "
		if timeRatio > 1+timeTol {
			status = "REGRESS "
			failed = true
		}
		fmt.Printf("%s %s: time/op %.0f -> %.0f ns (%+.1f%%)\n",
			status, b.Name, b.NsPerOp, c.NsPerOp, 100*(timeRatio-1))
		if b.AllocsPerOp > 0 || c.AllocsPerOp > 0 {
			allocRatio := (c.AllocsPerOp + 1) / (b.AllocsPerOp + 1) // +1: tolerate zero baselines
			if allocRatio > 1+tol {
				fmt.Printf("REGRESS  %s: allocs/op %.0f -> %.0f (%+.1f%%)\n",
					b.Name, b.AllocsPerOp, c.AllocsPerOp, 100*(allocRatio-1))
				failed = true
			}
		}
	}
	for _, c := range current {
		if _, ok := baseByName[c.Name]; !ok {
			fmt.Printf("NEW      %s: not in baseline; refresh with scripts/bench.sh\n", c.Name)
		}
	}
	if failed {
		fmt.Printf("benchgate: regression beyond tolerance (time %.0f%%, allocs %.0f%%) vs %s\n",
			100*timeTol, 100*tol, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within tolerance (time %.0f%%, allocs %.0f%%) of %s\n",
		len(base.Benchmarks), 100*timeTol, 100*tol, *baselinePath)
}
