package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rimarket/internal/cli"
)

const benchOutput = "goos: linux\n" +
	"BenchmarkEngineRun/1y-8 \t     100\t   1000 ns/op\t   50 B/op\t   2 allocs/op\n" +
	"BenchmarkEngineRun/1y-8 \t     100\t   1200 ns/op\t   50 B/op\t   2 allocs/op\n" +
	"PASS\n"

func TestParseBenchTakesMinimum(t *testing.T) {
	entries, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Name != "BenchmarkEngineRun/1y" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", e.Name)
	}
	if e.NsPerOp != 1000 {
		t.Errorf("min over repeats: ns/op = %v, want 1000", e.NsPerOp)
	}
}

func TestRunUpdateThenCheck(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	var out, errOut bytes.Buffer
	err := run([]string{"-update", "-baseline", baseline},
		strings.NewReader(benchOutput), &out, &errOut)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	out.Reset()
	err = run([]string{"-baseline", baseline}, strings.NewReader(benchOutput), &out, &errOut)
	if err != nil {
		t.Fatalf("identical run should be within tolerance: %v\n%s", err, out.String())
	}

	// A 9x time and alloc regression must fail with the plain error
	// exit code.
	regressed := strings.ReplaceAll(benchOutput, "1000 ns/op", "9000 ns/op")
	regressed = strings.ReplaceAll(regressed, "1200 ns/op", "9000 ns/op")
	regressed = strings.ReplaceAll(regressed, "2 allocs/op", "18 allocs/op")
	out.Reset()
	err = run([]string{"-baseline", baseline}, strings.NewReader(regressed), &out, &errOut)
	if err == nil {
		t.Fatalf("regression accepted:\n%s", out.String())
	}
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("regression maps to exit %d, want %d", code, cli.ExitError)
	}
}

func TestRunExactAllocs(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "base.json")
	var out, errOut bytes.Buffer
	if err := run([]string{"-update", "-baseline", baseline},
		strings.NewReader(benchOutput), &out, &errOut); err != nil {
		t.Fatalf("update: %v", err)
	}

	// An allocs/op DECREASE sails through the ratio gate (it only
	// catches increases) but is still drift from the recorded contract:
	// the exact rule must flag it in either direction.
	improved := strings.ReplaceAll(benchOutput, "2 allocs/op", "1 allocs/op")
	out.Reset()
	err := run([]string{"-baseline", baseline}, strings.NewReader(improved), &out, &errOut)
	if err != nil {
		t.Fatalf("alloc decrease should pass the ratio gate: %v\n%s", err, out.String())
	}

	out.Reset()
	err = run([]string{"-baseline", baseline, "-exact-allocs", "^BenchmarkEngineRun"},
		strings.NewReader(improved), &out, &errOut)
	if err == nil {
		t.Fatalf("exact-allocs accepted a drifted allocs/op:\n%s", out.String())
	}
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("exact-allocs drift maps to exit %d, want %d", code, cli.ExitError)
	}
	if !strings.Contains(out.String(), "EXACT") {
		t.Errorf("report missing EXACT line:\n%s", out.String())
	}

	// A non-matching pattern leaves the ratio rule in charge.
	out.Reset()
	if err := run([]string{"-baseline", baseline, "-exact-allocs", "^BenchmarkOther"},
		strings.NewReader(improved), &out, &errOut); err != nil {
		t.Fatalf("non-matching exact-allocs changed the verdict: %v", err)
	}

	// Identical allocs pass the exact rule.
	out.Reset()
	if err := run([]string{"-baseline", baseline, "-exact-allocs", "^BenchmarkEngineRun"},
		strings.NewReader(benchOutput), &out, &errOut); err != nil {
		t.Fatalf("identical run failed exact-allocs: %v\n%s", err, out.String())
	}

	// A bad regexp is command-line misuse.
	err = run([]string{"-baseline", baseline, "-exact-allocs", "("},
		strings.NewReader(benchOutput), &out, &errOut)
	if code := cli.ExitCode(err); code != cli.ExitUsage {
		t.Errorf("bad regexp maps to exit %d, want %d", code, cli.ExitUsage)
	}
}

func TestRunExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-no-such-flag"}, strings.NewReader(""), &out, &errOut)
	if code := cli.ExitCode(err); code != cli.ExitUsage {
		t.Errorf("flag misuse maps to exit %d, want %d", code, cli.ExitUsage)
	}

	err = run(nil, strings.NewReader("no benchmarks here\n"), &out, &errOut)
	if err == nil {
		t.Fatal("empty bench output accepted")
	}
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("empty input maps to exit %d, want %d", code, cli.ExitError)
	}

	err = run([]string{"-baseline", filepath.Join(t.TempDir(), "missing.json")},
		strings.NewReader(benchOutput), &out, &errOut)
	if err == nil {
		t.Fatal("missing baseline accepted")
	}
	if code := cli.ExitCode(err); code != cli.ExitError {
		t.Errorf("missing baseline maps to exit %d, want %d", code, cli.ExitError)
	}
}
