#!/usr/bin/env bash
# Pins scripts/lint.sh's exit-code contract without bats: a failing
# rilint run must fail the whole pass (exit 1, with rilint named in
# the summary) even though later checks still run, and a pass with
# missing optional tools must skip them with a warning and exit 0.
#
# The go and gofmt on PATH are stubs, so this exercises lint.sh's own
# control flow, not the real toolchain: the stub go exits
# ${RILINT_EXIT:-0} for `go run ./cmd/rilint ...` and 0 for everything
# else. PATH is restricted so staticcheck/govulncheck are absent.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
stub="$(mktemp -d)"
trap 'rm -rf "$stub"' EXIT

cat >"$stub/gofmt" <<'EOF'
#!/usr/bin/env bash
exit 0
EOF

cat >"$stub/go" <<'EOF'
#!/usr/bin/env bash
if [[ "${1:-}" == "run" && "${2:-}" == "./cmd/rilint" ]]; then
	if [[ "${RILINT_EXIT:-0}" -ne 0 ]]; then
		echo "stub.go:1:1: frozen: synthetic finding" # stand-in findings output
	fi
	exit "${RILINT_EXIT:-0}"
fi
exit 0
EOF
chmod +x "$stub/gofmt" "$stub/go"

restricted_path="$stub:/usr/bin:/bin"

fail() {
	echo "lint_test: FAIL: $1" >&2
	shift
	printf '%s\n' "$@" >&2
	exit 1
}

# 1. All checks green, optional tools absent: exit 0, skips warned.
out="$(PATH="$restricted_path" RILINT_EXIT=0 bash "$repo/scripts/lint.sh" 2>&1)" ||
	fail "lint.sh exited nonzero with every check passing" "$out"
case "$out" in
*"skipping"*) ;;
*) fail "optional tools did not skip with a warning" "$out" ;;
esac
case "$out" in
*"lint: ok"*) ;;
*) fail "clean pass did not report ok" "$out" ;;
esac

# 2. rilint exits nonzero: lint.sh must exit 1 (not rilint's raw code,
# not 0) and the failure summary must name rilint.
status=0
out="$(PATH="$restricted_path" RILINT_EXIT=3 bash "$repo/scripts/lint.sh" 2>&1)" || status=$?
if [[ "$status" -eq 0 ]]; then
	fail "lint.sh exited 0 despite rilint failing" "$out"
fi
if [[ "$status" -ne 1 ]]; then
	fail "lint.sh exited $status, want the uniform failure code 1" "$out"
fi
case "$out" in
*"lint: FAILED: rilint"*) ;;
*) fail "failure summary does not name rilint" "$out" ;;
esac
# Checks after rilint still ran (no early abort under set -e).
case "$out" in
*"govulncheck"*) ;;
*) fail "checks after the rilint failure did not run" "$out" ;;
esac

echo "lint_test: ok"
