package rimarket_test

// BenchmarkObsOverhead pins the cost of the observability layer on the
// engine hot path: the same 1-year sparse-checkpoint run as
// BenchmarkEngineRun, with the metrics hook disabled (obs=off) and
// enabled (obs=on). The benchgate's -exact-allocs rule holds both
// sub-benchmarks to exactly the baseline allocs/op — the hook is a
// handful of atomic adds and must never allocate — and the paired
// timings document the <2% time cost the design budgets for.

import (
	"testing"

	"rimarket/internal/obs"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
)

func BenchmarkObsOverhead(b *testing.B) {
	it := pricing.D2XLarge()
	demand := make([]int, it.PeriodHours)
	for i := range demand {
		demand[i] = 5 + i%7
	}
	plan, err := purchasing.PlanReservations(demand, it.PeriodHours, purchasing.AllReserved{})
	if err != nil {
		b.Fatal(err)
	}
	policy := engineBenchPolicy(b, it, "sparse")

	metrics := obs.New(obs.SystemClock)
	for _, mode := range []struct {
		name string
		hook *obs.EngineMetrics
	}{
		{"obs=off", nil},
		{"obs=on", metrics.EngineHook()},
	} {
		cfg := simulate.Config{
			Instance:        it,
			SellingDiscount: 0.8,
			Metrics:         mode.hook,
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := simulate.Run(demand, plan, cfg, policy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
