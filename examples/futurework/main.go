// Future work: randomized and multi-checkpoint selling.
//
// The paper closes by speculating that a randomized online algorithm,
// free to sell at an arbitrary time spot, would achieve a better
// competitive ratio. This example runs the reproduction's two
// future-work policies against the paper's fixed checkpoints on the
// same cohort and shows the trade they make: the multi-checkpoint
// policy squeezes out slightly more average savings, while the
// randomized exponential policy gives up a little mean saving to cut
// the worst case dramatically — the classic benefit of randomization
// against an adversary.
//
// Run: go run ./examples/futurework
package main

import (
	"fmt"
	"log"

	"rimarket"
)

func main() {
	it := rimarket.TestScaleConfig().Instance
	const (
		a    = 0.8
		seed = 2018
	)

	// One adversarial instance first: idle through T/4 then busy. The
	// fixed A_{T/4} always mis-sells it; the randomized policy only
	// sometimes draws an early checkpoint.
	demand := make([]int, it.PeriodHours)
	for h := it.PeriodHours / 4; h < it.PeriodHours; h++ {
		demand[h] = 1
	}
	plan := make([]int, it.PeriodHours)
	plan[0] = 1

	fixed, err := rimarket.NewAT4(it, a)
	if err != nil {
		log.Fatal(err)
	}
	randomized, err := rimarket.NewRandomized(it, a, rimarket.ExponentialFractions{}, seed)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := rimarket.NewPaperMultiThreshold(it, a)
	if err != nil {
		log.Fatal(err)
	}

	cfg := rimarket.SimConfig{Instance: it, SellingDiscount: a}
	fmt.Println("adversarial instance (idle through T/4, busy afterwards):")
	for _, p := range []struct {
		name   string
		policy rimarket.SellingPolicy
	}{
		{name: "Keep-Reserved", policy: rimarket.KeepReserved{}},
		{name: "A_{T/4} fixed", policy: fixed},
		{name: "Multi{T/4,T/2,3T/4}", policy: multi},
		{name: "A_rand exponential", policy: randomized},
	} {
		res, err := rimarket.Run(demand, plan, cfg, p.policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s cost %8.2f, sold %d\n", p.name, res.Cost.Total(), res.SoldCount())
	}

	// The cohort-level comparison the reproduction reports in
	// EXPERIMENTS.md: run `go run ./cmd/riexp -exp extensions` for the
	// full table. Here, a compact version:
	fmt.Println("\ncohort comparison (riexp -exp extensions, abridged):")
	fmt.Println("  policy                   mean cost   worst case")
	fmt.Println("  A_{T/4} fixed                ~0.83         +22%")
	fmt.Println("  Multi{T/4,T/2,3T/4}          ~0.82         +22%")
	fmt.Println("  A_rand exponential           ~0.90          +1%")
	fmt.Println("\nrandomization trades a little mean saving for a far smaller worst case,")
	fmt.Println("supporting the paper's closing speculation.")
}
