// Marketplace walkthrough: the paper's Section III.B worked example.
//
// A user reserved a t2.nano for a year ($18 upfront) and wants to sell
// the remaining half of the cycle. The prorated cap is $9; listing at
// 20% off prices it at $7.20, and after Amazon's 12% fee the seller
// receives $6.336. The example then shows the lowest-upfront-first
// selling sequence with competing sellers.
//
// Run: go run ./examples/marketplace
package main

import (
	"fmt"
	"log"

	"rimarket"
)

func main() {
	cat := rimarket.StandardCatalog()
	t2nano, err := cat.Lookup("t2.nano")
	if err != nil {
		log.Fatal(err)
	}

	market, err := rimarket.NewMarket() // Amazon's 12% fee
	if err != nil {
		log.Fatal(err)
	}

	// The paper's example: half the reservation cycle remains.
	remaining := t2nano.PeriodHours / 2
	fmt.Printf("t2.nano: upfront $%.0f for %d h; %d h remain -> prorated cap $%.2f\n",
		t2nano.Upfront, t2nano.PeriodHours, remaining,
		t2nano.Upfront*float64(remaining)/float64(t2nano.PeriodHours))

	id, err := market.ListAtDiscount("alice", t2nano, remaining, 0.8) // 20% off the cap
	if err != nil {
		log.Fatal(err)
	}
	listing := market.OpenListings("t2.nano")[0]
	fmt.Printf("alice lists #%d at $%.2f (80%% of the cap)\n", id, listing.AskUpfront)

	// Competing sellers undercut and overprice.
	if _, err := market.ListAtDiscount("bob", t2nano, remaining, 0.6); err != nil {
		log.Fatal(err)
	}
	if _, err := market.ListAtDiscount("carol", t2nano, remaining, 1.0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\norder book (selling sequence):")
	for i, l := range market.OpenListings("t2.nano") {
		fmt.Printf("  %d. %-6s asks $%.2f\n", i+1, l.Seller, l.AskUpfront)
	}

	// A buyer wants two instances: bob's cheapest listing sells first,
	// then alice's.
	sales, err := market.Buy("dave", "t2.nano", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndave buys two:")
	for _, s := range sales {
		fmt.Printf("  from %-6s paid $%.4f, fee $%.4f, seller receives $%.4f\n",
			s.Listing.Seller, s.PricePaid, s.Fee, s.SellerProceeds)
	}
	fmt.Printf("\nalice's proceeds: $%.3f (the paper's $7.2 * 0.88 = $6.336)\n", market.Proceeds("alice"))
	fmt.Printf("carol's overpriced listing is still open: %d listing(s) remain\n",
		len(market.OpenListings("t2.nano")))
}
