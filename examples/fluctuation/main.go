// Fluctuation study: which algorithm fits which demand pattern?
//
// The paper's Fig. 4 takeaway is that earlier checkpoints (A_{T/4})
// save more on average — they free more of the remaining period — but
// later checkpoints (A_{3T/4}) are safer when demand is erratic. This
// example synthesizes a three-band cohort like the paper's 300 users,
// runs the full evaluation pipeline, and prints per-group guidance.
//
// Run: go run ./examples/fluctuation
package main

import (
	"fmt"
	"log"

	"rimarket"
)

func main() {
	cfg := rimarket.TestScaleConfig()
	cfg.PerGroup = 50

	res, err := rimarket.RunCohort(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cohort: %d users, a = %.1f, instance %s (T = %d h)\n\n",
		len(res.Users), cfg.SellingDiscount, cfg.Instance.Name, cfg.Instance.PeriodHours)
	fmt.Print(rimarket.RenderTable3(rimarket.Table3(res)))

	// Per-group guidance, as the paper's Section VI.B discusses.
	rows := rimarket.Table3(res)
	best := func(pick func(rimarket.Table3Row) float64) string {
		name, min := "", 2.0
		for _, r := range rows {
			if v := pick(r); v < min {
				min, name = v, r.Policy
			}
		}
		return name
	}
	fmt.Println()
	fmt.Printf("best for stable demand:   %s\n", best(func(r rimarket.Table3Row) float64 { return r.Group1 }))
	fmt.Printf("best for moderate demand: %s\n", best(func(r rimarket.Table3Row) float64 { return r.Group2 }))
	fmt.Printf("best for volatile demand: %s\n", best(func(r rimarket.Table3Row) float64 { return r.Group3 }))
	fmt.Printf("best overall:             %s\n", best(func(r rimarket.Table3Row) float64 { return r.All }))

	// The safety story: how badly can each algorithm backfire?
	fmt.Println("\nrisk profile (largest cost increase over Keep-Reserved):")
	for _, p := range []string{"A_{3T/4}", "A_{T/2}", "A_{T/4}"} {
		worst := 0.0
		for _, u := range res.Users {
			if v := u.Normalized[p] - 1; v > worst {
				worst = v
			}
		}
		fmt.Printf("  %-10s +%.1f%%\n", p, worst*100)
	}
	fmt.Println("\nlater checkpoints observe more demand before deciding, so they mis-sell less;")
	fmt.Println("earlier checkpoints recoup more of the upfront fee when the sale is right.")
}
