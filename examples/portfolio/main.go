// Portfolio: managing reservations across several instance types.
//
// An enterprise runs three services on different instance types with
// different demand shapes and reservation habits — a steady web tier
// bought carefully with the ICAC'13 online purchaser, a batch analytics
// pipeline reserved to its burst peak, and a dev/test fleet reserved to
// peak and then scaled back mid-year. The portfolio layer plans
// reservations, applies A_{3T/4} selling decisions per service, lists
// every sold reservation on the marketplace simulator, and reports the
// portfolio-level savings including Amazon's 12% fee.
//
// Run: go run ./examples/portfolio
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rimarket"
	"rimarket/internal/workload"
)

func main() {
	const (
		a     = 0.8
		hours = 1460 // 60-day scaled period, as in TestScaleConfig
		seed  = 11
	)
	scaled := rimarket.TestScaleConfig().Instance
	catalog := rimarket.StandardCatalog()
	rng := rand.New(rand.NewSource(seed))

	// scaleCard shrinks a catalog card's period the way TestScaleConfig
	// scales d2.xlarge, preserving alpha and theta.
	scaleCard := func(name string) rimarket.InstanceType {
		full, err := catalog.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		it := full
		it.PeriodHours = scaled.PeriodHours
		it.Upfront = full.Upfront * float64(scaled.PeriodHours) / float64(full.PeriodHours)
		return it
	}

	web := scaleCard("m4.xlarge")
	services := []rimarket.PortfolioService{
		{
			// Disciplined team: the online purchaser reserves only
			// well-utilized levels, so nothing needs selling.
			Name:      "web-frontend",
			Instance:  web,
			Demand:    workload.StableGenerator{Base: 10, Jitter: 1.5, DiurnalAmp: 2}.Generate("web", hours, rng).Demand,
			Purchaser: rimarket.NewWangOnline(web),
		},
		{
			// Reserved to the burst peak: most reservations idle and the
			// selling algorithm sheds them. Nil purchaser = AllReserved.
			Name:     "batch-analytics",
			Instance: scaleCard("d2.xlarge"),
			Demand: workload.BurstyGenerator{BurstHeight: 18, BurstRate: 0.01, MeanBurstLen: 12}.
				Generate("batch", hours, rng).Demand,
		},
		{
			// Reserved to peak, then the project was scaled back.
			Name:     "dev-test",
			Instance: scaleCard("c4.2xlarge"),
			Demand: workload.RampDown{
				Inner:       workload.OnOffGenerator{OnLevel: 6, OnHours: 10, OffHours: 14, Jitter: 0.5},
				EndFraction: 0.4,
				Tail:        0.15,
			}.Generate("dev", hours, rng).Demand,
		},
	}

	res, err := rimarket.EvaluatePortfolio(services, rimarket.PortfolioConfig{
		SellingDiscount: a,
		MarketFee:       rimarket.AmazonFee,
		Policy: func(it rimarket.InstanceType) (rimarket.SellingPolicy, error) {
			return rimarket.NewA3T4(it, a)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %-12s %10s %10s %10s %6s\n",
		"service", "instance", "keep $", "A_{3T/4} $", "saved $", "sold")
	for _, svc := range res.Services {
		fmt.Printf("%-16s %-12s %10.2f %10.2f %10.2f %6d\n",
			svc.Name, svc.Instance.Name, svc.KeepCost, svc.PolicyCost,
			svc.Savings(), len(svc.SoldInstances))
	}

	// Recycle every sold reservation through the marketplace.
	market, err := rimarket.NewMarket()
	if err != nil {
		log.Fatal(err)
	}
	listed, err := rimarket.ListPortfolioOnMarket(market, res, a)
	if err != nil {
		log.Fatal(err)
	}
	var bought int
	for _, svc := range res.Services {
		sales, err := market.Buy("secondary-buyer", svc.Instance.Name, len(svc.SoldInstances))
		if err == nil {
			bought += len(sales)
		}
	}

	fmt.Printf("\nportfolio: keep $%.2f vs A_{3T/4} $%.2f -> %.1f%% saved\n",
		res.KeepTotal(), res.PolicyTotal(), res.SavingsFraction()*100)
	fmt.Printf("marketplace: %d listings, %d resold, $%.2f in fees\n",
		listed, bought, market.FeesCollected())
}
