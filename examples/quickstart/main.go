// Quickstart: should I sell my reserved instance?
//
// A team reserved one d2.xlarge a while ago; the project wound down and
// the instance now mostly idles. This example shows the paper's
// A_{3T/4} decision at the three-quarters checkpoint, compares all
// three online algorithms against keeping the reservation, and checks
// the proven competitive-ratio bound.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rimarket"
)

func main() {
	// A scaled-down d2.xlarge (60-day period, same alpha and theta as the
	// real card) keeps the demo instant; swap in rimarket.D2XLarge() and a
	// year-long trace for the real thing.
	it := rimarket.TestScaleConfig().Instance
	const a = 0.8 // list at 80% of the prorated upfront fee

	// The project ran hard for the first 6% of the period, then wound
	// down to a job every other day.
	demand := make([]int, it.PeriodHours)
	for h := range demand {
		switch {
		case h < it.PeriodHours*6/100:
			demand[h] = 1
		case h%48 == 9:
			demand[h] = 1
		}
	}

	// Reserve at hour zero, as the team did.
	plan := make([]int, it.PeriodHours)
	plan[0] = 1

	policy, err := rimarket.NewA3T4(it, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s: upfront $%.2f, on-demand $%.4f/h, reserved $%.4f/h (alpha %.2f)\n",
		it.Name, it.Upfront, it.OnDemandHourly, it.ReservedHourly, it.Alpha())
	fmt.Printf("%s break-even: %.1f working hours out of the %d-hour window\n\n",
		policy.Name(), policy.BreakEven(), policy.CheckpointAge(it.PeriodHours))

	cfg := rimarket.SimConfig{Instance: it, SellingDiscount: a}
	fmt.Printf("%-14s %12s %8s\n", "policy", "total cost", "sold")
	var keep float64
	for _, run := range []struct {
		name   string
		policy rimarket.SellingPolicy
	}{
		{name: "Keep-Reserved", policy: rimarket.KeepReserved{}},
		{name: "A_{3T/4}", policy: mustPolicy(rimarket.NewA3T4(it, a))},
		{name: "A_{T/2}", policy: mustPolicy(rimarket.NewAT2(it, a))},
		{name: "A_{T/4}", policy: mustPolicy(rimarket.NewAT4(it, a))},
	} {
		res, err := rimarket.Run(demand, plan, cfg, run.policy)
		if err != nil {
			log.Fatal(err)
		}
		if run.name == "Keep-Reserved" {
			keep = res.Cost.Total()
		}
		fmt.Printf("%-14s %12.2f %8d\n", run.name, res.Cost.Total(), res.SoldCount())
	}
	fmt.Printf("\nkeeping costs $%.2f; the online algorithms shed the idle reservation and recoup part of the upfront fee.\n", keep)

	// The theory: A_{3T/4} never costs more than (2 - alpha - a/4) times
	// the clairvoyant optimum on this instance.
	bound, err := rimarket.RatioA3T4(it.Alpha(), a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proven competitive ratio for A_{3T/4}: %.4f (%v)\n", bound.Ratio, bound.Regime)
}

func mustPolicy(p rimarket.Threshold, err error) rimarket.Threshold {
	if err != nil {
		log.Fatal(err)
	}
	return p
}
