package rimarket_test

// One benchmark per table and figure of the paper, each measuring the
// full regeneration of that artifact (cohort synthesis, reservation
// planning, selling runs, and the table/figure computation). The
// renderable output itself comes from `go run ./cmd/riexp -exp all`;
// these benches pin the cost of regenerating it.

import (
	"context"
	"testing"

	"rimarket"
	"rimarket/internal/analysis"
	"rimarket/internal/core"
	"rimarket/internal/experiments"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/workload"
)

// benchConfig is the bench-scale cohort: the full pipeline shape at a
// size that keeps every bench iteration in the low milliseconds.
func benchConfig() experiments.Config {
	cfg := experiments.TestScaleConfig()
	cfg.PerGroup = 8
	return cfg
}

// benchCohort memoizes one cohort run per bench binary; the per-table
// computation on top is what distinguishes the benches that share it.
var benchCohort *experiments.CohortResult

func cohortForBench(b *testing.B) *experiments.CohortResult {
	b.Helper()
	if benchCohort == nil {
		res, err := experiments.RunCohort(context.Background(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchCohort = res
	}
	return benchCohort
}

// BenchmarkTable1Pricing regenerates Table I (the d2.xlarge price
// card's four payment options).
func BenchmarkTable1Pricing(b *testing.B) {
	it := pricing.D2XLarge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(it); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2Fluctuation regenerates Fig. 2 (per-group sigma/mu
// statistics) including cohort synthesis.
func BenchmarkFig2Fluctuation(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCohort(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if groups := experiments.Fig2(res); len(groups) != 3 {
			b.Fatal("bad groups")
		}
	}
}

// BenchmarkFig3SellingCDF regenerates the three Fig. 3 panels (one per
// online algorithm) from a shared cohort run.
func BenchmarkFig3SellingCDF(b *testing.B) {
	res := cohortForBench(b)
	for _, policy := range experiments.SellingPolicies {
		b.Run(policy, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum, err := experiments.Fig3(res.Users, policy)
				if err != nil {
					b.Fatal(err)
				}
				if sum.OnlineCDF.Len() == 0 {
					b.Fatal("empty CDF")
				}
			}
		})
	}
}

// BenchmarkFig4Groups regenerates the three Fig. 4 panels (per-group
// algorithm comparison).
func BenchmarkFig4Groups(b *testing.B) {
	res := cohortForBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if groups := experiments.Fig4(res); len(groups) != 3 {
			b.Fatal("bad groups")
		}
	}
}

// BenchmarkTable2HighFluctUser regenerates Table II (the extreme
// volatile user's absolute costs).
func BenchmarkTable2HighFluctUser(b *testing.B) {
	res := cohortForBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Table2(res)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3AverageCost regenerates Table III end to end (cohort,
// planning, all seven selling runs per user, aggregation).
func BenchmarkTable3AverageCost(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCohort(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rows := experiments.Table3(res); len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkCompetitiveBounds measures the theory module: per-catalog
// bound analysis plus adversarial worst-case measurement for A_{3T/4}
// (the numbers behind Proposition 1's headline ratio).
func BenchmarkCompetitiveBounds(b *testing.B) {
	cat := pricing.StandardLinuxUSEast()
	it := experiments.TestScaleConfig().Instance
	policy, err := core.NewA3T4(it, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.AnalyzeCatalog(cat, core.Fraction3T4, 0.8); err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.WorstMeasuredRatio(policy, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepFraction measures the checkpoint-fraction ablation
// (the paper's future-work direction) at bench scale.
func BenchmarkSweepFraction(b *testing.B) {
	cfg := benchConfig()
	cfg.PerGroup = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepFraction(context.Background(), cfg, []float64{0.25, 0.5, 0.75}); err != nil {
			b.Fatal(err)
		}
	}
}

// engineBenchPolicy builds the checkpoint shape for the engine bench
// matrix: sparse is the paper's single-checkpoint A_{3T/4}; dense is a
// 16-checkpoint multi-threshold portfolio, stressing the engine's
// checkpoint event schedule.
func engineBenchPolicy(b *testing.B, it pricing.InstanceType, shape string) simulate.SellingPolicy {
	b.Helper()
	switch shape {
	case "sparse":
		policy, err := core.NewA3T4(it, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		return policy
	case "dense":
		fractions := make([]float64, 16)
		for i := range fractions {
			fractions[i] = float64(i+1) / 17
		}
		policy, err := core.NewMultiThreshold(it, 0.8, fractions)
		if err != nil {
			b.Fatal(err)
		}
		return policy
	default:
		b.Fatalf("unknown checkpoint shape %q", shape)
		return nil
	}
}

// BenchmarkEngineRun isolates the hourly cost engine across the
// dimensions that stress its hot path: 1-year vs 3-year terms (the
// horizon spans one full period), sparse vs dense checkpoint
// schedules, and instance schedule recording on/off. These are the
// benches scripts/bench.sh snapshots into BENCH_5.json and CI's
// regression gate enforces.
func BenchmarkEngineRun(b *testing.B) {
	oneYear := pricing.D2XLarge()
	threeYear, err := pricing.ThreeYearTerm(oneYear)
	if err != nil {
		b.Fatal(err)
	}
	terms := []struct {
		name string
		it   pricing.InstanceType
	}{
		{"1y", oneYear},
		{"3y", threeYear},
	}
	for _, term := range terms {
		demand := make([]int, term.it.PeriodHours)
		for i := range demand {
			demand[i] = 5 + i%7
		}
		plan, err := purchasing.PlanReservations(demand, term.it.PeriodHours, purchasing.AllReserved{})
		if err != nil {
			b.Fatal(err)
		}
		for _, shape := range []string{"sparse", "dense"} {
			policy := engineBenchPolicy(b, term.it, shape)
			for _, sched := range []bool{false, true} {
				cfg := simulate.Config{
					Instance:        term.it,
					SellingDiscount: 0.8,
					RecordSchedules: sched,
				}
				schedName := "off"
				if sched {
					schedName = "on"
				}
				b.Run("term="+term.name+"/ckpt="+shape+"/sched="+schedName, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := simulate.Run(demand, plan, cfg, policy); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkSellingDecision isolates one A_{3T/4} checkpoint decision.
func BenchmarkSellingDecision(b *testing.B) {
	policy, err := core.NewA3T4(pricing.D2XLarge(), 0.8)
	if err != nil {
		b.Fatal(err)
	}
	ck := simulate.Checkpoint{Worked: 2000} // above the ~1744 h break-even
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if policy.ShouldSell(ck) {
			b.Fatal("unexpected sell")
		}
	}
}

// BenchmarkCohortSynthesis isolates the workload substrate: a 300-user
// cohort like the paper's, at a 60-day horizon.
func BenchmarkCohortSynthesis(b *testing.B) {
	cfg := workload.CohortConfig{PerGroup: 100, Hours: 1460, Seed: 2018}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		traces, err := workload.NewCohort(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(traces) != 300 {
			b.Fatal("bad cohort")
		}
	}
}

// BenchmarkMarketplaceClearing isolates the marketplace: list and
// clear 100 reservations.
func BenchmarkMarketplaceClearing(b *testing.B) {
	it := pricing.D2XLarge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := rimarket.NewMarket()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if _, err := m.ListAtDiscount("s", it, it.PeriodHours/2, 0.5+float64(j%50)/100); err != nil {
				b.Fatal(err)
			}
		}
		sales, err := m.Buy("b", it.Name, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(sales) != 100 {
			b.Fatal("bad clearing")
		}
	}
}

// BenchmarkExtensions measures the future-work comparison (randomized
// and multi-checkpoint policies) at bench scale.
func BenchmarkExtensions(b *testing.B) {
	cfg := benchConfig()
	cfg.PerGroup = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Extensions(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkPortfolioEvaluate measures the multi-service portfolio
// layer end to end.
func BenchmarkPortfolioEvaluate(b *testing.B) {
	it := experiments.TestScaleConfig().Instance
	demand := make([]int, it.PeriodHours)
	for i := range demand {
		demand[i] = 3 + i%5
	}
	services := []rimarket.PortfolioService{
		{Name: "svc-a", Instance: it, Demand: demand},
		{Name: "svc-b", Instance: it, Demand: demand},
	}
	cfg := rimarket.PortfolioConfig{
		SellingDiscount: 0.8,
		Policy: func(card rimarket.InstanceType) (rimarket.SellingPolicy, error) {
			return rimarket.NewA3T4(card, 0.8)
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rimarket.EvaluatePortfolio(services, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMillionUsers pushes a 100k-user cohort through one 1-year
// sweep cell of the streaming batch engine (simulate.RunBatchTotals).
// The cohort aliases 64 distinct year-long demand patterns across all
// users — the BatchUser contract explicitly permits shared backing
// arrays — so the input costs 64 traces of memory while the engine
// still advances every user through every hour. Besides the gated
// ns/op, the bench reports the two throughput figures the scale-out
// roadmap tracks: users/sec and simulated instance-hours/sec.
func BenchmarkMillionUsers(b *testing.B) {
	it := pricing.D2XLarge() // 1-year card: 8760-hour period
	const users = 100_000
	const patterns = 64
	demands := make([][]int, patterns)
	plans := make([][]int, patterns)
	for p := range demands {
		d := make([]int, it.PeriodHours)
		for t := range d {
			// Varied phase and amplitude per pattern, with idle tails
			// so the selling policy actually fires for some users.
			d[t] = (t*(p+1) + p) % 9
			if t > it.PeriodHours/2+p*50 {
				d[t] = 0
			}
		}
		plan, err := purchasing.PlanReservations(d, it.PeriodHours, purchasing.AllReserved{})
		if err != nil {
			b.Fatal(err)
		}
		demands[p], plans[p] = d, plan
	}
	batch := make([]simulate.BatchUser, users)
	for i := range batch {
		batch[i] = simulate.BatchUser{Demand: demands[i%patterns], NewRes: plans[i%patterns]}
	}
	policy, err := core.NewA3T4(it, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		totals, err := simulate.RunBatchTotals(context.Background(), batch, cfg, policy, simulate.BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(totals) != users {
			b.Fatalf("totals = %d", len(totals))
		}
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		ops := float64(b.N)
		b.ReportMetric(users*ops/secs, "users/sec")
		b.ReportMetric(users*float64(it.PeriodHours)*ops/secs, "hours/sec")
	}
}

// BenchmarkMarketSession measures the market-dynamics session over the
// bench cohort's sell events.
func BenchmarkMarketSession(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.MarketSession(context.Background(), cfg, []float64{1})
		if err != nil {
			b.Fatal(err)
		}
		if points[0].Stats.Listed == 0 {
			b.Fatal("no listings")
		}
	}
}
