package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema versions the manifest JSON layout. Bump on any
// field rename or semantic change so downstream tooling can dispatch.
// Schema 4 added the metrics snapshot's serving section (requests,
// shed, timeouts, panics, reloads, request latency) written by the rid
// recommendation daemon. Schema 5 added the market section (listings,
// trades, expiries, buyer demand, time-to-sale) written by the
// two-sided marketplace session.
const ManifestSchema = 5

// Manifest records the provenance of one binary invocation: what ran,
// with which flags and seed, against which traces, on which build, for
// how long, and what it counted. Serialized with MarshalIndent and
// fixed field order, a manifest of a deterministic run differs across
// machines only in the environment-dependent fields (timestamps,
// durations, build info, memory) — the golden test normalizes exactly
// those.
type Manifest struct {
	Schema int      `json:"schema"`
	Tool   string   `json:"tool"`
	Args   []string `json:"args"`

	GoVersion   string `json:"go_version,omitempty"`
	GitRevision string `json:"git_revision,omitempty"`
	GitModified bool   `json:"git_modified,omitempty"`

	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	WallNs int64     `json:"wall_ns"`

	// Seed and Config are filled by the tool: Seed is the experiment
	// seed when one applies, Config the tool's parsed parameters
	// (any JSON-marshalable struct; riexp uses its flag set).
	Seed   int64 `json:"seed,omitempty"`
	Config any   `json:"config,omitempty"`

	// Trace summarizes trace ingestion when the tool loaded traces.
	Trace *TraceIngest `json:"trace,omitempty"`

	Outcome Outcome `json:"outcome"`

	Metrics *Snapshot    `json:"metrics,omitempty"`
	Mem     *MemSnapshot `json:"mem,omitempty"`
}

// TraceIngest mirrors gtrace.LoadReport without importing it (obs
// stays dependency-free within the module too): which files loaded and
// which were skipped, with the skip reasons.
type TraceIngest struct {
	Loaded  []string      `json:"loaded,omitempty"`
	Skipped []SkippedFile `json:"skipped,omitempty"`
}

// SkippedFile is one trace file the loader gave up on.
type SkippedFile struct {
	File string `json:"file"`
	Err  string `json:"err"`
}

// Outcome is how the run ended.
type Outcome struct {
	ExitCode int    `json:"exit_code"`
	Error    string `json:"error,omitempty"`
}

// MemSnapshot is the subset of runtime.MemStats worth keeping per run.
type MemSnapshot struct {
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	NumGC           uint32 `json:"num_gc"`
}

// NewManifest starts a manifest for one invocation, stamping the start
// time from clock. Build info and memory are captured separately
// (FillBuildInfo, CaptureMem) so tests that need byte-stable output
// can skip them.
func NewManifest(tool string, args []string, clock Clock) *Manifest {
	if args == nil {
		args = []string{}
	}
	return &Manifest{Schema: ManifestSchema, Tool: tool, Args: args, Start: clock()}
}

// FillBuildInfo records the Go version and, when the binary was built
// inside a git checkout, the vcs revision and dirty flag.
func (mf *Manifest) FillBuildInfo() {
	mf.GoVersion = runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				mf.GitRevision = s.Value
			case "vcs.modified":
				mf.GitModified = s.Value == "true"
			}
		}
	}
}

// CaptureMem records the process's allocation totals so far. Call once
// at the end of the run; ReadMemStats stops the world briefly.
func (mf *Manifest) CaptureMem() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mf.Mem = &MemSnapshot{
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		HeapSysBytes:    ms.HeapSys,
		NumGC:           ms.NumGC,
	}
}

// Finalize stamps the end time, the outcome, and the final metrics
// snapshot (nil when observability was off).
func (mf *Manifest) Finalize(clock Clock, m *Metrics, exitCode int, errText string) {
	mf.End = clock()
	mf.WallNs = mf.End.Sub(mf.Start).Nanoseconds()
	mf.Outcome = Outcome{ExitCode: exitCode, Error: errText}
	mf.Metrics = m.Snapshot()
}

// Write serializes the manifest as indented JSON with a trailing
// newline.
func (mf *Manifest) Write(w io.Writer) error {
	b, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the manifest to path, creating or truncating it.
func (mf *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mf.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
