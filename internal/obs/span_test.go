package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanThroughContext(t *testing.T) {
	m := New(testClock())
	ctx := WithMetrics(context.Background(), m)
	if got := FromContext(ctx); got != m {
		t.Fatal("FromContext did not return the attached Metrics")
	}

	sp := StartSpan(ctx, "plan")
	sp.End()
	s := m.Snapshot()
	if len(s.Spans) != 1 || s.Spans[0].Name != "plan" {
		t.Fatalf("spans = %+v", s.Spans)
	}
	// The fake clock steps 1ms per read; StartSpan and End each read once.
	if got := s.Spans[0].TotalNs; got != time.Millisecond.Nanoseconds() {
		t.Fatalf("span duration = %dns, want 1ms", got)
	}
}

func TestSpanWithoutMetrics(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on a bare context should be nil")
	}
	if ctx2 := WithMetrics(ctx, nil); ctx2 != ctx {
		t.Fatal("WithMetrics(nil) should return the context unchanged")
	}
	sp := StartSpan(ctx, "ignored")
	sp.End() // must not panic
}

func TestSpanAllocs(t *testing.T) {
	m := New(testClock())
	ctx := WithMetrics(context.Background(), m)
	// The span value itself must not escape; only the first recordSpan
	// for a new name allocates its aggregate. Warm the name first.
	StartSpan(ctx, "warm").End()
	got := testing.AllocsPerRun(100, func() {
		StartSpan(ctx, "warm").End()
	})
	if got != 0 {
		t.Errorf("warm span allocates %.1f per op, want 0", got)
	}
	off := testing.AllocsPerRun(100, func() {
		StartSpan(context.Background(), "off").End()
	})
	if off != 0 {
		t.Errorf("disabled span allocates %.1f per op, want 0", off)
	}
}
