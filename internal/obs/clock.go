package obs

import (
	"sync"
	"time"
)

// Clock is the observability layer's single source of wall time. Every
// timestamp and duration in this package — spans, grid wall times,
// progress rates, manifest start/end — flows through a Clock value, so
// tests substitute a FakeClock and get byte-stable output, and rilint's
// floatdet analyzer can enforce that nothing else in internal/obs
// touches the wall clock.
type Clock func() time.Time

// SystemClock is the real wall clock, and the only sanctioned
// time.Now reference in this package.
//
//rilint:allow floatdet -- the Clock seam itself; every other obs time read goes through it
var SystemClock Clock = time.Now

// FakeClock returns a deterministic Clock that starts at start and
// advances by step on every read. It is safe for concurrent use, which
// matters for progress/manifest tests that read the clock from a
// ticker goroutine.
func FakeClock(start time.Time, step time.Duration) Clock {
	var mu sync.Mutex
	now := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := now
		now = now.Add(step)
		return t
	}
}
