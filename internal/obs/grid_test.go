package obs

import (
	"testing"
	"time"
)

func TestGridTracker(t *testing.T) {
	m := New(FakeClock(time.Unix(100, 0).UTC(), time.Second))
	tr := m.StartGrid([]string{"keep", "sell"}, 2)

	tr.JobDone(0, 10)
	tr.JobDone(1, 20)
	tr.JobDone(0, 30) // completes cell 0
	if got := m.CellsDone.Value(); got != 1 {
		t.Fatalf("CellsDone after cell 0 = %d, want 1", got)
	}
	tr.JobDone(1, 40) // completes cell 1
	tr.Finish()
	tr.Finish() // idempotent

	s := m.Snapshot()
	if s.CellsTotal != 2 || s.CellsDone != 2 {
		t.Fatalf("cells %d/%d, want 2/2", s.CellsDone, s.CellsTotal)
	}
	if len(s.Cells) != 2 {
		t.Fatalf("recorded cells = %+v", s.Cells)
	}
	keep, sell := s.Cells[0], s.Cells[1]
	if keep.Name != "keep" || keep.Jobs != 2 || keep.EngineNs != 40 {
		t.Errorf("keep cell = %+v", keep)
	}
	if sell.Name != "sell" || sell.Jobs != 2 || sell.EngineNs != 60 {
		t.Errorf("sell cell = %+v", sell)
	}
	// Clock reads: StartGrid, cell-0 wall, cell-1 wall, at 1s steps.
	if keep.WallNs != (1 * time.Second).Nanoseconds() {
		t.Errorf("keep wall = %d", keep.WallNs)
	}
	if sell.WallNs != (2 * time.Second).Nanoseconds() {
		t.Errorf("sell wall = %d", sell.WallNs)
	}
}

func TestGridTrackerPartial(t *testing.T) {
	// A cancelled grid flushes partial job counts with zero wall time
	// for incomplete cells.
	m := New(testClock())
	tr := m.StartGrid([]string{"only"}, 3)
	tr.JobDone(0, 7)
	tr.Finish()
	s := m.Snapshot()
	if s.CellsDone != 0 {
		t.Fatalf("CellsDone = %d, want 0", s.CellsDone)
	}
	if len(s.Cells) != 1 || s.Cells[0].Jobs != 1 || s.Cells[0].WallNs != 0 {
		t.Fatalf("cells = %+v", s.Cells)
	}
}
