package obs

import (
	"strings"
	"testing"
	"time"
)

func TestProgressLine(t *testing.T) {
	m := New(FakeClock(time.Unix(0, 0).UTC(), time.Second))
	p := NewProgress(m)

	// No jobs yet: counts only, no rate or ETA.
	line := p.Line()
	if line != "cells 0/0 jobs 0/0" {
		t.Fatalf("empty progress line = %q", line)
	}

	m.CellsTotal.Add(6)
	m.CellsDone.Add(3)
	m.JobsTotal.Add(180)
	m.JobsDone.Add(90)
	line = p.Line()
	if !strings.HasPrefix(line, "cells 3/6 jobs 90/180") {
		t.Fatalf("progress line = %q", line)
	}
	// Two clock reads since NewProgress at 1s steps → elapsed 2s →
	// 45 jobs/s → 90 remaining → eta 2s.
	if !strings.Contains(line, "45.0 jobs/s") || !strings.Contains(line, "eta 2s") {
		t.Fatalf("progress line rate/eta = %q", line)
	}

	// Everything done: no ETA.
	m.JobsDone.Add(90)
	line = p.Line()
	if strings.Contains(line, "eta") {
		t.Fatalf("finished run still shows eta: %q", line)
	}
}
