package obs

import (
	"fmt"
	"time"
)

// Progress renders one-line throughput summaries of a run's metrics
// for a stderr ticker: cells and jobs done/total, jobs per second, and
// a remaining-time estimate from the mean observed job rate. It holds
// no state beyond the start time, so concurrent Line calls are as safe
// as concurrent snapshots.
type Progress struct {
	m     *Metrics
	start time.Time
}

// NewProgress starts a progress view over m. Returns nil when m is
// nil; a nil Progress renders nothing.
func NewProgress(m *Metrics) *Progress {
	if m == nil {
		return nil
	}
	return &Progress{m: m, start: m.Now()}
}

// Line renders the current progress snapshot, e.g.
//
//	cells 3/6 jobs 95/180 9500.0 jobs/s eta 9ms
//
// The ETA extrapolates the mean job rate since start; before any job
// completes (or when the total is unknown) it is omitted. Returns ""
// on a nil receiver.
func (p *Progress) Line() string {
	if p == nil {
		return ""
	}
	elapsed := p.m.Now().Sub(p.start)
	cellsDone, cellsTotal := p.m.CellsDone.Value(), p.m.CellsTotal.Value()
	jobsDone, jobsTotal := p.m.JobsDone.Value(), p.m.JobsTotal.Value()
	line := fmt.Sprintf("cells %d/%d jobs %d/%d", cellsDone, cellsTotal, jobsDone, jobsTotal)
	if elapsed > 0 && jobsDone > 0 {
		rate := float64(jobsDone) / elapsed.Seconds()
		line += fmt.Sprintf(" %.1f jobs/s", rate)
		if remaining := jobsTotal - jobsDone; remaining > 0 && rate > 0 {
			eta := time.Duration(float64(remaining) / rate * float64(time.Second)).Round(time.Millisecond)
			line += fmt.Sprintf(" eta %s", eta)
		}
	}
	return line
}
