package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// holds observations v (in nanoseconds) with 2^(i-1) < v <= 2^i-ish —
// precisely, bucket index is bits.Len64(v), so bucket 0 is v==0 and
// bucket 47 holds everything from ~70 hours up. Power-of-two buckets
// trade resolution for a fixed-size, allocation-free, lock-free
// structure: recording is one AddInt64 on a flat array plus two more
// for count/sum.
const histBuckets = 48

// Histogram is a fixed-bucket latency histogram safe for concurrent
// recording and snapshotting. The zero value is ready to use. Like
// Counter it is embedded by value in Metrics; record through a
// nil-checked *Metrics.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a nanosecond observation to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one observation of ns nanoseconds. Negative values
// are clamped to zero (a FakeClock stepping backwards is a test bug,
// not something to corrupt the distribution with).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// BucketCount is one non-empty histogram bucket in a snapshot:
// observations v with v <= UpperNs that fell in no lower bucket.
type BucketCount struct {
	UpperNs int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets
// are listed sparsely (non-empty only) in increasing UpperNs order.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumNs   int64         `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// upperBound returns the inclusive upper edge of bucket i.
func upperBound(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1)
	}
	return int64(1)<<i - 1
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]) of
// the recorded distribution: the inclusive upper edge of the first
// bucket at which the cumulative count reaches q*Count. With
// power-of-two buckets the bound is within 2x of the true quantile —
// the right resolution for latency gating (a p99 regression worth
// acting on moves buckets). Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := int64(q * float64(s.Count))
	if need < 1 {
		need = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= need {
			return b.UpperNs
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperNs
}

// Snapshot copies the histogram. Each bucket is read atomically, so a
// snapshot taken during concurrent recording may be a few observations
// behind count/sum but never corrupt; after the recorders quiesce it
// is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperNs: upperBound(i), Count: n})
		}
	}
	return s
}
