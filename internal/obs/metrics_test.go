package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testClock() Clock {
	return FakeClock(time.Unix(0, 0).UTC(), time.Millisecond)
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero Counter has value %d", c.Value())
	}
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("Counter value = %d, want 7", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Gauge value = %d, want 7", got)
	}
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("Gauge after Set = %d, want 2", got)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{1 << 46, 47},
		{1<<62 + 5, 47}, // clamped to the top bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's upper bound must land back in that bucket (except
	// the open-ended top), so snapshot edges are faithful.
	for i := 1; i < histBuckets-1; i++ {
		if got := bucketIndex(upperBound(i)); got != i {
			t.Errorf("bucketIndex(upperBound(%d)) = %d", i, got)
		}
		if got := bucketIndex(upperBound(i) + 1); got != i+1 {
			t.Errorf("bucketIndex(upperBound(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{0, 1, 5, 5, 1000, -7} {
		h.Observe(ns)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.SumNs != 1011 {
		t.Fatalf("SumNs = %d, want 1011", s.SumNs)
	}
	// Sparse buckets: 0 (ns=0 and the clamped -7), 1 (ns=1), 7 (5,5), 10 (1000).
	want := []BucketCount{{0, 2}, {1, 1}, {7, 2}, {1023, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, b, want[i])
		}
	}
}

// TestConcurrentSnapshotStress hammers every concurrent structure —
// counters, the histogram, spans, and a grid tracker — from many
// goroutines while a reader takes snapshots, then checks the exact
// final totals. Run under -race this is the satellite stress test for
// snapshot-on-read safety.
func TestConcurrentSnapshotStress(t *testing.T) {
	m := New(testClock())
	const workers = 8
	const perWorker = 500

	tracker := m.StartGrid([]string{"a", "b"}, workers*perWorker/2)
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := m.Snapshot()
			if s.JobsDone < last {
				t.Errorf("JobsDone went backwards: %d then %d", last, s.JobsDone)
				return
			}
			last = s.JobsDone
			if s.EngineRunNs.Count < 0 {
				t.Errorf("negative histogram count %d", s.EngineRunNs.Count)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.JobsDone.Add(1)
				m.EngineRunNs.Observe(int64(i))
				m.recordSpan(fmt.Sprintf("phase%d", w%3), time.Duration(i))
				tracker.JobDone(w%2, int64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	tracker.Finish()

	s := m.Snapshot()
	total := int64(workers * perWorker)
	if s.JobsDone != total {
		t.Errorf("JobsDone = %d, want %d", s.JobsDone, total)
	}
	if s.EngineRunNs.Count != total {
		t.Errorf("histogram count = %d, want %d", s.EngineRunNs.Count, total)
	}
	var bucketSum, spanCount int64
	for _, b := range s.EngineRunNs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
	for _, sp := range s.Spans {
		spanCount += sp.Count
	}
	if spanCount != total {
		t.Errorf("span count sum = %d, want %d", spanCount, total)
	}
	if len(s.Cells) != 2 {
		t.Fatalf("cells = %+v, want 2 entries", s.Cells)
	}
	if got := s.Cells[0].Jobs + s.Cells[1].Jobs; got != total {
		t.Errorf("cell job sum = %d, want %d", got, total)
	}
	if s.CellsDone != 2 || s.CellsTotal != 2 {
		t.Errorf("cells done/total = %d/%d, want 2/2", s.CellsDone, s.CellsTotal)
	}
}

func TestNilSafety(t *testing.T) {
	// Everything the pipeline calls with observability off must accept
	// nil receivers / inert values without panicking.
	var m *Metrics
	if m.Snapshot() != nil {
		t.Error("nil Metrics snapshot should be nil")
	}
	var e *EngineMetrics
	e.RecordRun(100, 5, 2)
	var tr *GridTracker
	tr = m.StartGrid([]string{"x"}, 1)
	if tr != nil {
		t.Error("StartGrid on nil Metrics should return nil")
	}
	tr.JobDone(0, 1)
	tr.Finish()
	if p := NewProgress(nil); p != nil || p.Line() != "" {
		t.Error("nil Progress should render nothing")
	}
	Span{}.End()
}

func TestEngineMetricsRecordRun(t *testing.T) {
	var e EngineMetrics
	e.RecordRun(720, 10, 3)
	e.RecordRun(24, 1, 0)
	if e.Runs.Value() != 2 || e.Hours.Value() != 744 || e.Instances.Value() != 11 || e.Sold.Value() != 3 {
		t.Errorf("EngineMetrics = runs %d hours %d inst %d sold %d",
			e.Runs.Value(), e.Hours.Value(), e.Instances.Value(), e.Sold.Value())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	m := New(testClock())
	m.recordSpan("zeta", 5)
	m.recordSpan("alpha", 7)
	m.recordSpan("zeta", 1)
	s := m.Snapshot()
	if len(s.Spans) != 2 || s.Spans[0].Name != "alpha" || s.Spans[1].Name != "zeta" {
		t.Fatalf("spans not sorted by name: %+v", s.Spans)
	}
	z := s.Spans[1]
	if z.Count != 2 || z.TotalNs != 6 || z.MinNs != 1 || z.MaxNs != 5 {
		t.Fatalf("zeta span = %+v", z)
	}
}
