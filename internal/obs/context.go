package obs

import "context"

// ctxKey is the private context key for a run's *Metrics.
type ctxKey struct{}

// WithMetrics returns a context carrying m. The experiment drivers
// pick it up with FromContext, so observability rides the same context
// that already threads cancellation through the pipeline and no
// signature outside the drivers changes.
func WithMetrics(ctx context.Context, m *Metrics) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, m)
}

// FromContext returns the context's *Metrics, or nil when
// observability is off. Callers treat nil as "record nothing".
func FromContext(ctx context.Context) *Metrics {
	m, _ := ctx.Value(ctxKey{}).(*Metrics)
	return m
}
