package obs

import "sync/atomic"

// GridTracker follows one RunGrid fan-out: per-cell job counts and
// engine time, cell completion, and the wall time from grid start to
// each cell finishing. JobDone is called from pool workers, so the
// per-cell state is atomic; a cell "completes" when its last job
// lands, whichever worker that is. A nil tracker (observability off)
// accepts every call and records nothing.
type GridTracker struct {
	m     *Metrics
	start int64 // grid start, UnixNano of the metrics clock
	cells []cellTrack
	done  atomic.Bool
}

type cellTrack struct {
	name      string
	remaining atomic.Int64
	jobs      atomic.Int64
	engineNs  atomic.Int64
	wallNs    atomic.Int64
	// resumed is set before the pool starts (single-goroutine prefill)
	// and read after it joins, so it needs no atomic.
	resumed bool
}

// StartGrid begins tracking a grid of len(names) cells with
// usersPerCell jobs each, booking the cell totals on m. Returns nil
// when m is nil.
func (m *Metrics) StartGrid(names []string, usersPerCell int) *GridTracker {
	if m == nil {
		return nil
	}
	m.CellsTotal.Add(int64(len(names)))
	t := &GridTracker{m: m, start: m.Now().UnixNano(), cells: make([]cellTrack, len(names))}
	for i, name := range names {
		t.cells[i].name = name
		t.cells[i].remaining.Store(int64(usersPerCell))
	}
	return t
}

// CellResumed marks one cell as restored from a spill store: none of
// its jobs will run, it books no engine time, and the manifest reports
// it as resumed rather than computed. Called during the single-threaded
// resume prefill, before any JobDone.
func (t *GridTracker) CellResumed(cell int) {
	if t == nil {
		return
	}
	c := &t.cells[cell]
	c.resumed = true
	c.remaining.Store(0)
	t.m.CellsResumed.Add(1)
}

// JobDone books one completed (cell, user) job that spent engineNs in
// the engine. When the cell's last job lands, the cell is marked done
// and its wall time (grid start to now) is captured.
func (t *GridTracker) JobDone(cell int, engineNs int64) {
	if t == nil {
		return
	}
	c := &t.cells[cell]
	c.jobs.Add(1)
	c.engineNs.Add(engineNs)
	if c.remaining.Add(-1) == 0 {
		c.wallNs.Store(t.m.Now().UnixNano() - t.start)
		t.m.CellsDone.Add(1)
	}
}

// JobsDone books n completed (cell, user) jobs in one call — the batch
// engine advances a whole cell's cohort in a single invocation and
// reports it here rather than once per user. engineNs is the summed
// engine wall time of those jobs.
func (t *GridTracker) JobsDone(cell, n int, engineNs int64) {
	if t == nil || n <= 0 {
		return
	}
	c := &t.cells[cell]
	c.jobs.Add(int64(n))
	c.engineNs.Add(engineNs)
	if c.remaining.Add(-int64(n)) == 0 {
		c.wallNs.Store(t.m.Now().UnixNano() - t.start)
		t.m.CellsDone.Add(1)
	}
}

// Finish flushes the grid's per-cell stats into the metrics, including
// cells that never completed (a cancelled grid records the partial job
// counts it did finish, with WallNs zero). Idempotent, so it can be
// deferred and still guarded against double RunGrid exits.
func (t *GridTracker) Finish() {
	if t == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	stats := make([]CellStat, len(t.cells))
	for i := range t.cells {
		c := &t.cells[i]
		stats[i] = CellStat{
			Name:     c.name,
			Jobs:     c.jobs.Load(),
			EngineNs: c.engineNs.Load(),
			WallNs:   c.wallNs.Load(),
			Resumed:  c.resumed,
		}
	}
	t.m.recordCells(stats)
}
