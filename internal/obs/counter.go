package obs

import "sync/atomic"

// Counter is a monotone event counter. The zero value is ready to use;
// Add and Value are lock-free and allocation-free, so counters can sit
// directly on the worker pool's job path. Counter is used by value
// inside Metrics — all hooks receive *Metrics (or *EngineMetrics) and
// nil-check it, which is how "observability off" costs one branch.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins instantaneous value (e.g. the number of
// in-flight jobs). Like Counter, the zero value is ready and all
// methods are lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
