package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestManifestGolden pins the manifest JSON schema byte-for-byte. The
// FakeClock normalizes every timestamp and duration, and build info /
// memory capture are skipped, so the serialization is fully
// deterministic — any field rename, reorder, or type change shows up
// as a golden diff and demands a ManifestSchema bump.
func TestManifestGolden(t *testing.T) {
	clock := FakeClock(time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC), time.Minute)
	m := New(clock)
	ctx := WithMetrics(context.Background(), m)

	mf := NewManifest("riexp", []string{"-experiment", "cohort", "-seed", "2018"}, clock)

	sp := StartSpan(ctx, "grid")
	m.JobsTotal.Add(4)
	tr := m.StartGrid([]string{"keep-reserved", "sell-a3t4"}, 2)
	for job, engineNs := range []int64{1500, 2500, 900, 4100} {
		m.JobsDone.Add(1)
		m.EngineRunNs.Observe(engineNs)
		m.Engine.RecordRun(720, 3, 1)
		tr.JobDone(job/2, engineNs)
	}
	tr.Finish()
	sp.End()
	m.BaselineHits.Add(3)
	m.BaselineMisses.Add(1)

	mf.Seed = 2018
	mf.Config = map[string]any{"experiment": "cohort", "pergroup": 5}
	mf.Trace = &TraceIngest{
		Loaded:  []string{"u1.csv", "u2.csv"},
		Skipped: []SkippedFile{{File: "u3.csv", Err: "gzip: invalid header"}},
	}
	mf.Finalize(clock, m, 0, "")

	var buf bytes.Buffer
	if err := mf.Write(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "manifest.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("manifest drifted from golden (run with -update after a deliberate schema change, and bump ManifestSchema):\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestManifestBuildInfoAndMem(t *testing.T) {
	clock := FakeClock(time.Unix(0, 0).UTC(), time.Second)
	mf := NewManifest("ritest", nil, clock)
	mf.FillBuildInfo()
	if mf.GoVersion == "" {
		t.Error("FillBuildInfo left GoVersion empty")
	}
	mf.CaptureMem()
	if mf.Mem == nil || mf.Mem.Mallocs == 0 {
		t.Errorf("CaptureMem recorded nothing: %+v", mf.Mem)
	}
	mf.Finalize(clock, nil, 3, "partial trace ingestion")
	if mf.WallNs != time.Second.Nanoseconds() {
		t.Errorf("WallNs = %d, want 1s", mf.WallNs)
	}
	if mf.Outcome.ExitCode != 3 || mf.Outcome.Error == "" {
		t.Errorf("outcome = %+v", mf.Outcome)
	}
	if mf.Metrics != nil {
		t.Error("Finalize(nil metrics) should leave Metrics nil")
	}
	if mf.Args == nil {
		t.Error("nil args should normalize to an empty slice for stable JSON")
	}
}

func TestManifestWriteFile(t *testing.T) {
	clock := FakeClock(time.Unix(0, 0).UTC(), time.Second)
	mf := NewManifest("ritest", []string{}, clock)
	mf.Finalize(clock, nil, 0, "")

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := mf.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Schema != ManifestSchema || back.Tool != "ritest" {
		t.Errorf("round-trip = schema %d tool %q", back.Schema, back.Tool)
	}

	if err := mf.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")); err == nil {
		t.Error("WriteFile into a missing directory should fail")
	}
}
