// Package obs is the reproduction's zero-dependency observability
// layer: allocation-free atomic counters and fixed-bucket latency
// histograms for the experiment pipeline's hot paths, a context-first
// Span API for coarse phase timing, a grid tracker for cells×users
// fan-outs, a progress renderer, and a run-manifest writer that
// records what produced a result file (flags, seeds, build info,
// per-cell stats) as deterministic JSON.
//
// The package's one invariant, pinned by the differential suite in
// internal/experiments: enabling observability must not perturb
// experiment results. Everything here only *reads* the pipeline —
// metrics are monotone counters fed by atomic adds, timing flows
// through the sanctioned Clock seam (clock.go), and nothing in this
// package feeds back into cohort synthesis, reservation planning or
// the cost engine. Disabled is the default: a nil *Metrics makes
// every hook a nil-check and return, so the unobserved pipeline pays
// nothing.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Metrics is the root of one run's counters, histograms, spans and
// grid stats. The fixed counter fields are safe for concurrent use by
// the worker pool (atomic, allocation-free); spans and cell stats go
// through a mutex because they are recorded at phase granularity, far
// off the hot path. A nil *Metrics is valid everywhere and means
// observability is off.
type Metrics struct {
	clock Clock

	// Engine is filled by simulate.Run's end-of-run hook when the
	// engine Config carries a pointer to it.
	Engine EngineMetrics

	// JobsTotal and JobsDone count worker-pool jobs: every job admitted
	// to a fan-out and every job that ran to completion without error.
	JobsTotal Counter
	JobsDone  Counter

	// BaselineHits and BaselineMisses count Keep-Reserved baseline
	// cache lookups in the cohort plan.
	BaselineHits   Counter
	BaselineMisses Counter

	// CellsTotal and CellsDone count grid cells admitted and fully
	// completed across every RunGrid call of the run.
	CellsTotal Counter
	CellsDone  Counter

	// CellsResumed counts grid cells restored from a spill store
	// (-resume) instead of recomputed; a resumed cell is counted in
	// CellsTotal but never in CellsDone, so the manifest cleanly splits
	// resumed-vs-recomputed work.
	CellsResumed Counter

	// JobsStolen counts pool jobs claimed from another worker's shard
	// by the work-stealing scheduler. Timing-dependent by nature —
	// useful for judging skew, never part of any result.
	JobsStolen Counter

	// EngineRunNs is the wall-time distribution of individual engine
	// runs, timed at the experiment-driver call sites (the engine
	// itself never reads a clock).
	EngineRunNs Histogram

	// Serving counters, fed by the rid recommendation daemon
	// (internal/ridserver). Batch tools never touch them, so the
	// manifest's serving section stays absent for offline runs.
	//
	// ServeRequests counts requests admitted past the load-shedding
	// gate; ServeShed those rejected by it with 503. ServeTimeouts
	// counts admitted requests that exhausted their per-request
	// deadline, ServePanics handler panics contained to a 500.
	// SnapshotReloads and SnapshotReloadFails count SIGHUP snapshot
	// swaps and reloads that failed validation (the server keeps the
	// old snapshot). ServeRequestNs is the admitted requests' wall-time
	// distribution, timed through the metrics clock.
	ServeRequests       Counter
	ServeShed           Counter
	ServeTimeouts       Counter
	ServePanics         Counter
	SnapshotReloads     Counter
	SnapshotReloadFails Counter
	ServeRequestNs      Histogram

	// Market counters, fed by the two-sided marketplace session driver
	// (internal/experiments.RunMarketScenario). Offline cohort tools
	// never touch them, so the manifest's market section stays absent
	// unless a market session ran.
	//
	// MarketListings counts listings placed on the order book,
	// MarketTrades matched fills, and MarketExpiries listings that aged
	// off the book unsold. MarketBuyOrders counts buyer demand units
	// entering the session and MarketFreshBuys the units that fell
	// through to a fresh reservation because the book held no listing
	// worth taking. MarketHoursToSale accumulates listing-to-fill waits
	// in hours over matched trades, so mean time-to-sale derives from it
	// and MarketTrades.
	MarketListings    Counter
	MarketTrades      Counter
	MarketExpiries    Counter
	MarketBuyOrders   Counter
	MarketFreshBuys   Counter
	MarketHoursToSale Counter

	mu    sync.Mutex
	spans map[string]*SpanStat
	cells []CellStat
}

// New returns a Metrics instance reading time from clock. Pass
// SystemClock in binaries and a FakeClock in tests.
func New(clock Clock) *Metrics {
	return &Metrics{clock: clock, spans: make(map[string]*SpanStat)}
}

// Now reads the metrics' clock. It is the only way observability code
// outside this package should obtain the time.
func (m *Metrics) Now() time.Time { return m.clock() }

// EngineHook returns the engine-metrics target to inject into
// simulate.Config, or nil when m is nil — so drivers can write
// cfg.Metrics = m.EngineHook() without guarding.
func (m *Metrics) EngineHook() *EngineMetrics {
	if m == nil {
		return nil
	}
	return &m.Engine
}

// recordSpan folds one completed span into the per-name totals.
func (m *Metrics) recordSpan(name string, d time.Duration) {
	ns := d.Nanoseconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.spans[name]
	if !ok {
		s = &SpanStat{Name: name, MinNs: ns}
		m.spans[name] = s
	}
	s.Count++
	s.TotalNs += ns
	if ns < s.MinNs {
		s.MinNs = ns
	}
	if ns > s.MaxNs {
		s.MaxNs = ns
	}
}

// recordCells appends one grid's per-cell stats, in cell order.
func (m *Metrics) recordCells(cells []CellStat) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells = append(m.cells, cells...)
}

// SpanStat is the aggregated timing of one span name.
type SpanStat struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// CellStat is one grid cell's observed cost: how many (cell, user)
// jobs completed, the summed wall time of its engine runs, and the
// wall time from grid start to the cell's completion. Per-cell
// allocation attribution is deliberately absent: cells share one
// worker pool, so heap deltas cannot be assigned to a cell; the
// manifest's MemSnapshot and the bench gate's allocs/op cover that
// axis instead.
type CellStat struct {
	Name     string `json:"name"`
	Jobs     int64  `json:"jobs"`
	EngineNs int64  `json:"engine_ns"`
	WallNs   int64  `json:"wall_ns"`
	// Resumed marks a cell restored from a spill store rather than
	// computed: its Jobs and EngineNs are zero because this run never
	// ran them.
	Resumed bool `json:"resumed,omitempty"`
}

// Snapshot is a point-in-time copy of every metric, in the fixed field
// order the manifest serializes. Concurrent snapshots are safe: each
// counter is read atomically, so a snapshot taken mid-run is monotone
// with respect to earlier snapshots, though not a consistent cut
// across counters. A snapshot taken after the pipeline quiesces is
// exact.
type Snapshot struct {
	EngineRuns      int64             `json:"engine_runs"`
	EngineHours     int64             `json:"engine_hours"`
	EngineInstances int64             `json:"engine_instances"`
	EngineSold      int64             `json:"engine_sold"`
	BatchRuns       int64             `json:"engine_batch_runs"`
	BatchUsers      int64             `json:"engine_batch_users"`
	JobsTotal       int64             `json:"jobs_total"`
	JobsDone        int64             `json:"jobs_done"`
	BaselineHits    int64             `json:"baseline_hits"`
	BaselineMisses  int64             `json:"baseline_misses"`
	CellsTotal      int64             `json:"cells_total"`
	CellsDone       int64             `json:"cells_done"`
	CellsResumed    int64             `json:"cells_resumed"`
	JobsStolen      int64             `json:"jobs_stolen"`
	EngineRunNs     HistogramSnapshot `json:"engine_run_ns"`
	Serving         *ServingSnapshot  `json:"serving,omitempty"`
	Market          *MarketSnapshot   `json:"market,omitempty"`
	Spans           []SpanStat        `json:"spans,omitempty"`
	Cells           []CellStat        `json:"cells,omitempty"`
}

// ServingSnapshot is the manifest's serving section: the rid daemon's
// request, shed, timeout, panic and reload counters plus the request
// latency distribution. It is present only when the process actually
// served (any serving counter nonzero), so batch-tool manifests are
// unchanged.
type ServingSnapshot struct {
	Requests    int64             `json:"requests"`
	Shed        int64             `json:"shed"`
	Timeouts    int64             `json:"timeouts"`
	Panics      int64             `json:"panics"`
	Reloads     int64             `json:"reloads"`
	ReloadFails int64             `json:"reload_fails"`
	RequestNs   HistogramSnapshot `json:"request_ns"`
}

// MarketSnapshot is the manifest's market section: the two-sided
// marketplace session's listing, fill, expiry and buyer-demand
// counters. It is present only when a market session actually ran
// (any market counter nonzero), so cohort-tool manifests are
// unchanged.
type MarketSnapshot struct {
	Listings    int64 `json:"listings"`
	Trades      int64 `json:"trades"`
	Expiries    int64 `json:"expiries"`
	BuyOrders   int64 `json:"buy_orders"`
	FreshBuys   int64 `json:"fresh_buys"`
	HoursToSale int64 `json:"hours_to_sale_total"`
}

// Snapshot captures the current metric values. Spans are sorted by
// name and cells appear in recording order, so serializing a snapshot
// of a deterministic run yields deterministic JSON. Returns nil for a
// nil receiver.
func (m *Metrics) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	s := &Snapshot{
		EngineRuns:      m.Engine.Runs.Value(),
		EngineHours:     m.Engine.Hours.Value(),
		EngineInstances: m.Engine.Instances.Value(),
		EngineSold:      m.Engine.Sold.Value(),
		BatchRuns:       m.Engine.BatchRuns.Value(),
		BatchUsers:      m.Engine.BatchUsers.Value(),
		JobsTotal:       m.JobsTotal.Value(),
		JobsDone:        m.JobsDone.Value(),
		BaselineHits:    m.BaselineHits.Value(),
		BaselineMisses:  m.BaselineMisses.Value(),
		CellsTotal:      m.CellsTotal.Value(),
		CellsDone:       m.CellsDone.Value(),
		CellsResumed:    m.CellsResumed.Value(),
		JobsStolen:      m.JobsStolen.Value(),
		EngineRunNs:     m.EngineRunNs.Snapshot(),
	}
	serving := ServingSnapshot{
		Requests:    m.ServeRequests.Value(),
		Shed:        m.ServeShed.Value(),
		Timeouts:    m.ServeTimeouts.Value(),
		Panics:      m.ServePanics.Value(),
		Reloads:     m.SnapshotReloads.Value(),
		ReloadFails: m.SnapshotReloadFails.Value(),
		RequestNs:   m.ServeRequestNs.Snapshot(),
	}
	if serving.Requests+serving.Shed+serving.Timeouts+serving.Panics+serving.Reloads+serving.ReloadFails > 0 {
		s.Serving = &serving
	}
	market := MarketSnapshot{
		Listings:    m.MarketListings.Value(),
		Trades:      m.MarketTrades.Value(),
		Expiries:    m.MarketExpiries.Value(),
		BuyOrders:   m.MarketBuyOrders.Value(),
		FreshBuys:   m.MarketFreshBuys.Value(),
		HoursToSale: m.MarketHoursToSale.Value(),
	}
	if market.Listings+market.Trades+market.Expiries+market.BuyOrders+market.FreshBuys+market.HoursToSale > 0 {
		s.Market = &market
	}
	m.mu.Lock()
	for _, sp := range m.spans {
		s.Spans = append(s.Spans, *sp)
	}
	s.Cells = append(s.Cells, m.cells...)
	m.mu.Unlock()
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	return s
}

// EngineMetrics is the cost engine's end-of-run hook target: four
// atomic adds per completed run, no clock reads, no allocations. A
// nil receiver (the default engine Config) records nothing.
type EngineMetrics struct {
	// Runs counts completed simulate.Run calls.
	Runs Counter
	// Hours, Instances and Sold accumulate each run's simulated hours,
	// reserved instances, and instances sold.
	Hours     Counter
	Instances Counter
	Sold      Counter
	// BatchRuns counts completed batch-engine calls (simulate.RunBatch
	// and RunBatchTotals) and BatchUsers the users they advanced. The
	// batch engine still books one RecordRun per user, so Runs, Hours,
	// Instances and Sold mean the same thing whichever engine ran —
	// users/sec and hours/sec derive from Runs and Hours against wall
	// time; these two only separate "how many batch sweeps" from "how
	// many users per sweep".
	BatchRuns  Counter
	BatchUsers Counter
}

// RecordRun books one completed engine run.
func (e *EngineMetrics) RecordRun(hours, instances, sold int) {
	if e == nil {
		return
	}
	e.Runs.Add(1)
	e.Hours.Add(int64(hours))
	e.Instances.Add(int64(instances))
	e.Sold.Add(int64(sold))
}

// RecordBatch books one completed batch-engine call over users users.
func (e *EngineMetrics) RecordBatch(users int) {
	if e == nil {
		return
	}
	e.BatchRuns.Add(1)
	e.BatchUsers.Add(int64(users))
}
