package obs

import (
	"context"
	"time"
)

// Span times one named phase of a run (cohort planning, a grid, a
// baseline fill). It is a value type — StartSpan and End allocate
// nothing — and a Span started with observability off (no Metrics in
// the context) is inert: End is a single branch.
//
// Spans aggregate by name rather than forming a trace tree: the
// pipeline's phases are few and coarse, and per-name count/total/
// min/max is what the manifest needs.
type Span struct {
	m     *Metrics
	name  string
	start time.Time
}

// StartSpan begins a span named name using the context's Metrics.
// Context-first by convention (enforced for internal/obs by rilint's
// ctxrule): spans follow the pipeline's cancellation context, never a
// stashed one.
func StartSpan(ctx context.Context, name string) Span {
	m := FromContext(ctx)
	if m == nil {
		return Span{}
	}
	return Span{m: m, name: name, start: m.Now()}
}

// End records the span's duration. Safe to call on an inert span; call
// at most once (deferred, in practice).
func (s Span) End() {
	if s.m == nil {
		return
	}
	s.m.recordSpan(s.name, s.m.Now().Sub(s.start))
}
