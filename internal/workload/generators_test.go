package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// quickCfg keeps property tests fast enough for the full suite.
func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 40}
}

func TestGeneratorsProduceValidTraces(t *testing.T) {
	gens := []struct {
		name string
		gen  Generator
	}{
		{name: "stable", gen: StableGenerator{Base: 10, Jitter: 2, DiurnalAmp: 3}},
		{name: "diurnal", gen: DiurnalGenerator{Peak: 20, Trough: 2, Noise: 1, WeekendDip: 0.3}},
		{name: "bursty", gen: BurstyGenerator{Idle: 0, BurstHeight: 30, BurstRate: 0.05, MeanBurstLen: 6}},
		{name: "onoff", gen: OnOffGenerator{OnLevel: 8, OnHours: 9, OffHours: 15, Jitter: 1}},
		{name: "walk", gen: RandomWalkGenerator{Start: 5, Step: 0.5, Max: 40}},
		{name: "spikes", gen: SpikeTrainGenerator{Height: 12, Fraction: 0.1}},
	}
	for _, tt := range gens {
		t.Run(tt.name, func(t *testing.T) {
			tr := tt.gen.Generate("u", 500, newTestRand(1))
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if tr.Len() != 500 {
				t.Errorf("Len = %d, want 500", tr.Len())
			}
			if tr.MaxDemand() == 0 {
				t.Error("generator produced an all-zero trace")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gen := BurstyGenerator{Idle: 1, BurstHeight: 25, BurstRate: 0.03, MeanBurstLen: 5}
	a := gen.Generate("u", 300, newTestRand(7))
	b := gen.Generate("u", 300, newTestRand(7))
	if !reflect.DeepEqual(a.Demand, b.Demand) {
		t.Error("same seed produced different traces")
	}
	c := gen.Generate("u", 300, newTestRand(8))
	if reflect.DeepEqual(a.Demand, c.Demand) {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

func TestStableGeneratorBand(t *testing.T) {
	gen := StableGenerator{Base: 10, Jitter: 1, DiurnalAmp: 2}
	tr := gen.Generate("u", 2000, newTestRand(3))
	if g := Classify(tr); g != GroupStable {
		t.Errorf("stable generator classified %v (ratio %v)", g, tr.FluctuationRatio())
	}
}

func TestOnOffGeneratorDefaultsPhases(t *testing.T) {
	// Zero phase lengths must not divide by zero.
	gen := OnOffGenerator{OnLevel: 5}
	tr := gen.Generate("u", 10, newTestRand(1))
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSpikeTrainForRatioClampsBadInput(t *testing.T) {
	gen := SpikeTrainForRatio(-2, 5)
	if gen.Fraction <= 0 || gen.Fraction > 1 {
		t.Errorf("Fraction = %v, want in (0,1]", gen.Fraction)
	}
	tr := gen.Generate("u", 50, newTestRand(1))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewCohortBands(t *testing.T) {
	cfg := CohortConfig{PerGroup: 12, Hours: 1500, Seed: 42}
	traces, err := NewCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 36 {
		t.Fatalf("len = %d, want 36", len(traces))
	}
	grouped := GroupTraces(traces)
	for _, g := range []Group{GroupStable, GroupModerate, GroupVolatile} {
		if n := len(grouped[g]); n != 12 {
			t.Errorf("%v has %d users, want 12", g, n)
		}
	}
	for _, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Errorf("cohort trace invalid: %v", err)
		}
		if tr.MaxDemand() == 0 {
			t.Errorf("cohort trace %s is all zero", tr.User)
		}
	}
}

func TestNewCohortDeterministic(t *testing.T) {
	cfg := CohortConfig{PerGroup: 4, Hours: 600, Seed: 11}
	a, err := NewCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same config produced different cohorts")
	}
}

func TestNewCohortRejectsBadConfig(t *testing.T) {
	for _, cfg := range []CohortConfig{
		{PerGroup: 0, Hours: 100},
		{PerGroup: 10, Hours: 0},
		{PerGroup: -1, Hours: -1},
	} {
		if _, err := NewCohort(cfg); err == nil {
			t.Errorf("NewCohort(%+v) succeeded, want error", cfg)
		}
	}
}

func TestPropertyCohortUsersUnique(t *testing.T) {
	f := func(seed int64) bool {
		traces, err := NewCohort(CohortConfig{PerGroup: 5, Hours: 200, Seed: seed})
		if err != nil {
			return false
		}
		seen := make(map[string]bool, len(traces))
		for _, tr := range traces {
			if seen[tr.User] {
				return false
			}
			seen[tr.User] = true
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestLifecycleGeneratorsEdgeParams(t *testing.T) {
	base := StableGenerator{Base: 6, Jitter: 1, DiurnalAmp: 1}
	tests := []struct {
		name string
		gen  Generator
	}{
		{name: "rampdown at zero", gen: RampDown{Inner: base, EndFraction: 0, Tail: 0}},
		{name: "rampdown negative end", gen: RampDown{Inner: base, EndFraction: -1, Tail: 0.5}},
		{name: "rampdown beyond end", gen: RampDown{Inner: base, EndFraction: 2, Tail: 0}},
		{name: "pause covers everything", gen: PauseResume{Inner: base, PauseFraction: 0, ResumeFraction: 1}},
		{name: "pause beyond trace", gen: PauseResume{Inner: base, PauseFraction: 0.5, ResumeFraction: 5}},
		{name: "pause inverted", gen: PauseResume{Inner: base, PauseFraction: 0.9, ResumeFraction: 0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := tt.gen.Generate("u", 200, newTestRand(4))
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if tr.Len() != 200 {
				t.Errorf("Len = %d", tr.Len())
			}
		})
	}
	// Full pause zeroes the whole trace.
	tr := PauseResume{Inner: base, PauseFraction: 0, ResumeFraction: 1}.Generate("u", 100, newTestRand(1))
	if tr.TotalDemand() != 0 {
		t.Errorf("full pause left demand %d", tr.TotalDemand())
	}
	// RampDown with Tail 1 is a no-op.
	a := base.Generate("u", 100, newTestRand(9))
	b := RampDown{Inner: base, EndFraction: 0.5, Tail: 1}.Generate("u", 100, newTestRand(9))
	if !reflect.DeepEqual(a.Demand, b.Demand) {
		t.Error("Tail=1 ramp-down changed the trace")
	}
}

func TestAllGeneratorsDeterministic(t *testing.T) {
	gens := map[string]Generator{
		"stable":  StableGenerator{Base: 5, Jitter: 1, DiurnalAmp: 1},
		"diurnal": DiurnalGenerator{Peak: 10, Trough: 1, Noise: 1, WeekendDip: 0.5},
		"onoff":   OnOffGenerator{OnLevel: 4, OnHours: 8, OffHours: 16, Jitter: 0.5},
		"walk":    RandomWalkGenerator{Start: 5, Step: 0.3, Max: 20},
		"spikes":  SpikeTrainGenerator{Height: 9, Fraction: 0.2},
		"ramp":    RampDown{Inner: StableGenerator{Base: 5, Jitter: 1}, EndFraction: 0.4, Tail: 0.2},
		"pause":   PauseResume{Inner: StableGenerator{Base: 5, Jitter: 1}, PauseFraction: 0.1, ResumeFraction: 0.6},
	}
	for name, g := range gens {
		t.Run(name, func(t *testing.T) {
			a := g.Generate("u", 300, newTestRand(12))
			b := g.Generate("u", 300, newTestRand(12))
			if !reflect.DeepEqual(a.Demand, b.Demand) {
				t.Error("same seed differs")
			}
		})
	}
}
