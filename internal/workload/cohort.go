package workload

import (
	"fmt"
	"math/rand"
)

// CohortConfig describes the synthetic user population that stands in
// for the paper's 300 trace-derived users (Section VI.A): PerGroup
// users in each of the three fluctuation bands.
type CohortConfig struct {
	// PerGroup is the number of users per fluctuation group (the paper
	// uses 100).
	PerGroup int
	// Hours is the trace length (the paper uses one reservation period;
	// tests use much shorter horizons).
	Hours int
	// Seed makes the cohort reproducible.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c CohortConfig) Validate() error {
	if c.PerGroup <= 0 {
		return fmt.Errorf("workload: PerGroup = %d, must be positive", c.PerGroup)
	}
	if c.Hours <= 0 {
		return fmt.Errorf("workload: Hours = %d, must be positive", c.Hours)
	}
	return nil
}

// maxDraws bounds rejection sampling per user before falling back to
// the analytically calibrated spike-train generator.
const maxDraws = 8

// NewCohort synthesizes the experiment population: PerGroup traces per
// fluctuation band, each verified to actually lie in its band (drawn
// from a diverse pool of behavioral generators, with an analytic
// spike-train fallback that guarantees band membership).
func NewCohort(cfg CohortConfig) ([]Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var traces []Trace
	for _, g := range []Group{GroupStable, GroupModerate, GroupVolatile} {
		for i := 0; i < cfg.PerGroup; i++ {
			user := fmt.Sprintf("user-g%d-%03d", int(g), i)
			traces = append(traces, generateInBand(user, g, cfg.Hours, rng))
		}
	}
	return traces, nil
}

// generateInBand draws traces from the group's generator pool until one
// classifies into the requested band, falling back to the calibrated
// spike train.
func generateInBand(user string, g Group, hours int, rng *rand.Rand) Trace {
	pool := generatorPool(g, rng)
	for attempt := 0; attempt < maxDraws; attempt++ {
		gen := pool[rng.Intn(len(pool))]
		tr := gen.gen.Generate(user, hours, rng)
		if Classify(tr) == g && tr.MaxDemand() > 0 {
			return tr
		}
	}
	// Guaranteed fallback: spike train with the band's midpoint ratio.
	var target float64
	switch g {
	case GroupStable:
		target = 0.5
	case GroupModerate:
		target = 2.0
	default:
		target = 4.5
	}
	height := 1 + rng.Intn(20)
	return SpikeTrainForRatio(target, height).Generate(user, hours, rng)
}

// generatorPool returns the behavioral generators plausible for a
// fluctuation band, with randomized parameters. Each pool mixes
// stationary behaviors with lifecycle shapes — projects winding down
// (the marketplace's raison d'etre) and workloads that pause and
// resume (the proofs' adversarial case) — in proportions that
// reproduce the paper's outcome tails.
func generatorPool(g Group, rng *rand.Rand) []namedGenerator {
	scale := 1 + rng.Float64()*15 // user size: 1..16 instances
	stable := StableGenerator{
		Base:       2 + scale,
		Jitter:     (2 + scale) * 0.15,
		DiurnalAmp: (2 + scale) * 0.2,
	}
	switch g {
	case GroupStable:
		return []namedGenerator{
			{name: "stable", gen: stable},
			{name: "diurnal-mild", gen: DiurnalGenerator{
				Peak:       scale * 1.5,
				Trough:     scale * 0.7,
				Noise:      scale * 0.1,
				WeekendDip: 0.85,
			}},
			{name: "walk-slow", gen: RandomWalkGenerator{
				Start: scale + 2,
				Step:  0.05,
				Max:   scale * 2.5,
			}},
			{name: "stable-winddown", gen: RampDown{
				Inner:       stable,
				EndFraction: 0.5 + rng.Float64()*0.4,
				Tail:        0.4 + rng.Float64()*0.3,
			}},
			{name: "short-pause", gen: PauseResume{
				Inner:          stable,
				PauseFraction:  rng.Float64() * 0.06,
				ResumeFraction: 0.25 + rng.Float64()*0.2,
			}},
			{name: "deep-winddown", gen: RampDown{
				Inner:       stable,
				EndFraction: 0.35 + rng.Float64()*0.35,
				Tail:        0.1 + rng.Float64()*0.3,
			}},
		}
	case GroupModerate:
		return []namedGenerator{
			{name: "diurnal-deep", gen: DiurnalGenerator{
				Peak:       scale * 2,
				Trough:     0,
				Noise:      scale * 0.3,
				WeekendDip: 0.2,
			}},
			{name: "onoff", gen: OnOffGenerator{
				OnLevel:  scale * 1.5,
				OnHours:  8 + rng.Intn(6),
				OffHours: 16 + rng.Intn(20),
				Jitter:   scale * 0.2,
			}},
			{name: "bursty-mid", gen: BurstyGenerator{
				Idle:         0,
				BurstHeight:  scale * 2,
				BurstRate:    0.02,
				MeanBurstLen: 8,
			}},
			{name: "spike-2", gen: SpikeTrainForRatio(1.5+rng.Float64(), int(scale*2)+1)},
			{name: "project-ends", gen: RampDown{
				Inner:       stable,
				EndFraction: 0.2 + rng.Float64()*0.5,
				Tail:        0,
			}},
			{name: "diurnal-winddown", gen: RampDown{
				Inner: DiurnalGenerator{
					Peak:       scale * 2,
					Trough:     0,
					Noise:      scale * 0.3,
					WeekendDip: 0.2,
				},
				EndFraction: 0.25 + rng.Float64()*0.35,
				Tail:        0,
			}},
			{name: "pause-resume", gen: PauseResume{
				Inner:          stable,
				PauseFraction:  rng.Float64() * 0.06,
				ResumeFraction: 0.45 + rng.Float64()*0.3,
			}},
		}
	default: // GroupVolatile
		return []namedGenerator{
			{name: "bursty-rare", gen: BurstyGenerator{
				Idle:         0,
				BurstHeight:  scale * 4,
				BurstRate:    0.003,
				MeanBurstLen: 5,
			}},
			{name: "spike-4", gen: SpikeTrainForRatio(3.5+rng.Float64()*3, int(scale*3)+1)},
			{name: "burst-then-quiet", gen: RampDown{
				Inner: BurstyGenerator{
					Idle:         0,
					BurstHeight:  scale * 4,
					BurstRate:    0.02,
					MeanBurstLen: 6,
				},
				EndFraction: 0.2 + rng.Float64()*0.3,
				Tail:        0,
			}},
			{name: "quiet-then-burst", gen: PauseResume{
				Inner:          SpikeTrainForRatio(2.8+rng.Float64(), int(scale*4)+1),
				PauseFraction:  rng.Float64() * 0.06,
				ResumeFraction: 0.3 + rng.Float64()*0.35,
			}},
		}
	}
}
