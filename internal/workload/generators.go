package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator produces a synthetic demand trace. Implementations are
// deterministic given the supplied random source, so experiments are
// reproducible from a seed.
type Generator interface {
	// Generate produces an hours-long trace for the named user.
	Generate(user string, hours int, rng *rand.Rand) Trace
}

// clampInt converts a float sample to a non-negative integer demand.
func clampInt(x float64) int {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	return int(math.Round(x))
}

// StableGenerator emits demand that hovers around a base level with
// small Gaussian jitter and a mild diurnal swing: enterprise steady
// workloads, the paper's Group 1 (sigma/mu < 1).
type StableGenerator struct {
	// Base is the mean instance count (>= 1 for a meaningful trace).
	Base float64
	// Jitter is the standard deviation of hourly Gaussian noise.
	Jitter float64
	// DiurnalAmp is the amplitude of the 24-hour sinusoidal component.
	DiurnalAmp float64
}

// Generate implements Generator.
func (g StableGenerator) Generate(user string, hours int, rng *rand.Rand) Trace {
	demand := make([]int, hours)
	phase := rng.Float64() * 2 * math.Pi
	for t := range demand {
		diurnal := g.DiurnalAmp * math.Sin(2*math.Pi*float64(t%24)/24+phase)
		demand[t] = clampInt(g.Base + diurnal + rng.NormFloat64()*g.Jitter)
	}
	return Trace{User: user, Demand: demand}
}

// DiurnalGenerator emits a day/night web-serving pattern: a sinusoid
// with configurable peak-to-trough swing plus noise. Depending on the
// swing it lands in Group 1 or Group 2.
type DiurnalGenerator struct {
	// Peak and Trough bound the sinusoid (Peak >= Trough >= 0).
	Peak, Trough float64
	// Noise is the standard deviation of hourly Gaussian noise.
	Noise float64
	// WeekendDip scales weekend demand (0 = no traffic on weekends,
	// 1 = weekends identical to weekdays).
	WeekendDip float64
}

// Generate implements Generator.
func (g DiurnalGenerator) Generate(user string, hours int, rng *rand.Rand) Trace {
	demand := make([]int, hours)
	mid := (g.Peak + g.Trough) / 2
	amp := (g.Peak - g.Trough) / 2
	dip := g.WeekendDip
	if dip <= 0 {
		dip = 1
	}
	for t := range demand {
		level := mid + amp*math.Sin(2*math.Pi*float64(t%24)/24)
		if (t/24)%7 >= 5 { // Saturday, Sunday
			level *= dip
		}
		demand[t] = clampInt(level + rng.NormFloat64()*g.Noise)
	}
	return Trace{User: user, Demand: demand}
}

// BurstyGenerator emits mostly idle demand with Poisson-arriving bursts
// of geometric duration: batch analytics jobs, the paper's Group 2/3.
type BurstyGenerator struct {
	// Idle is the instance count between bursts.
	Idle float64
	// BurstHeight is the mean instance count during a burst.
	BurstHeight float64
	// BurstRate is the per-hour probability that a burst starts.
	BurstRate float64
	// MeanBurstLen is the mean burst duration in hours (geometric).
	MeanBurstLen float64
}

// Generate implements Generator.
func (g BurstyGenerator) Generate(user string, hours int, rng *rand.Rand) Trace {
	demand := make([]int, hours)
	remaining := 0
	height := 0.0
	for t := range demand {
		if remaining == 0 && rng.Float64() < g.BurstRate {
			remaining = 1
			if g.MeanBurstLen > 1 {
				for rng.Float64() < 1-1/g.MeanBurstLen {
					remaining++
				}
			}
			height = g.BurstHeight * (0.5 + rng.Float64())
		}
		if remaining > 0 {
			demand[t] = clampInt(height + rng.NormFloat64()*height/10)
			remaining--
		} else {
			demand[t] = clampInt(g.Idle + rng.NormFloat64()*g.Idle/10)
		}
	}
	return Trace{User: user, Demand: demand}
}

// OnOffGenerator alternates between an on level and zero with fixed
// duty periods plus jitter: dev/test clusters shut down overnight.
type OnOffGenerator struct {
	// OnLevel is the instance count while on.
	OnLevel float64
	// OnHours and OffHours are the nominal phase lengths.
	OnHours, OffHours int
	// Jitter is the standard deviation of noise while on.
	Jitter float64
}

// Generate implements Generator.
func (g OnOffGenerator) Generate(user string, hours int, rng *rand.Rand) Trace {
	demand := make([]int, hours)
	on, off := g.OnHours, g.OffHours
	if on <= 0 {
		on = 1
	}
	if off <= 0 {
		off = 1
	}
	cycle := on + off
	for t := range demand {
		if t%cycle < on {
			demand[t] = clampInt(g.OnLevel + rng.NormFloat64()*g.Jitter)
		}
	}
	return Trace{User: user, Demand: demand}
}

// RandomWalkGenerator emits a reflected random walk: organically
// growing or shrinking deployments.
type RandomWalkGenerator struct {
	// Start is the initial instance count.
	Start float64
	// Step is the standard deviation of the hourly increment.
	Step float64
	// Max caps the walk (0 means uncapped).
	Max float64
}

// Generate implements Generator.
func (g RandomWalkGenerator) Generate(user string, hours int, rng *rand.Rand) Trace {
	demand := make([]int, hours)
	level := g.Start
	for t := range demand {
		level += rng.NormFloat64() * g.Step
		if level < 0 {
			level = -level // reflect at zero
		}
		if g.Max > 0 && level > g.Max {
			level = 2*g.Max - level
		}
		demand[t] = clampInt(level)
	}
	return Trace{User: user, Demand: demand}
}

// SpikeTrainGenerator places sparse rectangular spikes of fixed height
// on an otherwise idle trace. Its fluctuation ratio is analytically
// controllable: with spikes occupying fraction f of the hours,
// sigma/mu = sqrt((1-f)/f), so f = 1/(1+s^2) yields target ratio s.
// It is the cohort builder's guaranteed fallback for hitting a band.
type SpikeTrainGenerator struct {
	// Height is the spike height in instances.
	Height int
	// Fraction is the fraction of hours occupied by spikes, in (0, 1].
	Fraction float64
}

// SpikeTrainForRatio returns a SpikeTrainGenerator whose traces have
// fluctuation ratio ~targetRatio.
func SpikeTrainForRatio(targetRatio float64, height int) SpikeTrainGenerator {
	if targetRatio <= 0 {
		targetRatio = 0.1
	}
	return SpikeTrainGenerator{
		Height:   height,
		Fraction: 1 / (1 + targetRatio*targetRatio),
	}
}

// Generate implements Generator.
func (g SpikeTrainGenerator) Generate(user string, hours int, rng *rand.Rand) Trace {
	demand := make([]int, hours)
	want := int(math.Round(g.Fraction * float64(hours)))
	if want < 1 {
		want = 1
	}
	if want > hours {
		want = hours
	}
	// Choose exactly `want` distinct spike hours so the realized ratio
	// matches the analytic one.
	perm := rng.Perm(hours)
	for _, idx := range perm[:want] {
		demand[idx] = g.Height
	}
	return Trace{User: user, Demand: demand}
}

// namedGenerator couples a generator with a label for cohort reporting.
type namedGenerator struct {
	name string
	gen  Generator
}

func (n namedGenerator) String() string { return fmt.Sprintf("generator(%s)", n.name) }
