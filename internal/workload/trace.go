// Package workload models user demand as hourly traces and provides
// synthetic demand generators calibrated to the paper's three demand
// fluctuation bands (sigma/mu < 1, 1..3, > 3, Fig. 2). The paper's
// evaluation uses 300 users from the Google cluster-usage traces plus
// EC2 usage logs; those raw traces are external data, so this package
// synthesizes demand series with the same structure — per-user hourly
// instance counts with controllable burstiness — and package gtrace can
// parse the real trace formats when available.
package workload

import (
	"errors"
	"fmt"

	"rimarket/internal/stats"
)

// Trace is a per-user demand series: Demand[t] is the number of
// instances the user needs during hour t (the paper's d_t).
type Trace struct {
	// User identifies the trace's owner; synthetic cohorts use
	// "user-<group>-<n>" names.
	User string
	// Demand holds one non-negative instance count per hour.
	Demand []int
}

// Validate reports whether the trace is well formed (non-negative
// demand everywhere).
func (tr Trace) Validate() error {
	if tr.User == "" {
		return errors.New("workload: trace has no user")
	}
	for t, d := range tr.Demand {
		if d < 0 {
			return fmt.Errorf("workload: user %s: negative demand %d at hour %d", tr.User, d, t)
		}
	}
	return nil
}

// Len returns the trace length in hours.
func (tr Trace) Len() int { return len(tr.Demand) }

// Floats returns the demand series as float64 for statistics.
func (tr Trace) Floats() []float64 {
	out := make([]float64, len(tr.Demand))
	for i, d := range tr.Demand {
		out[i] = float64(d)
	}
	return out
}

// FluctuationRatio returns sigma/mu of the demand series, the paper's
// grouping statistic (Fig. 2).
func (tr Trace) FluctuationRatio() float64 {
	return stats.FluctuationRatio(tr.Floats())
}

// MaxDemand returns the largest hourly demand in the trace.
func (tr Trace) MaxDemand() int {
	maxD := 0
	for _, d := range tr.Demand {
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// TotalDemand returns the sum of hourly demands (instance-hours).
func (tr Trace) TotalDemand() int {
	total := 0
	for _, d := range tr.Demand {
		total += d
	}
	return total
}

// Clip returns a copy of the trace truncated to at most hours entries.
func (tr Trace) Clip(hours int) Trace {
	if hours < 0 {
		hours = 0
	}
	if hours > len(tr.Demand) {
		hours = len(tr.Demand)
	}
	return Trace{User: tr.User, Demand: append([]int(nil), tr.Demand[:hours]...)}
}

// Group is the paper's demand-fluctuation band (Fig. 2).
type Group int

// Fluctuation groups. Enums start at 1 so the zero value is invalid.
const (
	// GroupStable holds users with sigma/mu < 1 (Group 1).
	GroupStable Group = iota + 1
	// GroupModerate holds users with 1 <= sigma/mu <= 3 (Group 2).
	GroupModerate
	// GroupVolatile holds users with sigma/mu > 3 (Group 3).
	GroupVolatile
)

// String implements fmt.Stringer.
func (g Group) String() string {
	switch g {
	case GroupStable:
		return "Group 1 (stable, sigma/mu < 1)"
	case GroupModerate:
		return "Group 2 (moderate, 1 <= sigma/mu <= 3)"
	case GroupVolatile:
		return "Group 3 (volatile, sigma/mu > 3)"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// Classify returns the fluctuation group of a trace per the paper's
// thresholds.
func Classify(tr Trace) Group {
	r := tr.FluctuationRatio()
	switch {
	case r < 1:
		return GroupStable
	case r <= 3:
		return GroupModerate
	default:
		return GroupVolatile
	}
}

// GroupTraces partitions traces into the three fluctuation groups.
func GroupTraces(traces []Trace) map[Group][]Trace {
	out := make(map[Group][]Trace, 3)
	for _, tr := range traces {
		g := Classify(tr)
		out[g] = append(out[g], tr)
	}
	return out
}
