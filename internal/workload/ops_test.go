package workload

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAdd(t *testing.T) {
	a := Trace{User: "a", Demand: []int{1, 2, 3}}
	b := Trace{User: "b", Demand: []int{10, 20}}
	got := Add(a, b)
	want := []int{11, 22, 3}
	if got.User != "a" || !reflect.DeepEqual(got.Demand, want) {
		t.Errorf("Add = %+v, want user a demand %v", got, want)
	}
	// Inputs unmodified.
	if a.Demand[0] != 1 || b.Demand[0] != 10 {
		t.Error("Add mutated an input")
	}
}

func TestScale(t *testing.T) {
	tr := Trace{User: "u", Demand: []int{1, 2, 3}}
	tests := []struct {
		factor float64
		want   []int
	}{
		{factor: 2, want: []int{2, 4, 6}},
		// math.Round rounds half away from zero: 0.5->1, 1->1, 1.5->2.
		{factor: 0.5, want: []int{1, 1, 2}},
		{factor: 0, want: []int{0, 0, 0}},
		{factor: -1, want: []int{0, 0, 0}},
	}
	for _, tt := range tests {
		got := Scale(tr, tt.factor)
		if !reflect.DeepEqual(got.Demand, tt.want) {
			t.Errorf("Scale(%v) = %v, want %v", tt.factor, got.Demand, tt.want)
		}
	}
}

func TestConcat(t *testing.T) {
	a := Trace{User: "a", Demand: []int{1, 2}}
	b := Trace{User: "b", Demand: []int{3}}
	got := Concat(a, b)
	if got.User != "a" || !reflect.DeepEqual(got.Demand, []int{1, 2, 3}) {
		t.Errorf("Concat = %+v", got)
	}
}

func TestShift(t *testing.T) {
	tr := Trace{User: "u", Demand: []int{5, 6, 7}}
	tests := []struct {
		hours int
		want  []int
	}{
		{hours: 0, want: []int{5, 6, 7}},
		{hours: 2, want: []int{0, 0, 5, 6, 7}},
		{hours: -1, want: []int{6, 7}},
		{hours: -10, want: []int{}},
	}
	for _, tt := range tests {
		got := Shift(tr, tt.hours)
		if len(got.Demand) != len(tt.want) {
			t.Errorf("Shift(%d) len = %d, want %d", tt.hours, len(got.Demand), len(tt.want))
			continue
		}
		for i := range tt.want {
			if got.Demand[i] != tt.want[i] {
				t.Errorf("Shift(%d) = %v, want %v", tt.hours, got.Demand, tt.want)
				break
			}
		}
	}
	// Copy, not alias.
	shifted := Shift(tr, 0)
	shifted.Demand[0] = 99
	if tr.Demand[0] != 5 {
		t.Error("Shift aliased the input")
	}
}

func TestResample(t *testing.T) {
	tr := Trace{User: "u", Demand: []int{1, 5, 2, 0, 3, 4, 9}}
	got, err := Resample(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 4, 9} // bucket maxima
	if !reflect.DeepEqual(got.Demand, want) {
		t.Errorf("Resample = %v, want %v", got.Demand, want)
	}
	if _, err := Resample(tr, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestPropertyOpsPreserveValidity(t *testing.T) {
	f := func(rawA, rawB []uint8, shiftSel int8, widthSel uint8) bool {
		a := Trace{User: "a", Demand: make([]int, len(rawA))}
		for i, v := range rawA {
			a.Demand[i] = int(v % 11)
		}
		b := Trace{User: "b", Demand: make([]int, len(rawB))}
		for i, v := range rawB {
			b.Demand[i] = int(v % 11)
		}
		for _, tr := range []Trace{Add(a, b), Scale(a, 1.5), Concat(a, b), Shift(a, int(shiftSel))} {
			if err := tr.Validate(); err != nil {
				return false
			}
		}
		rs, err := Resample(a, int(widthSel)%5+1)
		if err != nil {
			return false
		}
		// Resampled total peak never exceeds original peak.
		return rs.MaxDemand() == a.MaxDemand()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddCommutesOnDemand(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		a := Trace{User: "a", Demand: make([]int, len(rawA))}
		for i, v := range rawA {
			a.Demand[i] = int(v % 7)
		}
		b := Trace{User: "b", Demand: make([]int, len(rawB))}
		for i, v := range rawB {
			b.Demand[i] = int(v % 7)
		}
		return reflect.DeepEqual(Add(a, b).Demand, Add(b, a).Demand)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
