package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTraceValidate(t *testing.T) {
	tests := []struct {
		name   string
		tr     Trace
		wantOK bool
	}{
		{name: "valid", tr: Trace{User: "u", Demand: []int{0, 1, 2}}, wantOK: true},
		{name: "empty demand ok", tr: Trace{User: "u"}, wantOK: true},
		{name: "no user", tr: Trace{Demand: []int{1}}},
		{name: "negative demand", tr: Trace{User: "u", Demand: []int{1, -1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.tr.Validate()
			if tt.wantOK && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.wantOK && err == nil {
				t.Error("Validate = nil, want error")
			}
		})
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := Trace{User: "u", Demand: []int{3, 0, 5, 2}}
	if got := tr.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := tr.MaxDemand(); got != 5 {
		t.Errorf("MaxDemand = %d, want 5", got)
	}
	if got := tr.TotalDemand(); got != 10 {
		t.Errorf("TotalDemand = %d, want 10", got)
	}
	fs := tr.Floats()
	if len(fs) != 4 || fs[2] != 5 {
		t.Errorf("Floats = %v", fs)
	}
}

func TestTraceClip(t *testing.T) {
	tr := Trace{User: "u", Demand: []int{1, 2, 3, 4}}
	tests := []struct {
		hours int
		want  int
	}{
		{hours: 2, want: 2},
		{hours: 0, want: 0},
		{hours: -1, want: 0},
		{hours: 10, want: 4},
	}
	for _, tt := range tests {
		got := tr.Clip(tt.hours)
		if got.Len() != tt.want {
			t.Errorf("Clip(%d).Len = %d, want %d", tt.hours, got.Len(), tt.want)
		}
	}
	// Clip must copy, not alias.
	clipped := tr.Clip(2)
	clipped.Demand[0] = 99
	if tr.Demand[0] != 1 {
		t.Error("Clip aliased the original demand slice")
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		tr   Trace
		want Group
	}{
		{
			name: "constant is stable",
			tr:   Trace{User: "u", Demand: []int{5, 5, 5, 5}},
			want: GroupStable,
		},
		{
			name: "half on half off is moderate", // sigma/mu = 1
			tr:   Trace{User: "u", Demand: []int{10, 0, 10, 0}},
			want: GroupModerate,
		},
		{
			name: "rare spike is volatile", // f=1/20 -> ratio sqrt(19) ~ 4.36
			tr:   Trace{User: "u", Demand: append([]int{40}, make([]int, 19)...)},
			want: GroupVolatile,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.tr); got != tt.want {
				t.Errorf("Classify = %v (ratio %v), want %v", got, tt.tr.FluctuationRatio(), tt.want)
			}
		})
	}
}

func TestGroupString(t *testing.T) {
	for _, g := range []Group{GroupStable, GroupModerate, GroupVolatile} {
		if s := g.String(); s == "" || s[0] != 'G' {
			t.Errorf("Group(%d).String = %q", int(g), s)
		}
	}
	if s := Group(42).String(); s != "Group(42)" {
		t.Errorf("unknown group String = %q", s)
	}
}

func TestGroupTraces(t *testing.T) {
	traces := []Trace{
		{User: "a", Demand: []int{5, 5, 5}},
		{User: "b", Demand: []int{10, 0, 10, 0}},
		{User: "c", Demand: append([]int{40}, make([]int, 19)...)},
	}
	grouped := GroupTraces(traces)
	if len(grouped[GroupStable]) != 1 || grouped[GroupStable][0].User != "a" {
		t.Errorf("stable group = %v", grouped[GroupStable])
	}
	if len(grouped[GroupModerate]) != 1 || grouped[GroupModerate][0].User != "b" {
		t.Errorf("moderate group = %v", grouped[GroupModerate])
	}
	if len(grouped[GroupVolatile]) != 1 || grouped[GroupVolatile][0].User != "c" {
		t.Errorf("volatile group = %v", grouped[GroupVolatile])
	}
}

func TestPropertySpikeTrainRatioAnalytic(t *testing.T) {
	// The spike-train generator's realized sigma/mu must track the
	// analytic sqrt((1-f)/f) within discretization error.
	f := func(seed int64, rawRatio float64) bool {
		target := 0.3 + math.Mod(math.Abs(rawRatio), 5.0)
		gen := SpikeTrainForRatio(target, 10)
		tr := gen.Generate("u", 2000, newTestRand(seed))
		got := tr.FluctuationRatio()
		return math.Abs(got-target)/target < 0.15
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
