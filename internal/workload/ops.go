package workload

import (
	"fmt"
	"math"
)

// Add sums two demand traces pointwise (a team consolidating two
// workloads onto one account). The result has the longer length, the
// first trace's user name, and keeps both inputs unmodified.
func Add(a, b Trace) Trace {
	n := len(a.Demand)
	if len(b.Demand) > n {
		n = len(b.Demand)
	}
	demand := make([]int, n)
	for i := range demand {
		if i < len(a.Demand) {
			demand[i] += a.Demand[i]
		}
		if i < len(b.Demand) {
			demand[i] += b.Demand[i]
		}
	}
	return Trace{User: a.User, Demand: demand}
}

// Scale multiplies every demand by factor, rounding to the nearest
// instance count (capacity planning what-ifs). Negative products clamp
// to zero.
func Scale(tr Trace, factor float64) Trace {
	demand := make([]int, len(tr.Demand))
	for i, d := range tr.Demand {
		v := math.Round(float64(d) * factor)
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		demand[i] = int(v)
	}
	return Trace{User: tr.User, Demand: demand}
}

// Concat appends b's demand after a's (a workload continuing across
// two recorded segments).
func Concat(a, b Trace) Trace {
	demand := make([]int, 0, len(a.Demand)+len(b.Demand))
	demand = append(demand, a.Demand...)
	demand = append(demand, b.Demand...)
	return Trace{User: a.User, Demand: demand}
}

// Shift delays the trace by the given number of hours, prepending
// zero-demand hours (a project starting later). Negative shifts drop
// leading hours instead.
func Shift(tr Trace, hours int) Trace {
	switch {
	case hours == 0:
		return Trace{User: tr.User, Demand: append([]int(nil), tr.Demand...)}
	case hours > 0:
		demand := make([]int, hours+len(tr.Demand))
		copy(demand[hours:], tr.Demand)
		return Trace{User: tr.User, Demand: demand}
	default:
		cut := -hours
		if cut > len(tr.Demand) {
			cut = len(tr.Demand)
		}
		return Trace{User: tr.User, Demand: append([]int(nil), tr.Demand[cut:]...)}
	}
}

// Resample aggregates the trace into buckets of the given width,
// summarizing each bucket with its maximum (the provisioning-relevant
// statistic: the bucket needs enough instances for its peak). A daily
// view of an hourly trace uses width 24.
func Resample(tr Trace, width int) (Trace, error) {
	if width <= 0 {
		return Trace{}, fmt.Errorf("workload: resample width %d must be positive", width)
	}
	n := (len(tr.Demand) + width - 1) / width
	demand := make([]int, n)
	for i, d := range tr.Demand {
		b := i / width
		if d > demand[b] {
			demand[b] = d
		}
	}
	return Trace{User: tr.User, Demand: demand}, nil
}
