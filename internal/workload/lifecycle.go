package workload

import (
	"math/rand"
)

// RampDown wraps a generator with a project that winds down mid-trace:
// after EndHour the demand drops to Tail times its generated value.
// This is the paper's core motivation for the marketplace — "the
// reservations still have large remaining period when users' jobs are
// finished" (Section I) — and produces the underutilized reservations
// the selling algorithms profitably shed.
type RampDown struct {
	// Inner generates the pre-wind-down demand.
	Inner Generator
	// EndFraction places the wind-down at EndFraction * hours.
	EndFraction float64
	// Tail scales demand after the wind-down (0 ends the project
	// entirely; 0.5 halves it).
	Tail float64
}

// Generate implements Generator.
func (g RampDown) Generate(user string, hours int, rng *rand.Rand) Trace {
	tr := g.Inner.Generate(user, hours, rng)
	end := int(g.EndFraction * float64(hours))
	if end < 0 {
		end = 0
	}
	for t := end; t < len(tr.Demand); t++ {
		tr.Demand[t] = clampInt(float64(tr.Demand[t]) * g.Tail)
	}
	return tr
}

// PauseResume wraps a generator with a workload that goes quiet and
// then comes back: demand is zeroed during [PauseFraction, ResumeFraction)
// of the trace. A pause spanning a selling checkpoint is exactly the
// adversarial case of the paper's proofs — the online algorithm sees an
// idle window, sells, and the demand then returns — and yields the
// small population of users who pay more than Keep-Reserved in
// Figs. 3-4 (about 1-5%, growing as the checkpoint moves earlier).
type PauseResume struct {
	// Inner generates the underlying demand.
	Inner Generator
	// PauseFraction and ResumeFraction bound the quiet window as
	// fractions of the trace length.
	PauseFraction, ResumeFraction float64
}

// Generate implements Generator.
func (g PauseResume) Generate(user string, hours int, rng *rand.Rand) Trace {
	tr := g.Inner.Generate(user, hours, rng)
	from := int(g.PauseFraction * float64(hours))
	to := int(g.ResumeFraction * float64(hours))
	if from < 0 {
		from = 0
	}
	if to > len(tr.Demand) {
		to = len(tr.Demand)
	}
	for t := from; t < to; t++ {
		tr.Demand[t] = 0
	}
	return tr
}
