package simulate

// DecisionAges resolves the checkpoint ages at which Run consults the
// selling policy for the instance reserved at hour start with the given
// 1-based batch index, exactly as the engine resolves them: a
// PerInstancePolicy assigns each instance its own single age (dropped
// when outside (0, periodHours)), a MultiCheckpointPolicy contributes
// its full age list sorted, deduplicated and restricted to
// (0, periodHours), and a plain SellingPolicy its one CheckpointAge.
// The returned ages are relative to the instance's start hour.
//
// DecisionAges exists so point-in-time policy evaluation (the rid
// daemon's "should user U sell instance I now?" lookup, built in
// internal/experiments) shares one source of truth with the replay
// engine instead of re-deriving checkpoint semantics.
//
// For policies that do not implement PerInstancePolicy the result is
// independent of start and batchIndex, so callers evaluating a whole
// cohort can resolve the ages once and share the slice.
func DecisionAges(policy SellingPolicy, start, batchIndex, periodHours int) []int {
	if perInst, ok := policy.(PerInstancePolicy); ok {
		if age := perInst.InstanceCheckpointAge(start, batchIndex, periodHours); age > 0 && age < periodHours {
			return []int{age}
		}
		return nil
	}
	return checkpointAges(policy, periodHours)
}
