package simulate

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// BatchUser is one user's input series for the batch engine: the same
// (demand, newRes) pair a simulate.Run call takes. The slices are read
// but never written or retained past the call, so callers may alias
// shared backing arrays across users — a million-user cohort built
// from a few thousand distinct traces costs a few thousand traces of
// memory.
type BatchUser struct {
	// Demand is the user's hourly demand series (d_t).
	Demand []int
	// NewRes is the user's hourly new-reservation series (n_t), the
	// same length as Demand.
	NewRes []int
}

// SoldInstance records one sale from a batch run, in reservation order
// (start ascending, batch index ascending) — the order market replay
// consumes Result.Instances in.
type SoldInstance struct {
	// Start is the hour the instance was reserved.
	Start int
	// SoldAt is the hour the instance was sold.
	SoldAt int
}

// BatchTotal is one user's lean outcome from RunBatchTotals: the exact
// cost breakdown a full Result would carry, plus the aggregates the
// experiment drivers consume, without materializing per-hour or
// per-instance records.
type BatchTotal struct {
	// Cost is the run's cost decomposition, bit-identical to the Cost
	// of the corresponding simulate.Run.
	Cost CostBreakdown
	// Sold is the number of instances sold.
	Sold int
	// IdleHours sums, over all hours, the active reserved instances
	// that served no demand — the idle-hour statistic the Keep-Reserved
	// baseline exposes via experiments.KeepStat.
	IdleHours int
	// Sales lists the sold instances in reservation order; nil unless
	// BatchOptions.RecordSales was set.
	Sales []SoldInstance
}

// BatchOptions tunes a RunBatchTotals call. The zero value means
// GOMAXPROCS-way sharding with no sale records.
type BatchOptions struct {
	// Parallelism is the number of user shards advanced concurrently;
	// 0 or negative means GOMAXPROCS. Users are independent, so the
	// outputs are identical at any parallelism.
	Parallelism int
	// RecordSales makes each BatchTotal carry its user's SoldInstance
	// list (market replay needs the sale hours; sweeps do not).
	RecordSales bool
}

// BatchUserError locates the first invalid user of a batch call. It
// wraps the exact error simulate.Run would return for that user's
// inputs, so callers can reproduce per-user error text by unwrapping.
type BatchUserError struct {
	// Index is the user's position in the batch.
	Index int
	// Err is the underlying validation error.
	Err error
}

func (e *BatchUserError) Error() string {
	return fmt.Sprintf("simulate: batch user %d: %v", e.Index, e.Err)
}

func (e *BatchUserError) Unwrap() error { return e.Err }

// maxBatchInstances bounds a batch's instance slab so column indices
// fit int32.
const maxBatchInstances = math.MaxInt32

// validateBatch applies Run's exact validation to each user in index
// order and reports the first failure, so batch and per-user callers
// reject identical inputs identically (lowest index first).
func validateBatch(users []BatchUser, cfg Config, policy SellingPolicy) error {
	for i := range users {
		if err := validateRun(users[i].Demand, users[i].NewRes, cfg, policy); err != nil {
			return &BatchUserError{Index: i, Err: err}
		}
	}
	return nil
}

// RunBatch replays every user's trace in one streaming pass and
// returns full per-user Results bit-identical to calling Run once per
// user. It is the reference-fidelity entry point: per-hour and
// per-instance records (and schedules, when cfg.RecordSchedules is
// set) are all materialized, so memory is O(users·hours). Sweeps over
// large cohorts should use RunBatchTotals instead.
func RunBatch(users []BatchUser, cfg Config, policy SellingPolicy) ([]Result, error) {
	if err := validateBatch(users, cfg, policy); err != nil {
		return nil, err
	}
	out := make([]Result, len(users))
	if len(users) == 0 {
		return out, nil
	}
	if err := runBatchShard(nil, users, 0, len(users), cfg, policy, out, nil, false); err != nil {
		return nil, err
	}
	cfg.Metrics.RecordBatch(len(users))
	return out, nil
}

// RunBatchTotals is the streaming batch engine: it advances every user
// one hour per outer step over struct-of-arrays state and returns one
// lean BatchTotal per user whose cost breakdown is bit-identical to
// the corresponding simulate.Run. Users are split into contiguous
// shards advanced concurrently (opts.Parallelism); a user's hours are
// always replayed in order by one goroutine, so float accumulation
// order — and therefore every bit of the result — is independent of
// the parallelism. ctx is polled between hours; on cancellation the
// partial outputs are discarded and ctx.Err() is returned.
func RunBatchTotals(ctx context.Context, users []BatchUser, cfg Config, policy SellingPolicy, opts BatchOptions) ([]BatchTotal, error) {
	if err := validateBatch(users, cfg, policy); err != nil {
		return nil, err
	}
	out := make([]BatchTotal, len(users))
	if len(users) == 0 {
		return out, nil
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(users) {
		workers = len(users)
	}
	if workers <= 1 {
		if err := runBatchShard(ctx, users, 0, len(users), cfg, policy, nil, out, opts.RecordSales); err != nil {
			return nil, err
		}
		cfg.Metrics.RecordBatch(len(users))
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * len(users) / workers
		hi := (w + 1) * len(users) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("simulate: batch shard panic: %v", r)
				}
			}()
			errs[w] = runBatchShard(ctx, users, lo, hi, cfg, policy, nil, out, opts.RecordSales)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cfg.Metrics.RecordBatch(len(users))
	return out, nil
}

// runBatchShard advances users[lo:hi] hour by hour. Exactly one of
// full and totals is non-nil (both indexed by absolute user index) and
// selects which outputs are materialized. The shard replays the same
// decision sequence as per-user Run — same working-sequence order,
// same checkpoint consultation order, same four cost adds per user per
// hour in the same order — so each user's accounting is bit-identical
// to a standalone Run.
//
// State is struct-of-arrays: one instance slab (start, worked, soldAt,
// nextCk columns) covering every reservation in the shard, one shared
// backing array for the per-user active windows, a per-hour checkpoint
// event schedule pre-merged across the shard's users, and per-user
// cost accumulator columns. The outer loop visits each hour once and
// streams the per-user state through the cache in user order, instead
// of walking one user's full trace at a time.
func runBatchShard(ctx context.Context, users []BatchUser, lo, hi int, cfg Config, policy SellingPolicy, full []Result, totals []BatchTotal, recordSales bool) error {
	it := cfg.Instance
	period := it.PeriodHours
	alphaHourly := it.ReservedHourly
	saleKeep := 1 - cfg.MarketFee

	sharedAges := checkpointAges(policy, period)
	perInst, isPerInstance := policy.(PerInstancePolicy)

	n := hi - lo
	maxHorizon := 0
	total := 0
	instOff := make([]int, n+1)
	for i := 0; i < n; i++ {
		u := &users[lo+i]
		instOff[i] = total
		for _, nr := range u.NewRes {
			total += nr
		}
		if len(u.Demand) > maxHorizon {
			maxHorizon = len(u.Demand)
		}
	}
	instOff[n] = total
	if total > maxBatchInstances {
		return fmt.Errorf("simulate: batch shard reserves %d instances, cap is %d", total, maxBatchInstances)
	}

	// Instance slab columns, grouped by user in reservation order
	// (start ascending, batch index ascending) — the same order each
	// user's Result.Instances comes out in.
	start := make([]int32, total)
	worked := make([]int32, total)
	soldAt := make([]int32, total)
	nextCk := make([]int32, total)
	var soloAge []int32
	if isPerInstance {
		soloAge = make([]int32, total)
	}
	var workedAtCk []int32
	var schedSlab []bool
	if full != nil {
		workedAtCk = make([]int32, total)
		for j := range workedAtCk {
			workedAtCk[j] = -1
		}
		if cfg.RecordSchedules {
			schedSlab = make([]bool, total*period)
		}
	}
	for j := range soldAt {
		soldAt[j] = -1
	}
	for i := 0; i < n; i++ {
		u := &users[lo+i]
		j := instOff[i]
		for t, nr := range u.NewRes {
			for b := 1; b <= nr; b++ {
				start[j] = int32(t)
				if isPerInstance {
					if age := perInst.InstanceCheckpointAge(t, b, period); age > 0 && age < period {
						soloAge[j] = int32(age)
					}
				}
				j++
			}
		}
	}

	// Checkpoint event schedule, pre-merged across the shard's users:
	// for each hour, the slab indices due for consultation, bucketed in
	// user order and, within a user, in working-sequence order (start
	// ascending, batch index descending) — exactly the order per-user
	// Run consults them. Built with one counting pass and one fill
	// pass; evOff[t+1] doubles as hour t's running fill cursor and ends
	// at its final value, as in Run.
	var evOff []int
	var events []int32
	if total > 0 && (len(sharedAges) > 0 || isPerInstance) {
		evOff = make([]int, maxHorizon+2)
		for i := 0; i < n; i++ {
			horizon := len(users[lo+i].Demand)
			for j := instOff[i]; j < instOff[i+1]; j++ {
				if isPerInstance {
					if a := soloAge[j]; a > 0 {
						if h := int(start[j]) + int(a); h < horizon {
							evOff[h+2]++
						}
					}
				} else {
					for _, a := range sharedAges {
						if h := int(start[j]) + a; h < horizon {
							evOff[h+2]++
						}
					}
				}
			}
		}
		for t := 2; t <= maxHorizon+1; t++ {
			evOff[t] += evOff[t-1]
		}
		events = make([]int32, evOff[maxHorizon+1])
		for i := 0; i < n; i++ {
			u := &users[lo+i]
			horizon := len(u.Demand)
			j := instOff[i]
			for t, nr := range u.NewRes {
				for jj := j + nr - 1; jj >= j; jj-- {
					if isPerInstance {
						if a := soloAge[jj]; a > 0 {
							if h := t + int(a); h < horizon {
								events[evOff[h+1]] = int32(jj)
								evOff[h+1]++
							}
						}
					} else {
						for _, a := range sharedAges {
							if h := t + a; h < horizon {
								events[evOff[h+1]] = int32(jj)
								evOff[h+1]++
							}
						}
					}
				}
				j += nr
			}
		}
	}

	// Per-user columns: active-window head/length over the shared
	// backing array, the next-activation cursor, the four cost
	// accumulators (kept separate so each accumulates in exactly the
	// order Run adds to its CostBreakdown fields), sold and idle tallies.
	activeBuf := make([]int32, total)
	aHead := make([]int32, n)
	aLen := make([]int32, n)
	nextInst := make([]int32, n)
	for i := 0; i < n; i++ {
		nextInst[i] = int32(instOff[i])
	}
	costOD := make([]float64, n)
	costUF := make([]float64, n)
	costRH := make([]float64, n)
	costSI := make([]float64, n)
	soldCnt := make([]int32, n)
	idle := make([]int64, n)

	if full != nil {
		for i := 0; i < n; i++ {
			full[lo+i].Hours = make([]HourRecord, len(users[lo+i].Demand))
		}
	}

	for t := 0; t < maxHorizon; t++ {
		if ctx != nil && t&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		evCur, evEnd := 0, 0
		if evOff != nil {
			evCur, evEnd = evOff[t], evOff[t+1]
		}
		for i := 0; i < n; i++ {
			u := &users[lo+i]
			if t >= len(u.Demand) {
				continue
			}
			base := instOff[i]
			end := instOff[i+1]

			// Drop expired instances: always a prefix of the window.
			h := int(aHead[i])
			l := int(aLen[i])
			for h < l && int(start[activeBuf[base+h]])+period <= t {
				h++
			}

			// 1. Activate this hour's batch at the tail, descending
			// batch index.
			nr := u.NewRes[t]
			if nr > 0 {
				ni := int(nextInst[i])
				for jj := ni + nr - 1; jj >= ni; jj-- {
					activeBuf[base+l] = int32(jj)
					l++
				}
				nextInst[i] = int32(ni + nr)
			}

			// 2. Selling checkpoints: consume this hour's pre-merged
			// events belonging to this user.
			var soldNow int
			var income float64
			for evCur < evEnd && int(events[evCur]) < end {
				j := int(events[evCur])
				evCur++
				if soldAt[j] >= 0 {
					continue
				}
				var due int
				if isPerInstance {
					if nextCk[j] != 0 || soloAge[j] == 0 {
						continue
					}
					due = int(soloAge[j])
				} else {
					if int(nextCk[j]) >= len(sharedAges) {
						continue
					}
					due = sharedAges[nextCk[j]]
				}
				st := int(start[j])
				if t-st != due {
					continue
				}
				nextCk[j]++
				if workedAtCk != nil {
					workedAtCk[j] = worked[j]
				}
				expiry := st + period
				ck := Checkpoint{
					Hour:      t,
					Start:     st,
					Age:       t - st,
					Worked:    int(worked[j]),
					Remaining: expiry - t,
				}
				if policy.ShouldSell(ck) {
					soldAt[j] = int32(t)
					soldNow++
					remFrac := float64(expiry-t) / float64(period)
					income += cfg.SellingDiscount * remFrac * it.Upfront * saleKeep
				}
			}
			if soldNow > 0 {
				soldCnt[i] += int32(soldNow)
				k := base + h
				for p := base + h; p < base+l; p++ {
					if j := activeBuf[p]; soldAt[j] < 0 {
						activeBuf[k] = j
						k++
					}
				}
				l = k - base
			}

			// 3. Working sequence: first d_t active instances serve.
			win := activeBuf[base+h : base+l]
			d := u.Demand[t]
			busy := d
			if busy > len(win) {
				busy = len(win)
			}
			for _, j := range win[:busy] {
				worked[j]++
				if schedSlab != nil {
					schedSlab[int(j)*period+t-int(start[j])] = true
				}
			}
			onDemand := d - len(win)
			if onDemand < 0 {
				onDemand = 0
			}

			// 4. Book C_t per Eq. (1), in Run's field order.
			costOD[i] += float64(onDemand) * it.OnDemandHourly
			costUF[i] += float64(nr) * it.Upfront
			costRH[i] += float64(len(win)) * alphaHourly
			costSI[i] += income
			idle[i] += int64(len(win) - (d - onDemand))
			if full != nil {
				full[lo+i].Hours[t] = HourRecord{
					Demand:    d,
					NewlyRes:  nr,
					ActiveRes: len(win),
					OnDemand:  onDemand,
					Sold:      soldNow,
				}
			}
			aHead[i] = int32(h)
			aLen[i] = int32(l)
		}
	}

	for i := 0; i < n; i++ {
		u := &users[lo+i]
		base, end := instOff[i], instOff[i+1]
		cost := CostBreakdown{
			OnDemand:       costOD[i],
			Upfront:        costUF[i],
			ReservedHourly: costRH[i],
			SaleIncome:     costSI[i],
		}
		if totals != nil {
			tot := &totals[lo+i]
			tot.Cost = cost
			tot.Sold = int(soldCnt[i])
			tot.IdleHours = int(idle[i])
			if recordSales && soldCnt[i] > 0 {
				tot.Sales = make([]SoldInstance, 0, soldCnt[i])
				for j := base; j < end; j++ {
					if soldAt[j] >= 0 {
						tot.Sales = append(tot.Sales, SoldInstance{Start: int(start[j]), SoldAt: int(soldAt[j])})
					}
				}
			}
		}
		if full != nil {
			res := &full[lo+i]
			res.Cost = cost
			res.Instances = make([]InstanceRecord, end-base)
			j := base
			for t, nr := range u.NewRes {
				for b := 1; b <= nr; b++ {
					rec := InstanceRecord{
						Start:              t,
						BatchIndex:         b,
						SoldAt:             int(soldAt[j]),
						Worked:             int(worked[j]),
						WorkedAtCheckpoint: int(workedAtCk[j]),
					}
					if schedSlab != nil {
						rec.Schedule = schedSlab[j*period : (j+1)*period : (j+1)*period]
					}
					res.Instances[j-base] = rec
					j++
				}
			}
		}
		cfg.Metrics.RecordRun(len(u.Demand), end-base, int(soldCnt[i]))
	}
	return nil
}
