package simulate

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// PeakActive returns the largest number of simultaneously active
// reservations during the run.
func (r Result) PeakActive() int {
	peak := 0
	for _, h := range r.Hours {
		if h.ActiveRes > peak {
			peak = h.ActiveRes
		}
	}
	return peak
}

// OnDemandHours returns the total on-demand instance-hours bought.
func (r Result) OnDemandHours() int {
	total := 0
	for _, h := range r.Hours {
		total += h.OnDemand
	}
	return total
}

// Utilization returns the fraction of active reserved instance-hours
// that served demand (1 means no reserved hour was wasted; 0 when
// nothing was ever reserved).
func (r Result) Utilization() float64 {
	var active, busy int
	for _, h := range r.Hours {
		active += h.ActiveRes
		served := h.Demand - h.OnDemand
		if served > h.ActiveRes {
			served = h.ActiveRes
		}
		busy += served
	}
	if active == 0 {
		return 0
	}
	return float64(busy) / float64(active)
}

// CumulativeCost returns the running Eq. (1) cost after each hour,
// using the run's configuration implicitly through the per-hour records
// and the supplied rates. It exists for cost-over-time plots.
func (r Result) CumulativeCost(onDemandHourly, upfront, reservedHourly, saleIncomePerSale float64) []float64 {
	out := make([]float64, len(r.Hours))
	var acc float64
	for t, h := range r.Hours {
		acc += float64(h.OnDemand)*onDemandHourly +
			float64(h.NewlyRes)*upfront +
			float64(h.ActiveRes)*reservedHourly -
			float64(h.Sold)*saleIncomePerSale
		out[t] = acc
	}
	return out
}

// WriteHoursCSV writes the per-hour accounting rows (t, d_t, n_t, r_t,
// o_t, s_t) as CSV for external plotting.
func (r Result) WriteHoursCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "demand", "new_reserved", "active_reserved", "on_demand", "sold"}); err != nil {
		return fmt.Errorf("simulate: csv: %w", err)
	}
	for t, h := range r.Hours {
		rec := []string{
			strconv.Itoa(t),
			strconv.Itoa(h.Demand),
			strconv.Itoa(h.NewlyRes),
			strconv.Itoa(h.ActiveRes),
			strconv.Itoa(h.OnDemand),
			strconv.Itoa(h.Sold),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("simulate: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("simulate: csv: %w", err)
	}
	return nil
}
