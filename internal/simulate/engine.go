package simulate

import (
	"fmt"
	"sort"
)

// instState is the engine's mutable per-reservation state, stored in
// one contiguous slab per run (see Run) so a whole-cohort experiment
// makes O(users) allocations rather than O(users·instances).
type instState struct {
	rec    InstanceRecord
	sold   bool
	expiry int   // Start + T
	ckAges []int // decision ages, strictly increasing
	nextCk int   // index of the next pending decision age
}

// checkpointAges resolves the policy's decision ages for the period,
// honoring the optional MultiCheckpointPolicy extension. The returned
// slice is sorted, deduplicated and restricted to (0, period).
func checkpointAges(policy SellingPolicy, period int) []int {
	var raw []int
	if mp, ok := policy.(MultiCheckpointPolicy); ok {
		raw = mp.CheckpointAges(period)
	} else {
		raw = []int{policy.CheckpointAge(period)}
	}
	ages := make([]int, 0, len(raw))
	for _, a := range raw {
		if a > 0 && a < period {
			ages = append(ages, a)
		}
	}
	sort.Ints(ages)
	out := ages[:0]
	for i, a := range ages {
		if i == 0 || a != ages[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// validateRun is the shared input validation of Run and the test-only
// reference engine; both must reject identical inputs identically.
func validateRun(demand, newRes []int, cfg Config, policy SellingPolicy) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(demand) != len(newRes) {
		return fmt.Errorf("%w: %d demand hours, %d reservation hours",
			ErrLengthMismatch, len(demand), len(newRes))
	}
	for t, d := range demand {
		if d < 0 {
			return fmt.Errorf("simulate: negative demand %d at hour %d", d, t)
		}
		if newRes[t] < 0 {
			return fmt.Errorf("simulate: negative reservation count %d at hour %d", newRes[t], t)
		}
	}
	if policy == nil {
		return fmt.Errorf("simulate: nil selling policy")
	}
	return nil
}

// Run replays the demand series against the reservation series under
// the given selling policy and returns the full accounting.
//
// Per hour t the engine, in order:
//  1. activates the newRes[t] instances reserved at t (active from t);
//  2. consults the selling policy for every unsold instance whose age
//     equals one of its pending checkpoint ages (sold instances stop
//     serving and stop incurring the reserved hourly fee from t on, and
//     earn a * R * remaining/T, less the market fee);
//  3. serves demand[t] with active instances in the paper's working
//     sequence — least remaining period first, higher batch index first
//     within a batch — and buys o_t = max(0, d_t - r_t) on-demand
//     instances for the overflow;
//  4. books C_t per Eq. (1).
//
// Policies implementing MultiCheckpointPolicy are consulted at each of
// their ages until they sell; policies implementing PerInstancePolicy
// assign every instance its own age at reservation time. ShouldSell is
// called in exactly the working-sequence order of the instances due at
// each hour; InstanceCheckpointAge is called once per instance in
// reservation order (start ascending, batch index ascending) before the
// replay begins — the interface requires it to be deterministic in
// (start, batchIndex), so the hoisting is unobservable.
//
// The engine exploits two structural invariants to stay out of the
// per-hour hot path's way. First, because PeriodHours is constant, the
// active list stays in working-sequence order by construction: expiring
// instances are always a prefix (head-trim) and each hour's new batch
// always belongs at the tail (appended in descending batch index), so
// no per-hour sort is needed. Second, every checkpoint hour is known at
// activation time, so consultations are bucketed into a per-hour event
// schedule up front instead of scanning the active list every hour.
// The whole replay makes O(1) heap allocations: instance state, hour
// records, checkpoint events and (optionally) schedules live in
// pre-sized slabs.
func Run(demand, newRes []int, cfg Config, policy SellingPolicy) (Result, error) {
	if err := validateRun(demand, newRes, cfg, policy); err != nil {
		return Result{}, err
	}

	it := cfg.Instance
	period := it.PeriodHours
	alphaHourly := it.ReservedHourly
	saleKeep := 1 - cfg.MarketFee
	horizon := len(demand)

	sharedAges := checkpointAges(policy, period)
	perInst, isPerInstance := policy.(PerInstancePolicy)

	// Slab of all instances ever reserved, in reservation order (start
	// ascending, batch index ascending). batchOff[t]..batchOff[t+1] is
	// hour t's batch.
	total := 0
	batchOff := make([]int, horizon+1)
	for t, n := range newRes {
		batchOff[t] = total
		total += n
	}
	batchOff[horizon] = total

	slab := make([]instState, total)
	var soloAges []int // backing for per-instance single-age slices
	if isPerInstance {
		soloAges = make([]int, total)
	}
	var schedSlab []bool
	if cfg.RecordSchedules {
		schedSlab = make([]bool, total*period)
	}
	for t := 0; t < horizon; t++ {
		for i := 1; i <= newRes[t]; i++ {
			j := batchOff[t] + i - 1
			in := &slab[j]
			in.rec = InstanceRecord{Start: t, BatchIndex: i, SoldAt: -1, WorkedAtCheckpoint: -1}
			in.expiry = t + period
			if isPerInstance {
				if age := perInst.InstanceCheckpointAge(t, i, period); age > 0 && age < period {
					soloAges[j] = age
					in.ckAges = soloAges[j : j+1 : j+1]
				}
			} else {
				in.ckAges = sharedAges
			}
			if cfg.RecordSchedules {
				in.rec.Schedule = schedSlab[j*period : (j+1)*period : (j+1)*period]
			}
		}
	}

	// Checkpoint event schedule: for each hour, the slab indices of the
	// instances with a decision age falling on that hour, in working-
	// sequence order (start ascending, batch index descending — the
	// order the reference engine consults them in). Built with one
	// counting pass and one fill pass over two shared arrays.
	var evOff []int // evOff[t]..evOff[t+1] indexes events for hour t
	var events []int
	if total > 0 && (len(sharedAges) > 0 || isPerInstance) {
		evOff = make([]int, horizon+2)
		for j := range slab {
			in := &slab[j]
			for _, a := range in.ckAges {
				if h := in.rec.Start + a; h < horizon {
					evOff[h+2]++
				}
			}
		}
		for t := 2; t <= horizon+1; t++ {
			evOff[t] += evOff[t-1]
		}
		events = make([]int, evOff[horizon+1])
		// Fill in (start asc, batch index desc) order so each bucket
		// comes out in working-sequence order; evOff[t+1] doubles as the
		// running fill cursor for hour t and ends at its final value.
		for t := 0; t < horizon; t++ {
			for j := batchOff[t+1] - 1; j >= batchOff[t]; j-- {
				for _, a := range slab[j].ckAges {
					if h := t + a; h < horizon {
						events[evOff[h+1]] = j
						evOff[h+1]++
					}
				}
			}
		}
	}

	res := Result{Hours: make([]HourRecord, horizon)}
	// active holds the currently active (unexpired, unsold) instances'
	// slab indices in working-sequence order; the window active[head:]
	// is the live list. Expiry only ever removes a prefix (constant
	// period ⇒ expiry order = start order), so head advances instead of
	// reslicing; sales splice the window in place on the rare hours a
	// sale happens.
	active := make([]int, 0, total)
	head := 0
	soldTotal := 0

	for t := 0; t < horizon; t++ {
		// Drop expired instances: always a prefix of the window.
		for head < len(active) && slab[active[head]].expiry <= t {
			head++
		}

		// 1. Activate this hour's new reservations. Everything already
		// active started earlier (less remaining period), and within the
		// batch the higher index works first, so the batch is appended
		// at the tail in descending index order.
		for j := batchOff[t+1] - 1; j >= batchOff[t]; j-- {
			active = append(active, j)
		}

		// 2. Selling checkpoints: only the instances scheduled for hour t.
		var soldNow int
		var income float64
		if events != nil && evOff[t] < evOff[t+1] {
			for _, j := range events[evOff[t]:evOff[t+1]] {
				in := &slab[j]
				if in.sold || in.nextCk >= len(in.ckAges) || t-in.rec.Start != in.ckAges[in.nextCk] {
					continue
				}
				in.nextCk++
				in.rec.WorkedAtCheckpoint = in.rec.Worked
				ck := Checkpoint{
					Hour:      t,
					Start:     in.rec.Start,
					Age:       t - in.rec.Start,
					Worked:    in.rec.Worked,
					Remaining: in.expiry - t,
				}
				if policy.ShouldSell(ck) {
					in.sold = true
					in.rec.SoldAt = t
					soldNow++
					remFrac := float64(in.expiry-t) / float64(period)
					income += cfg.SellingDiscount * remFrac * it.Upfront * saleKeep
				}
			}
			if soldNow > 0 {
				soldTotal += soldNow
				w := active[head:]
				k := 0
				for _, j := range w {
					if !slab[j].sold {
						w[k] = j
						k++
					}
				}
				active = active[:head+k]
			}
		}

		// 3. Working sequence: first d_t active instances serve demand.
		win := active[head:]
		d := demand[t]
		busy := d
		if busy > len(win) {
			busy = len(win)
		}
		for _, j := range win[:busy] {
			in := &slab[j]
			in.rec.Worked++
			if cfg.RecordSchedules {
				in.rec.Schedule[t-in.rec.Start] = true
			}
		}
		onDemand := d - len(win)
		if onDemand < 0 {
			onDemand = 0
		}

		// 4. Book C_t per Eq. (1).
		res.Hours[t] = HourRecord{
			Demand:    d,
			NewlyRes:  newRes[t],
			ActiveRes: len(win),
			OnDemand:  onDemand,
			Sold:      soldNow,
		}
		res.Cost.OnDemand += float64(onDemand) * it.OnDemandHourly
		res.Cost.Upfront += float64(newRes[t]) * it.Upfront
		res.Cost.ReservedHourly += float64(len(win)) * alphaHourly
		res.Cost.SaleIncome += income
	}

	res.Instances = make([]InstanceRecord, total)
	for j := range slab {
		res.Instances[j] = slab[j].rec
	}
	cfg.Metrics.RecordRun(horizon, total, soldTotal)
	return res, nil
}

// KeepReserved is the paper's Keep-Reserved benchmark: never sell.
// It is defined here (rather than in package core) because the engine
// itself uses it as the neutral default in helpers.
type KeepReserved struct{}

// CheckpointAge implements SellingPolicy: no checkpoint.
func (KeepReserved) CheckpointAge(int) int { return -1 }

// ShouldSell implements SellingPolicy.
func (KeepReserved) ShouldSell(Checkpoint) bool { return false }
