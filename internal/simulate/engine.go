package simulate

import (
	"fmt"
	"sort"
)

// instance is the engine's mutable per-reservation state.
type instance struct {
	rec    InstanceRecord
	sold   bool
	expiry int   // Start + T
	ckAges []int // decision ages, strictly increasing
	nextCk int   // index of the next pending decision age
}

// checkpointAges resolves the policy's decision ages for the period,
// honoring the optional MultiCheckpointPolicy extension. The returned
// slice is sorted, deduplicated and restricted to (0, period).
func checkpointAges(policy SellingPolicy, period int) []int {
	var raw []int
	if mp, ok := policy.(MultiCheckpointPolicy); ok {
		raw = mp.CheckpointAges(period)
	} else {
		raw = []int{policy.CheckpointAge(period)}
	}
	ages := make([]int, 0, len(raw))
	for _, a := range raw {
		if a > 0 && a < period {
			ages = append(ages, a)
		}
	}
	sort.Ints(ages)
	out := ages[:0]
	for i, a := range ages {
		if i == 0 || a != ages[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// Run replays the demand series against the reservation series under
// the given selling policy and returns the full accounting.
//
// Per hour t the engine, in order:
//  1. activates the newRes[t] instances reserved at t (active from t);
//  2. consults the selling policy for every unsold instance whose age
//     equals one of its pending checkpoint ages (sold instances stop
//     serving and stop incurring the reserved hourly fee from t on, and
//     earn a * R * remaining/T, less the market fee);
//  3. serves demand[t] with active instances in the paper's working
//     sequence — least remaining period first, higher batch index first
//     within a batch — and buys o_t = max(0, d_t - r_t) on-demand
//     instances for the overflow;
//  4. books C_t per Eq. (1).
//
// Policies implementing MultiCheckpointPolicy are consulted at each of
// their ages until they sell; policies implementing PerInstancePolicy
// assign every instance its own age at reservation time.
func Run(demand, newRes []int, cfg Config, policy SellingPolicy) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(demand) != len(newRes) {
		return Result{}, fmt.Errorf("%w: %d demand hours, %d reservation hours",
			ErrLengthMismatch, len(demand), len(newRes))
	}
	for t, d := range demand {
		if d < 0 {
			return Result{}, fmt.Errorf("simulate: negative demand %d at hour %d", d, t)
		}
		if newRes[t] < 0 {
			return Result{}, fmt.Errorf("simulate: negative reservation count %d at hour %d", newRes[t], t)
		}
	}
	if policy == nil {
		return Result{}, fmt.Errorf("simulate: nil selling policy")
	}

	it := cfg.Instance
	period := it.PeriodHours
	alphaHourly := it.ReservedHourly
	saleKeep := 1 - cfg.MarketFee

	sharedAges := checkpointAges(policy, period)
	perInst, isPerInstance := policy.(PerInstancePolicy)

	res := Result{Hours: make([]HourRecord, len(demand))}
	var instances []*instance
	// active holds the currently active (unexpired, unsold) instances
	// in working-sequence order: earlier start first (less remaining
	// period), higher batch index first within a batch.
	var active []*instance
	anyCheckpoints := len(sharedAges) > 0 || isPerInstance

	for t := range demand {
		// Drop expired instances.
		live := active[:0]
		for _, in := range active {
			if t < in.expiry {
				live = append(live, in)
			}
		}
		active = live

		// 1. Activate this hour's new reservations.
		for i := 1; i <= newRes[t]; i++ {
			in := &instance{
				rec:    InstanceRecord{Start: t, BatchIndex: i, SoldAt: -1, WorkedAtCheckpoint: -1},
				expiry: t + period,
			}
			if isPerInstance {
				if age := perInst.InstanceCheckpointAge(t, i, period); age > 0 && age < period {
					in.ckAges = []int{age}
				}
			} else {
				in.ckAges = sharedAges
			}
			if cfg.RecordSchedules {
				in.rec.Schedule = make([]bool, period)
			}
			instances = append(instances, in)
			active = append(active, in)
		}
		// Restore working-sequence order: new instances have the most
		// remaining period so they sort last; within the new batch the
		// higher index must come first.
		sort.SliceStable(active, func(a, b int) bool {
			ia, ib := active[a], active[b]
			if ia.rec.Start != ib.rec.Start {
				return ia.rec.Start < ib.rec.Start
			}
			return ia.rec.BatchIndex > ib.rec.BatchIndex
		})

		// 2. Selling checkpoints.
		var soldNow int
		var income float64
		if anyCheckpoints {
			kept := active[:0]
			for _, in := range active {
				if in.nextCk >= len(in.ckAges) || t-in.rec.Start != in.ckAges[in.nextCk] {
					kept = append(kept, in)
					continue
				}
				in.nextCk++
				in.rec.WorkedAtCheckpoint = in.rec.Worked
				ck := Checkpoint{
					Hour:      t,
					Start:     in.rec.Start,
					Age:       t - in.rec.Start,
					Worked:    in.rec.Worked,
					Remaining: in.expiry - t,
				}
				if policy.ShouldSell(ck) {
					in.sold = true
					in.rec.SoldAt = t
					soldNow++
					remFrac := float64(in.expiry-t) / float64(period)
					income += cfg.SellingDiscount * remFrac * it.Upfront * saleKeep
				} else {
					kept = append(kept, in)
				}
			}
			active = kept
		}

		// 3. Working sequence: first d_t active instances serve demand.
		d := demand[t]
		busy := d
		if busy > len(active) {
			busy = len(active)
		}
		for _, in := range active[:busy] {
			in.rec.Worked++
			if cfg.RecordSchedules {
				in.rec.Schedule[t-in.rec.Start] = true
			}
		}
		onDemand := d - len(active)
		if onDemand < 0 {
			onDemand = 0
		}

		// 4. Book C_t per Eq. (1).
		res.Hours[t] = HourRecord{
			Demand:    d,
			NewlyRes:  newRes[t],
			ActiveRes: len(active),
			OnDemand:  onDemand,
			Sold:      soldNow,
		}
		res.Cost.OnDemand += float64(onDemand) * it.OnDemandHourly
		res.Cost.Upfront += float64(newRes[t]) * it.Upfront
		res.Cost.ReservedHourly += float64(len(active)) * alphaHourly
		res.Cost.SaleIncome += income
	}

	res.Instances = make([]InstanceRecord, len(instances))
	for i, in := range instances {
		res.Instances[i] = in.rec
	}
	return res, nil
}

// KeepReserved is the paper's Keep-Reserved benchmark: never sell.
// It is defined here (rather than in package core) because the engine
// itself uses it as the neutral default in helpers.
type KeepReserved struct{}

// CheckpointAge implements SellingPolicy: no checkpoint.
func (KeepReserved) CheckpointAge(int) int { return -1 }

// ShouldSell implements SellingPolicy.
func (KeepReserved) ShouldSell(Checkpoint) bool { return false }
