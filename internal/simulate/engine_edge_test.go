package simulate

import (
	"testing"
)

// Edge-case coverage for the optimized engine's structural invariants:
// empty input, single-hour periods, sales interacting with service in
// the same hour, checkpoints at the last possible age, and market-fee
// proceeds arithmetic.

func TestRunZeroLengthSeries(t *testing.T) {
	res, err := Run(nil, nil, testConfig(), sellAlways{age: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hours) != 0 || len(res.Instances) != 0 {
		t.Errorf("Hours/Instances = %d/%d, want 0/0", len(res.Hours), len(res.Instances))
	}
	if res.Cost != (CostBreakdown{}) {
		t.Errorf("Cost = %+v, want zero", res.Cost)
	}
}

func TestRunSingleHourPeriod(t *testing.T) {
	// Period 1: no age in (0, 1) exists, so nothing is ever offered for
	// sale, and each instance serves only its start hour.
	cfg := testConfig()
	cfg.Instance.PeriodHours = 1
	demand := []int{1, 1, 1}
	newRes := []int{1, 0, 1}
	res, err := Run(demand, newRes, cfg, sellAlways{age: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 0 {
		t.Errorf("SoldCount = %d, want 0 (no valid checkpoint age)", res.SoldCount())
	}
	wantActive := []int{1, 0, 1}
	wantOnDemand := []int{0, 1, 0}
	for h, rec := range res.Hours {
		if rec.ActiveRes != wantActive[h] || rec.OnDemand != wantOnDemand[h] {
			t.Errorf("hour %d = %+v, want active %d, on-demand %d",
				h, rec, wantActive[h], wantOnDemand[h])
		}
	}
	if res.Instances[0].Worked != 1 || res.Instances[1].Worked != 1 {
		t.Errorf("instances = %+v, want one worked hour each", res.Instances)
	}
}

func TestRunSellAndServeSameHour(t *testing.T) {
	// Two instances in one batch; at the shared checkpoint hour one
	// policy consultation sells the first-consulted instance (index 2,
	// the higher index is consulted first) and keeps the other. The
	// sale takes effect before service: with demand 2 that hour, the
	// kept instance serves and one unit overflows to on-demand.
	n := 20
	demand := constSeries(0, n)
	demand[10] = 2
	newRes := constSeries(0, n)
	newRes[0] = 2
	var calls int
	policy := sellFunc{age: 10, fn: func(Checkpoint) bool {
		calls++
		return calls == 1 // only the first consultation sells
	}}
	res, err := Run(demand, newRes, testConfig(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 1 {
		t.Fatalf("SoldCount = %d, want 1", res.SoldCount())
	}
	// Working sequence consults the higher batch index first.
	if res.Instances[1].SoldAt != 10 {
		t.Errorf("index-2 SoldAt = %d, want 10", res.Instances[1].SoldAt)
	}
	if res.Instances[0].SoldAt != -1 {
		t.Errorf("index-1 SoldAt = %d, want kept", res.Instances[0].SoldAt)
	}
	h := res.Hours[10]
	if h.Sold != 1 || h.ActiveRes != 1 || h.OnDemand != 1 || h.Demand != 2 {
		t.Errorf("hour 10 = %+v, want 1 sold, 1 active, 1 on-demand", h)
	}
	// The sold instance must not serve at or after the sale hour.
	if res.Instances[1].Worked != 0 {
		t.Errorf("sold instance Worked = %d, want 0", res.Instances[1].Worked)
	}
	if res.Instances[0].Worked != 1 {
		t.Errorf("kept instance Worked = %d, want 1", res.Instances[0].Worked)
	}
}

// sellFunc adapts a closure into a fixed-checkpoint policy.
type sellFunc struct {
	age int
	fn  func(Checkpoint) bool
}

func (s sellFunc) CheckpointAge(int) int         { return s.age }
func (s sellFunc) ShouldSell(ck Checkpoint) bool { return s.fn(ck) }

func TestRunCheckpointAtPeriodMinusOne(t *testing.T) {
	// The last permissible decision age is period-1: Remaining is 1 and
	// the proceeds are a * R * 1/T.
	it := testInstance() // period 40
	n := it.PeriodHours
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(0, n), newRes, testConfig(), sellAlways{age: it.PeriodHours - 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 1 || res.Instances[0].SoldAt != it.PeriodHours-1 {
		t.Fatalf("instances = %+v, want sold at %d", res.Instances, it.PeriodHours-1)
	}
	want := 0.8 * (1 / float64(it.PeriodHours)) * it.Upfront * 1
	if res.Cost.SaleIncome != want {
		t.Errorf("SaleIncome = %v, want %v", res.Cost.SaleIncome, want)
	}
	if res.Hours[it.PeriodHours-1].Sold != 1 {
		t.Errorf("last-hour record = %+v, want the sale", res.Hours[it.PeriodHours-1])
	}
}

func TestRunOverflowWhileSelling(t *testing.T) {
	// Five instances, all sold at age 10 while demand stays at 5: from
	// the sale hour on the whole demand overflows onto on-demand.
	n := 20
	newRes := constSeries(0, n)
	newRes[0] = 5
	res, err := Run(constSeries(5, n), newRes, testConfig(), sellAlways{age: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 5 {
		t.Fatalf("SoldCount = %d, want 5", res.SoldCount())
	}
	for h := 0; h < 10; h++ {
		if res.Hours[h].OnDemand != 0 || res.Hours[h].ActiveRes != 5 {
			t.Fatalf("hour %d = %+v, want fully reserved", h, res.Hours[h])
		}
	}
	for h := 10; h < n; h++ {
		if res.Hours[h].OnDemand != 5 || res.Hours[h].ActiveRes != 0 {
			t.Fatalf("hour %d = %+v, want fully on-demand after the sell-off", h, res.Hours[h])
		}
	}
	if res.Hours[10].Sold != 5 {
		t.Errorf("hour 10 Sold = %d, want 5", res.Hours[10].Sold)
	}
}

// boundaryAges reports ages at the boundaries of the valid range plus
// duplicates; only age 7 survives the engine's cleaning.
type boundaryAges struct{ period int }

func (p boundaryAges) CheckpointAge(int) int { return 7 }
func (p boundaryAges) CheckpointAges(period int) []int {
	return []int{0, period, period + 5, -1, 7, 7}
}
func (p boundaryAges) ShouldSell(Checkpoint) bool { return true }

func TestRunMultiCheckpointBoundaryAges(t *testing.T) {
	// 0 and period are both outside (0, period); with the duplicates
	// removed exactly one consultation happens, at age 7.
	n := 45
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(0, n), newRes, testConfig(), boundaryAges{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 1 || res.Instances[0].SoldAt != 7 {
		t.Errorf("instances = %+v, want single sale at age 7", res.Instances)
	}
	total := 0
	for _, h := range res.Hours {
		total += h.Sold
	}
	if total != 1 {
		t.Errorf("total sold across hours = %d, want 1", total)
	}
}

func TestRunMarketFeeProceedsExact(t *testing.T) {
	// The seller's proceeds must be exactly a * (rem/T) * R * (1-fee),
	// evaluated in that association order — pinned bit-for-bit so the
	// optimized engine cannot quietly reassociate the product.
	it := testInstance()
	n := it.PeriodHours
	newRes := constSeries(0, n)
	newRes[0] = 1
	cfg := testConfig()
	cfg.MarketFee = 0.12
	age := 13 // odd remaining fraction 27/40
	res, err := Run(constSeries(0, n), newRes, cfg, sellAlways{age: age})
	if err != nil {
		t.Fatal(err)
	}
	rem := float64(it.PeriodHours - age)
	want := cfg.SellingDiscount * (rem / float64(it.PeriodHours)) * it.Upfront * (1 - cfg.MarketFee)
	if res.Cost.SaleIncome != want {
		t.Errorf("SaleIncome = %.17g, want %.17g (bit-exact)", res.Cost.SaleIncome, want)
	}
}

func TestRunActivationAtLastHour(t *testing.T) {
	// A reservation in the final hour is still charged its upfront and
	// one reserved hour, and can serve that hour's demand.
	demand := []int{0, 0, 1}
	newRes := []int{0, 0, 1}
	res, err := Run(demand, newRes, testConfig(), sellAlways{age: 5})
	if err != nil {
		t.Fatal(err)
	}
	h := res.Hours[2]
	if h.ActiveRes != 1 || h.OnDemand != 0 || h.NewlyRes != 1 {
		t.Errorf("hour 2 = %+v", h)
	}
	want := testInstance().Upfront + testInstance().ReservedHourly
	if !almostEqual(res.Cost.Total(), want, 1e-12) {
		t.Errorf("Total = %v, want %v", res.Cost.Total(), want)
	}
	if res.Instances[0].Worked != 1 {
		t.Errorf("Worked = %d, want 1", res.Instances[0].Worked)
	}
}
