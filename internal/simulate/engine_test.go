package simulate

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rimarket/internal/pricing"
)

// testInstance is a small, easily hand-computable price card:
// p = 1.0, R = 100, alpha = 0.25, T = 40 hours.
func testInstance() pricing.InstanceType {
	return pricing.InstanceType{
		Name:           "test.small",
		OnDemandHourly: 1.0,
		Upfront:        100,
		ReservedHourly: 0.25,
		PeriodHours:    40,
	}
}

func testConfig() Config {
	return Config{Instance: testInstance(), SellingDiscount: 0.8}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// sellAlways sells every instance at a fixed checkpoint.
type sellAlways struct{ age int }

func (s sellAlways) CheckpointAge(int) int      { return s.age }
func (s sellAlways) ShouldSell(Checkpoint) bool { return true }

// sellNever has a checkpoint but never sells; distinguishes checkpoint
// bookkeeping from sale bookkeeping.
type sellNever struct{ age int }

func (s sellNever) CheckpointAge(int) int      { return s.age }
func (s sellNever) ShouldSell(Checkpoint) bool { return false }

// captureCheckpoints records every checkpoint it is offered.
type captureCheckpoints struct {
	age  int
	seen *[]Checkpoint
}

func (c captureCheckpoints) CheckpointAge(int) int { return c.age }
func (c captureCheckpoints) ShouldSell(ck Checkpoint) bool {
	*c.seen = append(*c.seen, ck)
	return false
}

func constSeries(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestRunValidation(t *testing.T) {
	cfg := testConfig()
	tests := []struct {
		name    string
		demand  []int
		newRes  []int
		cfg     Config
		policy  SellingPolicy
		wantErr string
	}{
		{
			name: "length mismatch", demand: []int{1, 2}, newRes: []int{0},
			cfg: cfg, policy: KeepReserved{}, wantErr: "equal length",
		},
		{
			name: "negative demand", demand: []int{-1}, newRes: []int{0},
			cfg: cfg, policy: KeepReserved{}, wantErr: "negative demand",
		},
		{
			name: "negative reservations", demand: []int{1}, newRes: []int{-2},
			cfg: cfg, policy: KeepReserved{}, wantErr: "negative reservation",
		},
		{
			name: "nil policy", demand: []int{1}, newRes: []int{0},
			cfg: cfg, policy: nil, wantErr: "nil selling policy",
		},
		{
			name: "bad discount", demand: []int{1}, newRes: []int{0},
			cfg:    Config{Instance: testInstance(), SellingDiscount: 1.5},
			policy: KeepReserved{}, wantErr: "selling discount",
		},
		{
			name: "bad fee", demand: []int{1}, newRes: []int{0},
			cfg:    Config{Instance: testInstance(), SellingDiscount: 0.5, MarketFee: 1},
			policy: KeepReserved{}, wantErr: "market fee",
		},
		{
			name: "bad instance", demand: []int{1}, newRes: []int{0},
			cfg:    Config{Instance: pricing.InstanceType{}, SellingDiscount: 0.5},
			policy: KeepReserved{}, wantErr: "no name",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Run(tt.demand, tt.newRes, tt.cfg, tt.policy)
			if err == nil {
				t.Fatal("Run succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not contain %q", err, tt.wantErr)
			}
		})
	}
}

func TestRunPureOnDemand(t *testing.T) {
	// No reservations: every demand hour is an on-demand purchase.
	demand := []int{2, 0, 3, 1}
	res, err := Run(demand, constSeries(0, 4), testConfig(), KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Cost.Total(), 6.0, 1e-12) {
		t.Errorf("Total = %v, want 6.0", res.Cost.Total())
	}
	if res.Cost.Upfront != 0 || res.Cost.ReservedHourly != 0 || res.Cost.SaleIncome != 0 {
		t.Errorf("unexpected non-on-demand cost: %+v", res.Cost)
	}
	for tt, h := range res.Hours {
		if h.OnDemand != demand[tt] {
			t.Errorf("hour %d: OnDemand = %d, want %d", tt, h.OnDemand, demand[tt])
		}
	}
}

func TestRunKeepReservedAccounting(t *testing.T) {
	// One instance reserved at hour 0, horizon = period = 40 h, demand 1
	// in every hour: cost = R + alpha*p*T = 100 + 0.25*40 = 110.
	n := 40
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(1, n), newRes, testConfig(), KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Cost.Total(), 110, 1e-9) {
		t.Errorf("Total = %v, want 110", res.Cost.Total())
	}
	if len(res.Instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(res.Instances))
	}
	inst := res.Instances[0]
	if inst.Worked != 40 || inst.SoldAt != -1 {
		t.Errorf("instance = %+v, want Worked 40, never sold", inst)
	}
}

func TestRunReservedHourlyChargedWhenIdle(t *testing.T) {
	// Eq. (1) charges r_t * alpha * p even for idle reserved hours.
	n := 10
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(0, n), newRes, testConfig(), KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	want := 100 + 0.25*10 // R + alpha*p * 10 idle hours
	if !almostEqual(res.Cost.Total(), want, 1e-9) {
		t.Errorf("Total = %v, want %v", res.Cost.Total(), want)
	}
	if res.Instances[0].Worked != 0 {
		t.Errorf("Worked = %d, want 0", res.Instances[0].Worked)
	}
}

func TestRunExpiryStopsCharges(t *testing.T) {
	// Period 40, horizon 50: after expiry the instance neither serves
	// nor incurs the hourly fee, so hours 40..49 go on-demand.
	n := 50
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(1, n), newRes, testConfig(), KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 + 0.25*40 + 1.0*10
	if !almostEqual(res.Cost.Total(), want, 1e-9) {
		t.Errorf("Total = %v, want %v", res.Cost.Total(), want)
	}
	if res.Hours[40].ActiveRes != 0 || res.Hours[40].OnDemand != 1 {
		t.Errorf("hour 40 = %+v, want expired reservation", res.Hours[40])
	}
}

func TestRunSellAtCheckpoint(t *testing.T) {
	// Sell at age 30 of a 40-hour period: income = a * R * 10/40 = 20.
	// After the sale the instance stops serving and demand goes on-demand.
	n := 40
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(1, n), newRes, testConfig(), sellAlways{age: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SoldCount(); got != 1 {
		t.Fatalf("SoldCount = %d, want 1", got)
	}
	inst := res.Instances[0]
	if inst.SoldAt != 30 {
		t.Errorf("SoldAt = %d, want 30", inst.SoldAt)
	}
	if inst.Worked != 30 {
		t.Errorf("Worked = %d, want 30 (no service after sale)", inst.Worked)
	}
	if inst.WorkedAtCheckpoint != 30 {
		t.Errorf("WorkedAtCheckpoint = %d, want 30", inst.WorkedAtCheckpoint)
	}
	// Cost: R + 30h reserved hourly + 10h on-demand - income.
	want := 100 + 0.25*30 + 1.0*10 - 0.8*100*0.25
	if !almostEqual(res.Cost.Total(), want, 1e-9) {
		t.Errorf("Total = %v, want %v", res.Cost.Total(), want)
	}
	if res.Hours[30].Sold != 1 || res.Hours[30].ActiveRes != 0 || res.Hours[30].OnDemand != 1 {
		t.Errorf("hour 30 = %+v", res.Hours[30])
	}
}

func TestRunMarketFeeReducesIncome(t *testing.T) {
	n := 40
	newRes := constSeries(0, n)
	newRes[0] = 1
	cfg := testConfig()
	cfg.MarketFee = 0.12
	res, err := Run(constSeries(0, n), newRes, cfg, sellAlways{age: 20})
	if err != nil {
		t.Fatal(err)
	}
	// income = a * R * (20/40) * (1 - 0.12) = 0.8*100*0.5*0.88 = 35.2
	if !almostEqual(res.Cost.SaleIncome, 35.2, 1e-9) {
		t.Errorf("SaleIncome = %v, want 35.2", res.Cost.SaleIncome)
	}
}

func TestRunCheckpointInfo(t *testing.T) {
	// Demand only in the first 5 hours; checkpoint at age 20 must see
	// Worked=5, Remaining=20.
	n := 30
	demand := constSeries(0, n)
	for i := 0; i < 5; i++ {
		demand[i] = 1
	}
	newRes := constSeries(0, n)
	newRes[0] = 1
	var seen []Checkpoint
	_, err := Run(demand, newRes, testConfig(), captureCheckpoints{age: 20, seen: &seen})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("checkpoints = %d, want 1", len(seen))
	}
	ck := seen[0]
	if ck.Hour != 20 || ck.Start != 0 || ck.Age != 20 || ck.Worked != 5 || ck.Remaining != 20 {
		t.Errorf("checkpoint = %+v", ck)
	}
}

func TestRunNoCheckpointBeyondHorizon(t *testing.T) {
	// Instance reserved at hour 5 with checkpoint age 30 in a 20-hour
	// horizon: the checkpoint never arrives, nothing is sold.
	n := 20
	newRes := constSeries(0, n)
	newRes[5] = 1
	res, err := Run(constSeries(1, n), newRes, testConfig(), sellAlways{age: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 0 {
		t.Errorf("SoldCount = %d, want 0", res.SoldCount())
	}
	if res.Instances[0].WorkedAtCheckpoint != -1 {
		t.Errorf("WorkedAtCheckpoint = %d, want -1", res.Instances[0].WorkedAtCheckpoint)
	}
}

func TestRunWorkingSequenceLeastRemainingFirst(t *testing.T) {
	// Two instances: one reserved at hour 0, one at hour 2. With demand
	// 1, the older instance (less remaining period) must do all the work.
	n := 10
	demand := constSeries(1, n)
	newRes := constSeries(0, n)
	newRes[0] = 1
	newRes[2] = 1
	res, err := Run(demand, newRes, testConfig(), KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	old, young := res.Instances[0], res.Instances[1]
	if old.Start != 0 || young.Start != 2 {
		t.Fatalf("instance order = %d, %d", old.Start, young.Start)
	}
	if old.Worked != 10 {
		t.Errorf("older instance Worked = %d, want 10", old.Worked)
	}
	if young.Worked != 0 {
		t.Errorf("younger instance Worked = %d, want 0", young.Worked)
	}
}

func TestRunWithinBatchHigherIndexWorksFirst(t *testing.T) {
	// Algorithm 1's free-time formula implies that within a batch the
	// lower-index instance idles first, i.e. the higher index works first.
	n := 10
	demand := constSeries(1, n)
	newRes := constSeries(0, n)
	newRes[0] = 2
	res, err := Run(demand, newRes, testConfig(), KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	first, second := res.Instances[0], res.Instances[1]
	if first.BatchIndex != 1 || second.BatchIndex != 2 {
		t.Fatalf("batch indices = %d, %d", first.BatchIndex, second.BatchIndex)
	}
	if second.Worked != 10 {
		t.Errorf("index-2 Worked = %d, want 10", second.Worked)
	}
	if first.Worked != 0 {
		t.Errorf("index-1 Worked = %d, want 0", first.Worked)
	}
}

func TestRunRecordSchedules(t *testing.T) {
	n := 10
	demand := []int{1, 0, 1, 0, 1, 0, 0, 0, 0, 0}
	newRes := constSeries(0, n)
	newRes[0] = 1
	cfg := testConfig()
	cfg.RecordSchedules = true
	res, err := Run(demand, newRes, cfg, KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	sched := res.Instances[0].Schedule
	if len(sched) != testInstance().PeriodHours {
		t.Fatalf("schedule length = %d, want %d", len(sched), testInstance().PeriodHours)
	}
	for i := 0; i < n; i++ {
		want := demand[i] == 1
		if sched[i] != want {
			t.Errorf("schedule[%d] = %v, want %v", i, sched[i], want)
		}
	}
}

func TestRunSellNeverStillRecordsCheckpointWork(t *testing.T) {
	n := 30
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(1, n), newRes, testConfig(), sellNever{age: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 0 {
		t.Fatalf("SoldCount = %d, want 0", res.SoldCount())
	}
	if res.Instances[0].WorkedAtCheckpoint != 10 {
		t.Errorf("WorkedAtCheckpoint = %d, want 10", res.Instances[0].WorkedAtCheckpoint)
	}
	if res.Instances[0].Worked != 30 {
		t.Errorf("Worked = %d, want 30", res.Instances[0].Worked)
	}
}

func TestCostBreakdownAddAndTotal(t *testing.T) {
	a := CostBreakdown{OnDemand: 1, Upfront: 2, ReservedHourly: 3, SaleIncome: 4}
	b := CostBreakdown{OnDemand: 10, Upfront: 20, ReservedHourly: 30, SaleIncome: 40}
	a.Add(b)
	want := CostBreakdown{OnDemand: 11, Upfront: 22, ReservedHourly: 33, SaleIncome: 44}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
	if got := a.Total(); !almostEqual(got, 11+22+33-44, 1e-12) {
		t.Errorf("Total = %v", got)
	}
}

// TestPropertyEngineInvariants checks the paper's structural invariants
// on random inputs: o_t + r_t >= d_t, cost components non-negative, and
// the cost decomposition matches a re-derivation from the hour records.
func TestPropertyEngineInvariants(t *testing.T) {
	it := testInstance()
	f := func(rawDemand, rawRes []uint8, sellAge uint8) bool {
		n := len(rawDemand)
		if n == 0 {
			return true
		}
		if n > 120 {
			n = 120
		}
		demand := make([]int, n)
		newRes := make([]int, n)
		for i := 0; i < n; i++ {
			demand[i] = int(rawDemand[i] % 5)
			if i < len(rawRes) {
				newRes[i] = int(rawRes[i] % 3)
			}
		}
		age := int(sellAge)%it.PeriodHours + 1
		res, err := Run(demand, newRes, testConfig(), sellAlways{age: age})
		if err != nil {
			return false
		}
		var cost CostBreakdown
		for tt, h := range res.Hours {
			if h.OnDemand+h.ActiveRes < h.Demand {
				return false // coverage invariant violated
			}
			if h.OnDemand < 0 || h.ActiveRes < 0 || h.Sold < 0 {
				return false
			}
			if h.Demand != demand[tt] || h.NewlyRes != newRes[tt] {
				return false
			}
			cost.OnDemand += float64(h.OnDemand) * it.OnDemandHourly
			cost.Upfront += float64(h.NewlyRes) * it.Upfront
			cost.ReservedHourly += float64(h.ActiveRes) * it.ReservedHourly
		}
		if !almostEqual(cost.OnDemand, res.Cost.OnDemand, 1e-6) ||
			!almostEqual(cost.Upfront, res.Cost.Upfront, 1e-6) ||
			!almostEqual(cost.ReservedHourly, res.Cost.ReservedHourly, 1e-6) {
			return false
		}
		// Each sold instance contributes a*R*rem/T exactly once.
		var income float64
		for _, inst := range res.Instances {
			if inst.SoldAt < 0 {
				continue
			}
			rem := inst.Start + it.PeriodHours - inst.SoldAt
			income += 0.8 * it.Upfront * float64(rem) / float64(it.PeriodHours)
		}
		return almostEqual(income, res.Cost.SaleIncome, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWorkConservation: total worked hours across instances
// equals total demand served by reservations (demand minus on-demand).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(rawDemand, rawRes []uint8) bool {
		n := len(rawDemand)
		if n == 0 {
			return true
		}
		if n > 100 {
			n = 100
		}
		demand := make([]int, n)
		newRes := make([]int, n)
		for i := 0; i < n; i++ {
			demand[i] = int(rawDemand[i] % 6)
			if i < len(rawRes) {
				newRes[i] = int(rawRes[i] % 2)
			}
		}
		res, err := Run(demand, newRes, testConfig(), KeepReserved{})
		if err != nil {
			return false
		}
		served := 0
		for _, h := range res.Hours {
			served += h.Demand - h.OnDemand
		}
		worked := 0
		for _, inst := range res.Instances {
			worked += inst.Worked
		}
		return worked == served
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// perInstanceAndMulti implements both optional extensions; the engine
// must prefer the per-instance ages.
type perInstanceAndMulti struct{ sellAll bool }

func (perInstanceAndMulti) CheckpointAge(int) int        { return 5 }
func (perInstanceAndMulti) CheckpointAges(int) []int     { return []int{5, 10} }
func (p perInstanceAndMulti) ShouldSell(Checkpoint) bool { return p.sellAll }
func (perInstanceAndMulti) InstanceCheckpointAge(start, _, _ int) int {
	return 20 + start // distinct, recognizable age
}

func TestRunPerInstanceTakesPrecedenceOverMulti(t *testing.T) {
	n := 40
	newRes := constSeries(0, n)
	newRes[0] = 1
	newRes[2] = 1
	res, err := Run(constSeries(0, n), newRes, testConfig(), perInstanceAndMulti{sellAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 2 {
		t.Fatalf("SoldCount = %d, want 2", res.SoldCount())
	}
	if res.Instances[0].SoldAt != 20 {
		t.Errorf("first instance SoldAt = %d, want per-instance age 20", res.Instances[0].SoldAt)
	}
	if res.Instances[1].SoldAt != 2+22 {
		t.Errorf("second instance SoldAt = %d, want start+age 24", res.Instances[1].SoldAt)
	}
}

// multiAges sells at its second checkpoint only.
type multiAges struct{}

func (multiAges) CheckpointAge(int) int    { return 5 }
func (multiAges) CheckpointAges(int) []int { return []int{5, 15, 15, -3, 100} }
func (multiAges) ShouldSell(ck Checkpoint) bool {
	return ck.Age == 15
}

func TestRunMultiCheckpointDedupAndFilter(t *testing.T) {
	// Duplicate, negative and beyond-period ages must be cleaned up; the
	// instance is consulted at 5 (kept) and once at 15 (sold).
	n := 40
	newRes := constSeries(0, n)
	newRes[0] = 1
	res, err := Run(constSeries(0, n), newRes, testConfig(), multiAges{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 1 || res.Instances[0].SoldAt != 15 {
		t.Errorf("instances = %+v, want sold at 15", res.Instances)
	}
}
