package simulate

// RunReference exposes the test-only reference engine to external test
// packages (package simulate_test), which can import the real policy
// implementations from internal/core without creating an import cycle.
var RunReference = runReference
