package simulate

import "sort"

// refInstance is the reference engine's per-reservation state — the
// pre-optimization engine's representation, kept verbatim.
type refInstance struct {
	rec    InstanceRecord
	sold   bool
	expiry int   // Start + T
	ckAges []int // decision ages, strictly increasing
	nextCk int   // index of the next pending decision age
}

// runReference is the original O(T·n log n) engine, kept test-only as
// the semantic oracle for the optimized Run: it re-sorts the active
// list every hour and scans every active instance for checkpoint
// decisions. The differential suite (differential_test.go) and the
// fuzz target pin Run to produce field-for-field identical Results —
// including bit-identical floats, which both engines guarantee by
// accumulating income in the same working-sequence order.
func runReference(demand, newRes []int, cfg Config, policy SellingPolicy) (Result, error) {
	if err := validateRun(demand, newRes, cfg, policy); err != nil {
		return Result{}, err
	}

	it := cfg.Instance
	period := it.PeriodHours
	alphaHourly := it.ReservedHourly
	saleKeep := 1 - cfg.MarketFee

	sharedAges := checkpointAges(policy, period)
	perInst, isPerInstance := policy.(PerInstancePolicy)

	res := Result{Hours: make([]HourRecord, len(demand))}
	var instances []*refInstance
	// active holds the currently active (unexpired, unsold) instances
	// in working-sequence order: earlier start first (less remaining
	// period), higher batch index first within a batch.
	var active []*refInstance
	anyCheckpoints := len(sharedAges) > 0 || isPerInstance

	for t := range demand {
		// Drop expired instances.
		live := active[:0]
		for _, in := range active {
			if t < in.expiry {
				live = append(live, in)
			}
		}
		active = live

		// 1. Activate this hour's new reservations.
		for i := 1; i <= newRes[t]; i++ {
			in := &refInstance{
				rec:    InstanceRecord{Start: t, BatchIndex: i, SoldAt: -1, WorkedAtCheckpoint: -1},
				expiry: t + period,
			}
			if isPerInstance {
				if age := perInst.InstanceCheckpointAge(t, i, period); age > 0 && age < period {
					in.ckAges = []int{age}
				}
			} else {
				in.ckAges = sharedAges
			}
			if cfg.RecordSchedules {
				in.rec.Schedule = make([]bool, period)
			}
			instances = append(instances, in)
			active = append(active, in)
		}
		// Restore working-sequence order: new instances have the most
		// remaining period so they sort last; within the new batch the
		// higher index must come first.
		sort.SliceStable(active, func(a, b int) bool {
			ia, ib := active[a], active[b]
			if ia.rec.Start != ib.rec.Start {
				return ia.rec.Start < ib.rec.Start
			}
			return ia.rec.BatchIndex > ib.rec.BatchIndex
		})

		// 2. Selling checkpoints.
		var soldNow int
		var income float64
		if anyCheckpoints {
			kept := active[:0]
			for _, in := range active {
				if in.nextCk >= len(in.ckAges) || t-in.rec.Start != in.ckAges[in.nextCk] {
					kept = append(kept, in)
					continue
				}
				in.nextCk++
				in.rec.WorkedAtCheckpoint = in.rec.Worked
				ck := Checkpoint{
					Hour:      t,
					Start:     in.rec.Start,
					Age:       t - in.rec.Start,
					Worked:    in.rec.Worked,
					Remaining: in.expiry - t,
				}
				if policy.ShouldSell(ck) {
					in.sold = true
					in.rec.SoldAt = t
					soldNow++
					remFrac := float64(in.expiry-t) / float64(period)
					income += cfg.SellingDiscount * remFrac * it.Upfront * saleKeep
				} else {
					kept = append(kept, in)
				}
			}
			active = kept
		}

		// 3. Working sequence: first d_t active instances serve demand.
		d := demand[t]
		busy := d
		if busy > len(active) {
			busy = len(active)
		}
		for _, in := range active[:busy] {
			in.rec.Worked++
			if cfg.RecordSchedules {
				in.rec.Schedule[t-in.rec.Start] = true
			}
		}
		onDemand := d - len(active)
		if onDemand < 0 {
			onDemand = 0
		}

		// 4. Book C_t per Eq. (1).
		res.Hours[t] = HourRecord{
			Demand:    d,
			NewlyRes:  newRes[t],
			ActiveRes: len(active),
			OnDemand:  onDemand,
			Sold:      soldNow,
		}
		res.Cost.OnDemand += float64(onDemand) * it.OnDemandHourly
		res.Cost.Upfront += float64(newRes[t]) * it.Upfront
		res.Cost.ReservedHourly += float64(len(active)) * alphaHourly
		res.Cost.SaleIncome += income
	}

	res.Instances = make([]InstanceRecord, len(instances))
	for i, in := range instances {
		res.Instances[i] = in.rec
	}
	return res, nil
}
