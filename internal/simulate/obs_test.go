package simulate

import (
	"reflect"
	"testing"

	"rimarket/internal/obs"
)

// obsSeries is a demand/reservation pair big enough to exercise
// activation, sales and expiry.
func obsSeries() (demand, newRes []int) {
	demand = make([]int, 120)
	newRes = make([]int, 120)
	for t := range demand {
		demand[t] = (t*7 + 3) % 5
	}
	newRes[0] = 4
	newRes[25] = 2
	newRes[60] = 3
	return demand, newRes
}

// TestRunMetricsCounts checks the engine's end-of-run hook books
// exactly what the Result reports.
func TestRunMetricsCounts(t *testing.T) {
	demand, newRes := obsSeries()
	var em obs.EngineMetrics
	cfg := testConfig()
	cfg.Metrics = &em

	res, err := Run(demand, newRes, cfg, sellAlways{age: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := em.Runs.Value(); got != 1 {
		t.Errorf("Runs = %d, want 1", got)
	}
	if got := em.Hours.Value(); got != int64(len(demand)) {
		t.Errorf("Hours = %d, want %d", got, len(demand))
	}
	if got := em.Instances.Value(); got != int64(len(res.Instances)) {
		t.Errorf("Instances = %d, want %d", got, len(res.Instances))
	}
	if got := em.Sold.Value(); got != int64(res.SoldCount()) {
		t.Errorf("Sold = %d, want %d", got, res.SoldCount())
	}
	if em.Sold.Value() == 0 {
		t.Fatal("fixture sold nothing; the Sold count check is vacuous")
	}

	// A failed run records nothing.
	if _, err := Run(demand[:10], newRes, cfg, sellAlways{age: 10}); err == nil {
		t.Fatal("mismatched series should fail")
	}
	if got := em.Runs.Value(); got != 1 {
		t.Errorf("failed run was recorded: Runs = %d", got)
	}
}

// TestRunMetricsNoPerturbation is the engine-level slice of the
// differential invariant: a config differing only in Metrics produces
// a deeply equal Result.
func TestRunMetricsNoPerturbation(t *testing.T) {
	demand, newRes := obsSeries()
	for _, policy := range []SellingPolicy{KeepReserved{}, sellAlways{age: 10}, sellNever{age: 10}} {
		base := testConfig()
		plain, err := Run(demand, newRes, base, policy)
		if err != nil {
			t.Fatal(err)
		}
		observed := base
		observed.Metrics = new(obs.EngineMetrics)
		withObs, err := Run(demand, newRes, observed, policy)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, withObs) {
			t.Errorf("policy %T: result differs with Metrics attached", policy)
		}
	}
}

// TestRunMetricsAllocParity proves the hook adds zero allocations to
// the hot path: Run with Metrics attached allocates exactly as many
// times as Run without. (The benchmark BenchmarkObsOverhead pins the
// same property at full experiment scale with time bounds.)
func TestRunMetricsAllocParity(t *testing.T) {
	demand, newRes := obsSeries()
	cfgOff := testConfig()
	cfgOn := testConfig()
	cfgOn.Metrics = new(obs.EngineMetrics)
	policy := sellAlways{age: 10}

	run := func(cfg Config) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := Run(demand, newRes, cfg, policy); err != nil {
				t.Fatal(err)
			}
		})
	}
	off, on := run(cfgOff), run(cfgOn)
	if on != off {
		t.Errorf("allocs/op with metrics = %.1f, without = %.1f; hook must add none", on, off)
	}
}
