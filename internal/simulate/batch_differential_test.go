package simulate

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"rimarket/internal/obs"
	"rimarket/internal/pricing"
)

// This file pins the streaming batch engine to the per-user engine:
// over 250 seeded cohort cases covering every policy shape, cohort
// sizes from empty to dozens of users, mixed trace lengths and
// checkpoint densities, RunBatch must reproduce looping simulate.Run
// field for field — including bit-identical float accounting — and
// RunBatchTotals must agree at every parallelism. CI runs this under
// -race, which also proves the sharded totals path publishes its
// outputs safely.

// batchCase is one sampled cohort with its shared config and policy.
type batchCase struct {
	name   string
	users  []BatchUser
	cfg    Config
	policy SellingPolicy
}

// sampleBatchCase draws a cohort case from rng: the pricing card,
// marketplace parameters and policy shapes are drawn exactly like the
// per-user differential's sampleDiffCase, then a cohort of varied size
// is drawn with per-user horizons deliberately ragged.
func sampleBatchCase(rng *rand.Rand, i int) batchCase {
	period := 8 + rng.Intn(53)
	card := pricing.InstanceType{
		Name:           "batch.case",
		OnDemandHourly: []float64{0.5, 1.0, 1.7}[rng.Intn(3)],
		Upfront:        []float64{40, 100, 250}[rng.Intn(3)],
		ReservedHourly: []float64{0.1, 0.25}[rng.Intn(2)],
		PeriodHours:    period,
	}
	cfg := Config{
		Instance:        card,
		SellingDiscount: float64(rng.Intn(11)) / 10,
		RecordSchedules: rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 0:
		cfg.MarketFee = 0.12
	case 1:
		cfg.MarketFee = rng.Float64() * 0.9
	}

	threshold := rng.Intn(period + 2)
	var policy SellingPolicy
	var shape string
	switch i % 5 {
	case 0:
		shape = "keep-reserved"
		policy = KeepReserved{}
	case 1:
		shape = "fixed"
		policy = diffFixed{age: rng.Intn(period+4) - 2, threshold: threshold}
	case 2:
		shape = "fixed-sell-all"
		policy = diffFixed{age: 1 + rng.Intn(period-1), threshold: period + 1}
	case 3:
		shape = "multi"
		ages := make([]int, 1+rng.Intn(5))
		for j := range ages {
			ages[j] = rng.Intn(period+6) - 3 // dirty on purpose
		}
		policy = diffMulti{ages: ages, threshold: threshold}
	default:
		shape = "per-instance"
		policy = diffPerInstance{seed: rng.Uint64(), threshold: threshold}
	}

	size := [...]int{0, 1, 2, 3, 5, 8, 13, 21, 34}[rng.Intn(9)]
	users := make([]BatchUser, size)
	for u := range users {
		horizon := rng.Intn(161) // 0..160, ragged across the cohort
		demand := make([]int, horizon)
		newRes := make([]int, horizon)
		for t := range demand {
			demand[t] = rng.Intn(9)
			if rng.Intn(3) == 0 {
				newRes[t] = rng.Intn(4)
			}
		}
		users[u] = BatchUser{Demand: demand, NewRes: newRes}
	}
	return batchCase{
		name:   fmt.Sprintf("case%03d/%s/users=%d/period=%d", i, shape, size, period),
		users:  users,
		cfg:    cfg,
		policy: policy,
	}
}

// totalFromResult derives the BatchTotal a full per-user Result implies,
// including the idle-hour statistic the Keep-Reserved baseline uses.
func totalFromResult(res Result, recordSales bool) BatchTotal {
	tot := BatchTotal{Cost: res.Cost, Sold: res.SoldCount()}
	for _, h := range res.Hours {
		served := h.Demand - h.OnDemand
		tot.IdleHours += h.ActiveRes - served
	}
	if recordSales {
		for _, inst := range res.Instances {
			if inst.SoldAt >= 0 {
				tot.Sales = append(tot.Sales, SoldInstance{Start: inst.Start, SoldAt: inst.SoldAt})
			}
		}
	}
	return tot
}

// TestDifferentialBatchEquivalence is the batch engine's safety net:
// 250 seeded cohorts, every policy shape, RunBatch ≡ per-user Run
// field for field, and RunBatchTotals ≡ the totals those Results imply
// at parallelism 1, 3 and GOMAXPROCS — bit-identical floats throughout.
func TestDifferentialBatchEquivalence(t *testing.T) {
	const cases = 250
	rng := rand.New(rand.NewSource(20180708)) // same vintage, fresh stream
	parallelisms := []int{1, 3, 0}            // 0 = GOMAXPROCS
	for i := 0; i < cases; i++ {
		c := sampleBatchCase(rng, i)
		t.Run(c.name, func(t *testing.T) {
			want := make([]Result, len(c.users))
			wantTotals := make([]BatchTotal, len(c.users))
			for u := range c.users {
				res, err := Run(c.users[u].Demand, c.users[u].NewRes, c.cfg, c.policy)
				if err != nil {
					t.Fatalf("per-user engine rejected sampled input: %v", err)
				}
				want[u] = res
				wantTotals[u] = totalFromResult(res, true)
			}

			got, err := RunBatch(c.users, c.cfg, c.policy)
			if err != nil {
				t.Fatalf("RunBatch: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("RunBatch returned %d results for %d users", len(got), len(want))
			}
			for u := range want {
				gotU := got[u]
				if !reflect.DeepEqual(gotU, want[u]) {
					assertResultsIdentical(t, gotU, want[u])
					t.Fatalf("user %d: results differ", u)
				}
			}

			for _, par := range parallelisms {
				opts := BatchOptions{Parallelism: par, RecordSales: true}
				totals, err := RunBatchTotals(context.Background(), c.users, c.cfg, c.policy, opts)
				if err != nil {
					t.Fatalf("RunBatchTotals(par=%d): %v", par, err)
				}
				for u := range wantTotals {
					if !reflect.DeepEqual(totals[u], wantTotals[u]) {
						t.Fatalf("par=%d user %d: totals differ:\n got %+v\nwant %+v",
							par, u, totals[u], wantTotals[u])
					}
				}
			}
		})
	}
}

// TestBatchTotalsParallelismInvariance replays one larger cohort at
// every parallelism from 1 to GOMAXPROCS+2 and requires bit-identical
// outputs — the shard split must be unobservable.
func TestBatchTotalsParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	users := make([]BatchUser, 57)
	for u := range users {
		horizon := 40 + rng.Intn(100)
		demand := make([]int, horizon)
		newRes := make([]int, horizon)
		for h := range demand {
			demand[h] = rng.Intn(7)
			if rng.Intn(4) == 0 {
				newRes[h] = rng.Intn(3)
			}
		}
		users[u] = BatchUser{Demand: demand, NewRes: newRes}
	}
	cfg := testConfig()
	policy := diffFixed{age: cfg.Instance.PeriodHours / 2, threshold: cfg.Instance.PeriodHours / 4}

	base, err := RunBatchTotals(context.Background(), users, cfg, policy, BatchOptions{Parallelism: 1, RecordSales: true})
	if err != nil {
		t.Fatal(err)
	}
	for par := 2; par <= runtime.GOMAXPROCS(0)+2; par++ {
		got, err := RunBatchTotals(context.Background(), users, cfg, policy, BatchOptions{Parallelism: par, RecordSales: true})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("par=%d: totals differ from sequential run", par)
		}
	}
}

// TestBatchValidationParity pins batch validation to per-user Run:
// same error text for the same bad input, reported for the lowest
// invalid user index, wrapped in a *BatchUserError.
func TestBatchValidationParity(t *testing.T) {
	cfg := testConfig()
	good := BatchUser{Demand: []int{1, 2}, NewRes: []int{1, 0}}
	cases := []struct {
		name  string
		users []BatchUser
		cfg   Config
		index int
	}{
		{"length mismatch", []BatchUser{good, {Demand: []int{1}, NewRes: []int{0, 0}}}, cfg, 1},
		{"negative demand", []BatchUser{{Demand: []int{-4}, NewRes: []int{0}}, good}, cfg, 0},
		{"negative res", []BatchUser{good, good, {Demand: []int{4}, NewRes: []int{-1}}}, cfg, 2},
		{"bad cfg", []BatchUser{good}, Config{Instance: testInstance(), SellingDiscount: 2}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := c.users[c.index]
			_, wantErr := Run(bad.Demand, bad.NewRes, c.cfg, KeepReserved{})
			if wantErr == nil {
				t.Fatal("per-user engine accepted the bad input")
			}
			for _, call := range []struct {
				name string
				err  error
			}{
				{"RunBatch", func() error { _, err := RunBatch(c.users, c.cfg, KeepReserved{}); return err }()},
				{"RunBatchTotals", func() error {
					_, err := RunBatchTotals(context.Background(), c.users, c.cfg, KeepReserved{}, BatchOptions{})
					return err
				}()},
			} {
				var be *BatchUserError
				if !errors.As(call.err, &be) {
					t.Fatalf("%s error %v is not a *BatchUserError", call.name, call.err)
				}
				if be.Index != c.index {
					t.Fatalf("%s reported user %d, want lowest invalid index %d", call.name, be.Index, c.index)
				}
				if be.Err.Error() != wantErr.Error() {
					t.Fatalf("%s wrapped error %q, per-user engine says %q", call.name, be.Err, wantErr)
				}
			}
		})
	}

	t.Run("nil policy", func(t *testing.T) {
		_, err := RunBatch([]BatchUser{good}, cfg, nil)
		var be *BatchUserError
		if !errors.As(err, &be) || be.Index != 0 {
			t.Fatalf("err = %v, want BatchUserError at index 0", err)
		}
	})
	t.Run("empty cohort", func(t *testing.T) {
		// Zero users never reach validation, matching a loop over Run
		// that never executes — even under a bad config.
		res, err := RunBatch(nil, Config{}, nil)
		if err != nil || len(res) != 0 {
			t.Fatalf("empty RunBatch: %d results, err %v", len(res), err)
		}
		tot, err := RunBatchTotals(context.Background(), nil, Config{}, nil, BatchOptions{})
		if err != nil || len(tot) != 0 {
			t.Fatalf("empty RunBatchTotals: %d totals, err %v", len(tot), err)
		}
	})
}

// TestBatchTotalsCancellation: a cancelled context must surface as
// exactly ctx.Err() so drivers can classify it, at any parallelism.
func TestBatchTotalsCancellation(t *testing.T) {
	users := make([]BatchUser, 8)
	for u := range users {
		demand := make([]int, 5000)
		newRes := make([]int, 5000)
		for h := range demand {
			demand[h] = 2
			if h%50 == 0 {
				newRes[h] = 1
			}
		}
		users[u] = BatchUser{Demand: demand, NewRes: newRes}
	}
	cfg := testConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		if _, err := RunBatchTotals(ctx, users, cfg, KeepReserved{}, BatchOptions{Parallelism: par}); !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
	}
}

// TestBatchAliasedUsers: the batch engine documents that callers may
// alias one backing trace across many users; aliased and copied
// cohorts must produce identical outputs.
func TestBatchAliasedUsers(t *testing.T) {
	demand := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}
	newRes := []int{2, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0}
	cfg := testConfig()
	policy := diffFixed{age: cfg.Instance.PeriodHours / 3, threshold: cfg.Instance.PeriodHours}

	aliased := make([]BatchUser, 40)
	copied := make([]BatchUser, 40)
	for u := range aliased {
		aliased[u] = BatchUser{Demand: demand, NewRes: newRes}
		copied[u] = BatchUser{
			Demand: append([]int(nil), demand...),
			NewRes: append([]int(nil), newRes...),
		}
	}
	a, err := RunBatch(aliased, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(copied, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("aliased cohort results differ from copied cohort results")
	}
	// And the inputs must be untouched.
	if !reflect.DeepEqual(demand, []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}) {
		t.Fatal("batch engine mutated an input demand series")
	}
}

// TestBatchMetricsParity: in batch mode the per-run counters must mean
// the same thing as a per-user loop, plus the batch counters.
func TestBatchMetricsParity(t *testing.T) {
	users := []BatchUser{
		{Demand: []int{1, 2, 3, 4}, NewRes: []int{1, 0, 1, 0}},
		{Demand: []int{5, 5}, NewRes: []int{2, 0}},
	}
	cfg := testConfig()
	var perUser obs.EngineMetrics
	for _, u := range users {
		c := cfg
		c.Metrics = &perUser
		if _, err := Run(u.Demand, u.NewRes, c, KeepReserved{}); err != nil {
			t.Fatal(err)
		}
	}
	var batch obs.EngineMetrics
	c := cfg
	c.Metrics = &batch
	if _, err := RunBatch(users, c, KeepReserved{}); err != nil {
		t.Fatal(err)
	}
	if g, w := batch.Runs.Value(), perUser.Runs.Value(); g != w {
		t.Fatalf("batch Runs = %d, per-user %d", g, w)
	}
	if g, w := batch.Hours.Value(), perUser.Hours.Value(); g != w {
		t.Fatalf("batch Hours = %d, per-user %d", g, w)
	}
	if g, w := batch.Instances.Value(), perUser.Instances.Value(); g != w {
		t.Fatalf("batch Instances = %d, per-user %d", g, w)
	}
	if batch.BatchRuns.Value() != 1 || batch.BatchUsers.Value() != 2 {
		t.Fatalf("batch counters = %d runs / %d users, want 1/2",
			batch.BatchRuns.Value(), batch.BatchUsers.Value())
	}
}
