package simulate

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func resultFixture(t *testing.T) Result {
	t.Helper()
	n := 40
	demand := constSeries(0, n)
	for i := 0; i < 10; i++ {
		demand[i] = 2
	}
	newRes := constSeries(0, n)
	newRes[0] = 2
	res, err := Run(demand, newRes, testConfig(), sellAlways{age: 20})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultHelpers(t *testing.T) {
	res := resultFixture(t)
	if got := res.PeakActive(); got != 2 {
		t.Errorf("PeakActive = %d, want 2", got)
	}
	if got := res.OnDemandHours(); got != 0 {
		t.Errorf("OnDemandHours = %d, want 0", got)
	}
	// Busy 2x10 hours of 2x20 active reserved hours (both sold at 20).
	if got := res.Utilization(); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
}

func TestResultUtilizationEmpty(t *testing.T) {
	res, err := Run([]int{1, 1}, []int{0, 0}, testConfig(), KeepReserved{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Utilization(); got != 0 {
		t.Errorf("Utilization = %v, want 0 with no reservations", got)
	}
	if got := res.OnDemandHours(); got != 2 {
		t.Errorf("OnDemandHours = %d, want 2", got)
	}
}

func TestCumulativeCostMatchesTotal(t *testing.T) {
	res := resultFixture(t)
	it := testInstance()
	// Income per sale: a * R * rem/T = 0.8 * 100 * 20/40 = 40.
	series := res.CumulativeCost(it.OnDemandHourly, it.Upfront, it.ReservedHourly, 40)
	if len(series) != len(res.Hours) {
		t.Fatalf("len = %d", len(series))
	}
	final := series[len(series)-1]
	if !almostEqual(final, res.Cost.Total(), 1e-9) {
		t.Errorf("cumulative final %v != total %v", final, res.Cost.Total())
	}
	for i := 1; i < len(series); i++ {
		maxDrop := float64(res.Hours[i].Sold) * 40 // drops only via sale income
		if series[i] < series[i-1]-maxDrop-1e-9 {
			t.Fatalf("suspicious drop at %d: %v -> %v", i, series[i-1], series[i])
		}
	}
}

func TestWriteHoursCSV(t *testing.T) {
	res := resultFixture(t)
	var buf bytes.Buffer
	if err := res.WriteHoursCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(res.Hours)+1 {
		t.Fatalf("rows = %d, want %d", len(records), len(res.Hours)+1)
	}
	if !strings.HasPrefix(strings.Join(records[0], ","), "hour,demand") {
		t.Errorf("header = %v", records[0])
	}
	// Row 21 (hour 20) records the two sales.
	if records[21][5] != "2" {
		t.Errorf("sold at hour 20 = %s, want 2", records[21][5])
	}
}
