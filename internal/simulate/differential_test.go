package simulate

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rimarket/internal/pricing"
)

// This file pins the optimized Run to the reference engine
// (reference_test.go): over hundreds of seeded random cases covering
// every policy shape the engine distinguishes, both engines must
// produce field-for-field identical Results — including bit-identical
// float accounting, which holds because both accumulate income in the
// same working-sequence order. CI runs this under -race.

// diffFixed is a plain fixed-checkpoint policy with the paper's
// threshold shape: sell iff the working time is below the threshold.
type diffFixed struct {
	age       int
	threshold int
}

func (p diffFixed) CheckpointAge(int) int { return p.age }
func (p diffFixed) ShouldSell(ck Checkpoint) bool {
	return ck.Worked < p.threshold
}

// diffMulti revisits the decision at raw ages that may be duplicated,
// non-positive or beyond the period — the engine must clean them up.
type diffMulti struct {
	ages      []int
	threshold int
}

func (p diffMulti) CheckpointAge(int) int {
	if len(p.ages) == 0 {
		return -1
	}
	return p.ages[0]
}
func (p diffMulti) CheckpointAges(int) []int { return p.ages }
func (p diffMulti) ShouldSell(ck Checkpoint) bool {
	return ck.Worked < p.threshold
}

// diffPerInstance gives each instance a hash-derived age; roughly a
// third of the draws land outside (0, period) so some instances are
// never offered for sale, exactly as PerInstancePolicy allows.
type diffPerInstance struct {
	seed      uint64
	threshold int
}

func (p diffPerInstance) CheckpointAge(period int) int { return period / 2 }
func (p diffPerInstance) ShouldSell(ck Checkpoint) bool {
	return ck.Worked < p.threshold
}
func (p diffPerInstance) InstanceCheckpointAge(start, batchIndex, period int) int {
	h := p.seed ^ uint64(start)*0x9e3779b97f4a7c15 ^ uint64(batchIndex)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0x94d049bb133111eb
	h ^= h >> 27
	return int(h%uint64(period+period/2+2)) - period/4
}

// diffCase is one sampled (demand, newRes, cfg, policy) tuple.
type diffCase struct {
	name   string
	demand []int
	newRes []int
	cfg    Config
	policy SellingPolicy
}

// sampleDiffCase draws a case from rng, cycling the policy shape so
// every shape gets an equal share of the budget.
func sampleDiffCase(rng *rand.Rand, i int) diffCase {
	horizon := rng.Intn(161) // 0..160, including the empty series
	period := 8 + rng.Intn(53)
	card := pricing.InstanceType{
		Name:           "diff.case",
		OnDemandHourly: []float64{0.5, 1.0, 1.7}[rng.Intn(3)],
		Upfront:        []float64{40, 100, 250}[rng.Intn(3)],
		ReservedHourly: []float64{0.1, 0.25}[rng.Intn(2)],
		PeriodHours:    period,
	}
	cfg := Config{
		Instance:        card,
		SellingDiscount: float64(rng.Intn(11)) / 10,
		RecordSchedules: rng.Intn(2) == 0,
	}
	switch rng.Intn(3) {
	case 0:
		cfg.MarketFee = 0.12
	case 1:
		cfg.MarketFee = rng.Float64() * 0.9
	}

	demand := make([]int, horizon)
	newRes := make([]int, horizon)
	for t := range demand {
		demand[t] = rng.Intn(9)
		if rng.Intn(3) == 0 {
			newRes[t] = rng.Intn(4)
		}
	}

	threshold := rng.Intn(period + 2)
	var policy SellingPolicy
	var shape string
	switch i % 5 {
	case 0:
		shape = "keep-reserved"
		policy = KeepReserved{}
	case 1:
		shape = "fixed"
		policy = diffFixed{age: rng.Intn(period+4) - 2, threshold: threshold}
	case 2:
		shape = "fixed-sell-all"
		policy = diffFixed{age: 1 + rng.Intn(period-1), threshold: period + 1}
	case 3:
		shape = "multi"
		ages := make([]int, 1+rng.Intn(5))
		for j := range ages {
			ages[j] = rng.Intn(period+6) - 3 // dirty on purpose
		}
		policy = diffMulti{ages: ages, threshold: threshold}
	default:
		shape = "per-instance"
		policy = diffPerInstance{seed: rng.Uint64(), threshold: threshold}
	}
	return diffCase{
		name:   fmt.Sprintf("case%03d/%s/T=%d/period=%d", i, shape, horizon, period),
		demand: demand,
		newRes: newRes,
		cfg:    cfg,
		policy: policy,
	}
}

// assertResultsIdentical fails with the first differing field rather
// than dumping both Results wholesale.
func assertResultsIdentical(t *testing.T, got, want Result) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Fatalf("Cost differs:\n got %+v\nwant %+v", got.Cost, want.Cost)
	}
	if len(got.Hours) != len(want.Hours) {
		t.Fatalf("Hours length %d, want %d", len(got.Hours), len(want.Hours))
	}
	for h := range want.Hours {
		if got.Hours[h] != want.Hours[h] {
			t.Fatalf("hour %d differs:\n got %+v\nwant %+v", h, got.Hours[h], want.Hours[h])
		}
	}
	if len(got.Instances) != len(want.Instances) {
		t.Fatalf("Instances length %d, want %d", len(got.Instances), len(want.Instances))
	}
	for i := range want.Instances {
		g, w := got.Instances[i], want.Instances[i]
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("instance %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("results differ outside known fields:\n got %+v\nwant %+v", got, want)
	}
}

// TestDifferentialEngineEquivalence is the PR's safety net for the
// optimized engine: ≥200 seeded cases, every policy shape, optimized
// Run ≡ runReference field for field.
func TestDifferentialEngineEquivalence(t *testing.T) {
	const cases = 250
	rng := rand.New(rand.NewSource(20180702)) // ICDCS'18 vintage
	for i := 0; i < cases; i++ {
		c := sampleDiffCase(rng, i)
		t.Run(c.name, func(t *testing.T) {
			want, wantErr := runReference(c.demand, c.newRes, c.cfg, c.policy)
			got, gotErr := Run(c.demand, c.newRes, c.cfg, c.policy)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("error mismatch: got %v, reference %v", gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("error text mismatch: got %q, reference %q", gotErr, wantErr)
				}
				return
			}
			assertResultsIdentical(t, got, want)
		})
	}
}

// TestDifferentialEngineErrors pins the two engines to reject invalid
// input identically (same error text), since they share validation.
func TestDifferentialEngineErrors(t *testing.T) {
	cfg := testConfig()
	badCases := []struct {
		name   string
		demand []int
		newRes []int
		cfg    Config
		policy SellingPolicy
	}{
		{"length", []int{1}, []int{0, 0}, cfg, KeepReserved{}},
		{"negative demand", []int{-4}, []int{0}, cfg, KeepReserved{}},
		{"negative res", []int{4}, []int{-1}, cfg, KeepReserved{}},
		{"nil policy", []int{1}, []int{0}, cfg, nil},
		{"bad cfg", []int{1}, []int{0}, Config{Instance: testInstance(), SellingDiscount: 2}, KeepReserved{}},
	}
	for _, c := range badCases {
		t.Run(c.name, func(t *testing.T) {
			_, wantErr := runReference(c.demand, c.newRes, c.cfg, c.policy)
			_, gotErr := Run(c.demand, c.newRes, c.cfg, c.policy)
			if wantErr == nil || gotErr == nil {
				t.Fatalf("expected both engines to fail: got %v, reference %v", gotErr, wantErr)
			}
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text mismatch: got %q, reference %q", gotErr, wantErr)
			}
		})
	}
}
