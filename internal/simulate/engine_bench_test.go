package simulate

import (
	"testing"

	"rimarket/internal/pricing"
)

// benchWorkload is the in-package twin of the root BenchmarkEngineRun
// 1-year case, shared by the optimized/reference pair below so the
// speedup of the event-scheduled engine over the per-hour-sort engine
// is measurable in one place:
//
//	go test ./internal/simulate -bench 'BenchmarkEngine(Optimized|Reference)' -benchmem
func benchWorkload(b *testing.B) ([]int, []int, Config, SellingPolicy) {
	b.Helper()
	it := pricing.InstanceType{
		Name:           "bench.card",
		OnDemandHourly: 0.69,
		Upfront:        1000,
		ReservedHourly: 0.097,
		PeriodHours:    pricing.HoursPerYear,
	}
	demand := make([]int, pricing.HoursPerYear)
	newRes := make([]int, pricing.HoursPerYear)
	for i := range demand {
		demand[i] = 5 + i%7
	}
	newRes[0] = 11 // cover peak demand for the whole term
	cfg := Config{Instance: it, SellingDiscount: 0.8}
	// Fixed checkpoint at 3T/4 with a mid-range threshold: some
	// instances sell, some are kept, as in the paper's runs.
	policy := diffFixed{age: 3 * it.PeriodHours / 4, threshold: it.PeriodHours / 2}
	return demand, newRes, cfg, policy
}

// BenchmarkEngineOptimized measures the shipping engine on the 1-year
// workload.
func BenchmarkEngineOptimized(b *testing.B) {
	demand, newRes, cfg, policy := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(demand, newRes, cfg, policy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReference measures the pre-optimization engine
// (per-hour stable sort + full active scan) on the same workload; the
// optimized/reference ratio is the PR's headline speedup.
func BenchmarkEngineReference(b *testing.B) {
	demand, newRes, cfg, policy := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runReference(demand, newRes, cfg, policy); err != nil {
			b.Fatal(err)
		}
	}
}
