// Package simulate is the hourly cost engine behind the reproduction:
// it replays a demand trace against a reservation schedule, applies a
// selling policy at each reserved instance's checkpoint, assigns
// demands to instances in the paper's least-remaining-period-first
// working sequence, and accounts cost exactly per Eq. (1):
//
//	C_t = o_t*p + n_t*R + r_t*alpha*p - s_t*a*rp*R
//
// The engine follows the paper's experimental pipeline: reservation
// decisions (n_t) are produced beforehand by package purchasing and
// are an input here, so selling decisions never feed back into
// purchasing — exactly how the paper prepares its datasets
// (Section VI.A) and what its Algorithms 1 and 2 assume.
package simulate

import (
	"errors"
	"fmt"

	"rimarket/internal/obs"
	"rimarket/internal/pricing"
)

// Config carries the pricing and marketplace parameters of one run.
type Config struct {
	// Instance is the price card (p, R, alpha*p, T).
	Instance pricing.InstanceType
	// SellingDiscount is the paper's a in [0, 1]: the discount the
	// seller applies to the prorated upfront fee to attract buyers.
	SellingDiscount float64
	// MarketFee is the fraction of sale income kept by the marketplace
	// (Amazon charges 0.12). The paper's cost model Eq. (1) books the
	// full discounted upfront as income, so the default of 0 matches the
	// paper; set 0.12 to model the seller's actual proceeds.
	MarketFee float64
	// RecordSchedules makes the engine retain each instance's hour-by-
	// hour busy schedule (needed by the offline OPT analysis). Off by
	// default because schedules are O(instances x period) memory.
	RecordSchedules bool
	// Metrics, when non-nil, receives one RecordRun per completed run
	// (hours simulated, instances reserved, instances sold) — atomic
	// adds only, so observability costs the engine no allocations and
	// cannot perturb its results. Nil (the default) records nothing.
	// Metrics is observability plumbing, not a pricing parameter: it
	// does not participate in Validate and configs differing only in
	// Metrics describe the same run.
	Metrics *obs.EngineMetrics
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Instance.Validate(); err != nil {
		return err
	}
	if c.SellingDiscount < 0 || c.SellingDiscount > 1 {
		return fmt.Errorf("simulate: selling discount %v outside [0, 1]", c.SellingDiscount)
	}
	if c.MarketFee < 0 || c.MarketFee >= 1 {
		return fmt.Errorf("simulate: market fee %v outside [0, 1)", c.MarketFee)
	}
	return nil
}

// Checkpoint is the information available to a selling policy when a
// reserved instance reaches its decision point.
type Checkpoint struct {
	// Hour is the current simulation hour t.
	Hour int
	// Start is the hour the instance was reserved.
	Start int
	// Age is Hour - Start, always the policy's checkpoint age.
	Age int
	// Worked is the number of hours in [Start, Hour) the instance
	// served demand — the paper's working time w.
	Worked int
	// Remaining is the number of hours left in the reservation period.
	Remaining int
}

// SellingPolicy decides whether to sell a reserved instance at its
// checkpoint. Implementations live in package core.
type SellingPolicy interface {
	// CheckpointAge returns the instance age, in hours, at which
	// ShouldSell is consulted, for a reservation period of periodHours.
	// A non-positive return means the policy never sells.
	CheckpointAge(periodHours int) int
	// ShouldSell reports whether to sell the instance described by ck.
	ShouldSell(ck Checkpoint) bool
}

// MultiCheckpointPolicy is an optional extension of SellingPolicy for
// policies that revisit the decision at several ages (e.g. check at
// T/4, then T/2, then 3T/4 if still held). When a policy implements it,
// the engine consults ShouldSell at every returned age instead of the
// single CheckpointAge.
type MultiCheckpointPolicy interface {
	SellingPolicy
	// CheckpointAges returns the decision ages in strictly increasing
	// order; ages outside (0, periodHours) are ignored.
	CheckpointAges(periodHours int) []int
}

// PerInstancePolicy is an optional extension of SellingPolicy for
// policies that give each reserved instance its own decision age —
// the randomized algorithm the paper sketches as future work draws the
// checkpoint fraction per instance. Implementations must be
// deterministic in (start, batchIndex) so runs are reproducible.
type PerInstancePolicy interface {
	SellingPolicy
	// InstanceCheckpointAge returns the decision age for the instance
	// reserved at hour start with the given 1-based batch index. A
	// non-positive return means this instance is never offered for sale.
	InstanceCheckpointAge(start, batchIndex, periodHours int) int
}

// CostBreakdown decomposes a run's cost per Eq. (1).
type CostBreakdown struct {
	// OnDemand is sum over t of o_t * p.
	OnDemand float64
	// Upfront is sum over t of n_t * R.
	Upfront float64
	// ReservedHourly is sum over t of r_t * alpha * p.
	ReservedHourly float64
	// SaleIncome is sum over t of s_t * a * rp * R (after the market
	// fee, when one is configured).
	SaleIncome float64
}

// Total returns the paper's actual cost: spend minus sale income.
func (c CostBreakdown) Total() float64 {
	return c.OnDemand + c.Upfront + c.ReservedHourly - c.SaleIncome
}

// Add accumulates another breakdown into c.
func (c *CostBreakdown) Add(other CostBreakdown) {
	c.OnDemand += other.OnDemand
	c.Upfront += other.Upfront
	c.ReservedHourly += other.ReservedHourly
	c.SaleIncome += other.SaleIncome
}

// HourRecord is the per-hour accounting row (d_t, n_t, r_t, o_t, s_t).
type HourRecord struct {
	Demand    int // d_t
	NewlyRes  int // n_t
	ActiveRes int // r_t, after sales take effect
	OnDemand  int // o_t
	Sold      int // s_t
}

// InstanceRecord is one reserved instance's lifecycle.
type InstanceRecord struct {
	// Start is the hour the instance was reserved; it is active during
	// [Start, Start+T) unless sold.
	Start int
	// BatchIndex is the instance's 1-based index within its reservation
	// batch, fixing the paper's within-batch working-sequence tie-break.
	BatchIndex int
	// SoldAt is the hour the instance was sold, or -1 if never sold.
	// A sold instance does not serve demand at SoldAt or later.
	SoldAt int
	// Worked counts the hours the instance served demand.
	Worked int
	// WorkedAtCheckpoint counts hours served before the selling
	// checkpoint (-1 when the policy has no checkpoint).
	WorkedAtCheckpoint int
	// Schedule, when Config.RecordSchedules is set, holds one entry per
	// hour of the instance's life ([Start, Start+T)); true means the
	// instance served demand that hour.
	Schedule []bool
}

// Result is a completed run.
type Result struct {
	// Cost is the run's cost decomposition; Cost.Total() is the paper's
	// actual cost.
	Cost CostBreakdown
	// Hours has one record per simulated hour.
	Hours []HourRecord
	// Instances has one record per reserved instance, in reservation
	// order.
	Instances []InstanceRecord
}

// SoldCount returns the number of instances sold during the run.
func (r Result) SoldCount() int {
	n := 0
	for _, inst := range r.Instances {
		if inst.SoldAt >= 0 {
			n++
		}
	}
	return n
}

// ErrLengthMismatch is returned when the demand and reservation series
// have different lengths.
var ErrLengthMismatch = errors.New("simulate: demand and reservation series must have equal length")
