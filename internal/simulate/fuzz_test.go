package simulate

import (
	"reflect"
	"testing"

	"rimarket/internal/pricing"
)

// FuzzEngineRun drives the optimized engine with arbitrary byte-derived
// demand/reservation series, price cards and policy shapes, and checks
// that it (a) never panics, (b) conserves the Eq. (1) accounting
// identities, and (c) stays field-for-field identical to the reference
// engine. Seed corpus lives in testdata/fuzz/FuzzEngineRun.
func FuzzEngineRun(f *testing.F) {
	f.Add([]byte{5, 3, 0, 7, 1}, []byte{1, 0, 2}, byte(40), byte(80), byte(12), byte(1), byte(10))
	f.Add([]byte{}, []byte{}, byte(1), byte(0), byte(0), byte(0), byte(0))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, []byte{2, 2, 2, 2}, byte(3), byte(100), byte(99), byte(2), byte(2))
	f.Add([]byte{1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0}, []byte{1}, byte(8), byte(50), byte(0), byte(3), byte(200))
	f.Add([]byte{4, 4, 4, 4, 4, 4}, []byte{0, 3, 0, 3}, byte(5), byte(75), byte(30), byte(10), byte(4))

	f.Fuzz(func(t *testing.T, demandB, resB []byte, periodB, discountB, feeB, shapeB, ageB byte) {
		n := len(demandB)
		if n > 300 {
			n = 300
		}
		demand := make([]int, n)
		newRes := make([]int, n)
		for i := 0; i < n; i++ {
			demand[i] = int(demandB[i] % 10)
			if i < len(resB) {
				newRes[i] = int(resB[i] % 3)
			}
		}
		period := 1 + int(periodB%96)
		cfg := Config{
			Instance: pricing.InstanceType{
				Name:           "fuzz.card",
				OnDemandHourly: 1.3,
				Upfront:        77,
				ReservedHourly: 0.21,
				PeriodHours:    period,
			},
			SellingDiscount: float64(discountB%101) / 100,
			MarketFee:       float64(feeB%100) / 100,
			RecordSchedules: shapeB&8 != 0,
		}
		age := int(ageB)
		var policy SellingPolicy
		switch shapeB % 4 {
		case 0:
			policy = KeepReserved{}
		case 1:
			policy = diffFixed{age: age%(period+2) - 1, threshold: age % (period + 1)}
		case 2:
			policy = diffMulti{
				ages:      []int{age%period - 1, age % period, age % period, (2 * age) % (period + 3)},
				threshold: age % (period + 1),
			}
		default:
			policy = diffPerInstance{seed: uint64(ageB)*0x9e3779b9 + uint64(periodB), threshold: age % (period + 1)}
		}

		res, err := Run(demand, newRes, cfg, policy)
		if err != nil {
			t.Fatalf("Run rejected valid fuzz input: %v", err)
		}

		// Eq. (1) component identities: every component non-negative,
		// and income can only come from sales.
		c := res.Cost
		if c.OnDemand < 0 || c.Upfront < 0 || c.ReservedHourly < 0 || c.SaleIncome < 0 {
			t.Fatalf("negative cost component: %+v", c)
		}
		if res.SoldCount() == 0 && c.SaleIncome != 0 {
			t.Fatalf("SaleIncome %v without sales", c.SaleIncome)
		}

		// Per-hour identities: coverage, input echo, and ActiveRes equal
		// to the instances still live per the lifecycle records.
		served := 0
		for h, rec := range res.Hours {
			if rec.OnDemand < 0 || rec.ActiveRes < 0 || rec.Sold < 0 {
				t.Fatalf("hour %d: negative field %+v", h, rec)
			}
			if rec.Demand != demand[h] || rec.NewlyRes != newRes[h] {
				t.Fatalf("hour %d: input echo mismatch %+v", h, rec)
			}
			if rec.OnDemand+rec.ActiveRes < rec.Demand {
				t.Fatalf("hour %d: demand not covered %+v", h, rec)
			}
			live := 0
			for _, in := range res.Instances {
				if in.Start <= h && h < in.Start+period && (in.SoldAt < 0 || h < in.SoldAt) {
					live++
				}
			}
			if rec.ActiveRes != live {
				t.Fatalf("hour %d: ActiveRes %d, %d live instances per records", h, rec.ActiveRes, live)
			}
			served += rec.Demand - rec.OnDemand
		}

		// Work conservation: reserved-served demand equals the summed
		// per-instance working hours.
		worked := 0
		for _, in := range res.Instances {
			if in.Worked < 0 || (in.SoldAt >= 0 && in.SoldAt < in.Start) {
				t.Fatalf("corrupt instance record %+v", in)
			}
			worked += in.Worked
		}
		if worked != served {
			t.Fatalf("worked hours %d != reserved-served demand %d", worked, served)
		}

		// Differential oracle: the optimized engine must match the
		// reference engine exactly.
		want, err := runReference(demand, newRes, cfg, policy)
		if err != nil {
			t.Fatalf("reference rejected input: %v", err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("optimized result diverges from reference:\n got %+v\nwant %+v", res.Cost, want.Cost)
		}
	})
}
