package simulate_test

// Differential coverage with the real production policies: the local
// shapes in differential_test.go pin the engine's interface handling;
// this file pins it against the policies every experiment actually
// runs — the paper's threshold algorithms, All-Selling, the
// multi-checkpoint portfolio, and the randomized per-instance policy —
// on cohort-shaped synthetic demand.

import (
	"math/rand"
	"reflect"
	"testing"

	"rimarket/internal/core"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/workload"
)

func corePolicies(t *testing.T, it pricing.InstanceType, discount float64) map[string]simulate.SellingPolicy {
	t.Helper()
	a3t4, err := core.NewA3T4(it, discount)
	if err != nil {
		t.Fatal(err)
	}
	at2, err := core.NewAT2(it, discount)
	if err != nil {
		t.Fatal(err)
	}
	at4, err := core.NewAT4(it, discount)
	if err != nil {
		t.Fatal(err)
	}
	all, err := core.NewAllSelling(core.Fraction3T4)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := core.NewPaperMultiThreshold(it, discount)
	if err != nil {
		t.Fatal(err)
	}
	randomized, err := core.NewRandomized(it, discount, core.PaperFractions(), 2018)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]simulate.SellingPolicy{
		"keep-reserved":   core.KeepReserved{},
		"A_T4":            at4,
		"A_T2":            at2,
		"A_3T4":           a3t4,
		"all-selling":     all,
		"multi-threshold": multi,
		"randomized":      randomized,
	}
}

// TestDifferentialCorePolicies replays planned cohort users through
// both engines under every production policy and demands identical
// Results.
func TestDifferentialCorePolicies(t *testing.T) {
	it := pricing.InstanceType{
		Name:           "diff.core",
		OnDemandHourly: 0.69,
		Upfront:        1000,
		ReservedHourly: 0.097,
		PeriodHours:    120,
	}
	traces, err := workload.NewCohort(workload.CohortConfig{PerGroup: 2, Hours: 360, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for name, policy := range corePolicies(t, it, 0.8) {
		t.Run(name, func(t *testing.T) {
			for _, tr := range traces {
				newRes, err := purchasing.PlanReservations(tr.Demand, it.PeriodHours, purchasing.AllReserved{})
				if err != nil {
					t.Fatal(err)
				}
				cfg := simulate.Config{
					Instance:        it,
					SellingDiscount: 0.8,
					MarketFee:       []float64{0, 0.12}[rng.Intn(2)],
					RecordSchedules: rng.Intn(2) == 0,
				}
				want, err := simulate.RunReference(tr.Demand, newRes, cfg, policy)
				if err != nil {
					t.Fatal(err)
				}
				got, err := simulate.Run(tr.Demand, newRes, cfg, policy)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("user %s: optimized result diverges from reference\n got %+v\nwant %+v",
						tr.User, got.Cost, want.Cost)
				}
			}
		})
	}
}
