// Package pricing models the Amazon EC2 price structures that drive the
// paper's selling algorithms: on-demand hourly rates, reserved-instance
// upfront fees and discounted hourly rates, payment options, and the
// derived quantities alpha (reservation discount), theta (= p*T/R, the
// ratio between the worst-case on-demand spend over a full period and
// the upfront fee), and the per-algorithm break-even points.
//
// The catalog in catalog.go is a curated set of 1-year-term standard
// (Linux, US East) instance prices as of January 2018, the population
// over which the paper states its measured invariants alpha < 0.36 and
// theta in (1, 4].
package pricing

import (
	"errors"
	"fmt"
)

// PaymentOption enumerates Amazon's reserved-instance payment options
// plus plain on-demand purchasing (Table I of the paper).
type PaymentOption int

// Payment options. Enums start at 1 so that the zero value is invalid
// and cannot silently masquerade as a real option.
const (
	// NoUpfront reserves with no upfront fee and the highest monthly fee.
	NoUpfront PaymentOption = iota + 1
	// PartialUpfront reserves with a moderate upfront fee plus monthly fees.
	PartialUpfront
	// AllUpfront pays the full reservation cost upfront.
	AllUpfront
	// OnDemand is hourly pay-as-you-go with no reservation at all.
	OnDemand
)

// String implements fmt.Stringer.
func (o PaymentOption) String() string {
	switch o {
	case NoUpfront:
		return "No Upfront"
	case PartialUpfront:
		return "Partial Upfront"
	case AllUpfront:
		return "All Upfront"
	case OnDemand:
		return "On-Demand"
	default:
		return fmt.Sprintf("PaymentOption(%d)", int(o))
	}
}

// HoursPerYear is the hour count the paper's one-year reservation term
// implies under EC2's hourly billing.
const HoursPerYear = 8760

// HoursPerMonth approximates one month of hourly billing (8760 / 12).
const HoursPerMonth = HoursPerYear / 12

// Plan is one purchasable configuration of an instance type: a payment
// option together with its fees. For reserved plans, Upfront is the
// prepaid fee R and Hourly is the discounted rate alpha*p; for
// on-demand, Upfront is zero and Hourly is the full rate p.
type Plan struct {
	Option  PaymentOption
	Upfront float64 // one-time fee in USD (R)
	Monthly float64 // recurring monthly fee in USD, as listed by Amazon
	Hourly  float64 // effective hourly rate in USD
}

// InstanceType is one EC2 instance type's price card for a 1-year
// standard reservation term, plus the on-demand rate.
type InstanceType struct {
	// Name is the API name of the instance type, e.g. "d2.xlarge".
	Name string
	// OnDemandHourly is the pay-as-you-go hourly rate p in USD.
	OnDemandHourly float64
	// Upfront is the partial-upfront reservation fee R in USD; the paper's
	// model charges R once and then the discounted hourly rate.
	Upfront float64
	// ReservedHourly is the discounted hourly rate alpha*p in USD, covering
	// the recurring portion of the reservation.
	ReservedHourly float64
	// PeriodHours is the reservation period T in hours (HoursPerYear for
	// every catalog entry; tests use shorter synthetic periods).
	PeriodHours int
}

// Validate reports whether the price card is internally consistent:
// positive rates, a reserved rate strictly below on-demand, and a
// positive period.
func (it InstanceType) Validate() error {
	switch {
	case it.Name == "":
		return errors.New("pricing: instance type has no name")
	case it.OnDemandHourly <= 0:
		return fmt.Errorf("pricing: %s: on-demand rate %v must be positive", it.Name, it.OnDemandHourly)
	case it.Upfront <= 0:
		return fmt.Errorf("pricing: %s: upfront fee %v must be positive", it.Name, it.Upfront)
	case it.ReservedHourly < 0:
		return fmt.Errorf("pricing: %s: reserved rate %v must be non-negative", it.Name, it.ReservedHourly)
	case it.ReservedHourly >= it.OnDemandHourly:
		return fmt.Errorf("pricing: %s: reserved rate %v must beat on-demand %v",
			it.Name, it.ReservedHourly, it.OnDemandHourly)
	case it.PeriodHours <= 0:
		return fmt.Errorf("pricing: %s: period %d must be positive", it.Name, it.PeriodHours)
	}
	return nil
}

// Alpha returns the reservation discount alpha = reserved hourly rate /
// on-demand hourly rate, the paper's key per-type constant.
func (it InstanceType) Alpha() float64 {
	return it.ReservedHourly / it.OnDemandHourly
}

// Theta returns theta = C/R where C = p*T is the largest possible
// on-demand spend over a full reservation period (demand in every hour).
// The paper measures theta in (1, 4] for all 1-year standard Linux
// US-East instances.
func (it InstanceType) Theta() float64 {
	return it.OnDemandHourly * float64(it.PeriodHours) / it.Upfront
}

// BreakEvenHours returns the paper's break-even working time
//
//	beta_k = k * a * R / (p * (1 - alpha))
//
// for a selling checkpoint at fraction k of the period and a selling
// discount a. An instance whose working time over the elapsed k*T hours
// is below beta_k is cheaper to sell.
func (it InstanceType) BreakEvenHours(k, sellingDiscount float64) float64 {
	alpha := it.Alpha()
	return k * sellingDiscount * it.Upfront / (it.OnDemandHourly * (1 - alpha))
}

// FullPeriodReservedCost returns the total cost of holding the
// reservation for its entire period with demand in every hour:
// R + alpha*p*T.
func (it InstanceType) FullPeriodReservedCost() float64 {
	return it.Upfront + it.ReservedHourly*float64(it.PeriodHours)
}

// Plans expands the price card into the four purchasable plans of
// Table I. The No-Upfront and All-Upfront rows are derived from the
// partial-upfront card using Amazon's typical spreads (no-upfront
// costs ~17% more per effective hour than all-upfront; all-upfront
// saves ~2% over partial): they exist so the Table I reproduction can
// print all four rows, while the algorithms consume only the
// partial-upfront quantities the paper uses.
func (it InstanceType) Plans() []Plan {
	period := float64(it.PeriodHours)
	partialTotal := it.Upfront + it.ReservedHourly*period
	partialEffective := partialTotal / period

	allUpTotal := partialTotal * 0.98
	noUpEffective := partialEffective * 1.17

	return []Plan{
		{
			Option:  NoUpfront,
			Upfront: 0,
			Monthly: noUpEffective * HoursPerMonth,
			Hourly:  noUpEffective,
		},
		{
			Option:  PartialUpfront,
			Upfront: it.Upfront,
			Monthly: it.ReservedHourly * HoursPerMonth,
			Hourly:  partialEffective,
		},
		{
			Option:  AllUpfront,
			Upfront: allUpTotal,
			Monthly: 0,
			Hourly:  allUpTotal / period,
		},
		{
			Option: OnDemand,
			Hourly: it.OnDemandHourly,
		},
	}
}
