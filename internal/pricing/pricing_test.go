package pricing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func validCard() InstanceType {
	return InstanceType{
		Name:           "test.large",
		OnDemandHourly: 0.5,
		Upfront:        1000,
		ReservedHourly: 0.125,
		PeriodHours:    HoursPerYear,
	}
}

func TestPaymentOptionString(t *testing.T) {
	tests := []struct {
		opt  PaymentOption
		want string
	}{
		{NoUpfront, "No Upfront"},
		{PartialUpfront, "Partial Upfront"},
		{AllUpfront, "All Upfront"},
		{OnDemand, "On-Demand"},
		{PaymentOption(0), "PaymentOption(0)"},
		{PaymentOption(99), "PaymentOption(99)"},
	}
	for _, tt := range tests {
		if got := tt.opt.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.opt), got, tt.want)
		}
	}
}

func TestInstanceTypeValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*InstanceType)
		wantOK bool
	}{
		{name: "valid", mutate: func(*InstanceType) {}, wantOK: true},
		{name: "no name", mutate: func(it *InstanceType) { it.Name = "" }},
		{name: "zero on-demand", mutate: func(it *InstanceType) { it.OnDemandHourly = 0 }},
		{name: "negative on-demand", mutate: func(it *InstanceType) { it.OnDemandHourly = -1 }},
		{name: "zero upfront", mutate: func(it *InstanceType) { it.Upfront = 0 }},
		{name: "negative reserved", mutate: func(it *InstanceType) { it.ReservedHourly = -0.1 }},
		{name: "reserved not cheaper", mutate: func(it *InstanceType) { it.ReservedHourly = it.OnDemandHourly }},
		{name: "zero period", mutate: func(it *InstanceType) { it.PeriodHours = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			it := validCard()
			tt.mutate(&it)
			err := it.Validate()
			if tt.wantOK && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tt.wantOK && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestAlphaTheta(t *testing.T) {
	it := validCard()
	if got := it.Alpha(); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("Alpha = %v, want 0.25", got)
	}
	// theta = 0.5 * 8760 / 1000 = 4.38
	if got := it.Theta(); !almostEqual(got, 4.38, 1e-9) {
		t.Errorf("Theta = %v, want 4.38", got)
	}
}

func TestPaperT2NanoExample(t *testing.T) {
	// Section III.A: t2.nano alpha = 0.002/0.0059 ≈ 0.34.
	cat := StandardLinuxUSEast()
	it, err := cat.Lookup("t2.nano")
	if err != nil {
		t.Fatal(err)
	}
	if got := it.Alpha(); !almostEqual(got, 0.34, 0.01) {
		t.Errorf("t2.nano Alpha = %v, want ~0.34", got)
	}
	// Section III.A: 1000 reserved hours cost R + alpha*p*1000 = $20.
	cost := it.Upfront + it.ReservedHourly*1000
	if !almostEqual(cost, 20, 0.01) {
		t.Errorf("t2.nano 1000h reserved cost = %v, want $20", cost)
	}
}

func TestBreakEvenHours(t *testing.T) {
	it := D2XLarge()
	alpha := it.Alpha()
	// beta_{3/4} = (3/4)*a*R / (p*(1-alpha)) per Eq. (9).
	a := 0.8
	want := 0.75 * a * it.Upfront / (it.OnDemandHourly * (1 - alpha))
	if got := it.BreakEvenHours(0.75, a); !almostEqual(got, want, 1e-9) {
		t.Errorf("BreakEvenHours = %v, want %v", got, want)
	}
	// Break-even scales linearly in both k and a.
	if got := it.BreakEvenHours(0.375, a); !almostEqual(got, want/2, 1e-9) {
		t.Errorf("half-k BreakEvenHours = %v, want %v", got, want/2)
	}
	if got := it.BreakEvenHours(0.75, a/2); !almostEqual(got, want/2, 1e-9) {
		t.Errorf("half-a BreakEvenHours = %v, want %v", got, want/2)
	}
}

func TestTableIPricingD2XLarge(t *testing.T) {
	// Table I of the paper, d2.xlarge (US East, Linux), Jan 1 2018.
	plans := D2XLarge().Plans()
	if len(plans) != 4 {
		t.Fatalf("len(Plans) = %d, want 4", len(plans))
	}
	byOption := make(map[PaymentOption]Plan, len(plans))
	for _, p := range plans {
		byOption[p.Option] = p
	}

	no := byOption[NoUpfront]
	if no.Upfront != 0 {
		t.Errorf("NoUpfront.Upfront = %v, want 0", no.Upfront)
	}
	if !almostEqual(no.Monthly, 293.46, 1.0) {
		t.Errorf("NoUpfront.Monthly = %v, want ~293.46", no.Monthly)
	}
	if !almostEqual(no.Hourly, 0.402, 0.002) {
		t.Errorf("NoUpfront.Hourly = %v, want ~0.402", no.Hourly)
	}

	partial := byOption[PartialUpfront]
	if partial.Upfront != 1506 {
		t.Errorf("PartialUpfront.Upfront = %v, want 1506", partial.Upfront)
	}
	if !almostEqual(partial.Monthly, 125.56, 0.1) {
		t.Errorf("PartialUpfront.Monthly = %v, want ~125.56", partial.Monthly)
	}
	if !almostEqual(partial.Hourly, 0.344, 0.001) {
		t.Errorf("PartialUpfront.Hourly = %v, want ~0.344", partial.Hourly)
	}

	all := byOption[AllUpfront]
	if !almostEqual(all.Upfront, 2952, 3) {
		t.Errorf("AllUpfront.Upfront = %v, want ~2952", all.Upfront)
	}
	if all.Monthly != 0 {
		t.Errorf("AllUpfront.Monthly = %v, want 0", all.Monthly)
	}
	if !almostEqual(all.Hourly, 0.337, 0.001) {
		t.Errorf("AllUpfront.Hourly = %v, want ~0.337", all.Hourly)
	}

	od := byOption[OnDemand]
	if !almostEqual(od.Hourly, 0.69, 1e-9) {
		t.Errorf("OnDemand.Hourly = %v, want 0.69", od.Hourly)
	}
}

func TestCatalogPaperInvariants(t *testing.T) {
	// Section IV.C: alpha < 0.36 and theta in (1, 4) for all standard
	// 1-year Linux US-East instances (d2's theta is 4.01 ≈ 4).
	cat := StandardLinuxUSEast()
	if cat.Len() < 30 {
		t.Fatalf("catalog has %d types, want >= 30 for a representative population", cat.Len())
	}
	s := cat.Stats()
	if s.AlphaMax >= 0.36 {
		t.Errorf("AlphaMax = %v, want < 0.36 (paper's measured bound)", s.AlphaMax)
	}
	if s.ThetaMin <= 1 {
		t.Errorf("ThetaMin = %v, want > 1", s.ThetaMin)
	}
	if s.ThetaMax > 4.05 {
		t.Errorf("ThetaMax = %v, want <= ~4 (paper's measured bound)", s.ThetaMax)
	}
	// d2.xlarge's documented discount is 0.25 (Section VI.A).
	d2 := D2XLarge()
	if got := d2.Alpha(); !almostEqual(got, 0.25, 0.001) {
		t.Errorf("d2.xlarge Alpha = %v, want 0.25", got)
	}
}

func TestCatalogEveryEntryValid(t *testing.T) {
	for _, it := range StandardLinuxUSEast().All() {
		if err := it.Validate(); err != nil {
			t.Errorf("catalog entry %s invalid: %v", it.Name, err)
		}
	}
}

func TestNewCatalogRejectsBadInput(t *testing.T) {
	bad := validCard()
	bad.OnDemandHourly = -1
	if _, err := NewCatalog([]InstanceType{bad}); err == nil {
		t.Error("NewCatalog accepted an invalid card")
	}
	ok := validCard()
	if _, err := NewCatalog([]InstanceType{ok, ok}); err == nil {
		t.Error("NewCatalog accepted a duplicate name")
	}
}

func TestCatalogLookupAndNames(t *testing.T) {
	cat := StandardLinuxUSEast()
	if _, err := cat.Lookup("nope.2xlarge"); err == nil {
		t.Error("Lookup of unknown type succeeded")
	}
	names := cat.Names()
	if len(names) != cat.Len() {
		t.Fatalf("len(Names) = %d, want %d", len(names), cat.Len())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	if !strings.Contains(strings.Join(names, ","), "d2.xlarge") {
		t.Error("d2.xlarge missing from Names")
	}
}

func TestEmptyCatalogStats(t *testing.T) {
	c, err := NewCatalog(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("empty catalog Stats = %+v, want zero", s)
	}
}

func TestPropertyBreakEvenBelowWindow(t *testing.T) {
	// For any plausible card and parameters, the break-even working time
	// must be positive and, whenever theta*a <= 4/3 (which holds for all
	// catalog entries with a <= 1 since beta_k = k*a*theta*T/(theta*(1-alpha))
	// ... ), simply: 0 < beta_k. Also beta is monotone in a and k.
	f := func(rawAlpha, rawA, rawK float64) bool {
		alpha := 0.05 + math.Mod(math.Abs(rawAlpha), 0.30) // (0.05, 0.35)
		a := math.Mod(math.Abs(rawA), 1.0)                 // [0, 1)
		k := 0.1 + math.Mod(math.Abs(rawK), 0.8)           // (0.1, 0.9)
		it := InstanceType{
			Name:           "prop.large",
			OnDemandHourly: 0.5,
			Upfront:        1000,
			ReservedHourly: 0.5 * alpha,
			PeriodHours:    HoursPerYear,
		}
		beta := it.BreakEvenHours(k, a)
		if beta < 0 {
			return false
		}
		// Monotone in both arguments.
		if it.BreakEvenHours(k+0.05, a) < beta {
			return false
		}
		return it.BreakEvenHours(k, a+1e-3) >= beta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullPeriodReservedCost(t *testing.T) {
	it := D2XLarge()
	want := 1506 + 0.172*float64(HoursPerYear)
	if got := it.FullPeriodReservedCost(); !almostEqual(got, want, 1e-9) {
		t.Errorf("FullPeriodReservedCost = %v, want %v", got, want)
	}
}

func TestCatalogFilterAndFamily(t *testing.T) {
	cat := StandardLinuxUSEast()
	d2 := cat.Family("d2")
	if d2.Len() != 4 {
		t.Errorf("d2 family = %d types, want 4", d2.Len())
	}
	for _, name := range d2.Names() {
		if !strings.HasPrefix(name, "d2.") {
			t.Errorf("unexpected member %q", name)
		}
	}
	cheap := cat.Filter(func(it InstanceType) bool { return it.Upfront < 100 })
	if cheap.Len() == 0 || cheap.Len() >= cat.Len() {
		t.Errorf("cheap filter = %d of %d", cheap.Len(), cat.Len())
	}
	// Family with no dot-sibling match is empty (no prefix confusion:
	// "d" must not match "d2.*").
	if got := cat.Family("d").Len(); got != 0 {
		t.Errorf("Family(d) = %d, want 0", got)
	}
}
