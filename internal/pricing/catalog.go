package pricing

import (
	"fmt"
	"sort"
	"strings"
)

// Catalog is a set of instance-type price cards keyed by name.
type Catalog struct {
	types map[string]InstanceType
}

// NewCatalog builds a catalog from the given price cards, validating
// each. Duplicate names are rejected.
func NewCatalog(types []InstanceType) (*Catalog, error) {
	c := &Catalog{types: make(map[string]InstanceType, len(types))}
	for _, it := range types {
		if err := it.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.types[it.Name]; dup {
			return nil, fmt.Errorf("pricing: duplicate instance type %q", it.Name)
		}
		c.types[it.Name] = it
	}
	return c, nil
}

// Lookup returns the price card for the named instance type.
func (c *Catalog) Lookup(name string) (InstanceType, error) {
	it, ok := c.types[name]
	if !ok {
		return InstanceType{}, fmt.Errorf("pricing: unknown instance type %q", name)
	}
	return it, nil
}

// Names returns all instance-type names in the catalog, sorted.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.types))
	for name := range c.types {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of instance types in the catalog.
func (c *Catalog) Len() int { return len(c.types) }

// All returns every price card, sorted by name.
func (c *Catalog) All() []InstanceType {
	out := make([]InstanceType, 0, len(c.types))
	for _, name := range c.Names() {
		out = append(out, c.types[name])
	}
	return out
}

// Stats summarizes the catalog-wide constants the paper's proofs rely
// on: the maximum reservation discount alpha and the range of theta.
type Stats struct {
	AlphaMin, AlphaMax float64
	ThetaMin, ThetaMax float64
}

// Stats computes alpha and theta extrema over the catalog. The paper
// reports alpha < 0.36 and theta in (1, 4) for 1-year standard Linux
// US-East instances; StandardLinuxUSEast satisfies both (theta for the
// d2 family is 4.01, which the paper rounds to 4).
func (c *Catalog) Stats() Stats {
	s := Stats{AlphaMin: 2, ThetaMin: 1e18}
	for _, it := range c.types {
		a, th := it.Alpha(), it.Theta()
		if a < s.AlphaMin {
			s.AlphaMin = a
		}
		if a > s.AlphaMax {
			s.AlphaMax = a
		}
		if th < s.ThetaMin {
			s.ThetaMin = th
		}
		if th > s.ThetaMax {
			s.ThetaMax = th
		}
	}
	if len(c.types) == 0 {
		return Stats{}
	}
	return s
}

// year returns a 1-year price card; a tiny constructor keeping the
// literal catalog below readable.
func year(name string, onDemand, upfront, reserved float64) InstanceType {
	return InstanceType{
		Name:           name,
		OnDemandHourly: onDemand,
		Upfront:        upfront,
		ReservedHourly: reserved,
		PeriodHours:    HoursPerYear,
	}
}

// StandardLinuxUSEast returns the reproduction's curated catalog of
// 1-year-term standard (Linux, US East) instance prices as of January
// 2018 — the population over which the paper computes its statistics.
// The real Amazon price sheet is external data; these values are
// plausible Jan-2018 prices chosen to satisfy the paper's measured
// invariants (alpha < 0.36, theta in (1, 4]), and the d2.xlarge card
// reproduces Table I exactly.
func StandardLinuxUSEast() *Catalog {
	c, err := NewCatalog([]InstanceType{
		// General purpose: t2 family (per the paper's t2.nano example:
		// on-demand $0.0059/h, upfront $18, reserved $0.002/h).
		year("t2.nano", 0.0059, 18, 0.0020),
		year("t2.micro", 0.0116, 35, 0.0040),
		year("t2.small", 0.0230, 70, 0.0080),
		year("t2.medium", 0.0464, 141, 0.0160),
		year("t2.large", 0.0928, 281, 0.0320),
		year("t2.xlarge", 0.1856, 562, 0.0640),
		year("t2.2xlarge", 0.3712, 1124, 0.1280),
		// General purpose: m4 family.
		year("m4.large", 0.100, 342, 0.0335),
		year("m4.xlarge", 0.200, 684, 0.0670),
		year("m4.2xlarge", 0.400, 1368, 0.1340),
		year("m4.4xlarge", 0.800, 2735, 0.2680),
		year("m4.10xlarge", 2.000, 6838, 0.6700),
		year("m4.16xlarge", 3.200, 10941, 1.0720),
		// Compute optimized: c4 family.
		year("c4.large", 0.100, 377, 0.0305),
		year("c4.xlarge", 0.199, 753, 0.0610),
		year("c4.2xlarge", 0.398, 1506, 0.1220),
		year("c4.4xlarge", 0.796, 3012, 0.2440),
		year("c4.8xlarge", 1.591, 6023, 0.4880),
		// Memory optimized: r4 family.
		year("r4.large", 0.133, 404, 0.0435),
		year("r4.xlarge", 0.266, 808, 0.0870),
		year("r4.2xlarge", 0.532, 1616, 0.1740),
		year("r4.4xlarge", 1.064, 3232, 0.3480),
		year("r4.8xlarge", 2.128, 6464, 0.6960),
		year("r4.16xlarge", 4.256, 12928, 1.3920),
		// Dense storage: d2 family (Table I: d2.xlarge on-demand $0.69/h,
		// partial upfront $1506, reserved $0.172/h, alpha = 0.25).
		year("d2.xlarge", 0.690, 1506, 0.1720),
		year("d2.2xlarge", 1.380, 3012, 0.3440),
		year("d2.4xlarge", 2.760, 6024, 0.6880),
		year("d2.8xlarge", 5.520, 12048, 1.3760),
		// Storage optimized: i3 family.
		year("i3.large", 0.156, 473, 0.0500),
		year("i3.xlarge", 0.312, 946, 0.1000),
		year("i3.2xlarge", 0.624, 1892, 0.2000),
		year("i3.4xlarge", 1.248, 3784, 0.4000),
		year("i3.8xlarge", 2.496, 7569, 0.8000),
		year("i3.16xlarge", 4.992, 15138, 1.6000),
		// Memory optimized: x1 family.
		year("x1.16xlarge", 6.669, 21381, 2.1200),
		year("x1.32xlarge", 13.338, 42762, 4.2400),
		// Accelerated computing: p2 family.
		year("p2.xlarge", 0.900, 3145, 0.2800),
		year("p2.8xlarge", 7.200, 25159, 2.2400),
		year("p2.16xlarge", 14.400, 50318, 4.4800),
		// Previous generation, still sold in the 2018 marketplace.
		year("m3.medium", 0.067, 211, 0.0210),
		year("c3.large", 0.105, 333, 0.0300),
	})
	if err != nil {
		// The catalog is a compile-time constant; a validation failure is
		// a programming error in this file, not a runtime condition.
		//rilint:allow nopanic -- init-time validation of compiled-in data; unreachable once the literal below is correct.
		panic(fmt.Sprintf("pricing: built-in catalog invalid: %v", err))
	}
	return c
}

// D2XLarge returns the paper's running-example price card (Table I,
// Section VI.A): d2.xlarge, Linux, US East, 1-year term.
func D2XLarge() InstanceType {
	it, err := StandardLinuxUSEast().Lookup("d2.xlarge")
	if err != nil {
		//rilint:allow nopanic -- the running-example card is part of the compiled-in catalog; absence is a programming error, not a runtime condition.
		panic(fmt.Sprintf("pricing: d2.xlarge missing from built-in catalog: %v", err))
	}
	return it
}

// Filter returns a new catalog containing the price cards for which
// keep returns true.
func (c *Catalog) Filter(keep func(InstanceType) bool) *Catalog {
	out := &Catalog{types: make(map[string]InstanceType)}
	for name, it := range c.types {
		if keep(it) {
			out.types[name] = it
		}
	}
	return out
}

// Family returns the catalog restricted to one instance family, e.g.
// Family("d2") keeps d2.xlarge through d2.8xlarge.
func (c *Catalog) Family(prefix string) *Catalog {
	return c.Filter(func(it InstanceType) bool {
		return strings.HasPrefix(it.Name, prefix+".")
	})
}
