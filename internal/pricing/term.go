package pricing

import (
	"fmt"
)

// HoursPerThreeYears is the hour count of Amazon's 3-year term — the
// other reservation length the paper mentions ("Amazon has 1-year and
// 3-year options, meaning T is 1 or 3 years").
const HoursPerThreeYears = 3 * HoursPerYear

// threeYearUpfrontScale and threeYearHourlyScale derive a 3-year card
// from a 1-year card using Amazon's typical spreads as of early 2018:
// the 3-year upfront is roughly twice the 1-year upfront (not three
// times — the longer commitment is rewarded), and the discounted
// hourly rate drops by a further ~25%.
const (
	threeYearUpfrontScale = 2.0
	threeYearHourlyScale  = 0.75
)

// ThreeYearTerm derives the 3-year price card for a 1-year card. The
// derived card keeps the instance name (terms are distinguished by
// PeriodHours), deepens alpha, and lowers theta — both effects push
// the selling algorithms' break-evens and bounds in the directions the
// formulas predict, which is what the 3-year experiments exercise.
func ThreeYearTerm(oneYear InstanceType) (InstanceType, error) {
	if err := oneYear.Validate(); err != nil {
		return InstanceType{}, err
	}
	if oneYear.PeriodHours != HoursPerYear {
		return InstanceType{}, fmt.Errorf("pricing: %s: period %d is not a 1-year card",
			oneYear.Name, oneYear.PeriodHours)
	}
	it := InstanceType{
		Name:           oneYear.Name,
		OnDemandHourly: oneYear.OnDemandHourly,
		Upfront:        oneYear.Upfront * threeYearUpfrontScale,
		ReservedHourly: oneYear.ReservedHourly * threeYearHourlyScale,
		PeriodHours:    HoursPerThreeYears,
	}
	if err := it.Validate(); err != nil {
		return InstanceType{}, err
	}
	return it, nil
}

// ThreeYearStandardLinuxUSEast derives the 3-year-term catalog from
// the built-in 1-year catalog.
func ThreeYearStandardLinuxUSEast() (*Catalog, error) {
	oneYear := StandardLinuxUSEast()
	types := make([]InstanceType, 0, oneYear.Len())
	for _, it := range oneYear.All() {
		three, err := ThreeYearTerm(it)
		if err != nil {
			return nil, err
		}
		types = append(types, three)
	}
	return NewCatalog(types)
}
