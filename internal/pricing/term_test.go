package pricing

import (
	"testing"
)

func TestThreeYearTermD2XLarge(t *testing.T) {
	one := D2XLarge()
	three, err := ThreeYearTerm(one)
	if err != nil {
		t.Fatal(err)
	}
	if three.PeriodHours != HoursPerThreeYears {
		t.Errorf("period = %d, want %d", three.PeriodHours, HoursPerThreeYears)
	}
	if three.Name != one.Name {
		t.Errorf("name changed: %q", three.Name)
	}
	// Deeper hourly discount: alpha drops.
	if three.Alpha() >= one.Alpha() {
		t.Errorf("3-year alpha %v not below 1-year %v", three.Alpha(), one.Alpha())
	}
	// Longer commitment per upfront dollar: theta rises (p*3T / 2R).
	if three.Theta() <= one.Theta() {
		t.Errorf("3-year theta %v not above 1-year %v", three.Theta(), one.Theta())
	}
	// Total cost of a fully-used 3-year reservation must stay below
	// three consecutive 1-year reservations (otherwise nobody would buy
	// the longer term).
	if three.FullPeriodReservedCost() >= 3*one.FullPeriodReservedCost() {
		t.Errorf("3-year full cost %v not below 3x 1-year %v",
			three.FullPeriodReservedCost(), 3*one.FullPeriodReservedCost())
	}
}

func TestThreeYearTermValidation(t *testing.T) {
	if _, err := ThreeYearTerm(InstanceType{}); err == nil {
		t.Error("invalid card accepted")
	}
	already := D2XLarge()
	already.PeriodHours = HoursPerThreeYears
	if _, err := ThreeYearTerm(already); err == nil {
		t.Error("non-1-year card accepted")
	}
}

func TestThreeYearCatalog(t *testing.T) {
	one := StandardLinuxUSEast()
	three, err := ThreeYearStandardLinuxUSEast()
	if err != nil {
		t.Fatal(err)
	}
	if three.Len() != one.Len() {
		t.Fatalf("catalog sizes differ: %d vs %d", three.Len(), one.Len())
	}
	for _, it := range three.All() {
		if err := it.Validate(); err != nil {
			t.Errorf("3-year %s invalid: %v", it.Name, err)
		}
		if it.PeriodHours != HoursPerThreeYears {
			t.Errorf("%s: period %d", it.Name, it.PeriodHours)
		}
	}
	// The paper's alpha bound is stated for 1-year terms; the derived
	// 3-year catalog has strictly deeper discounts.
	s1, s3 := one.Stats(), three.Stats()
	if s3.AlphaMax >= s1.AlphaMax {
		t.Errorf("3-year AlphaMax %v not below 1-year %v", s3.AlphaMax, s1.AlphaMax)
	}
}

func TestThreeYearBreakEvenScales(t *testing.T) {
	// The selling algorithms work unchanged on 3-year cards; the
	// break-even point grows with the bigger upfront and deeper discount.
	one := D2XLarge()
	three, err := ThreeYearTerm(one)
	if err != nil {
		t.Fatal(err)
	}
	b1 := one.BreakEvenHours(0.75, 0.8)
	b3 := three.BreakEvenHours(0.75, 0.8)
	if b3 <= b1 {
		t.Errorf("3-year break-even %v not above 1-year %v", b3, b1)
	}
	// Relative to the window length, though, the 3-year break-even is
	// less demanding than 3x: the window tripled while beta only roughly
	// doubled.
	if b3 >= 3*b1 {
		t.Errorf("3-year break-even %v not below 3x 1-year %v", b3, 3*b1)
	}
}
