package core

import (
	"math"
	"strings"
	"testing"

	"rimarket/internal/pricing"
	"rimarket/internal/simulate"
)

// testInstance: p = 1.0, R = 20, alpha = 0.25, T = 40, giving
// theta = p*T/R = 2, inside the paper's measured band (1, 4). With
// a = 0.8 the break-even points are beta_{3/4} = 16, beta_{1/2} = 10.67
// and beta_{1/4} = 5.33 hours.
func testInstance() pricing.InstanceType {
	return pricing.InstanceType{
		Name:           "test.small",
		OnDemandHourly: 1.0,
		Upfront:        20,
		ReservedHourly: 0.25,
		PeriodHours:    40,
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewThresholdValidation(t *testing.T) {
	it := testInstance()
	tests := []struct {
		name     string
		it       pricing.InstanceType
		discount float64
		fraction float64
		wantErr  string
	}{
		{name: "bad instance", it: pricing.InstanceType{}, discount: 0.5, fraction: 0.5, wantErr: "no name"},
		{name: "discount high", it: it, discount: 1.1, fraction: 0.5, wantErr: "selling discount"},
		{name: "discount negative", it: it, discount: -0.1, fraction: 0.5, wantErr: "selling discount"},
		{name: "fraction zero", it: it, discount: 0.5, fraction: 0, wantErr: "fraction"},
		{name: "fraction one", it: it, discount: 0.5, fraction: 1, wantErr: "fraction"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewThreshold(tt.it, tt.discount, tt.fraction)
			if err == nil {
				t.Fatal("NewThreshold succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not contain %q", err, tt.wantErr)
			}
		})
	}
	if _, err := NewThreshold(it, 0.8, 0.75); err != nil {
		t.Errorf("valid construction failed: %v", err)
	}
}

func TestThresholdBreakEvenMatchesEq9(t *testing.T) {
	// Eq. (9): beta = 3*a*R / (4*p*(1-alpha)).
	it := testInstance()
	a := 0.6
	p3, err := NewA3T4(it, a)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * a * it.Upfront / (4 * it.OnDemandHourly * (1 - 0.25))
	if got := p3.BreakEven(); !almostEqual(got, want, 1e-9) {
		t.Errorf("A_{3T/4} BreakEven = %v, want %v", got, want)
	}
	// A_{T/2}: beta = a*R / (2*p*(1-alpha)).
	p2, err := NewAT2(it, a)
	if err != nil {
		t.Fatal(err)
	}
	want2 := a * it.Upfront / (2 * it.OnDemandHourly * (1 - 0.25))
	if got := p2.BreakEven(); !almostEqual(got, want2, 1e-9) {
		t.Errorf("A_{T/2} BreakEven = %v, want %v", got, want2)
	}
	// A_{T/4}: beta = a*R / (4*p*(1-alpha)).
	p4, err := NewAT4(it, a)
	if err != nil {
		t.Fatal(err)
	}
	want4 := a * it.Upfront / (4 * it.OnDemandHourly * (1 - 0.25))
	if got := p4.BreakEven(); !almostEqual(got, want4, 1e-9) {
		t.Errorf("A_{T/4} BreakEven = %v, want %v", got, want4)
	}
}

func TestThresholdCheckpointAges(t *testing.T) {
	it := testInstance() // T = 40
	tests := []struct {
		fraction float64
		want     int
	}{
		{fraction: Fraction3T4, want: 30},
		{fraction: FractionT2, want: 20},
		{fraction: FractionT4, want: 10},
		{fraction: 0.33, want: 13}, // rounds 13.2
	}
	for _, tt := range tests {
		p, err := NewThreshold(it, 0.5, tt.fraction)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.CheckpointAge(it.PeriodHours); got != tt.want {
			t.Errorf("CheckpointAge(k=%v) = %d, want %d", tt.fraction, got, tt.want)
		}
	}
}

func TestThresholdNames(t *testing.T) {
	it := testInstance()
	tests := []struct {
		fraction float64
		want     string
	}{
		{Fraction3T4, "A_{3T/4}"},
		{FractionT2, "A_{T/2}"},
		{FractionT4, "A_{T/4}"},
		{0.3, "A_{0.3T}"},
	}
	for _, tt := range tests {
		p, err := NewThreshold(it, 0.5, tt.fraction)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Name(); got != tt.want {
			t.Errorf("Name(k=%v) = %q, want %q", tt.fraction, got, tt.want)
		}
	}
}

func TestThresholdShouldSell(t *testing.T) {
	it := testInstance()
	a := 0.3 // A_{T/2}: beta = 0.5*0.3*20/(1*0.75) = 4 hours
	p, err := NewAT2(it, a)
	if err != nil {
		t.Fatal(err)
	}
	beta := p.BreakEven()
	if !almostEqual(beta, 4, 1e-9) {
		t.Fatalf("BreakEven = %v, want 4", beta)
	}
	tests := []struct {
		worked int
		want   bool
	}{
		{worked: 0, want: true},
		{worked: 3, want: true},
		{worked: 4, want: false}, // at break-even: keep (strict less-than)
		{worked: 5, want: false},
	}
	for _, tt := range tests {
		ck := simulate.Checkpoint{Worked: tt.worked}
		if got := p.ShouldSell(ck); got != tt.want {
			t.Errorf("ShouldSell(worked=%d) = %v, want %v", tt.worked, got, tt.want)
		}
	}
}

func TestThresholdEndToEndIdleInstanceSold(t *testing.T) {
	// An instance reserved at hour 0 that never works must be sold at
	// its checkpoint by every A_{kT}.
	it := testInstance()
	n := it.PeriodHours
	demand := make([]int, n)
	newRes := make([]int, n)
	newRes[0] = 1
	for _, fraction := range []float64{Fraction3T4, FractionT2, FractionT4} {
		p, err := NewThreshold(it, 0.8, fraction)
		if err != nil {
			t.Fatal(err)
		}
		cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}
		res, err := simulate.Run(demand, newRes, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.SoldCount() != 1 {
			t.Errorf("k=%v: SoldCount = %d, want 1", fraction, res.SoldCount())
		}
		wantAge := p.CheckpointAge(it.PeriodHours)
		if res.Instances[0].SoldAt != wantAge {
			t.Errorf("k=%v: SoldAt = %d, want %d", fraction, res.Instances[0].SoldAt, wantAge)
		}
	}
}

func TestThresholdEndToEndBusyInstanceKept(t *testing.T) {
	it := testInstance()
	n := it.PeriodHours
	demand := make([]int, n)
	for i := range demand {
		demand[i] = 1
	}
	newRes := make([]int, n)
	newRes[0] = 1
	for _, fraction := range []float64{Fraction3T4, FractionT2, FractionT4} {
		p, err := NewThreshold(it, 0.8, fraction)
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: a fully busy window is at or above break-even for this card.
		window := float64(p.CheckpointAge(it.PeriodHours))
		if p.BreakEven() > window {
			t.Fatalf("k=%v: break-even %v exceeds window %v; test card mis-sized", fraction, p.BreakEven(), window)
		}
		cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}
		res, err := simulate.Run(demand, newRes, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.SoldCount() != 0 {
			t.Errorf("k=%v: SoldCount = %d, want 0 (instance fully busy)", fraction, res.SoldCount())
		}
	}
}

func TestAllSelling(t *testing.T) {
	if _, err := NewAllSelling(0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := NewAllSelling(1); err == nil {
		t.Error("fraction 1 accepted")
	}
	p, err := NewAllSelling(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CheckpointAge(40); got != 20 {
		t.Errorf("CheckpointAge = %d, want 20", got)
	}
	if !p.ShouldSell(simulate.Checkpoint{Worked: 1000}) {
		t.Error("AllSelling kept an instance")
	}

	// End to end: a fully busy instance is still sold.
	it := testInstance()
	n := it.PeriodHours
	demand := make([]int, n)
	for i := range demand {
		demand[i] = 1
	}
	newRes := make([]int, n)
	newRes[0] = 1
	cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}
	res, err := simulate.Run(demand, newRes, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoldCount() != 1 {
		t.Errorf("SoldCount = %d, want 1", res.SoldCount())
	}
}

func TestKeepReservedAlias(t *testing.T) {
	var p KeepReserved
	if p.CheckpointAge(40) > 0 {
		t.Error("KeepReserved has a checkpoint")
	}
	if p.ShouldSell(simulate.Checkpoint{}) {
		t.Error("KeepReserved sold")
	}
}
