package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"rimarket/internal/simulate"
)

func mustA(t *testing.T, fraction, discount float64) Threshold {
	t.Helper()
	p, err := NewThreshold(testInstance(), discount, fraction)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAggregateRunValidation(t *testing.T) {
	p := mustA(t, FractionT2, 0.8)
	if _, err := AggregateRun([]int{1, 2}, []int{0}, p); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AggregateRun([]int{-1}, []int{0}, p); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := AggregateRun([]int{1}, []int{-1}, p); err == nil {
		t.Error("negative reservations accepted")
	}
}

func TestAggregateRunIdleInstanceSold(t *testing.T) {
	// One idle instance: Algorithm 1 must sell it at its checkpoint.
	it := testInstance() // T = 40
	p := mustA(t, Fraction3T4, 0.8)
	n := 40
	demand := make([]int, n)
	newRes := make([]int, n)
	newRes[0] = 1
	res, err := AggregateRun(demand, newRes, p)
	if err != nil {
		t.Fatal(err)
	}
	ck := p.CheckpointAge(it.PeriodHours) // 30
	for t2, s := range res.Sold {
		want := 0
		if t2 == ck {
			want = 1
		}
		if s != want {
			t.Errorf("Sold[%d] = %d, want %d", t2, s, want)
		}
	}
	// After the sale the instance is inactive; after the historical
	// update its past activity is erased too.
	for t2 := 0; t2 < n; t2++ {
		if res.Active[t2] != 0 {
			t.Errorf("Active[%d] = %d, want 0 after sale and history rewrite", t2, res.Active[t2])
		}
	}
}

func TestAggregateRunBusyInstanceKept(t *testing.T) {
	it := testInstance()
	p := mustA(t, Fraction3T4, 0.8)
	n := 40
	demand := make([]int, n)
	for i := range demand {
		demand[i] = 1
	}
	newRes := make([]int, n)
	newRes[0] = 1
	res, err := AggregateRun(demand, newRes, p)
	if err != nil {
		t.Fatal(err)
	}
	for t2, s := range res.Sold {
		if s != 0 {
			t.Errorf("Sold[%d] = %d, want 0", t2, s)
		}
	}
	// Cost = R + alpha*p*T (always reserved, never on-demand).
	want := it.Upfront + it.ReservedHourly*float64(n)
	if !almostEqual(res.Cost, want, 1e-9) {
		t.Errorf("Cost = %v, want %v", res.Cost, want)
	}
}

func TestAggregateRunFigure1Shape(t *testing.T) {
	// The Fig. 1 scenario: a batch of two instances reserved together,
	// two newer instances reserved later, and enough idle hours that one
	// of the original batch idles below break-even while the other works.
	p := mustA(t, Fraction3T4, 0.8) // T = 40, ck(3T/4) = 30
	beta := p.BreakEven()           // 16 hours
	if !almostEqual(beta, 16, 1e-9) {
		t.Fatalf("BreakEven = %v, want 16", beta)
	}
	n := 45
	demand := make([]int, n)
	newRes := make([]int, n)
	newRes[0] = 2  // inst_1, inst_2
	newRes[10] = 2 // inst_3, inst_4 (more remaining period -> idle first)
	// Demand 3 for hours 0..29: with 2 then 4 reservations, the idle
	// ones are the newest; inst_2 (higher batch index) works always,
	// inst_1 works while demand >= 2... demand 3 of 4 active: one idle,
	// and the idle one is among the newer batch, so inst_1 works too.
	for i := 0; i < 12; i++ {
		demand[i] = 3
	}
	// After hour 12, demand drops to 1: only inst_2 works; inst_1 idles
	// (18 idle hours > 30 - 16 = 14 -> inst_1's w = 12 < 16 -> sell).
	for i := 12; i < n; i++ {
		demand[i] = 1
	}
	res, err := AggregateRun(demand, newRes, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sold[30] != 1 {
		t.Errorf("Sold[30] = %d, want exactly the under-worked batch-mate", res.Sold[30])
	}
	total := 0
	for _, s := range res.Sold {
		total += s
	}
	// inst_3/inst_4 reach their checkpoint at hour 40: worked only hours
	// 10 and 11 (2 < 16) -> both sold; grand total 3 within horizon 45.
	if total != 3 {
		t.Errorf("total sold = %d, want 3", total)
	}
}

// TestAggregateMatchesEngineNoSales: with a break-even of zero nothing
// is ever sold and the two implementations must agree exactly on r and o.
func TestAggregateMatchesEngineNoSales(t *testing.T) {
	it := testInstance()
	p := mustA(t, FractionT2, 0) // a = 0 -> beta = 0 -> never sell
	demand := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4}
	newRes := []int{2, 0, 1, 0, 1, 2, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	agg, err := AggregateRun(demand, newRes, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulate.Config{Instance: it, SellingDiscount: 0}
	eng, err := simulate.Run(demand, newRes, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range demand {
		if agg.Active[t2] != eng.Hours[t2].ActiveRes {
			t.Errorf("hour %d: aggregate r = %d, engine r = %d", t2, agg.Active[t2], eng.Hours[t2].ActiveRes)
		}
		if agg.OnDemand[t2] != eng.Hours[t2].OnDemand {
			t.Errorf("hour %d: aggregate o = %d, engine o = %d", t2, agg.OnDemand[t2], eng.Hours[t2].OnDemand)
		}
		if agg.Sold[t2] != 0 || eng.Hours[t2].Sold != 0 {
			t.Errorf("hour %d: unexpected sale", t2)
		}
	}
	if !almostEqual(agg.Cost, eng.Cost.Total(), 1e-6) {
		t.Errorf("aggregate cost %v != engine cost %v", agg.Cost, eng.Cost.Total())
	}
}

// TestPropertyAggregateMatchesEngineSingleInstance: with exactly one
// reservation the historical-rewrite ambiguity vanishes, so the literal
// Algorithm 1 and the instance-level engine must make identical
// decisions for random demand.
func TestPropertyAggregateMatchesEngineSingleInstance(t *testing.T) {
	it := testInstance()
	f := func(raw []uint8, startSel, fracSel, aSel uint8) bool {
		n := it.PeriodHours + 20
		demand := make([]int, n)
		for i := range demand {
			if i < len(raw) {
				demand[i] = int(raw[i] % 3)
			}
		}
		newRes := make([]int, n)
		start := int(startSel) % 10
		newRes[start] = 1
		fraction := []float64{Fraction3T4, FractionT2, FractionT4}[int(fracSel)%3]
		a := float64(int(aSel)%11) / 10
		p, err := NewThreshold(it, a, fraction)
		if a == 0 {
			p, err = NewThreshold(it, 0.001, fraction) // beta ~ 0, still valid
		}
		if err != nil {
			return false
		}
		agg, err := AggregateRun(demand, newRes, p)
		if err != nil {
			return false
		}
		cfg := simulate.Config{Instance: it, SellingDiscount: p.discount}
		eng, err := simulate.Run(demand, newRes, cfg, p)
		if err != nil {
			return false
		}
		engSold := make([]int, n)
		for t2, h := range eng.Hours {
			engSold[t2] = h.Sold
		}
		return reflect.DeepEqual(agg.Sold, engSold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAggregateMatchesEngineMultiBatchFirstDecision: with many
// instances but a horizon that ends at the first checkpoint, no
// history rewrite can affect another window, so decisions must agree.
func TestPropertyAggregateMatchesEngineMultiBatchFirstDecision(t *testing.T) {
	it := testInstance()
	f := func(raw []uint8, resRaw []uint8, aSel uint8) bool {
		if len(resRaw) == 0 {
			return true
		}
		p, err := NewAT2(it, float64(int(aSel)%10+1)/10)
		if err != nil {
			return false
		}
		ck := p.CheckpointAge(it.PeriodHours)
		n := ck + 1 // horizon ends right at the first batch's checkpoint
		demand := make([]int, n)
		for i := range demand {
			if i < len(raw) {
				demand[i] = int(raw[i] % 4)
			}
		}
		newRes := make([]int, n)
		newRes[0] = int(resRaw[0]%3) + 1
		if len(resRaw) > 1 {
			newRes[1+int(resRaw[1])%(n-1)] += int(resRaw[1] % 2)
		}
		agg, err := AggregateRun(demand, newRes, p)
		if err != nil {
			return false
		}
		cfg := simulate.Config{Instance: it, SellingDiscount: p.discount}
		eng, err := simulate.Run(demand, newRes, cfg, p)
		if err != nil {
			return false
		}
		engSold := make([]int, n)
		for t2, h := range eng.Hours {
			engSold[t2] = h.Sold
		}
		return reflect.DeepEqual(agg.Sold, engSold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
