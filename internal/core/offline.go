package core

import (
	"fmt"

	"rimarket/internal/pricing"
)

// Billing selects how a reserved instance's hourly fee is accounted in
// the per-instance offline analysis.
type Billing int

// Billing modes. Enums start at 1 so the zero value is invalid.
const (
	// BillWhenUsed charges the discounted rate alpha*p only for hours the
	// instance serves demand — the accounting used in the paper's
	// competitive-ratio proofs (Section IV.C, Eqs. 13, 15, 25).
	BillWhenUsed Billing = iota + 1
	// BillWhileActive charges alpha*p for every hour the instance is
	// active whether busy or idle — the accounting of the cost model
	// Eq. (1), which is also how EC2 bills a partial-upfront reservation.
	BillWhileActive
)

// String implements fmt.Stringer.
func (b Billing) String() string {
	switch b {
	case BillWhenUsed:
		return "bill-when-used"
	case BillWhileActive:
		return "bill-while-active"
	default:
		return fmt.Sprintf("Billing(%d)", int(b))
	}
}

// OfflineParams configures the per-instance offline optimum.
type OfflineParams struct {
	// Instance supplies R, p, alpha and T.
	Instance pricing.InstanceType
	// SellingDiscount is the paper's a.
	SellingDiscount float64
	// Billing selects the hourly-fee accounting; the proofs use
	// BillWhenUsed.
	Billing Billing
	// MinSellAge restricts the earliest sale age OptimalSell may pick.
	// The paper's benchmark OPT corresponding to A_{kT} only sells at
	// epsilon*T with epsilon in [k, 1] (Section IV.C: "we have
	// epsilon in [3/4, 1]"), so bound validation sets this to the
	// checkpoint age. Zero means unrestricted.
	MinSellAge int
}

// Validate reports whether the parameters are usable.
func (p OfflineParams) Validate() error {
	if err := p.Instance.Validate(); err != nil {
		return err
	}
	if p.SellingDiscount < 0 || p.SellingDiscount > 1 {
		return fmt.Errorf("core: selling discount %v outside [0, 1]", p.SellingDiscount)
	}
	if p.Billing != BillWhenUsed && p.Billing != BillWhileActive {
		return fmt.Errorf("core: invalid billing mode %v", p.Billing)
	}
	if p.MinSellAge < 0 || p.MinSellAge >= p.Instance.PeriodHours {
		return fmt.Errorf("core: MinSellAge %d outside [0, %d)", p.MinSellAge, p.Instance.PeriodHours)
	}
	return nil
}

// OfflineDecision is the outcome of the per-instance offline optimum.
type OfflineDecision struct {
	// Sell reports whether selling at any age beats keeping.
	Sell bool
	// SellAge is the optimal sale age in hours (valid when Sell).
	SellAge int
	// Cost is the optimal per-instance cost.
	Cost float64
	// KeepCost is the cost of never selling, for reference.
	KeepCost float64
}

// OptimalSell computes the optimal offline selling decision for one
// reserved instance, per Section IV.A: with the instance's full busy
// schedule known (schedule[h] is true iff the instance serves demand in
// hour h of its life, len(schedule) == T), scan every sale age
// e in [1, T-1] and compare with keeping.
//
// Selling at age e costs (in BillWhenUsed mode, the proofs' accounting)
//
//	R + alpha*p*x + p*y - a*R*(T-e)/T
//
// where x is the busy hours before e and y the busy hours from e on
// (those demands must be re-bought on-demand). Keeping costs
// R + alpha*p*(x+y). In BillWhileActive mode the alpha*p term charges
// e (respectively T) hours regardless of use.
func OptimalSell(schedule []bool, params OfflineParams) (OfflineDecision, error) {
	if err := params.Validate(); err != nil {
		return OfflineDecision{}, err
	}
	it := params.Instance
	T := it.PeriodHours
	if len(schedule) != T {
		return OfflineDecision{}, fmt.Errorf("core: schedule has %d hours, want the period %d", len(schedule), T)
	}

	p := it.OnDemandHourly
	ap := it.ReservedHourly
	R := it.Upfront
	a := params.SellingDiscount

	// suffixBusy[e] = busy hours in [e, T).
	suffixBusy := make([]int, T+1)
	for h := T - 1; h >= 0; h-- {
		suffixBusy[h] = suffixBusy[h+1]
		if schedule[h] {
			suffixBusy[h]++
		}
	}
	totalBusy := suffixBusy[0]

	var keepCost float64
	switch params.Billing {
	case BillWhenUsed:
		keepCost = R + ap*float64(totalBusy)
	default: // BillWhileActive
		keepCost = R + ap*float64(T)
	}

	minAge := params.MinSellAge
	if minAge < 1 {
		minAge = 1
	}
	best := OfflineDecision{Sell: false, SellAge: -1, Cost: keepCost, KeepCost: keepCost}
	for e := minAge; e < T; e++ {
		x := totalBusy - suffixBusy[e] // busy hours before the sale
		y := suffixBusy[e]             // busy hours re-bought on-demand
		income := a * R * float64(T-e) / float64(T)
		var cost float64
		switch params.Billing {
		case BillWhenUsed:
			cost = R + ap*float64(x) + p*float64(y) - income
		default:
			cost = R + ap*float64(e) + p*float64(y) - income
		}
		if cost < best.Cost {
			best = OfflineDecision{Sell: true, SellAge: e, Cost: cost, KeepCost: keepCost}
		}
	}
	return best, nil
}

// CostIfSoldAt returns the per-instance cost of selling at the given
// age, under the same accounting as OptimalSell. It exists so analyses
// and tests can probe individual candidate sale points.
func CostIfSoldAt(schedule []bool, age int, params OfflineParams) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	it := params.Instance
	T := it.PeriodHours
	if len(schedule) != T {
		return 0, fmt.Errorf("core: schedule has %d hours, want the period %d", len(schedule), T)
	}
	if age < 0 || age > T {
		return 0, fmt.Errorf("core: sale age %d outside [0, %d]", age, T)
	}
	var x, y int
	for h, busy := range schedule {
		if !busy {
			continue
		}
		if h < age {
			x++
		} else {
			y++
		}
	}
	income := params.SellingDiscount * it.Upfront * float64(T-age) / float64(T)
	switch params.Billing {
	case BillWhenUsed:
		return it.Upfront + it.ReservedHourly*float64(x) + it.OnDemandHourly*float64(y) - income, nil
	default:
		return it.Upfront + it.ReservedHourly*float64(age) + it.OnDemandHourly*float64(y) - income, nil
	}
}

// CostIfKept returns the per-instance cost of holding the reservation
// for its whole period, under the same accounting as OptimalSell.
func CostIfKept(schedule []bool, params OfflineParams) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	it := params.Instance
	if len(schedule) != it.PeriodHours {
		return 0, fmt.Errorf("core: schedule has %d hours, want the period %d", len(schedule), it.PeriodHours)
	}
	busy := 0
	for _, b := range schedule {
		if b {
			busy++
		}
	}
	switch params.Billing {
	case BillWhenUsed:
		return it.Upfront + it.ReservedHourly*float64(busy), nil
	default:
		return it.Upfront + it.ReservedHourly*float64(it.PeriodHours), nil
	}
}

// ThresholdCost returns the per-instance cost incurred by the online
// algorithm A_{kT} on the given schedule, under the proofs' accounting
// (Eqs. 15 and 25): if the busy hours before the checkpoint are below
// break-even the instance is sold at k*T (busy hours afterwards are
// re-bought on-demand); otherwise it is kept to the end.
func ThresholdCost(schedule []bool, policy Threshold, billing Billing) (float64, error) {
	params := OfflineParams{
		Instance:        policy.instance,
		SellingDiscount: policy.discount,
		Billing:         billing,
	}
	ckAge := policy.CheckpointAge(policy.instance.PeriodHours)
	worked := 0
	for h := 0; h < ckAge && h < len(schedule); h++ {
		if schedule[h] {
			worked++
		}
	}
	if float64(worked) < policy.BreakEven() {
		return CostIfSoldAt(schedule, ckAge, params)
	}
	return CostIfKept(schedule, params)
}
