package core

import (
	"testing"
	"testing/quick"
)

func usedParams() OfflineParams {
	return OfflineParams{Instance: testInstance(), SellingDiscount: 0.8, Billing: BillWhenUsed}
}

func activeParams() OfflineParams {
	p := usedParams()
	p.Billing = BillWhileActive
	return p
}

func TestBillingString(t *testing.T) {
	if BillWhenUsed.String() != "bill-when-used" {
		t.Error(BillWhenUsed.String())
	}
	if BillWhileActive.String() != "bill-while-active" {
		t.Error(BillWhileActive.String())
	}
	if Billing(9).String() != "Billing(9)" {
		t.Error(Billing(9).String())
	}
}

func TestOfflineParamsValidate(t *testing.T) {
	good := usedParams()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := good
	bad.SellingDiscount = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad discount accepted")
	}
	bad = good
	bad.Billing = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero billing accepted")
	}
}

func TestOptimalSellValidation(t *testing.T) {
	if _, err := OptimalSell(make([]bool, 5), usedParams()); err == nil {
		t.Error("short schedule accepted")
	}
	bad := usedParams()
	bad.SellingDiscount = -1
	if _, err := OptimalSell(make([]bool, 40), bad); err == nil {
		t.Error("bad params accepted")
	}
}

func TestOptimalSellIdleInstance(t *testing.T) {
	// Never-busy instance: sell as early as possible (age 1) to recoup
	// the most upfront. Income at age e is a*R*(T-e)/T, decreasing in e.
	schedule := make([]bool, 40)
	dec, err := OptimalSell(schedule, usedParams())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Sell || dec.SellAge != 1 {
		t.Errorf("decision = %+v, want sell at age 1", dec)
	}
	// Cost = R - a*R*39/40 = 20 - 15.6 = 4.4; keep = 20.
	if !almostEqual(dec.Cost, 4.4, 1e-9) {
		t.Errorf("Cost = %v, want 4.4", dec.Cost)
	}
	if !almostEqual(dec.KeepCost, 20, 1e-9) {
		t.Errorf("KeepCost = %v, want 20", dec.KeepCost)
	}
}

func TestOptimalSellFullyBusyInstance(t *testing.T) {
	// Always-busy instance: every post-sale hour is re-bought at p,
	// costlier than alpha*p plus the foregone income; keep it.
	schedule := make([]bool, 40)
	for i := range schedule {
		schedule[i] = true
	}
	dec, err := OptimalSell(schedule, usedParams())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Sell {
		t.Errorf("decision = %+v, want keep", dec)
	}
	// Keep cost = R + alpha*p*T = 20 + 10 = 30.
	if !almostEqual(dec.Cost, 30, 1e-9) {
		t.Errorf("Cost = %v, want 30", dec.Cost)
	}
}

func TestOptimalSellFrontLoadedUsage(t *testing.T) {
	// Busy for the first 10 hours only: sell right when usage stops
	// (age 10). Selling earlier re-buys busy hours at p; later forgoes
	// income.
	schedule := make([]bool, 40)
	for i := 0; i < 10; i++ {
		schedule[i] = true
	}
	dec, err := OptimalSell(schedule, usedParams())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Sell || dec.SellAge != 10 {
		t.Errorf("decision = %+v, want sell at age 10", dec)
	}
	// Cost = R + alpha*p*10 - a*R*30/40 = 20 + 2.5 - 12 = 10.5.
	if !almostEqual(dec.Cost, 10.5, 1e-9) {
		t.Errorf("Cost = %v, want 10.5", dec.Cost)
	}
}

func TestOptimalSellBillWhileActive(t *testing.T) {
	// Under Eq. (1)'s accounting an idle instance also pays alpha*p per
	// active hour, making early sale even more attractive.
	schedule := make([]bool, 40)
	dec, err := OptimalSell(schedule, activeParams())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Sell || dec.SellAge != 1 {
		t.Errorf("decision = %+v, want sell at age 1", dec)
	}
	// Cost = R + alpha*p*1 - a*R*39/40 = 20 + 0.25 - 15.6 = 4.65.
	if !almostEqual(dec.Cost, 4.65, 1e-9) {
		t.Errorf("Cost = %v, want 4.65", dec.Cost)
	}
	if !almostEqual(dec.KeepCost, 30, 1e-9) {
		t.Errorf("KeepCost = %v, want 30 (R + alpha*p*T)", dec.KeepCost)
	}
}

func TestCostIfSoldAtAndKeptAgree(t *testing.T) {
	schedule := make([]bool, 40)
	for i := 5; i < 25; i++ {
		schedule[i] = true
	}
	for _, params := range []OfflineParams{usedParams(), activeParams()} {
		dec, err := OptimalSell(schedule, params)
		if err != nil {
			t.Fatal(err)
		}
		kept, err := CostIfKept(schedule, params)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(kept, dec.KeepCost, 1e-9) {
			t.Errorf("%v: CostIfKept = %v, want %v", params.Billing, kept, dec.KeepCost)
		}
		if dec.Sell {
			atOpt, err := CostIfSoldAt(schedule, dec.SellAge, params)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(atOpt, dec.Cost, 1e-9) {
				t.Errorf("%v: CostIfSoldAt(opt) = %v, want %v", params.Billing, atOpt, dec.Cost)
			}
		}
	}
}

func TestCostIfSoldAtValidation(t *testing.T) {
	sched := make([]bool, 40)
	if _, err := CostIfSoldAt(sched, -1, usedParams()); err == nil {
		t.Error("negative age accepted")
	}
	if _, err := CostIfSoldAt(sched, 41, usedParams()); err == nil {
		t.Error("age beyond period accepted")
	}
	if _, err := CostIfSoldAt(make([]bool, 3), 1, usedParams()); err == nil {
		t.Error("short schedule accepted")
	}
	bad := usedParams()
	bad.Billing = 0
	if _, err := CostIfSoldAt(sched, 1, bad); err == nil {
		t.Error("bad billing accepted")
	}
	if _, err := CostIfKept(make([]bool, 3), usedParams()); err == nil {
		t.Error("CostIfKept short schedule accepted")
	}
	if _, err := CostIfKept(sched, bad); err == nil {
		t.Error("CostIfKept bad billing accepted")
	}
}

func TestThresholdCostSellsBelowBreakEven(t *testing.T) {
	it := testInstance()
	policy, err := NewAT2(it, 0.3) // beta = 4 hours, checkpoint age 20
	if err != nil {
		t.Fatal(err)
	}
	// 3 busy hours before the checkpoint (< 4): sold at age 20.
	schedule := make([]bool, 40)
	for i := 0; i < 3; i++ {
		schedule[i] = true
	}
	got, err := ThresholdCost(schedule, policy, BillWhenUsed)
	if err != nil {
		t.Fatal(err)
	}
	// Cost = R + alpha*p*3 - a*R*(20/40) = 20 + 0.75 - 3 = 17.75.
	if !almostEqual(got, 17.75, 1e-9) {
		t.Errorf("ThresholdCost = %v, want 17.75", got)
	}

	// Fully busy window: kept; cost = R + alpha*p*totalBusy.
	for i := range schedule {
		schedule[i] = true
	}
	got, err = ThresholdCost(schedule, policy, BillWhenUsed)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 30, 1e-9) {
		t.Errorf("ThresholdCost busy = %v, want 30", got)
	}
}

// TestPropertyOptimalSellIsMinimal: OPT's cost is a lower bound over
// keeping and every candidate sale age — by construction, but this
// guards the suffix-sum bookkeeping against regressions.
func TestPropertyOptimalSellIsMinimal(t *testing.T) {
	params := usedParams()
	T := params.Instance.PeriodHours
	f := func(raw []uint8) bool {
		schedule := make([]bool, T)
		for i := range schedule {
			if i < len(raw) {
				schedule[i] = raw[i]%2 == 0
			}
		}
		dec, err := OptimalSell(schedule, params)
		if err != nil {
			return false
		}
		kept, err := CostIfKept(schedule, params)
		if err != nil || dec.Cost > kept+1e-9 {
			return false
		}
		for e := 1; e < T; e++ {
			c, err := CostIfSoldAt(schedule, e, params)
			if err != nil || dec.Cost > c+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOnlineNeverBelowOPT: the online algorithm can never beat
// the offline optimum on the same schedule (sanity of both accountings).
func TestPropertyOnlineNeverBelowOPT(t *testing.T) {
	it := testInstance()
	f := func(raw []uint8, fracSel uint8, aSel uint8) bool {
		fraction := []float64{Fraction3T4, FractionT2, FractionT4}[int(fracSel)%3]
		a := float64(int(aSel)%10+1) / 10
		policy, err := NewThreshold(it, a, fraction)
		if err != nil {
			return false
		}
		schedule := make([]bool, it.PeriodHours)
		for i := range schedule {
			if i < len(raw) {
				schedule[i] = raw[i]%3 == 0
			}
		}
		params := OfflineParams{Instance: it, SellingDiscount: a, Billing: BillWhenUsed}
		dec, err := OptimalSell(schedule, params)
		if err != nil {
			return false
		}
		online, err := ThresholdCost(schedule, policy, BillWhenUsed)
		if err != nil {
			return false
		}
		return online >= dec.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyActiveBillingDominatesUsage: charging alpha*p for every
// active hour (Eq. 1) can never be cheaper than charging only used
// hours (the proofs' accounting), for the same decisions.
func TestPropertyActiveBillingDominatesUsage(t *testing.T) {
	it := testInstance()
	f := func(raw []uint8, fracSel, aSel uint8) bool {
		fraction := []float64{Fraction3T4, FractionT2, FractionT4}[int(fracSel)%3]
		a := float64(int(aSel)%10+1) / 10
		policy, err := NewThreshold(it, a, fraction)
		if err != nil {
			return false
		}
		schedule := make([]bool, it.PeriodHours)
		for i := range schedule {
			if i < len(raw) {
				schedule[i] = raw[i]%2 == 0
			}
		}
		used, err := ThresholdCost(schedule, policy, BillWhenUsed)
		if err != nil {
			return false
		}
		active, err := ThresholdCost(schedule, policy, BillWhileActive)
		if err != nil {
			return false
		}
		return active >= used-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOptimalSellMonotoneInBusyHours: adding busy hours never
// makes the offline optimum cheaper to... it can only increase cost
// (every extra demand hour costs at least alpha*p under any decision).
func TestPropertyOptimalSellMonotoneInBusyHours(t *testing.T) {
	params := usedParams()
	T := params.Instance.PeriodHours
	f := func(raw []uint8, extra uint8) bool {
		schedule := make([]bool, T)
		for i := range schedule {
			if i < len(raw) {
				schedule[i] = raw[i]%3 == 0
			}
		}
		base, err := OptimalSell(schedule, params)
		if err != nil {
			return false
		}
		// Flip one idle hour to busy.
		idx := int(extra) % T
		for schedule[idx] {
			idx = (idx + 1) % T
			if idx == int(extra)%T {
				return true // fully busy already
			}
		}
		schedule[idx] = true
		more, err := OptimalSell(schedule, params)
		if err != nil {
			return false
		}
		return more.Cost >= base.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
