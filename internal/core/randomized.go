package core

import (
	"fmt"
	"math"

	"rimarket/internal/pricing"
	"rimarket/internal/simulate"
)

// This file implements the paper's stated future work (Section VII): a
// randomized online selling algorithm that decides at an arbitrary time
// spot of the reservation period rather than at a fixed one. Each
// reserved instance draws its own checkpoint fraction k from a
// distribution; at age k*T the instance is sold iff its working time is
// below the break-even beta_k. The draw is a deterministic hash of
// (seed, reservation hour, batch index), so runs remain reproducible.

// FractionDist maps a uniform variate u in [0, 1) to a checkpoint
// fraction in (0, 1).
type FractionDist interface {
	// Sample returns the checkpoint fraction for uniform input u.
	Sample(u float64) float64
	// String describes the distribution for reports.
	String() string
}

// UniformFractions draws the checkpoint uniformly from [Lo, Hi].
type UniformFractions struct {
	// Lo and Hi bound the fraction, 0 < Lo <= Hi < 1.
	Lo, Hi float64
}

// Sample implements FractionDist.
func (d UniformFractions) Sample(u float64) float64 {
	return d.Lo + u*(d.Hi-d.Lo)
}

// String implements FractionDist.
func (d UniformFractions) String() string {
	return fmt.Sprintf("uniform[%.3g, %.3g]", d.Lo, d.Hi)
}

// Validate reports whether the bounds are usable.
func (d UniformFractions) Validate() error {
	if d.Lo <= 0 || d.Hi >= 1 || d.Lo > d.Hi {
		return fmt.Errorf("core: uniform fraction bounds [%v, %v] outside 0 < lo <= hi < 1", d.Lo, d.Hi)
	}
	return nil
}

// ExponentialFractions draws the checkpoint with density
// e^x / (e - 1) on (0, 1) — the classic ski-rental randomization
// (Karlin et al.), which weights later checkpoints more.
type ExponentialFractions struct{}

// Sample implements FractionDist via the inverse CDF
// x = ln(1 + u*(e-1)).
func (ExponentialFractions) Sample(u float64) float64 {
	x := math.Log(1 + u*(math.E-1))
	// Clamp away from the degenerate endpoints.
	if x <= 0 {
		x = 1e-9
	}
	if x >= 1 {
		x = 1 - 1e-9
	}
	return x
}

// String implements FractionDist.
func (ExponentialFractions) String() string { return "exp(e^x/(e-1))" }

// DiscreteFractions draws uniformly from a fixed set of fractions,
// e.g. the paper's three spots {1/4, 1/2, 3/4}.
type DiscreteFractions struct {
	// Fractions is the support, each in (0, 1).
	Fractions []float64
}

// Sample implements FractionDist.
func (d DiscreteFractions) Sample(u float64) float64 {
	idx := int(u * float64(len(d.Fractions)))
	if idx >= len(d.Fractions) {
		idx = len(d.Fractions) - 1
	}
	return d.Fractions[idx]
}

// String implements FractionDist.
func (d DiscreteFractions) String() string {
	return fmt.Sprintf("discrete%v", d.Fractions)
}

// Validate reports whether the support is usable.
func (d DiscreteFractions) Validate() error {
	if len(d.Fractions) == 0 {
		return fmt.Errorf("core: discrete fraction set is empty")
	}
	for _, f := range d.Fractions {
		if f <= 0 || f >= 1 {
			return fmt.Errorf("core: discrete fraction %v outside (0, 1)", f)
		}
	}
	return nil
}

// PaperFractions is the support of the paper's three algorithms.
func PaperFractions() DiscreteFractions {
	return DiscreteFractions{Fractions: []float64{FractionT4, FractionT2, Fraction3T4}}
}

// Randomized is the randomized online selling algorithm A_{rand}: each
// instance gets an independent checkpoint fraction drawn from Dist, and
// the threshold rule (working time < beta_k) is applied at that
// fraction. It implements simulate.PerInstancePolicy.
type Randomized struct {
	instance pricing.InstanceType
	discount float64
	dist     FractionDist
	seed     uint64
}

var _ simulate.PerInstancePolicy = Randomized{}

// NewRandomized builds the randomized policy. The seed fixes every
// per-instance draw, making runs reproducible.
func NewRandomized(it pricing.InstanceType, sellingDiscount float64, dist FractionDist, seed int64) (Randomized, error) {
	if err := it.Validate(); err != nil {
		return Randomized{}, err
	}
	if sellingDiscount < 0 || sellingDiscount > 1 {
		return Randomized{}, fmt.Errorf("core: selling discount %v outside [0, 1]", sellingDiscount)
	}
	if dist == nil {
		return Randomized{}, fmt.Errorf("core: nil fraction distribution")
	}
	if v, ok := dist.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return Randomized{}, err
		}
	}
	return Randomized{instance: it, discount: sellingDiscount, dist: dist, seed: uint64(seed)}, nil
}

// Dist returns the policy's fraction distribution.
func (p Randomized) Dist() FractionDist { return p.dist }

// Instance returns the price card the policy was built for.
func (p Randomized) Instance() pricing.InstanceType { return p.instance }

// Discount returns the selling discount a the policy was built with.
func (p Randomized) Discount() float64 { return p.discount }

// fractionFor derives the instance's checkpoint fraction from a
// deterministic hash of (seed, start, batchIndex).
func (p Randomized) fractionFor(start, batchIndex int) float64 {
	u := uniformHash(p.seed, uint64(start), uint64(batchIndex))
	return p.dist.Sample(u)
}

// CheckpointAge implements simulate.SellingPolicy. The engine uses
// InstanceCheckpointAge instead, but a representative age (the median
// draw) is returned for callers that inspect the policy generically.
func (p Randomized) CheckpointAge(periodHours int) int {
	return int(p.dist.Sample(0.5)*float64(periodHours) + 0.5)
}

// InstanceCheckpointAge implements simulate.PerInstancePolicy.
func (p Randomized) InstanceCheckpointAge(start, batchIndex, periodHours int) int {
	age := int(p.fractionFor(start, batchIndex)*float64(periodHours) + 0.5)
	if age < 1 {
		age = 1
	}
	if age >= periodHours {
		age = periodHours - 1
	}
	return age
}

// ShouldSell implements simulate.SellingPolicy: the threshold rule at
// the instance's own fraction, recovered from the checkpoint's age.
func (p Randomized) ShouldSell(ck simulate.Checkpoint) bool {
	period := p.instance.PeriodHours
	k := float64(ck.Age) / float64(period)
	beta := p.instance.BreakEvenHours(k, p.discount)
	return float64(ck.Worked) < beta
}

// uniformHash maps three words to a uniform float64 in [0, 1) using
// splitmix64 finalization — stable across runs and platforms.
func uniformHash(words ...uint64) float64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, w := range words {
		h ^= w + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix64(h)
	}
	return float64(h>>11) / float64(1<<53)
}

func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MultiThreshold revisits the sell-or-keep decision at several
// checkpoint fractions: an instance kept at T/4 is re-examined at T/2
// and again at 3T/4, each time against that fraction's own break-even.
// It subsumes the paper's three algorithms as the natural "portfolio"
// of checkpoints and implements simulate.MultiCheckpointPolicy.
type MultiThreshold struct {
	instance  pricing.InstanceType
	discount  float64
	fractions []float64
}

var _ simulate.MultiCheckpointPolicy = MultiThreshold{}

// NewMultiThreshold builds the multi-checkpoint policy from strictly
// increasing fractions in (0, 1).
func NewMultiThreshold(it pricing.InstanceType, sellingDiscount float64, fractions []float64) (MultiThreshold, error) {
	if err := it.Validate(); err != nil {
		return MultiThreshold{}, err
	}
	if sellingDiscount < 0 || sellingDiscount > 1 {
		return MultiThreshold{}, fmt.Errorf("core: selling discount %v outside [0, 1]", sellingDiscount)
	}
	if len(fractions) == 0 {
		return MultiThreshold{}, fmt.Errorf("core: no checkpoint fractions")
	}
	for i, f := range fractions {
		if f <= 0 || f >= 1 {
			return MultiThreshold{}, fmt.Errorf("core: checkpoint fraction %v outside (0, 1)", f)
		}
		if i > 0 && f <= fractions[i-1] {
			return MultiThreshold{}, fmt.Errorf("core: checkpoint fractions not strictly increasing at %v", f)
		}
	}
	return MultiThreshold{
		instance:  it,
		discount:  sellingDiscount,
		fractions: append([]float64(nil), fractions...),
	}, nil
}

// NewPaperMultiThreshold builds the multi-checkpoint policy over the
// paper's three spots T/4, T/2, 3T/4.
func NewPaperMultiThreshold(it pricing.InstanceType, sellingDiscount float64) (MultiThreshold, error) {
	return NewMultiThreshold(it, sellingDiscount, []float64{FractionT4, FractionT2, Fraction3T4})
}

// CheckpointAge implements simulate.SellingPolicy (first checkpoint).
func (p MultiThreshold) CheckpointAge(periodHours int) int {
	return int(p.fractions[0]*float64(periodHours) + 0.5)
}

// CheckpointAges implements simulate.MultiCheckpointPolicy.
func (p MultiThreshold) CheckpointAges(periodHours int) []int {
	ages := make([]int, 0, len(p.fractions))
	for _, f := range p.fractions {
		ages = append(ages, int(f*float64(periodHours)+0.5))
	}
	return ages
}

// ShouldSell implements simulate.SellingPolicy: the threshold rule at
// whichever checkpoint is being consulted.
func (p MultiThreshold) ShouldSell(ck simulate.Checkpoint) bool {
	k := float64(ck.Age) / float64(p.instance.PeriodHours)
	beta := p.instance.BreakEvenHours(k, p.discount)
	return float64(ck.Worked) < beta
}
