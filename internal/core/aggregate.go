package core

import (
	"fmt"
)

// AggregateResult is the outcome of the paper-literal aggregate run.
type AggregateResult struct {
	// Sold[t] is s_t, the number of instances sold at hour t.
	Sold []int
	// Active[t] is r_t after all of the algorithm's updates (future and
	// historical decrements included).
	Active []int
	// OnDemand[t] is o_t = max(0, d_t - r_t) evaluated against the
	// final r series.
	OnDemand []int
	// Cost is the Eq. (1) total over the run.
	Cost float64
}

// AggregateRun is a literal transcription of the paper's Algorithm 1
// (and Algorithm 2, which differs only in the checkpoint fraction),
// generalized to fraction k. It operates purely on the aggregate
// series d_t and n_t, reconstructing each instance's free time from
// the working-sequence condition
//
//	r_j - d_j - i + 1 > l        (Algorithm 1, line 9)
//
// and selling when working time falls below the policy's break-even.
//
// Two conventions are aligned with the instance-level engine so the
// implementations can be cross-checked: an instance reserved at hour
// t0 is active during [t0, t0+T), its decision happens at hour
// t0 + k*T over the observation window [t0, t0+k*T), and a sold
// instance stops serving (and being billed) from the decision hour on.
// The algorithm's "historical information" update (lines 20-21)
// rewrites r over the sold instance's observation window exactly as the
// pseudocode prescribes.
func AggregateRun(demand, newRes []int, policy Threshold) (AggregateResult, error) {
	if len(demand) != len(newRes) {
		return AggregateResult{}, fmt.Errorf("core: %d demand hours, %d reservation hours", len(demand), len(newRes))
	}
	it := policy.instance
	T := it.PeriodHours
	ckAge := policy.CheckpointAge(T)
	remAge := T - ckAge
	beta := policy.BreakEven()
	horizon := len(demand)

	for t, d := range demand {
		if d < 0 {
			return AggregateResult{}, fmt.Errorf("core: negative demand %d at hour %d", d, t)
		}
		if newRes[t] < 0 {
			return AggregateResult{}, fmt.Errorf("core: negative reservation count %d at hour %d", newRes[t], t)
		}
	}

	// Build the initial r series: r_t grows by n_t at t and shrinks at
	// t+T (expiry).
	r := make([]int, horizon)
	running := 0
	expiry := make([]int, horizon+T+1)
	for t := 0; t < horizon; t++ {
		running -= expiry[t]
		running += newRes[t]
		expiry[t+T] += newRes[t]
		r[t] = running
	}

	sold := make([]int, horizon)
	for t := 0; t < horizon; t++ {
		t0 := t - ckAge
		if t0 < 0 || newRes[t0] == 0 {
			continue // Algorithm 1, line 3: nothing to decide this hour
		}
		soldInBatch := 0
		for i := 1; i <= newRes[t0]; i++ {
			l := 0
			f := 0
			for j := t0; j < t; j++ {
				if j > t0 {
					l += newRes[j]
				}
				if r[j]-demand[j]-i+1 > l {
					f++ // inst is free at this hour (line 10)
				}
			}
			w := ckAge - f // working time (line 14)
			if float64(w) >= beta {
				continue
			}
			// Sell (lines 16-22).
			sold[t]++
			soldInBatch++
			for j := t; j < t+remAge && j < horizon; j++ {
				r[j]-- // the instance no longer serves its remaining period
			}
		}
		// Historical update (lines 20-21): mark the batch's sold
		// instances processed. Applied after the whole batch is decided —
		// the free-time condition's "- i + 1" term already accounts for
		// batch-mates, so rewriting r mid-batch would double-count them.
		for j := t0; j < t; j++ {
			r[j] -= soldInBatch
		}
	}

	res := AggregateResult{
		Sold:     sold,
		Active:   r,
		OnDemand: make([]int, horizon),
	}
	saleIncome := policy.discount * it.Upfront * float64(remAge) / float64(T)
	for t := 0; t < horizon; t++ {
		o := demand[t] - r[t]
		if o < 0 {
			o = 0
		}
		res.OnDemand[t] = o
		res.Cost += float64(o)*it.OnDemandHourly +
			float64(newRes[t])*it.Upfront +
			float64(r[t])*it.ReservedHourly -
			float64(sold[t])*saleIncome
	}
	return res, nil
}
