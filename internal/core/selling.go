// Package core implements the paper's contribution: the online
// reserved-instance selling algorithms A_{3T/4}, A_{T/2} and A_{T/4}
// (generalized to an arbitrary checkpoint fraction A_{kT}), the
// benchmark policies Keep-Reserved and All-Selling, the per-instance
// optimal offline selling algorithm OPT of Section IV.A, and a literal
// transcription of the paper's aggregate Algorithms 1 and 2 used to
// cross-validate the instance-level engine.
//
// An online policy watches a reserved instance until it reaches age
// k*T, computes its working time w over those hours, and sells exactly
// when w is below the break-even point
//
//	beta_k = k * a * R / (p * (1 - alpha))        (Eq. 9 generalized)
//
// recouping a * R * (1-k) of the upfront fee while giving up the
// discounted rate for the remaining (1-k) * T hours.
package core

import (
	"fmt"

	"rimarket/internal/pricing"
	"rimarket/internal/simulate"
)

// Fractions of the reservation period at which the paper's three
// algorithms decide (Sections IV and V).
const (
	// Fraction3T4 is A_{3T/4}'s checkpoint.
	Fraction3T4 = 3.0 / 4.0
	// FractionT2 is A_{T/2}'s checkpoint.
	FractionT2 = 1.0 / 2.0
	// FractionT4 is A_{T/4}'s checkpoint.
	FractionT4 = 1.0 / 4.0
)

// Threshold is the generalized online selling algorithm A_{kT}: at
// instance age k*T it sells the instance iff its working time is below
// the break-even point beta_k. It implements simulate.SellingPolicy.
type Threshold struct {
	instance pricing.InstanceType
	discount float64
	fraction float64
}

// Compile-time interface checks for every policy in this package.
var (
	_ simulate.SellingPolicy = Threshold{}
	_ simulate.SellingPolicy = AllSelling{}
	_ simulate.SellingPolicy = KeepReserved{}
)

// NewThreshold builds A_{kT} for an arbitrary checkpoint fraction in
// (0, 1). The paper analyzes k = 3/4, 1/2 and 1/4; other fractions are
// its stated future-work generalization.
func NewThreshold(it pricing.InstanceType, sellingDiscount, fraction float64) (Threshold, error) {
	if err := it.Validate(); err != nil {
		return Threshold{}, err
	}
	if sellingDiscount < 0 || sellingDiscount > 1 {
		return Threshold{}, fmt.Errorf("core: selling discount %v outside [0, 1]", sellingDiscount)
	}
	if fraction <= 0 || fraction >= 1 {
		return Threshold{}, fmt.Errorf("core: checkpoint fraction %v outside (0, 1)", fraction)
	}
	return Threshold{instance: it, discount: sellingDiscount, fraction: fraction}, nil
}

// NewA3T4 builds the paper's primary algorithm A_{3T/4} (Algorithm 1).
func NewA3T4(it pricing.InstanceType, sellingDiscount float64) (Threshold, error) {
	return NewThreshold(it, sellingDiscount, Fraction3T4)
}

// NewAT2 builds A_{T/2} (Algorithm 2).
func NewAT2(it pricing.InstanceType, sellingDiscount float64) (Threshold, error) {
	return NewThreshold(it, sellingDiscount, FractionT2)
}

// NewAT4 builds A_{T/4} (Section V).
func NewAT4(it pricing.InstanceType, sellingDiscount float64) (Threshold, error) {
	return NewThreshold(it, sellingDiscount, FractionT4)
}

// Fraction returns the policy's checkpoint fraction k.
func (p Threshold) Fraction() float64 { return p.fraction }

// Instance returns the price card the policy was built for.
func (p Threshold) Instance() pricing.InstanceType { return p.instance }

// Discount returns the selling discount a the policy was built with.
func (p Threshold) Discount() float64 { return p.discount }

// BreakEven returns beta_k in hours.
func (p Threshold) BreakEven() float64 {
	return p.instance.BreakEvenHours(p.fraction, p.discount)
}

// Name returns the paper's name for this policy at its canonical
// fractions, e.g. "A_{3T/4}".
func (p Threshold) Name() string {
	switch p.fraction {
	case Fraction3T4:
		return "A_{3T/4}"
	case FractionT2:
		return "A_{T/2}"
	case FractionT4:
		return "A_{T/4}"
	default:
		return fmt.Sprintf("A_{%.3gT}", p.fraction)
	}
}

// CheckpointAge implements simulate.SellingPolicy.
func (p Threshold) CheckpointAge(periodHours int) int {
	return int(p.fraction*float64(periodHours) + 0.5)
}

// ShouldSell implements simulate.SellingPolicy: sell iff the working
// time is below break-even (Algorithm 1, line 15).
func (p Threshold) ShouldSell(ck simulate.Checkpoint) bool {
	return float64(ck.Worked) < p.BreakEven()
}

// AllSelling is the paper's All-Selling benchmark: sell every instance
// at the checkpoint regardless of its working time (Section VI.B).
type AllSelling struct {
	fraction float64
}

// NewAllSelling builds the All-Selling benchmark at the given
// checkpoint fraction (so it is comparable with the A_{kT} under test).
func NewAllSelling(fraction float64) (AllSelling, error) {
	if fraction <= 0 || fraction >= 1 {
		return AllSelling{}, fmt.Errorf("core: checkpoint fraction %v outside (0, 1)", fraction)
	}
	return AllSelling{fraction: fraction}, nil
}

// CheckpointAge implements simulate.SellingPolicy.
func (p AllSelling) CheckpointAge(periodHours int) int {
	return int(p.fraction*float64(periodHours) + 0.5)
}

// ShouldSell implements simulate.SellingPolicy.
func (AllSelling) ShouldSell(simulate.Checkpoint) bool { return true }

// KeepReserved is the paper's Keep-Reserved benchmark: never sell. It
// aliases the engine's neutral default so callers can treat all
// benchmarks uniformly through this package.
type KeepReserved = simulate.KeepReserved
