package core

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"rimarket/internal/simulate"
)

func TestUniformFractions(t *testing.T) {
	d := UniformFractions{Lo: 0.25, Hi: 0.75}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Sample(0); got != 0.25 {
		t.Errorf("Sample(0) = %v, want 0.25", got)
	}
	if got := d.Sample(1); got != 0.75 {
		t.Errorf("Sample(1) = %v, want 0.75", got)
	}
	if got := d.Sample(0.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Sample(0.5) = %v, want 0.5", got)
	}
	if !strings.Contains(d.String(), "uniform") {
		t.Error(d.String())
	}
	for _, bad := range []UniformFractions{{Lo: 0, Hi: 0.5}, {Lo: 0.5, Hi: 1}, {Lo: 0.7, Hi: 0.3}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) succeeded", bad)
		}
	}
}

func TestExponentialFractions(t *testing.T) {
	d := ExponentialFractions{}
	// Inverse CDF spot checks: F(x) = (e^x - 1)/(e - 1).
	if got := d.Sample(0); got <= 0 || got > 1e-6 {
		t.Errorf("Sample(0) = %v, want ~0+", got)
	}
	if got := d.Sample(1); got >= 1 || got < 1-1e-6 {
		t.Errorf("Sample(1) = %v, want ~1-", got)
	}
	// Median of the density e^x/(e-1): x = ln(1 + (e-1)/2) ~ 0.6201.
	if got := d.Sample(0.5); !almostEqual(got, math.Log(1+(math.E-1)/2), 1e-9) {
		t.Errorf("Sample(0.5) = %v", got)
	}
	// Monotone in u.
	prev := -1.0
	for u := 0.0; u <= 1; u += 0.1 {
		v := d.Sample(u)
		if v <= prev {
			t.Fatalf("Sample not monotone at u=%v", u)
		}
		prev = v
	}
	if !strings.Contains(d.String(), "exp") {
		t.Error(d.String())
	}
}

func TestDiscreteFractions(t *testing.T) {
	d := PaperFractions()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for u := 0.0; u < 1; u += 0.01 {
		counts[d.Sample(u)]++
	}
	for _, f := range d.Fractions {
		if counts[f] < 25 {
			t.Errorf("fraction %v drawn %d/100 times, want ~33", f, counts[f])
		}
	}
	if got := d.Sample(1); got != Fraction3T4 {
		t.Errorf("Sample(1) = %v, want last element", got)
	}
	if err := (DiscreteFractions{}).Validate(); err == nil {
		t.Error("empty support accepted")
	}
	if err := (DiscreteFractions{Fractions: []float64{0}}).Validate(); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestNewRandomizedValidation(t *testing.T) {
	it := testInstance()
	if _, err := NewRandomized(it, 0.8, nil, 1); err == nil {
		t.Error("nil dist accepted")
	}
	if _, err := NewRandomized(it, 2, ExponentialFractions{}, 1); err == nil {
		t.Error("bad discount accepted")
	}
	if _, err := NewRandomized(it, 0.8, UniformFractions{Lo: 0.9, Hi: 0.1}, 1); err == nil {
		t.Error("invalid dist accepted")
	}
	p, err := NewRandomized(it, 0.8, ExponentialFractions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist().String() == "" {
		t.Error("empty dist description")
	}
}

func TestRandomizedDeterministicPerSeed(t *testing.T) {
	it := testInstance()
	p1, err := NewRandomized(it, 0.8, ExponentialFractions{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewRandomized(it, 0.8, ExponentialFractions{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := NewRandomized(it, 0.8, ExponentialFractions{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var same, diff int
	for start := 0; start < 50; start++ {
		a := p1.InstanceCheckpointAge(start, 1, it.PeriodHours)
		if b := p2.InstanceCheckpointAge(start, 1, it.PeriodHours); a != b {
			t.Fatalf("same seed differs at start %d: %d vs %d", start, a, b)
		}
		if c := p3.InstanceCheckpointAge(start, 1, it.PeriodHours); a == c {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical draws everywhere")
	}
	_ = same
}

func TestRandomizedAgesInRange(t *testing.T) {
	it := testInstance()
	p, err := NewRandomized(it, 0.8, ExponentialFractions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < 200; start++ {
		for idx := 1; idx <= 3; idx++ {
			age := p.InstanceCheckpointAge(start, idx, it.PeriodHours)
			if age < 1 || age >= it.PeriodHours {
				t.Fatalf("age %d outside [1, %d)", age, it.PeriodHours)
			}
		}
	}
	if ck := p.CheckpointAge(it.PeriodHours); ck <= 0 || ck >= it.PeriodHours {
		t.Errorf("representative age %d out of range", ck)
	}
}

func TestRandomizedEndToEnd(t *testing.T) {
	// Idle instances must all be sold (any fraction's break-even exceeds
	// zero working hours); busy instances must all be kept.
	it := testInstance()
	p, err := NewRandomized(it, 0.8, UniformFractions{Lo: 0.3, Hi: 0.9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := it.PeriodHours
	newRes := make([]int, n)
	newRes[0] = 3
	cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}

	idle, err := simulate.Run(make([]int, n), newRes, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if idle.SoldCount() != 3 {
		t.Errorf("idle run sold %d, want 3", idle.SoldCount())
	}
	// Instances must be sold at different ages (their own draws).
	ages := map[int]bool{}
	for _, inst := range idle.Instances {
		ages[inst.SoldAt] = true
	}
	if len(ages) < 2 {
		t.Errorf("all instances sold at the same age %v; per-instance draws not applied", ages)
	}

	demand := make([]int, n)
	for i := range demand {
		demand[i] = 3
	}
	busy, err := simulate.Run(demand, newRes, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if busy.SoldCount() != 0 {
		t.Errorf("busy run sold %d, want 0", busy.SoldCount())
	}
}

func TestPropertyRandomizedReproducible(t *testing.T) {
	it := testInstance()
	f := func(seed int64, raw []uint8) bool {
		p, err := NewRandomized(it, 0.8, ExponentialFractions{}, seed)
		if err != nil {
			return false
		}
		n := it.PeriodHours
		demand := make([]int, n)
		newRes := make([]int, n)
		newRes[0] = 2
		for i := range demand {
			if i < len(raw) {
				demand[i] = int(raw[i] % 3)
			}
		}
		cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}
		r1, err := simulate.Run(demand, newRes, cfg, p)
		if err != nil {
			return false
		}
		r2, err := simulate.Run(demand, newRes, cfg, p)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(r1.Instances, r2.Instances)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNewMultiThresholdValidation(t *testing.T) {
	it := testInstance()
	tests := []struct {
		name      string
		fractions []float64
	}{
		{name: "empty", fractions: nil},
		{name: "zero fraction", fractions: []float64{0, 0.5}},
		{name: "fraction one", fractions: []float64{0.5, 1}},
		{name: "not increasing", fractions: []float64{0.5, 0.25}},
		{name: "duplicate", fractions: []float64{0.5, 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMultiThreshold(it, 0.8, tt.fractions); err == nil {
				t.Error("invalid fractions accepted")
			}
		})
	}
	if _, err := NewMultiThreshold(it, 1.5, []float64{0.5}); err == nil {
		t.Error("bad discount accepted")
	}
	p, err := NewPaperMultiThreshold(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30} // T = 40
	if got := p.CheckpointAges(it.PeriodHours); !reflect.DeepEqual(got, want) {
		t.Errorf("CheckpointAges = %v, want %v", got, want)
	}
	if got := p.CheckpointAge(it.PeriodHours); got != 10 {
		t.Errorf("CheckpointAge = %d, want first age 10", got)
	}
}

func TestMultiThresholdSecondChance(t *testing.T) {
	// Busy through T/4 (kept there), idle afterwards: the T/2 or 3T/4
	// revisit must catch and sell the instance, unlike single-checkpoint
	// A_{T/4} which keeps it forever.
	it := testInstance() // T=40; beta(a=0.8): T/4->5.33, T/2->10.67, 3T/4->16
	multi, err := NewPaperMultiThreshold(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewAT4(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n := it.PeriodHours
	demand := make([]int, n)
	for i := 0; i < 10; i++ { // busy exactly through the T/4 checkpoint
		demand[i] = 1
	}
	newRes := make([]int, n)
	newRes[0] = 1
	cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}

	sRes, err := simulate.Run(demand, newRes, cfg, single)
	if err != nil {
		t.Fatal(err)
	}
	if sRes.SoldCount() != 0 {
		t.Fatalf("single A_{T/4} sold %d, want 0 (worked 10 >= beta 5.33)", sRes.SoldCount())
	}

	mRes, err := simulate.Run(demand, newRes, cfg, multi)
	if err != nil {
		t.Fatal(err)
	}
	if mRes.SoldCount() != 1 {
		t.Fatalf("multi-checkpoint sold %d, want 1", mRes.SoldCount())
	}
	// Kept at T/4 (10 >= 5.33) and at T/2 (10 hours worked < 10.67 ->
	// sold at T/2 actually). Verify the sale hour is the T/2 checkpoint.
	if got := mRes.Instances[0].SoldAt; got != 20 {
		t.Errorf("SoldAt = %d, want 20 (the T/2 revisit)", got)
	}
	if mRes.Cost.Total() >= sRes.Cost.Total() {
		t.Errorf("multi cost %v not below single cost %v", mRes.Cost.Total(), sRes.Cost.Total())
	}
}

func TestMultiThresholdMatchesSingleWhenOneFraction(t *testing.T) {
	it := testInstance()
	multi, err := NewMultiThreshold(it, 0.8, []float64{FractionT2})
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewAT2(it, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n := it.PeriodHours + 10
	demand := make([]int, n)
	for i := 0; i < 7; i++ {
		demand[i] = 1
	}
	newRes := make([]int, n)
	newRes[0] = 1
	cfg := simulate.Config{Instance: it, SellingDiscount: 0.8}
	a, err := simulate.Run(demand, newRes, cfg, multi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simulate.Run(demand, newRes, cfg, single)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Instances, b.Instances) {
		t.Errorf("single-fraction multi diverges from Threshold:\n%+v\n%+v", a.Instances, b.Instances)
	}
	if a.Cost != b.Cost {
		t.Errorf("costs diverge: %+v vs %+v", a.Cost, b.Cost)
	}
}
