package gridstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"sync"
)

// shardGlob matches the shard files inside a store directory. fs.Glob
// returns matches sorted, which keeps every load deterministic.
const shardGlob = "shard-*.grid"

// shardName is the file a given pool worker appends to.
func shardName(worker int) string {
	return fmt.Sprintf("shard-%03d.grid", worker)
}

// Dropped reports one record (or record tail) that a load could not
// use: a torn tail, a checksum failure, a duplicate cell. Err wraps
// the classifying sentinel, so errors.Is(d.Err, ErrTruncated) etc.
// work. Dropped records are re-run by resume, never silently merged.
type Dropped struct {
	Shard  string
	Offset int64
	Err    error
}

// LoadResult is what a resume recovered from disk: the valid cell
// records keyed by cell index, and everything it had to drop.
type LoadResult struct {
	Cells   map[int]CellRecord
	Dropped []Dropped
}

// shardExtent records how much of a shard file decoded cleanly, so
// Open can truncate torn tails before the store appends again.
type shardExtent struct {
	name  string
	valid int64
	size  int64
}

// Store is an open spill directory accepting per-worker appends. Each
// grid-pool worker appends whole records to its own shard file;
// Append serializes briefly on one mutex (appends happen once per
// completed cell, so contention is negligible against engine time).
type Store struct {
	dir    string
	spec   Spec
	digest [8]byte

	mu    sync.Mutex
	files map[int]*os.File
	buf   []byte
}

// Create initializes dir as a fresh store for spec, removing any prior
// spill artifacts (an old spec and shard files) so a restarted sweep
// never merges records from a previous configuration. The spec is
// written via a temp file and rename, so a crash during Create leaves
// either no spec — an unresumable, and therefore safe, directory — or
// a complete one.
func Create(dir string, spec Spec) (*Store, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gridstore: creating store dir: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, shardGlob))
	if err != nil {
		// Glob only errors on a malformed pattern, and shardGlob is a
		// constant; keep the check anyway.
		return nil, fmt.Errorf("gridstore: listing stale shards: %w", err)
	}
	stale = append(stale, filepath.Join(dir, SpecFile))
	for _, path := range stale {
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("gridstore: clearing stale %s: %w", filepath.Base(path), err)
		}
	}
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("gridstore: encoding spec: %w", err)
	}
	tmp := filepath.Join(dir, SpecFile+".tmp")
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("gridstore: writing spec: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, SpecFile)); err != nil {
		return nil, fmt.Errorf("gridstore: committing spec: %w", err)
	}
	return newStore(dir, spec), nil
}

// Open resumes an existing store for spec. It validates the on-disk
// spec against the one the caller is about to run (any mismatch is
// fatal — resuming someone else's results is never what you want),
// loads every shard's valid records, truncates each shard to its last
// valid record so later appends never land after a torn tail, and
// returns the store plus what it recovered.
//
// A directory with no spec returns an error satisfying
// errors.Is(err, fs.ErrNotExist); callers treat that as "nothing to
// resume" and Create instead.
func Open(dir string, spec Spec) (*Store, *LoadResult, error) {
	if err := spec.validate(); err != nil {
		return nil, nil, err
	}
	res, extents, err := loadFS(os.DirFS(dir), spec)
	if err != nil {
		return nil, nil, err
	}
	for _, ext := range extents {
		if ext.valid == ext.size {
			continue
		}
		if err := os.Truncate(filepath.Join(dir, ext.name), ext.valid); err != nil {
			return nil, nil, fmt.Errorf("gridstore: truncating torn tail of %s: %w", ext.name, err)
		}
	}
	return newStore(dir, spec), res, nil
}

// LoadFS validates and reads a store through any fs.FS — the read-only
// half of Open, separated so fault-injection tests (internal/faultfs)
// can drive every degradation path. Open/read errors on the spec or a
// shard are fatal: a shard whose extent cannot even be determined
// cannot be safely appended to, so the caller gets a structured error
// rather than a silent partial merge.
func LoadFS(fsys fs.FS, spec Spec) (*LoadResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	res, _, err := loadFS(fsys, spec)
	return res, err
}

func loadFS(fsys fs.FS, spec Spec) (*LoadResult, []shardExtent, error) {
	raw, err := fs.ReadFile(fsys, SpecFile)
	if err != nil {
		return nil, nil, fmt.Errorf("gridstore: reading %s: %w", SpecFile, err)
	}
	var have Spec
	if err := json.Unmarshal(raw, &have); err != nil {
		return nil, nil, fmt.Errorf("gridstore: %s: %w: %v", SpecFile, ErrCorrupt, err)
	}
	if err := matchSpec(have, spec); err != nil {
		return nil, nil, err
	}

	names, err := fs.Glob(fsys, shardGlob)
	if err != nil {
		return nil, nil, fmt.Errorf("gridstore: listing shards: %w", err)
	}
	slices.Sort(names) // fs.Glob sorts already; pin it regardless
	res := &LoadResult{Cells: make(map[int]CellRecord)}
	extents := make([]shardExtent, 0, len(names))
	for _, name := range names {
		data, err := fs.ReadFile(fsys, name)
		if err != nil {
			return nil, nil, fmt.Errorf("gridstore: reading shard %s: %w", name, err)
		}
		recs, valid, derr := DecodeShard(data, spec)
		if derr != nil {
			var re *RecordError
			if errors.As(derr, &re) {
				re.Shard = name
			}
			res.Dropped = append(res.Dropped, Dropped{Shard: name, Offset: valid, Err: derr})
		}
		for _, rec := range recs {
			if _, dup := res.Cells[rec.Index]; dup {
				res.Dropped = append(res.Dropped, Dropped{
					Shard: name,
					Err:   &RecordError{Shard: name, Err: fmt.Errorf("cell %d %q: %w", rec.Index, rec.Name, ErrDuplicate)},
				})
				continue // first record wins
			}
			res.Cells[rec.Index] = rec
		}
		extents = append(extents, shardExtent{name: name, valid: valid, size: int64(len(data))})
	}
	return res, extents, nil
}

// matchSpec explains exactly which field diverged; every mismatch
// wraps ErrSpecMismatch (or ErrVersion for a version skew).
func matchSpec(have, want Spec) error {
	switch {
	case have.Version != want.Version:
		return fmt.Errorf("%w: store written by format version %d, this build runs %d", ErrVersion, have.Version, want.Version)
	case have.ConfigHash != want.ConfigHash:
		return fmt.Errorf("%w: store config hash %.12s…, grid is %.12s… (the spilled results came from a different configuration)",
			ErrSpecMismatch, have.ConfigHash, want.ConfigHash)
	case have.Seed != want.Seed:
		return fmt.Errorf("%w: store seed %d, grid seed %d", ErrSpecMismatch, have.Seed, want.Seed)
	case have.Users != want.Users:
		return fmt.Errorf("%w: store has %d users per cell, grid has %d", ErrSpecMismatch, have.Users, want.Users)
	case !slices.Equal(have.Cells, want.Cells):
		return fmt.Errorf("%w: store cell list differs from grid (%d vs %d cells)", ErrSpecMismatch, len(have.Cells), len(want.Cells))
	}
	return nil
}

func newStore(dir string, spec Spec) *Store {
	return &Store{dir: dir, spec: spec, digest: spec.digest(), files: make(map[int]*os.File)}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Append encodes rec and appends it to the given worker's shard file,
// opening the shard on first use. Safe for concurrent use; each record
// is written with a single Write call, so a crash tears at most the
// file's tail, which Open repairs.
func (s *Store) Append(worker int, rec CellRecord) error {
	if worker < 0 {
		return fmt.Errorf("gridstore: negative shard %d", worker)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.files == nil {
		return errors.New("gridstore: append to closed store")
	}
	f, ok := s.files[worker]
	if !ok {
		var err error
		f, err = os.OpenFile(filepath.Join(s.dir, shardName(worker)), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("gridstore: opening shard: %w", err)
		}
		s.files[worker] = f
	}
	buf, err := appendRecord(s.buf[:0], s.spec, s.digest, rec)
	if err != nil {
		return err
	}
	s.buf = buf[:0]
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("gridstore: appending cell %q to %s: %w", rec.Name, shardName(worker), err)
	}
	return nil
}

// Close syncs and closes every open shard. Records are not fsynced per
// append — a hard crash may lose an unsynced tail record, which resume
// simply recomputes — but a clean Close (including the drain after a
// SIGINT) leaves everything durable. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	files := s.files
	s.files = nil
	var errs []error
	for worker, f := range files {
		if err := f.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("gridstore: syncing %s: %w", shardName(worker), err))
		}
		if err := f.Close(); err != nil {
			errs = append(errs, fmt.Errorf("gridstore: closing %s: %w", shardName(worker), err))
		}
	}
	return errors.Join(errs...)
}
