package gridstore

// Fuzz target for the shard record decoder: arbitrary bytes —
// truncation mid-record, duplicated cell indices, version skew,
// flipped length fields — must produce classified errors, never
// panics, unbounded allocations, or silently wrong records. Seed
// corpus entries cover each committed failure class; CI runs a short
// -fuzztime pass alongside the gtrace targets.

import (
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzSpec is the fixed spec the fuzzer decodes against; the decoder's
// job is to protect this spec from arbitrary shard bytes.
func fuzzSpec() Spec {
	return Spec{
		Version:    FormatVersion,
		ConfigHash: "fuzzhash",
		Seed:       1,
		Cells:      []string{"c0", "c1"},
		Users:      2,
	}
}

func fuzzRecord(tb testing.TB, spec Spec, i int) []byte {
	tb.Helper()
	rec := CellRecord{
		Index: i,
		Name:  spec.Cells[i],
		Cost:  []float64{1.5, 2.5},
		Norm:  []float64{0.5, 0.25},
		Sold:  []int{1, 0},
	}
	buf, err := AppendRecord(nil, spec, rec)
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

func FuzzGridShardDecode(f *testing.F) {
	spec := fuzzSpec()
	valid := fuzzRecord(f, spec, 0)
	two := append(append([]byte(nil), valid...), fuzzRecord(f, spec, 1)...)

	f.Add([]byte(nil))                                         // empty shard: zero records, no error
	f.Add(valid)                                               // one clean record
	f.Add(two)                                                 // two clean records
	f.Add(valid[:len(valid)-3])                                // truncation mid-record (torn tail)
	f.Add(valid[:headerLen-1])                                 // truncation inside the header
	f.Add(append(append([]byte(nil), valid...), valid...))     // duplicated cell index
	f.Add(append(append([]byte(nil), valid...), valid[:7]...)) // clean prefix + torn tail

	skew := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(skew[4:6], FormatVersion+1)
	f.Add(skew) // version skew

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	f.Add(badMagic) // framing damage

	flipped := append([]byte(nil), two...)
	flipped[len(flipped)-footerLen-1] ^= 0x40
	f.Add(flipped) // checksum mismatch in the second record

	hugeName := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(hugeName[18:20], 0xffff)
	f.Add(hugeName) // hostile name length: must error, not allocate

	hugeUsers := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeUsers[20:24], 1<<30)
	f.Add(hugeUsers) // hostile user count

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := DecodeShard(data, spec)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", validLen, len(data))
		}
		if err != nil {
			var re *RecordError
			if !errors.As(err, &re) {
				t.Fatalf("decode error %v is not a *RecordError", err)
			}
			if re.Offset != validLen {
				t.Fatalf("error offset %d != valid prefix %d", re.Offset, validLen)
			}
		}
		// Whatever decoded must be internally consistent with the spec
		// and byte-exactly re-encodable: decode ∘ encode must be the
		// identity on the valid prefix.
		var reenc []byte
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(spec.Cells) {
				t.Fatalf("record index %d outside spec", rec.Index)
			}
			if rec.Name != spec.Cells[rec.Index] {
				t.Fatalf("record name %q does not match spec cell %d", rec.Name, rec.Index)
			}
			if len(rec.Cost) != spec.Users || len(rec.Norm) != spec.Users || len(rec.Sold) != spec.Users {
				t.Fatalf("record columns not sized to spec users")
			}
			var encErr error
			reenc, encErr = AppendRecord(reenc, spec, rec)
			if encErr != nil {
				t.Fatalf("decoded record does not re-encode: %v", encErr)
			}
		}
		if int64(len(reenc)) != validLen {
			t.Fatalf("re-encoded prefix is %d bytes, decoder consumed %d", len(reenc), validLen)
		}
		for i := range reenc {
			if reenc[i] != data[i] {
				t.Fatalf("re-encoded byte %d differs from input", i)
			}
		}
	})
}
