// Package gridstore is the on-disk spill store for grid experiment
// results: a versioned, checksummed, append-only record format that
// lets a long sweep stream each completed cell to disk and lets an
// interrupted run resume by re-running only the cells that never
// landed (DESIGN.md §4.5).
//
// A store is one directory per grid:
//
//	spec.json        the Spec that produced the results (config hash,
//	                 seed, cell names, users per cell)
//	shard-NNN.grid   per-worker shard files of framed CellRecords
//
// Each worker in the grid pool appends to its own shard, so shard
// files need no locking between workers and a crash tears at most the
// last record of each shard. On resume the reader keeps every shard's
// longest valid prefix, reports — never silently drops — anything
// after it, and the writer truncates the torn tail before appending,
// so a resumed store is always well-framed.
//
// Every record carries an 8-byte digest of the Spec, so a record can
// never be merged into a grid other than the one that produced it,
// even if shard files are copied between directories by hand.
package gridstore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// FormatVersion versions both the spec document and the shard
	// record framing. Decoders reject records from any other version
	// with ErrVersion; there is no cross-version migration, the cells
	// are simply recomputed.
	FormatVersion = 1

	// SpecFile is the spec document's file name inside a store
	// directory.
	SpecFile = "spec.json"

	// headerLen is the fixed-size prefix of every record: magic (4),
	// version (2), spec digest (8), cell index (4), name length (2),
	// users (4).
	headerLen = 24

	// footerLen is the CRC32 trailer.
	footerLen = 4

	// maxNameLen bounds a record's cell-name length so a corrupted
	// header cannot demand an absurd allocation.
	maxNameLen = 1 << 12

	// maxUsers bounds the per-record user count for the same reason.
	maxUsers = 1 << 26
)

// recordMagic opens every shard record.
var recordMagic = [4]byte{'R', 'I', 'G', 'S'}

// crcTable is the Castagnoli polynomial, the usual choice for storage
// checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sentinel decode errors. Each one reachable from a shard scan is
// reported wrapped in a *RecordError carrying the shard name and byte
// offset, so errors.Is works on the sentinel while the message stays
// actionable.
var (
	// ErrTruncated marks a record cut short — a torn tail from a
	// crash mid-append. Everything before it is intact.
	ErrTruncated = errors.New("gridstore: truncated record")
	// ErrChecksum marks a fully-framed record whose CRC32 does not
	// match its payload.
	ErrChecksum = errors.New("gridstore: record checksum mismatch")
	// ErrVersion marks a record or spec written by a different
	// FormatVersion.
	ErrVersion = errors.New("gridstore: unsupported format version")
	// ErrCorrupt marks framing damage: bad magic, an impossible
	// length, an out-of-range cell index.
	ErrCorrupt = errors.New("gridstore: corrupt record")
	// ErrSpecMismatch marks results from a different grid: the store's
	// spec (or a record's spec digest) does not match the grid being
	// resumed.
	ErrSpecMismatch = errors.New("gridstore: store does not match grid spec")
	// ErrDuplicate marks a second valid record for a cell that already
	// has one; the first record wins.
	ErrDuplicate = errors.New("gridstore: duplicate cell record")
)

// Spec identifies the exact grid a store holds results for. ConfigHash
// is an opaque digest of everything that determines the grid's output
// (the caller computes it; internal/experiments hashes the engine
// config and per-cell parameters), Seed pins the cohort, and
// Cells/Users pin the result shape. Resume refuses a store whose spec
// differs in any field.
//
//rilint:frozen
type Spec struct {
	Version    int      `json:"version"`
	ConfigHash string   `json:"config_hash"`
	Seed       int64    `json:"seed"`
	Cells      []string `json:"cells"`
	Users      int      `json:"users"`
}

// digest is the 8-byte binding stamped into every record: a truncated
// SHA-256 over a length-prefixed serialization of every spec field.
// Eight bytes is not cryptographic binding — it is a very strong guard
// against merging records across grids, which is all resume needs.
func (s Spec) digest() [8]byte {
	h := sha256.New()
	fmt.Fprintf(h, "gridstore/%d\x00%d:%s\x00%d\x00%d\x00%d\x00",
		s.Version, len(s.ConfigHash), s.ConfigHash, s.Seed, s.Users, len(s.Cells))
	for _, c := range s.Cells {
		fmt.Fprintf(h, "%d:%s\x00", len(c), c)
	}
	var d [8]byte
	copy(d[:], h.Sum(nil)[:8])
	return d
}

// validate rejects specs a store could not round-trip.
func (s Spec) validate() error {
	switch {
	case s.Version != FormatVersion:
		return fmt.Errorf("%w: spec version %d, this build writes %d", ErrVersion, s.Version, FormatVersion)
	case s.ConfigHash == "":
		return fmt.Errorf("%w: empty config hash", ErrSpecMismatch)
	case len(s.Cells) == 0:
		return errors.New("gridstore: spec has no cells")
	case s.Users <= 0 || s.Users > maxUsers:
		return fmt.Errorf("gridstore: spec users %d out of range", s.Users)
	}
	for _, name := range s.Cells {
		if len(name) > maxNameLen {
			return fmt.Errorf("gridstore: cell name %.32q... exceeds %d bytes", name, maxNameLen)
		}
	}
	return nil
}

// CellRecord is one fully-completed grid cell: the per-user cost,
// normalized cost, and instances-sold columns, in user order. Index
// and Name locate the cell inside the Spec.
type CellRecord struct {
	Index int
	Name  string
	Cost  []float64
	Norm  []float64
	Sold  []int
}

// RecordError locates one undecodable record inside a shard file. It
// wraps a sentinel (ErrTruncated, ErrChecksum, ErrVersion, ErrCorrupt,
// ErrSpecMismatch, ErrDuplicate) so callers classify with errors.Is.
type RecordError struct {
	Shard  string
	Offset int64
	Err    error
}

func (e *RecordError) Error() string {
	if e.Shard == "" {
		return fmt.Sprintf("gridstore: record at offset %d: %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("gridstore: %s: record at offset %d: %v", e.Shard, e.Offset, e.Err)
}

func (e *RecordError) Unwrap() error { return e.Err }

// AppendRecord appends rec's framed encoding to buf and returns the
// extended slice. The record is validated against spec first: an
// out-of-range index, a name that is not spec.Cells[rec.Index], or
// column lengths other than spec.Users are encoding bugs and return an
// error rather than writing a record resume would reject.
func AppendRecord(buf []byte, spec Spec, rec CellRecord) ([]byte, error) {
	return appendRecord(buf, spec, spec.digest(), rec)
}

// appendRecord is AppendRecord with the spec digest precomputed, so a
// writer hashes the spec once per store rather than once per cell.
func appendRecord(buf []byte, spec Spec, digest [8]byte, rec CellRecord) ([]byte, error) {
	switch {
	case rec.Index < 0 || rec.Index >= len(spec.Cells):
		return nil, fmt.Errorf("gridstore: record index %d outside spec's %d cells", rec.Index, len(spec.Cells))
	case rec.Name != spec.Cells[rec.Index]:
		return nil, fmt.Errorf("gridstore: record name %q, spec cell %d is %q", rec.Name, rec.Index, spec.Cells[rec.Index])
	case len(rec.Cost) != spec.Users || len(rec.Norm) != spec.Users || len(rec.Sold) != spec.Users:
		return nil, fmt.Errorf("gridstore: record columns %d/%d/%d, spec has %d users",
			len(rec.Cost), len(rec.Norm), len(rec.Sold), spec.Users)
	}
	start := len(buf)
	buf = append(buf, recordMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = append(buf, digest[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Index))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Name)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(spec.Users))
	buf = append(buf, rec.Name...)
	for _, v := range rec.Cost {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range rec.Norm {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range rec.Sold {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable)), nil
}

// decodeOne decodes the record at the head of b, returning it and the
// number of bytes consumed. b holds the remaining shard bytes; an
// empty b is the caller's clean EOF, never passed here.
func decodeOne(b []byte, spec Spec, digest [8]byte) (CellRecord, int, error) {
	if len(b) < headerLen {
		return CellRecord{}, 0, ErrTruncated
	}
	if [4]byte(b[:4]) != recordMagic {
		return CellRecord{}, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != FormatVersion {
		return CellRecord{}, 0, fmt.Errorf("%w: record version %d, this build reads %d", ErrVersion, v, FormatVersion)
	}
	if [8]byte(b[6:14]) != digest {
		return CellRecord{}, 0, fmt.Errorf("%w: record spec digest %x, store spec is %x", ErrSpecMismatch, b[6:14], digest[:])
	}
	index := int(binary.LittleEndian.Uint32(b[14:18]))
	nameLen := int(binary.LittleEndian.Uint16(b[18:20]))
	users := int(binary.LittleEndian.Uint32(b[20:24]))
	switch {
	case index >= len(spec.Cells):
		return CellRecord{}, 0, fmt.Errorf("%w: cell index %d outside spec's %d cells", ErrCorrupt, index, len(spec.Cells))
	case nameLen > maxNameLen:
		return CellRecord{}, 0, fmt.Errorf("%w: name length %d exceeds %d", ErrCorrupt, nameLen, maxNameLen)
	case users != spec.Users:
		return CellRecord{}, 0, fmt.Errorf("%w: record has %d users, spec has %d", ErrCorrupt, users, spec.Users)
	}
	total := headerLen + nameLen + 3*8*users + footerLen
	if len(b) < total {
		return CellRecord{}, 0, ErrTruncated
	}
	body := b[:total-footerLen]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(b[total-footerLen:total]); got != want {
		return CellRecord{}, 0, fmt.Errorf("%w: crc %08x, want %08x", ErrChecksum, got, want)
	}
	name := string(b[headerLen : headerLen+nameLen])
	if name != spec.Cells[index] {
		return CellRecord{}, 0, fmt.Errorf("%w: record names cell %d %q, spec says %q", ErrCorrupt, index, name, spec.Cells[index])
	}
	rec := CellRecord{
		Index: index,
		Name:  name,
		Cost:  make([]float64, users),
		Norm:  make([]float64, users),
		Sold:  make([]int, users),
	}
	off := headerLen + nameLen
	for i := range rec.Cost {
		rec.Cost[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for i := range rec.Norm {
		rec.Norm[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for i := range rec.Sold {
		rec.Sold[i] = int(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return rec, total, nil
}

// DecodeShard scans one shard file's bytes and returns the records of
// its longest valid prefix, the prefix's byte length, and the
// *RecordError that stopped the scan (nil when the whole shard decoded
// cleanly). A torn tail is therefore not fatal: the caller keeps the
// prefix, reports the error, and re-runs the lost cell.
func DecodeShard(data []byte, spec Spec) ([]CellRecord, int64, error) {
	digest := spec.digest()
	var recs []CellRecord
	var off int64
	for int(off) < len(data) {
		rec, n, err := decodeOne(data[off:], spec, digest)
		if err != nil {
			return recs, off, &RecordError{Offset: off, Err: err}
		}
		recs = append(recs, rec)
		off += int64(n)
	}
	return recs, off, nil
}
