package gridstore

import (
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testSpec is a 4-cell, 3-user grid spec used across the suite.
func testSpec() Spec {
	return Spec{
		Version:    FormatVersion,
		ConfigHash: "deadbeefcafe0123",
		Seed:       2018,
		Cells:      []string{"a=0.5,k=0.25", "a=0.5,k=0.5", "a=0.8,k=0.5", "a=0.8,k=0.75"},
		Users:      3,
	}
}

// testRecord builds a distinctive record for cell index i.
func testRecord(spec Spec, i int) CellRecord {
	rec := CellRecord{
		Index: i,
		Name:  spec.Cells[i],
		Cost:  make([]float64, spec.Users),
		Norm:  make([]float64, spec.Users),
		Sold:  make([]int, spec.Users),
	}
	for u := 0; u < spec.Users; u++ {
		rec.Cost[u] = float64(100*i+u) + 0.125
		rec.Norm[u] = 1 / float64(i+u+2)
		rec.Sold[u] = i * u
	}
	return rec
}

func mustCreate(t *testing.T, dir string, spec Spec) *Store {
	t.Helper()
	st, err := Create(dir, spec)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	st := mustCreate(t, dir, spec)
	for i := range spec.Cells {
		// Spread cells over two shards, as two pool workers would.
		if err := st.Append(i%2, testRecord(spec, i)); err != nil {
			t.Fatalf("Append cell %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, res, err := Open(dir, spec)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st2.Close()
	if len(res.Dropped) != 0 {
		t.Fatalf("clean store dropped records: %+v", res.Dropped)
	}
	if len(res.Cells) != len(spec.Cells) {
		t.Fatalf("recovered %d cells, want %d", len(res.Cells), len(spec.Cells))
	}
	for i := range spec.Cells {
		want := testRecord(spec, i)
		got, ok := res.Cells[i]
		if !ok {
			t.Fatalf("cell %d missing", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cell %d = %+v, want %+v", i, got, want)
		}
		// Resume must be bit-exact, not merely approximately equal.
		for u := range want.Cost {
			if math.Float64bits(got.Cost[u]) != math.Float64bits(want.Cost[u]) ||
				math.Float64bits(got.Norm[u]) != math.Float64bits(want.Norm[u]) {
				t.Errorf("cell %d user %d: float bits differ", i, u)
			}
		}
	}
}

func TestOpenNothingToResume(t *testing.T) {
	_, _, err := Open(t.TempDir(), testSpec())
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open of empty dir = %v, want fs.ErrNotExist", err)
	}
}

func TestCreateClearsStaleStore(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	st := mustCreate(t, dir, spec)
	if err := st.Append(0, testRecord(spec, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-creating (a non-resume run) must wipe the old shard files so
	// stale records can never leak into the new grid.
	st2 := mustCreate(t, dir, spec)
	defer st2.Close()
	if _, err := os.Stat(filepath.Join(dir, shardName(0))); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stale shard survived Create: %v", err)
	}
}

func TestOpenSpecMismatch(t *testing.T) {
	spec := testSpec()
	mutations := map[string]func(*Spec){
		"config-hash": func(s *Spec) { s.ConfigHash = "0123456789abcdef" },
		"seed":        func(s *Spec) { s.Seed = 7 },
		"users":       func(s *Spec) { s.Users = 5 },
		"cells":       func(s *Spec) { s.Cells = append([]string{"x"}, s.Cells[1:]...) },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st := mustCreate(t, dir, spec)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			want := spec
			want.Cells = append([]string(nil), spec.Cells...)
			mutate(&want)
			_, _, err := Open(dir, want)
			if !errors.Is(err, ErrSpecMismatch) {
				t.Fatalf("Open with mutated %s = %v, want ErrSpecMismatch", name, err)
			}
		})
	}
}

func TestOpenVersionSkew(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	st := mustCreate(t, dir, spec)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A future build with a bumped FormatVersion would present a spec
	// with that version; today's store must be rejected as ErrVersion
	// at the matchSpec layer (validate catches it even earlier for the
	// in-memory side, so mutate the on-disk document instead).
	raw, err := os.ReadFile(filepath.Join(dir, SpecFile))
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(raw), `"version": 1`, `"version": 99`, 1)
	if mutated == string(raw) {
		t.Fatal("version field not found in spec.json")
	}
	if err := os.WriteFile(filepath.Join(dir, SpecFile), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, spec)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("Open with version-skewed spec = %v, want ErrVersion", err)
	}
}

func TestOpenTornTailTruncatesAndResumes(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	st := mustCreate(t, dir, spec)
	for i := 0; i < 3; i++ {
		if err := st.Append(0, testRecord(spec, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record, as a crash mid-append would.
	shard := filepath.Join(dir, shardName(0))
	info, err := os.Stat(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(shard, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2, res, err := Open(dir, spec)
	if err != nil {
		t.Fatalf("Open after tear: %v", err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("recovered %d cells after tear, want 2", len(res.Cells))
	}
	if len(res.Dropped) != 1 || !errors.Is(res.Dropped[0].Err, ErrTruncated) {
		t.Fatalf("dropped = %+v, want one ErrTruncated", res.Dropped)
	}
	var re *RecordError
	if !errors.As(res.Dropped[0].Err, &re) || re.Shard != shardName(0) {
		t.Fatalf("dropped error %v does not carry the shard name", res.Dropped[0].Err)
	}
	// The torn tail must be gone from disk, and appending the re-run
	// cell must produce a store that re-opens with zero drops.
	if err := st2.Append(0, testRecord(spec, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, res, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if len(res.Cells) != 3 || len(res.Dropped) != 0 {
		t.Fatalf("after repair: %d cells, dropped %+v; want 3 cells, no drops", len(res.Cells), res.Dropped)
	}
}

func TestOpenChecksumCorruption(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	st := mustCreate(t, dir, spec)
	for i := 0; i < 2; i++ {
		if err := st.Append(0, testRecord(spec, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(dir, shardName(0))
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the second record (past its header, so
	// framing still parses and the CRC is what catches it).
	data[len(data)-footerLen-3] ^= 0xff
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, res, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("recovered %d cells, want 1 (the uncorrupted prefix)", len(res.Cells))
	}
	if len(res.Dropped) != 1 || !errors.Is(res.Dropped[0].Err, ErrChecksum) {
		t.Fatalf("dropped = %+v, want one ErrChecksum", res.Dropped)
	}
}

func TestLoadDuplicateCellKeepsFirst(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	st := mustCreate(t, dir, spec)
	first := testRecord(spec, 1)
	second := testRecord(spec, 1)
	second.Cost[0] = 999
	if err := st.Append(0, first); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(0, second); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, res, err := Open(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cells[1].Cost[0]; got != first.Cost[0] {
		t.Fatalf("duplicate resolution kept Cost[0]=%v, want first record's %v", got, first.Cost[0])
	}
	if len(res.Dropped) != 1 || !errors.Is(res.Dropped[0].Err, ErrDuplicate) {
		t.Fatalf("dropped = %+v, want one ErrDuplicate", res.Dropped)
	}
}

func TestRecordVersionSkew(t *testing.T) {
	spec := testSpec()
	buf, err := AppendRecord(nil, spec, testRecord(spec, 0))
	if err != nil {
		t.Fatal(err)
	}
	buf[4] = 0x7f // bump the record's version field
	_, _, derr := DecodeShard(buf, spec)
	if !errors.Is(derr, ErrVersion) {
		t.Fatalf("decode of version-skewed record = %v, want ErrVersion", derr)
	}
}

func TestRecordSpecDigestMismatch(t *testing.T) {
	spec := testSpec()
	other := testSpec()
	other.Seed++
	buf, err := AppendRecord(nil, other, testRecord(other, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, _, derr := DecodeShard(buf, spec)
	if !errors.Is(derr, ErrSpecMismatch) {
		t.Fatalf("decode of foreign-grid record = %v, want ErrSpecMismatch", derr)
	}
}

func TestAppendRecordValidation(t *testing.T) {
	spec := testSpec()
	bad := []struct {
		name   string
		mutate func(*CellRecord)
	}{
		{"index-out-of-range", func(r *CellRecord) { r.Index = len(spec.Cells) }},
		{"negative-index", func(r *CellRecord) { r.Index = -1 }},
		{"name-mismatch", func(r *CellRecord) { r.Name = "imposter" }},
		{"short-columns", func(r *CellRecord) { r.Cost = r.Cost[:1] }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			rec := testRecord(spec, 0)
			tc.mutate(&rec)
			if _, err := AppendRecord(nil, spec, rec); err == nil {
				t.Fatal("invalid record encoded without error")
			}
		})
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	st := mustCreate(t, dir, spec)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(0, testRecord(spec, 0)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
}
