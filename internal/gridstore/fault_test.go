package gridstore

import (
	"errors"
	"os"
	"testing"

	"rimarket/internal/faultfs"
)

// populated creates a store with every cell spilled and returns its
// directory, so each fault test starts from the same healthy state.
func populated(t *testing.T, spec Spec) string {
	t.Helper()
	dir := t.TempDir()
	st := mustCreate(t, dir, spec)
	for i := range spec.Cells {
		if err := st.Append(i%2, testRecord(spec, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLoadFSInjectedFaults drives the reader through internal/faultfs:
// infrastructure failures (open/read errors) must be fatal, structured,
// %w-wrapped errors — a shard that cannot even be read cannot be safely
// resumed — while data damage (truncation, corruption) must degrade to
// reported Dropped records, never a silent partial merge.
func TestLoadFSInjectedFaults(t *testing.T) {
	spec := testSpec()

	t.Run("spec-open-error", func(t *testing.T) {
		dir := populated(t, spec)
		fsys := faultfs.New(os.DirFS(dir))
		fsys.Inject(SpecFile, faultfs.KindOpenError)
		_, err := LoadFS(fsys, spec)
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("LoadFS with unreadable spec = %v, want wrapped ErrInjected", err)
		}
	})

	t.Run("shard-open-error", func(t *testing.T) {
		dir := populated(t, spec)
		fsys := faultfs.New(os.DirFS(dir))
		fsys.Inject(shardName(0), faultfs.KindOpenError)
		_, err := LoadFS(fsys, spec)
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("LoadFS with unopenable shard = %v, want wrapped ErrInjected", err)
		}
	})

	t.Run("shard-read-error", func(t *testing.T) {
		dir := populated(t, spec)
		fsys := faultfs.New(os.DirFS(dir))
		fsys.Inject(shardName(1), faultfs.KindReadError)
		_, err := LoadFS(fsys, spec)
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("LoadFS with mid-read failure = %v, want wrapped ErrInjected", err)
		}
	})

	t.Run("shard-truncated", func(t *testing.T) {
		dir := populated(t, spec)
		fsys := faultfs.New(os.DirFS(dir))
		fsys.Inject(shardName(0), faultfs.KindTruncate)
		res, err := LoadFS(fsys, spec)
		if err != nil {
			t.Fatalf("LoadFS with truncated shard = %v, want reported drop, not failure", err)
		}
		if len(res.Dropped) == 0 {
			t.Fatal("truncated shard produced no Dropped report: silent partial merge")
		}
		if !errors.Is(res.Dropped[0].Err, ErrTruncated) {
			t.Fatalf("dropped err = %v, want ErrTruncated", res.Dropped[0].Err)
		}
		// The untouched shard's cells must all survive.
		for i := 1; i < len(spec.Cells); i += 2 {
			if _, ok := res.Cells[i]; !ok {
				t.Errorf("cell %d from the healthy shard missing", i)
			}
		}
	})

	t.Run("shard-corrupted", func(t *testing.T) {
		dir := populated(t, spec)
		fsys := faultfs.New(os.DirFS(dir))
		fsys.Inject(shardName(0), faultfs.KindCorruptRow)
		res, err := LoadFS(fsys, spec)
		if err != nil {
			t.Fatalf("LoadFS with corrupted shard = %v, want reported drop, not failure", err)
		}
		if len(res.Dropped) == 0 {
			t.Fatal("corrupted shard produced no Dropped report: silent partial merge")
		}
		// The splice lands mid-file, so the damage classifies as one of
		// the payload sentinels depending on what it hit; what matters
		// is that it classifies, with the shard named.
		d := res.Dropped[0]
		if !errors.Is(d.Err, ErrChecksum) && !errors.Is(d.Err, ErrCorrupt) &&
			!errors.Is(d.Err, ErrTruncated) && !errors.Is(d.Err, ErrSpecMismatch) && !errors.Is(d.Err, ErrVersion) {
			t.Fatalf("dropped err %v wraps no gridstore sentinel", d.Err)
		}
		var re *RecordError
		if !errors.As(d.Err, &re) || re.Shard != shardName(0) {
			t.Fatalf("dropped err %v does not locate the shard", d.Err)
		}
		// Every recovered cell must decode to exactly what was written:
		// corruption may shrink the result set, never change it.
		for i, rec := range res.Cells {
			want := testRecord(spec, i)
			for u := range want.Cost {
				if rec.Cost[u] != want.Cost[u] {
					t.Fatalf("cell %d survived corruption with altered data", i)
				}
			}
		}
	})

	t.Run("stale-config-hash", func(t *testing.T) {
		dir := populated(t, spec)
		stale := spec
		stale.Cells = append([]string(nil), spec.Cells...)
		stale.ConfigHash = "0000000000000000"
		_, err := LoadFS(faultfs.New(os.DirFS(dir)), stale)
		if !errors.Is(err, ErrSpecMismatch) {
			t.Fatalf("LoadFS with stale config hash = %v, want ErrSpecMismatch", err)
		}
	})
}
