package experiments

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"rimarket/internal/obs"
	"rimarket/internal/pricing"
)

// marketCards returns the session's traded cards at the test scale:
// the paper's d2.xlarge plus a cheap general-purpose type, both with
// the year scaled down the way TestScaleConfig scales its card.
func marketCards(t *testing.T) []pricing.InstanceType {
	t.Helper()
	scale := 6.0
	out := make([]pricing.InstanceType, 0, 2)
	for _, name := range []string{"d2.xlarge", "m4.large"} {
		it, err := pricing.StandardLinuxUSEast().Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		it.PeriodHours = int(float64(it.PeriodHours) / scale)
		it.Upfront /= scale
		out = append(out, it)
	}
	return out
}

// marketScenario is the suite's shared scenario at the given execution
// settings; results must not depend on any of them.
func marketScenario(t *testing.T, parallelism int, batch bool) MarketScenario {
	cfg := TestScaleConfig()
	cfg.PerGroup = 8
	cfg.MarketFee = 0.12
	cfg.Parallelism = parallelism
	cfg.Batch = batch
	return MarketScenario{Base: cfg, Cards: marketCards(t)}
}

func TestMarketScenarioValidate(t *testing.T) {
	sc := marketScenario(t, 0, false)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (MarketScenario{Base: sc.Base}).Validate(); err == nil {
		t.Error("no cards accepted")
	}
	dup := MarketScenario{Base: sc.Base, Cards: []pricing.InstanceType{sc.Cards[0], sc.Cards[0]}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate card accepted")
	}
	bad := sc
	bad.Base.PerGroup = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid base config accepted")
	}
}

// TestMarketScenarioEmergentStats pins the tentpole's acceptance
// property: the session produces a per-type sale-probability and
// time-to-sale table from matched trades, with every derived quantity
// consistent with the raw counts and money conserved bit-exactly.
func TestMarketScenarioEmergentStats(t *testing.T) {
	sc := marketScenario(t, 0, false)
	res, err := RunMarketScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(sc.Cards) {
		t.Fatalf("%d outcomes for %d cards", len(res.Outcomes), len(sc.Cards))
	}
	if res.Horizon != sc.Base.Hours {
		t.Errorf("horizon %d, want %d", res.Horizon, sc.Base.Hours)
	}
	var listed, sold int
	var paid, split float64
	for i, o := range res.Outcomes {
		if o.Type != sc.Cards[i].Name {
			t.Errorf("outcome %d is %q, want card order %q", i, o.Type, sc.Cards[i].Name)
		}
		if o.Listed != o.Sold+o.Expired+o.OpenAtEnd {
			t.Errorf("%s: listed %d != sold %d + expired %d + open %d", o.Type, o.Listed, o.Sold, o.Expired, o.OpenAtEnd)
		}
		if o.SaleProbability < 0 || o.SaleProbability > 1 {
			t.Errorf("%s: sale probability %v outside [0,1]", o.Type, o.SaleProbability)
		}
		if o.Sold != o.UsedFills {
			t.Errorf("%s: sold %d != used fills %d (single-type book: every fill is a sale)", o.Type, o.Sold, o.UsedFills)
		}
		if o.BuyerDemand != o.UsedFills+o.FreshBuys {
			t.Errorf("%s: demand %d != used %d + fresh %d", o.Type, o.BuyerDemand, o.UsedFills, o.FreshBuys)
		}
		// Bit-exact conservation is per trade (asserted inside the
		// session); the independently accumulated sums agree to float
		// summation error.
		if diff := o.BuyerPaid - (o.SellerProceeds + o.Fees); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: paid %v != proceeds %v + fees %v", o.Type, o.BuyerPaid, o.SellerProceeds, o.Fees)
		}
		if o.Sold > 0 && o.MeanHoursToSale < 0 {
			t.Errorf("%s: negative mean wait %v", o.Type, o.MeanHoursToSale)
		}
		listed += o.Listed
		sold += o.Sold
		paid += o.BuyerPaid
		split += o.SellerProceeds + o.Fees
	}
	// The seeded cohort must actually trade: an empty table would make
	// the emergent-alpha claim vacuous.
	if listed == 0 || sold == 0 {
		t.Fatalf("degenerate session: %d listed, %d sold", listed, sold)
	}
	if diff := paid - res.BuyerPaid; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("session paid total %v != per-type sum %v", res.BuyerPaid, paid)
	}
	if diff := split - (res.SellerProceeds + res.Fees); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("session proceeds+fees %v != per-type sum %v", res.SellerProceeds+res.Fees, split)
	}
	out := RenderMarketOutcomes(res)
	for _, card := range sc.Cards {
		if !strings.Contains(out, card.Name) {
			t.Errorf("rendered table missing %s:\n%s", card.Name, out)
		}
	}
}

// TestMarketScenarioObsCounters checks the session feeds the obs
// market section, and that the counters agree with the outcomes.
func TestMarketScenarioObsCounters(t *testing.T) {
	sc := marketScenario(t, 0, false)
	m := obs.New(obs.FakeClock(time.Unix(0, 0).UTC(), time.Microsecond))
	res, err := RunMarketScenario(obs.WithMetrics(context.Background(), m), sc)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Market == nil {
		t.Fatal("snapshot has no market section after a market session")
	}
	var listed, sold, expired, demand, fresh int64
	for _, o := range res.Outcomes {
		listed += int64(o.Listed)
		sold += int64(o.Sold)
		expired += int64(o.Expired)
		demand += int64(o.BuyerDemand)
		fresh += int64(o.FreshBuys)
	}
	mk := snap.Market
	if mk.Listings != listed || mk.Trades != sold || mk.Expiries != expired ||
		mk.BuyOrders != demand || mk.FreshBuys != fresh {
		t.Errorf("market counters (%d, %d, %d, %d, %d) != outcomes (%d, %d, %d, %d, %d)",
			mk.Listings, mk.Trades, mk.Expiries, mk.BuyOrders, mk.FreshBuys,
			listed, sold, expired, demand, fresh)
	}
	if sold > 0 && mk.HoursToSale < 0 {
		t.Errorf("hours-to-sale total %d negative", mk.HoursToSale)
	}
}

// TestMarketScenarioDifferential is the determinism gate: the rendered
// session must be byte-identical at every parallelism, in batch and
// per-user mode, and with or without metrics attached.
func TestMarketScenarioDifferential(t *testing.T) {
	want := ""
	for _, batch := range []bool{false, true} {
		for _, par := range []int{1, 4, runtime.NumCPU()} {
			for _, observed := range []bool{false, true} {
				ctx := context.Background()
				if observed {
					m := obs.New(obs.FakeClock(time.Unix(0, 0).UTC(), time.Microsecond))
					ctx = obs.WithMetrics(ctx, m)
				}
				res, err := RunMarketScenario(ctx, marketScenario(t, par, batch))
				if err != nil {
					t.Fatalf("batch=%v parallelism=%d observed=%v: %v", batch, par, observed, err)
				}
				got := RenderMarketOutcomes(res)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("batch=%v parallelism=%d observed=%v diverged:\n--- got ---\n%s--- want ---\n%s",
						batch, par, observed, got, want)
				}
			}
		}
	}
}

// TestMarketScenarioSpillInterop runs a spilled-and-resumed cohort
// grid and the market session over the same configuration: the spill
// store must restore the grid cells and the session must render
// identically whether or not a grid spill ran beside it.
func TestMarketScenarioSpillInterop(t *testing.T) {
	sc := marketScenario(t, 2, false)
	plain, err := RunMarketScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := sc.Base
	cfg.Instance = sc.Cards[0]
	cfg.SpillDir = dir

	// First pass computes and spills the cohort grid.
	plan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := plan.Cohort(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second pass resumes from the spill store and also runs the market
	// session on a scenario sharing the spill configuration.
	cfg.Resume = true
	m := obs.New(obs.FakeClock(time.Unix(0, 0).UTC(), time.Microsecond))
	ctx := obs.WithMetrics(context.Background(), m)
	plan2, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := plan2.Cohort(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().CellsResumed; got == 0 {
		t.Error("resume pass restored no cells from the spill store")
	}
	for i := range first.Users {
		for name, cost := range first.Users[i].Costs {
			if second.Users[i].Costs[name] != cost {
				t.Fatalf("user %d policy %s: resumed cost %v != computed %v",
					i, name, second.Users[i].Costs[name], cost)
			}
		}
	}

	spilled := sc
	spilled.Base = cfg
	res, err := RunMarketScenario(ctx, spilled)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := RenderMarketOutcomes(res), RenderMarketOutcomes(plain); got != want {
		t.Errorf("session beside a spilled grid diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
