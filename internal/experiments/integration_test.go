package experiments

import (
	"context"
	"testing"

	"rimarket/internal/workload"
)

// testScaleResult memoizes the TestScaleConfig cohort for the shape
// assertions below (one run, ~0.3 s, shared across tests).
var testScaleResult *CohortResult

func testScale(t *testing.T) *CohortResult {
	t.Helper()
	if testing.Short() {
		t.Skip("integration shapes skipped in -short mode")
	}
	if testScaleResult == nil {
		res, err := RunCohort(context.Background(), TestScaleConfig())
		if err != nil {
			t.Fatal(err)
		}
		testScaleResult = res
	}
	return testScaleResult
}

// TestShapeTable3Ordering asserts the paper's central result: average
// normalized cost strictly ordered A_{T/4} < A_{T/2} < A_{3T/4} < 1,
// overall and in every group (Table III, Fig. 4).
func TestShapeTable3Ordering(t *testing.T) {
	res := testScale(t)
	rows := Table3(res)
	byPolicy := make(map[string]Table3Row, len(rows))
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	a34, a2, a4 := byPolicy[PolicyA3T4], byPolicy[PolicyAT2], byPolicy[PolicyAT4]

	type col struct {
		name        string
		v34, v2, v4 float64
	}
	cols := []col{
		{name: "all", v34: a34.All, v2: a2.All, v4: a4.All},
		{name: "group1", v34: a34.Group1, v2: a2.Group1, v4: a4.Group1},
		{name: "group2", v34: a34.Group2, v2: a2.Group2, v4: a4.Group2},
		{name: "group3", v34: a34.Group3, v2: a2.Group3, v4: a4.Group3},
	}
	for i, c := range cols {
		// The all-users column must be strictly ordered (the paper's
		// headline); per-group columns get a small slack for the
		// test-scale cohort's sampling noise (full scale is strict).
		slack := 0.0
		if i > 0 {
			slack = 0.01
		}
		if !(c.v4 < c.v2+slack && c.v2 < c.v34+slack && c.v34 < 1) {
			t.Errorf("%s: ordering violated: A_{T/4}=%v A_{T/2}=%v A_{3T/4}=%v",
				c.name, c.v4, c.v2, c.v34)
		}
	}
	// Rough magnitude: overall savings in the paper's ballpark
	// (paper: 0.93 / 0.86 / 0.80; accept a one-decile window).
	if a34.All < 0.88 || a34.All > 0.99 {
		t.Errorf("A_{3T/4} all-users mean %v outside [0.88, 0.99]", a34.All)
	}
	if a4.All < 0.70 || a4.All > 0.90 {
		t.Errorf("A_{T/4} all-users mean %v outside [0.70, 0.90]", a4.All)
	}
}

// TestShapeFig3Savers asserts Fig. 3's qualitative claims: a large
// share of users save, savings deepen with earlier checkpoints, and a
// small pay-more tail exists whose worst case grows with earlier
// checkpoints.
func TestShapeFig3Savers(t *testing.T) {
	res := testScale(t)
	var prevSaved, prevDeep float64
	var worst [3]float64
	for i, p := range SellingPolicies { // A_{3T/4}, A_{T/2}, A_{T/4}
		sum, err := Fig3(res.Users, p)
		if err != nil {
			t.Fatal(err)
		}
		if sum.FracSaved < 0.35 {
			t.Errorf("%s: only %.0f%% of users save", p, sum.FracSaved*100)
		}
		if sum.FracWorse > 0.10 {
			t.Errorf("%s: %.0f%% of users pay more (tail too fat)", p, sum.FracWorse*100)
		}
		if i > 0 && sum.FracSaved30 < prevDeep-1e-9 {
			t.Errorf("%s: deep savings %.2f below later checkpoint's %.2f", p, sum.FracSaved30, prevDeep)
		}
		prevSaved, prevDeep = sum.FracSaved, sum.FracSaved30
		worst[i] = sum.WorstIncrease
	}
	_ = prevSaved
	// Risk ordering (the paper's Table II message): the latest
	// checkpoint has the smallest worst-case increase.
	if !(worst[0] <= worst[1]+1e-9 && worst[1] <= worst[2]+1e-9) {
		t.Errorf("worst-case increases not ordered by checkpoint: %v", worst)
	}
}

// TestShapeAllSellingDominated asserts each online algorithm tracks or
// beats its All-Selling benchmark on average (Fig. 3's visual claim).
// At a = 0.8 sale income is large enough that blanket selling is close
// to optimal, so the threshold rule is allowed a 1% slack — what it
// buys over All-Selling is the bounded worst case (see
// TestShapeFig3Savers' risk ordering), not the mean.
func TestShapeAllSellingDominated(t *testing.T) {
	res := testScale(t)
	pairs := map[string]string{
		PolicyA3T4: PolicySell3T4,
		PolicyAT2:  PolicySellT2,
		PolicyAT4:  PolicySellT4,
	}
	for online, bench := range pairs {
		var onlineSum, benchSum float64
		for _, u := range res.Users {
			onlineSum += u.Normalized[online]
			benchSum += u.Normalized[bench]
		}
		n := float64(len(res.Users))
		if onlineSum/n > benchSum/n+0.01 {
			t.Errorf("%s mean %.4f worse than %s mean %.4f beyond slack",
				online, onlineSum/n, bench, benchSum/n)
		}
	}
}

// TestShapeFig2Bands asserts the cohort lands exactly in the paper's
// sigma/mu bands with the paper's population sizes.
func TestShapeFig2Bands(t *testing.T) {
	res := testScale(t)
	groups := Fig2(res)
	want := TestScaleConfig().PerGroup
	for _, g := range groups {
		if g.Count != want {
			t.Errorf("%v: %d users, want %d", g.Group, g.Count, want)
		}
	}
	if groups[0].MaxRatio >= 1 || groups[1].MinRatio < 1 || groups[1].MaxRatio > 3 || groups[2].MinRatio <= 3 {
		t.Errorf("band edges violated: %v %v %v",
			[2]float64{groups[0].MinRatio, groups[0].MaxRatio},
			[2]float64{groups[1].MinRatio, groups[1].MaxRatio},
			[2]float64{groups[2].MinRatio, groups[2].MaxRatio})
	}
}

// TestShapeBehaviorsAllPresent asserts the four Section VI.A behavior
// imitators are all exercised across the cohort.
func TestShapeBehaviorsAllPresent(t *testing.T) {
	res := testScale(t)
	seen := make(map[string]int)
	for _, u := range res.Users {
		seen[u.Behavior]++
	}
	for _, b := range Behaviors {
		if seen[b] == 0 {
			t.Errorf("behavior %s never assigned", b)
		}
	}
}

// TestShapeSellingActuallyHappens guards against a silent regression
// where no checkpoints fire (e.g. a horizon/period mismatch): a
// meaningful share of users must sell at least one instance under
// A_{T/4}.
func TestShapeSellingActuallyHappens(t *testing.T) {
	res := testScale(t)
	sellers := 0
	for _, u := range res.Users {
		if u.Sold[PolicyAT4] > 0 {
			sellers++
		}
	}
	if frac := float64(sellers) / float64(len(res.Users)); frac < 0.3 {
		t.Errorf("only %.0f%% of users ever sell under A_{T/4}", frac*100)
	}
}

// TestShapeVolatileGroupSavesMostHere documents this reproduction's
// known delta versus the paper (see EXPERIMENTS.md): in our synthetic
// cohort the volatile group saves the most. The assertion keeps the
// delta intentional — if cohort changes flip it, EXPERIMENTS.md must be
// re-checked.
func TestShapeVolatileGroupSavesMostHere(t *testing.T) {
	res := testScale(t)
	grouped := res.ByGroup()
	mean := func(g workload.Group, p string) float64 {
		var s float64
		users := grouped[g]
		for _, u := range users {
			s += u.Normalized[p]
		}
		return s / float64(len(users))
	}
	for _, p := range SellingPolicies {
		g1 := mean(workload.GroupStable, p)
		g3 := mean(workload.GroupVolatile, p)
		if g3 > g1 {
			t.Errorf("%s: volatile group mean %.4f above stable %.4f; EXPERIMENTS.md delta note is stale", p, g3, g1)
		}
	}
}
