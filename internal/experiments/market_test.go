package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestMarketSession(t *testing.T) {
	cfg := smallConfig()
	points, err := MarketSession(context.Background(), cfg, []float64{0.1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	thin, thick := points[0].Stats, points[1].Stats
	if thin.Listed == 0 || thin.Listed != thick.Listed {
		t.Fatalf("listings inconsistent: %d vs %d", thin.Listed, thick.Listed)
	}
	// More buyers clear more listings and realize more income.
	if thick.Sold < thin.Sold {
		t.Errorf("thick market sold %d < thin market %d", thick.Sold, thin.Sold)
	}
	if thick.RealizedFraction < thin.RealizedFraction {
		t.Errorf("thick realized %v < thin %v", thick.RealizedFraction, thin.RealizedFraction)
	}
	// A flooded market realizes nearly all of Eq. (1)'s assumed income.
	if thick.RealizedFraction < 0.9 {
		t.Errorf("flooded market realized only %v", thick.RealizedFraction)
	}
	out := RenderMarket(points)
	if !strings.Contains(out, "realized income") || !strings.Contains(out, "buyers/hour") {
		t.Errorf("render:\n%s", out)
	}
}

func TestMarketSessionRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.PerGroup = 0
	if _, err := MarketSession(context.Background(), cfg, []float64{1}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMarketSessionDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := MarketSession(context.Background(), cfg, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarketSession(context.Background(), cfg, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("sessions differ: %+v vs %+v", a[0], b[0])
	}
}
