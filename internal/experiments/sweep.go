package experiments

import (
	"fmt"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/stats"
	"rimarket/internal/workload"
)

// SweepPoint is one setting of an ablation sweep.
type SweepPoint struct {
	// Value is the swept parameter (checkpoint fraction, selling
	// discount, or market fee).
	Value float64
	// MeanNormalized is the cohort-mean normalized cost of A_{kT} at
	// this setting.
	MeanNormalized float64
	// FracSaved is the fraction of users saving versus Keep-Reserved.
	FracSaved float64
}

// sweepOver runs the cohort once per parameter value, building the
// selling policy with mk. When valueIsDiscount is set, the swept value
// also replaces the engine's selling discount (income side).
func sweepOver(cfg Config, values []float64, valueIsDiscount bool, mk func(Config, float64) (simulate.SellingPolicy, error)) ([]SweepPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	traces, err := workload.NewCohort(workload.CohortConfig{
		PerGroup: cfg.PerGroup,
		Hours:    cfg.Hours,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Plan reservations once per user; the plan does not depend on the
	// swept selling parameter.
	type planned struct {
		demand []int
		newRes []int
	}
	plans := make([]planned, 0, len(traces))
	for i, tr := range traces {
		planner, err := behaviorPolicy(cfg, Behaviors[i%len(Behaviors)], int64(i))
		if err != nil {
			return nil, err
		}
		newRes, err := purchasing.PlanReservations(tr.Demand, cfg.Instance.PeriodHours, planner)
		if err != nil {
			return nil, err
		}
		plans = append(plans, planned{demand: tr.Demand, newRes: newRes})
	}

	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		policy, err := mk(cfg, v)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep value %v: %w", v, err)
		}
		engCfg := simulate.Config{
			Instance:        cfg.Instance,
			SellingDiscount: cfg.SellingDiscount,
			MarketFee:       cfg.MarketFee,
		}
		if valueIsDiscount {
			engCfg.SellingDiscount = v
		}
		normalized := make([]float64, 0, len(plans))
		for _, pl := range plans {
			keepRun, err := simulate.Run(pl.demand, pl.newRes, engCfg, core.KeepReserved{})
			if err != nil {
				return nil, err
			}
			run, err := simulate.Run(pl.demand, pl.newRes, engCfg, policy)
			if err != nil {
				return nil, err
			}
			keep := keepRun.Cost.Total()
			if keep == 0 {
				normalized = append(normalized, 1)
				continue
			}
			normalized = append(normalized, run.Cost.Total()/keep)
		}
		out = append(out, SweepPoint{
			Value:          v,
			MeanNormalized: stats.Mean(normalized),
			FracSaved:      stats.FractionBelow(normalized, 1),
		})
	}
	return out, nil
}

// SweepFraction evaluates the generalized A_{kT} across checkpoint
// fractions — the paper's future-work direction of selling at an
// arbitrary time spot.
func SweepFraction(cfg Config, fractions []float64) ([]SweepPoint, error) {
	return sweepOver(cfg, fractions, false, func(c Config, k float64) (simulate.SellingPolicy, error) {
		return core.NewThreshold(c.Instance, c.SellingDiscount, k)
	})
}

// SweepDiscount evaluates A_{3T/4} across selling discounts a.
func SweepDiscount(cfg Config, discounts []float64) ([]SweepPoint, error) {
	return sweepOver(cfg, discounts, true, func(c Config, a float64) (simulate.SellingPolicy, error) {
		return core.NewA3T4(c.Instance, a)
	})
}

// SweepMarketFee evaluates A_{3T/4} across marketplace fees.
func SweepMarketFee(cfg Config, fees []float64) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(fees))
	for _, fee := range fees {
		c := cfg
		c.MarketFee = fee
		got, err := sweepOver(c, []float64{fee}, false, func(cc Config, _ float64) (simulate.SellingPolicy, error) {
			return core.NewA3T4(cc.Instance, cc.SellingDiscount)
		})
		if err != nil {
			return nil, err
		}
		points = append(points, got[0])
	}
	return points, nil
}

// RenderSweep renders sweep points as a small table.
func RenderSweep(title, param string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s %16s %12s\n", title, param, "mean cost (norm)", "users saving")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-12.3f %16.4f %11.0f%%\n", pt.Value, pt.MeanNormalized, pt.FracSaved*100)
	}
	return b.String()
}
