package experiments

import (
	"context"
	"fmt"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/simulate"
)

// SweepPoint is one setting of an ablation sweep.
type SweepPoint struct {
	// Value is the swept parameter (checkpoint fraction, selling
	// discount, or market fee).
	Value float64
	// MeanNormalized is the cohort-mean normalized cost of A_{kT} at
	// this setting.
	MeanNormalized float64
	// FracSaved is the fraction of users saving versus Keep-Reserved.
	FracSaved float64
}

// sweepCells runs one grid cell per swept value and folds each cell
// into a SweepPoint.
func (p *CohortPlan) sweepCells(ctx context.Context, name string, values []float64, cells []Cell) ([]SweepPoint, error) {
	grid, err := p.RunGridNamed(ctx, name, cells)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(values))
	for i, v := range values {
		out[i] = SweepPoint{
			Value:          v,
			MeanNormalized: grid[i].MeanNorm(),
			FracSaved:      grid[i].FracSaved(),
		}
	}
	return out, nil
}

// sweepOver builds the selling policy with mk once per parameter value
// and evaluates all values on the shared plan. When valueIsDiscount is
// set, the swept value also replaces the engine's selling discount
// (income side).
func (p *CohortPlan) sweepOver(ctx context.Context, name string, values []float64, valueIsDiscount bool, mk func(Config, float64) (simulate.SellingPolicy, error)) ([]SweepPoint, error) {
	cells := make([]Cell, 0, len(values))
	for _, v := range values {
		policy, err := mk(p.cfg, v)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep value %v: %w", v, err)
		}
		engCfg := p.engineConfig()
		if valueIsDiscount {
			engCfg.SellingDiscount = v
		}
		cells = append(cells, Cell{Name: fmt.Sprintf("value=%v", v), Policy: policy, Engine: engCfg})
	}
	return p.sweepCells(ctx, name, values, cells)
}

// SweepFraction evaluates the generalized A_{kT} across checkpoint
// fractions on the plan's cohort.
func (p *CohortPlan) SweepFraction(ctx context.Context, fractions []float64) ([]SweepPoint, error) {
	return p.sweepOver(ctx, "sweep-k", fractions, false, func(c Config, k float64) (simulate.SellingPolicy, error) {
		return core.NewThreshold(c.Instance, c.SellingDiscount, k)
	})
}

// SweepDiscount evaluates A_{3T/4} across selling discounts a on the
// plan's cohort.
func (p *CohortPlan) SweepDiscount(ctx context.Context, discounts []float64) ([]SweepPoint, error) {
	return p.sweepOver(ctx, "sweep-a", discounts, true, func(c Config, a float64) (simulate.SellingPolicy, error) {
		return core.NewA3T4(c.Instance, a)
	})
}

// SweepMarketFee evaluates A_{3T/4} across marketplace fees on the
// plan's cohort.
func (p *CohortPlan) SweepMarketFee(ctx context.Context, fees []float64) ([]SweepPoint, error) {
	cells := make([]Cell, 0, len(fees))
	for _, fee := range fees {
		policy, err := core.NewA3T4(p.cfg.Instance, p.cfg.SellingDiscount)
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep value %v: %w", fee, err)
		}
		engCfg := p.engineConfig()
		engCfg.MarketFee = fee
		cells = append(cells, Cell{Name: fmt.Sprintf("fee=%v", fee), Policy: policy, Engine: engCfg})
	}
	return p.sweepCells(ctx, "sweep-fee", fees, cells)
}

// SweepFraction evaluates the generalized A_{kT} across checkpoint
// fractions — the paper's future-work direction of selling at an
// arbitrary time spot.
func SweepFraction(ctx context.Context, cfg Config, fractions []float64) ([]SweepPoint, error) {
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return plan.SweepFraction(ctx, fractions)
}

// SweepDiscount evaluates A_{3T/4} across selling discounts a.
func SweepDiscount(ctx context.Context, cfg Config, discounts []float64) ([]SweepPoint, error) {
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return plan.SweepDiscount(ctx, discounts)
}

// SweepMarketFee evaluates A_{3T/4} across marketplace fees.
func SweepMarketFee(ctx context.Context, cfg Config, fees []float64) ([]SweepPoint, error) {
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return plan.SweepMarketFee(ctx, fees)
}

// RenderSweep renders sweep points as a small table.
func RenderSweep(title, param string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-12s %16s %12s\n", title, param, "mean cost (norm)", "users saving")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-12.3f %16.4f %11.0f%%\n", pt.Value, pt.MeanNormalized, pt.FracSaved*100)
	}
	return b.String()
}
