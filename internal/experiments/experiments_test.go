package experiments

import (
	"context"
	"strings"
	"testing"

	"rimarket/internal/pricing"
	"rimarket/internal/workload"
)

// smallConfig keeps unit tests fast; the shape assertions run on
// TestScaleConfig in integration_test.go.
func smallConfig() Config {
	cfg := TestScaleConfig()
	cfg.PerGroup = 6
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "bad instance", mutate: func(c *Config) { c.Instance = pricing.InstanceType{} }},
		{name: "bad discount", mutate: func(c *Config) { c.SellingDiscount = 2 }},
		{name: "zero PerGroup", mutate: func(c *Config) { c.PerGroup = 0 }},
		{name: "zero Hours", mutate: func(c *Config) { c.Hours = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Instance.Name != "d2.xlarge" {
		t.Errorf("instance = %s, want d2.xlarge", cfg.Instance.Name)
	}
	if cfg.PerGroup != 100 || cfg.Hours != pricing.HoursPerYear {
		t.Errorf("scale = %d users/group, %d hours; want 100, %d", cfg.PerGroup, cfg.Hours, pricing.HoursPerYear)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTestScaleConfigPreservesAlphaTheta(t *testing.T) {
	full := pricing.D2XLarge()
	scaled := TestScaleConfig().Instance
	if diff := scaled.Alpha() - full.Alpha(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("alpha changed: %v vs %v", scaled.Alpha(), full.Alpha())
	}
	if diff := scaled.Theta() - full.Theta(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("theta changed: %v vs %v", scaled.Theta(), full.Theta())
	}
}

func TestRunCohortShape(t *testing.T) {
	cfg := smallConfig()
	res, err := RunCohort(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != cfg.PerGroup*3 {
		t.Fatalf("users = %d, want %d", len(res.Users), cfg.PerGroup*3)
	}
	for _, u := range res.Users {
		if len(u.Costs) != 7 {
			t.Errorf("user %s has %d policies, want 7", u.User, len(u.Costs))
		}
		if u.Normalized[PolicyKeep] != 1 && u.Costs[PolicyKeep] != 0 {
			t.Errorf("user %s: keep normalized = %v", u.User, u.Normalized[PolicyKeep])
		}
		if u.Behavior == "" {
			t.Errorf("user %s has no behavior", u.User)
		}
	}
	grouped := res.ByGroup()
	for _, g := range []workload.Group{workload.GroupStable, workload.GroupModerate, workload.GroupVolatile} {
		if n := len(grouped[g]); n != cfg.PerGroup {
			t.Errorf("%v: %d users, want %d", g, n, cfg.PerGroup)
		}
	}
}

func TestRunCohortDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := RunCohort(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCohort(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Users {
		for name, cost := range a.Users[i].Costs {
			if b.Users[i].Costs[name] != cost {
				t.Fatalf("user %d policy %s: %v != %v", i, name, cost, b.Users[i].Costs[name])
			}
		}
	}
}

func TestRunCohortRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.PerGroup = -1
	if _, err := RunCohort(context.Background(), cfg); err == nil {
		t.Error("bad config accepted")
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(pricing.D2XLarge())
	for _, want := range []string{"d2.xlarge", "No Upfront", "Partial Upfront", "All Upfront", "On-Demand", "$1506", "alpha = 0.249"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2GroupsAndRender(t *testing.T) {
	res, err := RunCohort(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	groups := Fig2(res)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	// Band boundaries must hold (Fig. 2's x-axis structure).
	if g := groups[0]; g.MaxRatio >= 1 {
		t.Errorf("group 1 max ratio = %v, want < 1", g.MaxRatio)
	}
	if g := groups[1]; g.MinRatio < 1 || g.MaxRatio > 3 {
		t.Errorf("group 2 ratios [%v, %v], want within [1, 3]", g.MinRatio, g.MaxRatio)
	}
	if g := groups[2]; g.MinRatio <= 3 {
		t.Errorf("group 3 min ratio = %v, want > 3", g.MinRatio)
	}
	out := RenderFig2(groups)
	if !strings.Contains(out, "Group 1") || !strings.Contains(out, "#") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestFig3SummaryAndRender(t *testing.T) {
	res, err := RunCohort(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig3(res.Users, PolicyKeep); err == nil {
		t.Error("Fig3 accepted a non-online policy")
	}
	for _, p := range SellingPolicies {
		sum, err := Fig3(res.Users, p)
		if err != nil {
			t.Fatal(err)
		}
		if sum.OnlineCDF.Len() != len(res.Users) {
			t.Errorf("%s: CDF over %d users, want %d", p, sum.OnlineCDF.Len(), len(res.Users))
		}
		if sum.FracSaved+sum.FracWorse > 1 {
			t.Errorf("%s: inconsistent fractions %v + %v", p, sum.FracSaved, sum.FracWorse)
		}
		out := RenderFig3(sum)
		if !strings.Contains(out, p) || !strings.Contains(out, "users saving") {
			t.Errorf("render missing content:\n%s", out)
		}
	}
}

func TestFig4AndRender(t *testing.T) {
	res, err := RunCohort(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	groups := Fig4(res)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, fg := range groups {
		for _, p := range SellingPolicies {
			if fg.CDFs[p] == nil || fg.CDFs[p].Len() == 0 {
				t.Errorf("%v %s: empty CDF", fg.Group, p)
			}
			if fg.Means[p] <= 0 {
				t.Errorf("%v %s: mean %v", fg.Group, p, fg.Means[p])
			}
		}
		out := RenderFig4(fg)
		if !strings.Contains(out, "mean normalized cost") {
			t.Errorf("render missing content:\n%s", out)
		}
	}
}

func TestTable2AndTable3(t *testing.T) {
	res, err := RunCohort(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Table2(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table II") || !strings.Contains(out, PolicyA3T4) {
		t.Errorf("Table2 output:\n%s", out)
	}
	u, err := res.MostVolatileUser()
	if err != nil {
		t.Fatal(err)
	}
	if u.Group != workload.GroupVolatile {
		t.Errorf("most volatile user in %v", u.Group)
	}

	rows := Table3(res)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		for _, v := range []float64{row.Group1, row.Group2, row.Group3, row.All} {
			if v <= 0 || v > 1.5 {
				t.Errorf("%s: normalized mean %v out of plausible range", row.Policy, v)
			}
		}
	}
	table := RenderTable3(rows)
	if !strings.Contains(table, "Table III") || !strings.Contains(table, "All users") {
		t.Errorf("RenderTable3 output:\n%s", table)
	}
}

func TestMostVolatileUserEmptyCohort(t *testing.T) {
	r := &CohortResult{}
	if _, err := r.MostVolatileUser(); err == nil {
		t.Error("empty cohort accepted")
	}
}

func TestSweepFraction(t *testing.T) {
	cfg := smallConfig()
	points, err := SweepFraction(context.Background(), cfg, []float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if pt.MeanNormalized <= 0 || pt.MeanNormalized > 1.5 {
			t.Errorf("k=%v: mean %v implausible", pt.Value, pt.MeanNormalized)
		}
	}
	out := RenderSweep("sweep", "k", points)
	if !strings.Contains(out, "mean cost") {
		t.Errorf("render:\n%s", out)
	}
	if _, err := SweepFraction(context.Background(), cfg, []float64{0}); err == nil {
		t.Error("invalid fraction accepted")
	}
}

func TestSweepDiscountMonotoneIncome(t *testing.T) {
	cfg := smallConfig()
	points, err := SweepDiscount(context.Background(), cfg, []float64{0.2, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// A higher selling discount strictly increases sale income per sold
	// instance and enlarges the sell region, so mean normalized cost at
	// a = 0.9 must not exceed the one at a = 0.2.
	if points[1].MeanNormalized > points[0].MeanNormalized+1e-9 {
		t.Errorf("discount 0.9 mean %v > discount 0.2 mean %v",
			points[1].MeanNormalized, points[0].MeanNormalized)
	}
}

func TestSweepMarketFee(t *testing.T) {
	cfg := smallConfig()
	points, err := SweepMarketFee(context.Background(), cfg, []float64{0, 0.12})
	if err != nil {
		t.Fatal(err)
	}
	// A positive fee reduces income, so costs cannot go down.
	if points[1].MeanNormalized < points[0].MeanNormalized-1e-9 {
		t.Errorf("fee 0.12 mean %v < fee 0 mean %v",
			points[1].MeanNormalized, points[0].MeanNormalized)
	}
}

func TestRunCohortParallelismInvariant(t *testing.T) {
	base := smallConfig()
	serial := base
	serial.Parallelism = 1
	parallel := base
	parallel.Parallelism = 8

	a, err := RunCohort(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCohort(context.Background(), parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Users) != len(b.Users) {
		t.Fatalf("user counts differ: %d vs %d", len(a.Users), len(b.Users))
	}
	for i := range a.Users {
		if a.Users[i].User != b.Users[i].User {
			t.Fatalf("user order differs at %d: %s vs %s", i, a.Users[i].User, b.Users[i].User)
		}
		for name, cost := range a.Users[i].Costs {
			if b.Users[i].Costs[name] != cost {
				t.Fatalf("user %s policy %s: %v vs %v", a.Users[i].User, name, cost, b.Users[i].Costs[name])
			}
		}
	}
}

func TestRunTraces(t *testing.T) {
	cfg := smallConfig()
	traces := []workload.Trace{
		{User: "short", Demand: []int{5, 5, 5}},            // zero-padded
		{User: "long", Demand: make([]int, cfg.Hours+100)}, // clipped
		{User: "exact", Demand: make([]int, cfg.Hours)},    // as is
	}
	for i := range traces[1].Demand {
		traces[1].Demand[i] = 1 + i%3
	}
	res, err := RunTraces(context.Background(), cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != 3 {
		t.Fatalf("users = %d", len(res.Users))
	}
	for _, u := range res.Users {
		if len(u.Costs) != 7 {
			t.Errorf("user %s: %d policies", u.User, len(u.Costs))
		}
	}
	if _, err := RunTraces(context.Background(), cfg, nil); err == nil {
		t.Error("empty traces accepted")
	}
	bad := []workload.Trace{{User: "", Demand: []int{1}}}
	if _, err := RunTraces(context.Background(), cfg, bad); err == nil {
		t.Error("invalid trace accepted")
	}
}
