package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"testing"
)

func TestWriteUsersCSV(t *testing.T) {
	res, err := RunCohort(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteUsersCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(res.Users)+1 {
		t.Fatalf("rows = %d, want %d", len(records), len(res.Users)+1)
	}
	header := records[0]
	if header[0] != "user" || len(header) != 5+3*7 {
		t.Errorf("header = %v", header)
	}
	// Keep-Reserved normalized column must be 1 for users with cost.
	normKeepCol := -1
	for i, h := range header {
		if h == "norm:"+PolicyKeep {
			normKeepCol = i
		}
	}
	if normKeepCol < 0 {
		t.Fatal("norm:Keep-Reserved column missing")
	}
	for _, rec := range records[1:] {
		if rec[normKeepCol] != "1" {
			t.Errorf("norm keep = %q, want 1", rec[normKeepCol])
			break
		}
	}
}

func TestWriteJSON(t *testing.T) {
	res, err := RunCohort(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Config struct {
			Instance string `json:"instance"`
			PerGroup int    `json:"per_group"`
		} `json:"config"`
		Users  []map[string]any `json:"users"`
		Table3 []Table3Row      `json:"table3"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Config.Instance != "d2.xlarge" {
		t.Errorf("instance = %q", decoded.Config.Instance)
	}
	if len(decoded.Users) != len(res.Users) {
		t.Errorf("users = %d, want %d", len(decoded.Users), len(res.Users))
	}
	if len(decoded.Table3) != 3 {
		t.Errorf("table3 rows = %d", len(decoded.Table3))
	}
}

func TestExportsRejectEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteUsersCSV(&buf, nil); err == nil {
		t.Error("nil result accepted")
	}
	if err := WriteUsersCSV(&buf, &CohortResult{}); err == nil {
		t.Error("empty result accepted")
	}
	if err := WriteJSON(&buf, &CohortResult{}); err == nil {
		t.Error("empty result accepted")
	}
}

// failWriter errors on every write to exercise the error paths.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errors.New("sink closed")
}

func TestExportsSurfaceWriteErrors(t *testing.T) {
	res, err := RunCohort(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteUsersCSV(failWriter{}, res); err == nil {
		t.Error("csv write error swallowed")
	}
	if err := WriteJSON(failWriter{}, res); err == nil {
		t.Error("json write error swallowed")
	}
}
