package experiments

import (
	"context"
	"fmt"
	"strings"

	"rimarket/internal/core"
)

// ExtensionRow summarizes one selling policy in the future-work
// comparison.
type ExtensionRow struct {
	// Policy names the algorithm.
	Policy string
	// MeanNormalized is the cohort-mean cost normalized to Keep-Reserved.
	MeanNormalized float64
	// FracSaved is the fraction of users saving.
	FracSaved float64
	// WorstIncrease is the largest normalized-cost excess over 1.
	WorstIncrease float64
}

// Extensions evaluates the paper's future-work directions on the
// plan's cohort: one grid cell per candidate policy, all sharing the
// plan's cached reservation plans and Keep-Reserved baseline.
func (p *CohortPlan) Extensions(ctx context.Context) ([]ExtensionRow, error) {
	cfg := p.cfg
	a3, err := core.NewA3T4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	a4, err := core.NewAT4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	multi, err := core.NewPaperMultiThreshold(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	randExp, err := core.NewRandomized(cfg.Instance, cfg.SellingDiscount, core.ExponentialFractions{}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	randUni, err := core.NewRandomized(cfg.Instance, cfg.SellingDiscount,
		core.UniformFractions{Lo: 0.2, Hi: 0.8}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	randPaper, err := core.NewRandomized(cfg.Instance, cfg.SellingDiscount, core.PaperFractions(), cfg.Seed)
	if err != nil {
		return nil, err
	}

	engCfg := p.engineConfig()
	policies := []namedPolicy{
		{name: PolicyA3T4, policy: a3},
		{name: PolicyAT4, policy: a4},
		{name: "Multi{T/4,T/2,3T/4}", policy: multi},
		{name: "A_rand " + randExp.Dist().String(), policy: randExp},
		{name: "A_rand " + randUni.Dist().String(), policy: randUni},
		{name: "A_rand " + randPaper.Dist().String(), policy: randPaper},
	}
	cells := make([]Cell, len(policies))
	for i, np := range policies {
		cells[i] = Cell{Name: np.name, Policy: np.policy, Engine: engCfg}
	}
	grid, err := p.RunGridNamed(ctx, "extensions", cells)
	if err != nil {
		return nil, err
	}

	rows := make([]ExtensionRow, len(policies))
	for i, np := range policies {
		row := ExtensionRow{
			Policy:         np.name,
			MeanNormalized: grid[i].MeanNorm(),
			FracSaved:      grid[i].FracSaved(),
		}
		for _, v := range grid[i].Norm {
			if v-1 > row.WorstIncrease {
				row.WorstIncrease = v - 1
			}
		}
		rows[i] = row
	}
	return rows, nil
}

// Extensions evaluates the paper's future-work directions against its
// best fixed-checkpoint algorithm on the same cohort: the randomized
// algorithm A_{rand} under three fraction distributions, and the
// multi-checkpoint policy that revisits the decision at T/4, T/2 and
// 3T/4.
func Extensions(ctx context.Context, cfg Config) ([]ExtensionRow, error) {
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return plan.Extensions(ctx)
}

// RenderExtensions renders the future-work comparison.
func RenderExtensions(rows []ExtensionRow) string {
	var b strings.Builder
	b.WriteString("Future-work extensions vs the paper's fixed checkpoints\n")
	fmt.Fprintf(&b, "%-26s %16s %12s %14s\n", "policy", "mean cost (norm)", "users saving", "worst increase")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-26s %16.4f %11.0f%% %+13.1f%%\n",
			row.Policy, row.MeanNormalized, row.FracSaved*100, row.WorstIncrease*100)
	}
	return b.String()
}
