package experiments

import (
	"context"
	"fmt"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/simulate"
	"rimarket/internal/trade"
)

// MarketPoint is one buyer-arrival-rate setting of the market-dynamics
// experiment.
type MarketPoint struct {
	// BuyerRate is the mean buyer arrivals per hour.
	BuyerRate float64
	// Stats is the session outcome.
	Stats trade.Stats
}

// sellEvents collects every sell event the plan's runs produce under
// the given selling policy — fanned out over the plan's worker pool
// (or the batch engine when cfg.Batch), with per-user event slices
// concatenated in cohort order so the stream is deterministic at any
// parallelism and identical whichever engine produced it.
func (p *CohortPlan) sellEvents(ctx context.Context, policy simulate.SellingPolicy) ([]trade.SellEvent, error) {
	perUser, err := p.sellEventsPerUser(ctx, policy)
	if err != nil {
		return nil, err
	}
	var events []trade.SellEvent
	for _, evs := range perUser {
		events = append(events, evs...)
	}
	return events, nil
}

// sellEventsPerUser is sellEvents before concatenation: element i holds
// user i's sell events in decision order.
func (p *CohortPlan) sellEventsPerUser(ctx context.Context, policy simulate.SellingPolicy) ([][]trade.SellEvent, error) {
	cfg := p.cfg
	engCfg := simulate.Config{Instance: cfg.Instance, SellingDiscount: cfg.SellingDiscount}

	perUser := make([][]trade.SellEvent, p.Len())
	if cfg.Batch {
		// The batch engine records sales in reservation order — the same
		// order the per-user path walks run.Instances in — so the event
		// stream is identical whichever engine produced it.
		totals, err := simulateRunBatchTotals(ctx, p.batchUsers(), engCfg, policy,
			simulate.BatchOptions{Parallelism: cfg.Parallelism, RecordSales: true})
		if err != nil {
			return nil, p.mapBatchErr(err, "")
		}
		for i, tot := range totals {
			for _, s := range tot.Sales {
				perUser[i] = append(perUser[i], trade.SellEvent{
					Hour:           s.SoldAt,
					Seller:         p.users[i].Trace.User,
					Instance:       cfg.Instance,
					RemainingHours: s.Start + cfg.Instance.PeriodHours - s.SoldAt,
				})
			}
		}
	} else {
		err := p.ForEachUser(ctx, func(i int, u PlannedUser) error {
			run, err := simulateRun(u.Trace.Demand, u.NewRes, engCfg, policy)
			if err != nil {
				return fmt.Errorf("experiments: user %s: %w", u.Trace.User, err)
			}
			for _, inst := range run.Instances {
				if inst.SoldAt < 0 {
					continue
				}
				perUser[i] = append(perUser[i], trade.SellEvent{
					Hour:           inst.SoldAt,
					Seller:         u.Trace.User,
					Instance:       cfg.Instance,
					RemainingHours: inst.Start + cfg.Instance.PeriodHours - inst.SoldAt,
				})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return perUser, nil
}

// MarketSession collects every sell event the plan's A_{3T/4} runs
// produce and replays them through live marketplace sessions at the
// given buyer arrival rates.
func (p *CohortPlan) MarketSession(ctx context.Context, buyerRates []float64) ([]MarketPoint, error) {
	cfg := p.cfg
	policy, err := core.NewA3T4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	events, err := p.sellEvents(ctx, policy)
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: the cohort produced no sell events")
	}

	points := make([]MarketPoint, 0, len(buyerRates))
	for _, rate := range buyerRates {
		stats, err := trade.Run(events, trade.Config{
			ListingDiscount: cfg.SellingDiscount,
			MarketFee:       0.12,
			BuyerRate:       rate,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, MarketPoint{BuyerRate: rate, Stats: stats})
	}
	return points, nil
}

// MarketSession quantifies the paper's instant-sale assumption: Eq. (1)
// books income the moment the algorithm decides, while a real
// marketplace needs a buyer.
func MarketSession(ctx context.Context, cfg Config, buyerRates []float64) ([]MarketPoint, error) {
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return plan.MarketSession(ctx, buyerRates)
}

// RenderMarket renders the market-dynamics experiment.
func RenderMarket(points []MarketPoint) string {
	var b strings.Builder
	b.WriteString("Market dynamics — does Eq. (1)'s instant-sale income materialize?\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %14s %16s\n",
		"buyers/hour", "listed", "sold", "expired", "mean wait (h)", "realized income")
	for _, pt := range points {
		s := pt.Stats
		fmt.Fprintf(&b, "%-12.2f %8d %8d %8d %14.1f %15.1f%%\n",
			pt.BuyerRate, s.Listed, s.Sold, s.Expired, s.MeanHoursToSale, s.RealizedFraction*100)
	}
	return b.String()
}
