package experiments

import (
	"fmt"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/trade"
	"rimarket/internal/workload"
)

// MarketPoint is one buyer-arrival-rate setting of the market-dynamics
// experiment.
type MarketPoint struct {
	// BuyerRate is the mean buyer arrivals per hour.
	BuyerRate float64
	// Stats is the session outcome.
	Stats trade.Stats
}

// MarketSession collects every sell event the cohort's A_{3T/4} runs
// produce and replays them through live marketplace sessions at the
// given buyer arrival rates. It quantifies the paper's instant-sale
// assumption: Eq. (1) books income the moment the algorithm decides,
// while a real marketplace needs a buyer.
func MarketSession(cfg Config, buyerRates []float64) ([]MarketPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	policy, err := core.NewA3T4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	traces, err := workload.NewCohort(workload.CohortConfig{
		PerGroup: cfg.PerGroup,
		Hours:    cfg.Hours,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	engCfg := simulate.Config{Instance: cfg.Instance, SellingDiscount: cfg.SellingDiscount}

	var events []trade.SellEvent
	for i, tr := range traces {
		planner, err := behaviorPolicy(cfg, Behaviors[i%len(Behaviors)], int64(i))
		if err != nil {
			return nil, err
		}
		newRes, err := purchasing.PlanReservations(tr.Demand, cfg.Instance.PeriodHours, planner)
		if err != nil {
			return nil, err
		}
		run, err := simulate.Run(tr.Demand, newRes, engCfg, policy)
		if err != nil {
			return nil, err
		}
		for _, inst := range run.Instances {
			if inst.SoldAt < 0 {
				continue
			}
			events = append(events, trade.SellEvent{
				Hour:           inst.SoldAt,
				Seller:         tr.User,
				Instance:       cfg.Instance,
				RemainingHours: inst.Start + cfg.Instance.PeriodHours - inst.SoldAt,
			})
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: the cohort produced no sell events")
	}

	points := make([]MarketPoint, 0, len(buyerRates))
	for _, rate := range buyerRates {
		stats, err := trade.Run(events, trade.Config{
			ListingDiscount: cfg.SellingDiscount,
			MarketFee:       0.12,
			BuyerRate:       rate,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, MarketPoint{BuyerRate: rate, Stats: stats})
	}
	return points, nil
}

// RenderMarket renders the market-dynamics experiment.
func RenderMarket(points []MarketPoint) string {
	var b strings.Builder
	b.WriteString("Market dynamics — does Eq. (1)'s instant-sale income materialize?\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %14s %16s\n",
		"buyers/hour", "listed", "sold", "expired", "mean wait (h)", "realized income")
	for _, pt := range points {
		s := pt.Stats
		fmt.Fprintf(&b, "%-12.2f %8d %8d %8d %14.1f %15.1f%%\n",
			pt.BuyerRate, s.Listed, s.Sold, s.Expired, s.MeanHoursToSale, s.RealizedFraction*100)
	}
	return b.String()
}
