package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// recommendConfig is the small cohort the recommendation tests run
// on: 3 groups x 4 users keeps the full (policy, user) replay fan-out
// fast while still covering every behavior and group.
func recommendConfig() Config {
	cfg := TestScaleConfig()
	cfg.PerGroup = 4
	return cfg
}

func buildDecisions(t *testing.T, cfg Config) *DecisionSet {
	t.Helper()
	plan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := plan.Decisions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestDecisionsMatchesCohort pins the bit-identity contract at its
// root: the decision tables must agree exactly — costs and per-user
// sale counts — with the offline cohort pipeline they are derived
// from.
func TestDecisionsMatchesCohort(t *testing.T) {
	cfg := recommendConfig()
	set := buildDecisions(t, cfg)
	ref, err := RunCohort(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := set.Users(), len(ref.Users); got != want {
		t.Fatalf("Users() = %d, want %d", got, want)
	}
	if got, want := set.Horizon(), cfg.Hours; got != want {
		t.Fatalf("Horizon() = %d, want %d", got, want)
	}
	for ui := 0; ui < set.Users(); ui++ {
		ur := ref.Users[ui]
		if set.UserName(ui) != ur.User {
			t.Fatalf("user %d name = %q, want %q", ui, set.UserName(ui), ur.User)
		}
		if set.Reserved(ui) != ur.Reserved {
			t.Fatalf("user %s reserved = %d, want %d", ur.User, set.Reserved(ui), ur.Reserved)
		}
		for _, policy := range set.Policies() {
			wantCost, ok := ur.Costs[policy]
			if !ok {
				t.Fatalf("cohort result has no cost for policy %q", policy)
			}
			sold := 0
			for j := 0; j < set.Reserved(ui); j++ {
				rec, err := set.Evaluate(Query{User: ur.User, Policy: policy, Instance: j, Hour: 0})
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", policy, ur.User, j, err)
				}
				if rec.PolicyCost != wantCost {
					t.Errorf("%s/%s: PolicyCost = %v, want the cohort pipeline's %v", policy, ur.User, rec.PolicyCost, wantCost)
				}
				if rec.KeepCost != ur.Costs[PolicyKeep] {
					t.Errorf("%s/%s: KeepCost = %v, want %v", policy, ur.User, rec.KeepCost, ur.Costs[PolicyKeep])
				}
				if rec.SoldAt >= 0 {
					sold++
				}
			}
			if sold != ur.Sold[policy] {
				t.Errorf("%s/%s: %d instances with a sale hour, cohort pipeline sold %d", policy, ur.User, sold, ur.Sold[policy])
			}
		}
	}
}

// TestEvaluateActionTimeline sweeps every hour for a sample of
// (policy, user, instance) triples and asserts the action sequence is
// internally coherent: pending before the reservation starts, sell
// exactly at the sale hour, sold after it, expired past expiry, and
// hold always naming a later checkpoint that stays stable until
// reached.
func TestEvaluateActionTimeline(t *testing.T) {
	// Stretch the horizon past the reservation period so early
	// reservations expire inside the queryable range — otherwise
	// ActionExpired is unreachable (expiry = start + period >= horizon).
	cfg := recommendConfig()
	cfg.Hours = cfg.Instance.PeriodHours * 3 / 2
	set := buildDecisions(t, cfg)
	sawSell, sawHold, sawExpired, sawPending := false, false, false, false
	for ui := 0; ui < set.Users(); ui++ {
		user := set.UserName(ui)
		for _, policy := range set.Policies() {
			for j := 0; j < set.Reserved(ui); j++ {
				prevNext := -1
				for h := 0; h < set.Horizon(); h++ {
					rec, err := set.Evaluate(Query{User: user, Policy: policy, Instance: j, Hour: h})
					if err != nil {
						t.Fatalf("%s/%s/%d@%d: %v", policy, user, j, h, err)
					}
					switch {
					case h < rec.Start:
						if rec.Action != ActionPending {
							t.Fatalf("%s/%s/%d@%d: action %q before start %d, want pending", policy, user, j, h, rec.Action, rec.Start)
						}
						sawPending = true
					case rec.SoldAt >= 0 && h == rec.SoldAt:
						if rec.Action != ActionSell {
							t.Fatalf("%s/%s/%d@%d: action %q at the sale hour, want sell", policy, user, j, h, rec.Action)
						}
						sawSell = true
					case rec.SoldAt >= 0 && h > rec.SoldAt:
						if rec.Action != ActionSold {
							t.Fatalf("%s/%s/%d@%d: action %q after sale hour %d, want sold", policy, user, j, h, rec.Action, rec.SoldAt)
						}
					case h >= rec.ExpiresAt:
						if rec.Action != ActionExpired {
							t.Fatalf("%s/%s/%d@%d: action %q past expiry %d, want expired", policy, user, j, h, rec.Action, rec.ExpiresAt)
						}
						sawExpired = true
					case rec.Action == ActionHold:
						if rec.NextCheckpoint <= h || rec.NextCheckpoint >= set.Horizon() {
							t.Fatalf("%s/%s/%d@%d: hold with NextCheckpoint %d outside (%d, %d)", policy, user, j, h, rec.NextCheckpoint, h, set.Horizon())
						}
						if prevNext > h && rec.NextCheckpoint != prevNext {
							t.Fatalf("%s/%s/%d@%d: NextCheckpoint moved from %d to %d before being reached", policy, user, j, h, prevNext, rec.NextCheckpoint)
						}
						prevNext = rec.NextCheckpoint
						sawHold = true
					case rec.Action == ActionKeep:
						if rec.NextCheckpoint != -1 {
							t.Fatalf("%s/%s/%d@%d: keep with NextCheckpoint %d, want -1", policy, user, j, h, rec.NextCheckpoint)
						}
					default:
						t.Fatalf("%s/%s/%d@%d: unexpected action %q", policy, user, j, h, rec.Action)
					}
				}
			}
		}
	}
	for name, saw := range map[string]bool{"sell": sawSell, "hold": sawHold, "expired": sawExpired, "pending": sawPending} {
		if !saw {
			t.Errorf("timeline sweep never produced action %q; the fixture cohort is too small to exercise it", name)
		}
	}
}

// TestEvaluateErrors pins the sentinel error per lookup failure — the
// contract rid's status-code mapping stands on.
func TestEvaluateErrors(t *testing.T) {
	set := buildDecisions(t, recommendConfig())
	user := set.UserName(0)
	policy := set.Policies()[0]
	for _, tc := range []struct {
		name string
		q    Query
		want error
	}{
		{"unknown user", Query{User: "nobody", Policy: policy, Hour: 0}, ErrUnknownUser},
		{"unknown policy", Query{User: user, Policy: "Sell-Everything", Hour: 0}, ErrUnknownPolicy},
		{"negative hour", Query{User: user, Policy: policy, Hour: -1}, ErrHourOutOfRange},
		{"hour at horizon", Query{User: user, Policy: policy, Hour: set.Horizon()}, ErrHourOutOfRange},
		{"negative instance", Query{User: user, Policy: policy, Instance: -1, Hour: 0}, ErrUnknownInstance},
		{"instance out of range", Query{User: user, Policy: policy, Instance: set.Reserved(0), Hour: 0}, ErrUnknownInstance},
	} {
		if _, err := set.Evaluate(tc.q); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecisionsDeterministicAcrossParallelism builds the set serially
// and with a worker pool and requires bit-identical marshaled answers
// — the property that lets a daemon built at any -parallelism serve
// the offline pipeline's exact bytes.
func TestDecisionsDeterministicAcrossParallelism(t *testing.T) {
	cfgA := recommendConfig()
	cfgA.Parallelism = 1
	cfgB := recommendConfig()
	cfgB.Parallelism = 4
	a := buildDecisions(t, cfgA)
	b := buildDecisions(t, cfgB)
	hours := []int{0, 1, a.Horizon() / 2, a.Horizon() - 1}
	for ui := 0; ui < a.Users(); ui++ {
		user := a.UserName(ui)
		for _, policy := range a.Policies() {
			for j := 0; j < a.Reserved(ui); j++ {
				for _, h := range hours {
					q := Query{User: user, Policy: policy, Instance: j, Hour: h}
					ra, errA := a.Evaluate(q)
					rb, errB := b.Evaluate(q)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("%+v: error mismatch: %v vs %v", q, errA, errB)
					}
					if errA != nil {
						continue
					}
					ba, _ := json.Marshal(ra)
					bb, _ := json.Marshal(rb)
					if string(ba) != string(bb) {
						t.Fatalf("%+v: parallel build diverges:\n  p=1: %s\n  p=4: %s", q, ba, bb)
					}
				}
			}
		}
	}
}

// TestDecisionsCancel pins that a cancelled context aborts the build.
func TestDecisionsCancel(t *testing.T) {
	plan, err := NewCohortPlan(context.Background(), recommendConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.Decisions(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Decisions on cancelled ctx = %v, want context.Canceled", err)
	}
}
