package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// exportPolicies is the column order for per-user exports: every
// policy the cohort runs, benchmarks included.
var exportPolicies = []string{
	PolicyKeep, PolicyA3T4, PolicyAT2, PolicyAT4,
	PolicySell3T4, PolicySellT2, PolicySellT4,
}

// WriteUsersCSV exports one row per user with absolute and normalized
// costs for every policy — the raw data behind Figs. 3-4 and
// Tables II-III, ready for external plotting.
func WriteUsersCSV(w io.Writer, r *CohortResult) error {
	if r == nil || len(r.Users) == 0 {
		return fmt.Errorf("experiments: nothing to export")
	}
	cw := csv.NewWriter(w)
	header := []string{"user", "group", "fluctuation", "behavior", "reserved"}
	for _, p := range exportPolicies {
		header = append(header, "cost:"+p, "norm:"+p, "sold:"+p)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, u := range r.Users {
		rec := []string{
			u.User,
			strconv.Itoa(int(u.Group)),
			strconv.FormatFloat(u.Fluctuation, 'g', 6, 64),
			u.Behavior,
			strconv.Itoa(u.Reserved),
		}
		for _, p := range exportPolicies {
			rec = append(rec,
				strconv.FormatFloat(u.Costs[p], 'g', 10, 64),
				strconv.FormatFloat(u.Normalized[p], 'g', 10, 64),
				strconv.Itoa(u.Sold[p]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	return nil
}

// jsonExport is the stable JSON shape of a cohort result.
type jsonExport struct {
	Config jsonConfig   `json:"config"`
	Users  []UserResult `json:"users"`
	Table3 []Table3Row  `json:"table3"`
}

// jsonConfig avoids serializing the full price card struct layout as
// API; only the experiment-relevant parameters are exported.
type jsonConfig struct {
	Instance        string  `json:"instance"`
	PeriodHours     int     `json:"period_hours"`
	Upfront         float64 `json:"upfront"`
	OnDemandHourly  float64 `json:"on_demand_hourly"`
	ReservedHourly  float64 `json:"reserved_hourly"`
	SellingDiscount float64 `json:"selling_discount"`
	MarketFee       float64 `json:"market_fee"`
	PerGroup        int     `json:"per_group"`
	Hours           int     `json:"hours"`
	Seed            int64   `json:"seed"`
}

// WriteJSON exports the cohort result (config, per-user outcomes and
// the Table III aggregation) as indented JSON.
func WriteJSON(w io.Writer, r *CohortResult) error {
	if r == nil || len(r.Users) == 0 {
		return fmt.Errorf("experiments: nothing to export")
	}
	out := jsonExport{
		Config: jsonConfig{
			Instance:        r.Config.Instance.Name,
			PeriodHours:     r.Config.Instance.PeriodHours,
			Upfront:         r.Config.Instance.Upfront,
			OnDemandHourly:  r.Config.Instance.OnDemandHourly,
			ReservedHourly:  r.Config.Instance.ReservedHourly,
			SellingDiscount: r.Config.SellingDiscount,
			MarketFee:       r.Config.MarketFee,
			PerGroup:        r.Config.PerGroup,
			Hours:           r.Config.Hours,
			Seed:            r.Config.Seed,
		},
		Users:  r.Users,
		Table3: Table3(r),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("experiments: json: %w", err)
	}
	return nil
}
