package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"rimarket/internal/core"
	"rimarket/internal/pricing"
	"rimarket/internal/simulate"
)

func withParallelism(cfg Config, par int) Config {
	cfg.Parallelism = par
	return cfg
}

// parallelisms are the worker counts every determinism property is
// checked at; 1 is the serial reference.
func parallelisms() []int {
	ps := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 {
		ps = append(ps, n)
	}
	return ps
}

// TestDriversParallelismInvariant asserts the ported drivers return
// exactly equal results at any worker count. Run under -race in CI,
// this is also the suite that proves the fan-out has no data races.
func TestDriversParallelismInvariant(t *testing.T) {
	drivers := []struct {
		name string
		run  func(Config) (any, error)
	}{
		{name: "RunCohort", run: func(c Config) (any, error) {
			res, err := RunCohort(context.Background(), c)
			if err != nil {
				return nil, err
			}
			return res.Users, nil // Config echoes Parallelism; compare outcomes only
		}},
		{name: "SweepFraction", run: func(c Config) (any, error) {
			return SweepFraction(context.Background(), c, []float64{0.25, 0.5, 0.75})
		}},
		{name: "SweepDiscount", run: func(c Config) (any, error) {
			return SweepDiscount(context.Background(), c, []float64{0.2, 0.8})
		}},
		{name: "SweepMarketFee", run: func(c Config) (any, error) {
			return SweepMarketFee(context.Background(), c, []float64{0, 0.12})
		}},
		{name: "Sensitivity", run: func(c Config) (any, error) {
			return Sensitivity(context.Background(), c, []float64{0.2, 0.8}, []float64{0.25, 0.75})
		}},
		{name: "Extensions", run: func(c Config) (any, error) {
			return Extensions(context.Background(), c)
		}},
		{name: "HourResellComparison", run: func(c Config) (any, error) {
			return HourResellComparison(context.Background(), c, []float64{0.25, 0.75})
		}},
		{name: "MarketSession", run: func(c Config) (any, error) {
			return MarketSession(context.Background(), c, []float64{0.2, 2})
		}},
	}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			want, err := d.run(withParallelism(smallConfig(), 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range parallelisms()[1:] {
				got, err := d.run(withParallelism(smallConfig(), par))
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("parallelism %d: results differ from serial run:\nserial: %+v\ngot:    %+v", par, want, got)
				}
			}
		})
	}
}

// TestRunIndexedFirstErrorDeterministic pins the executor's error
// contract: the lowest-index failing job wins at any worker count, and
// jobs below that index always run.
func TestRunIndexedFirstErrorDeterministic(t *testing.T) {
	const n = 64
	failAt := map[int]bool{7: true, 3: true, 40: true}
	for _, workers := range []int{1, 2, 8, n} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ran := make([]atomic.Bool, n)
			err := runIndexed(context.Background(), workers, n, func(i int) error {
				ran[i].Store(true)
				if failAt[i] {
					return fmt.Errorf("job %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "job 3 failed" {
				t.Fatalf("err = %v, want job 3's", err)
			}
			for i := 0; i < 3; i++ {
				if !ran[i].Load() {
					t.Errorf("job %d below the failing index never ran", i)
				}
			}
		})
	}
}

func TestRunIndexedAllJobsRunOnSuccess(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		const n = 41
		ran := make([]atomic.Bool, n)
		if err := runIndexed(context.Background(), workers, n, func(i int) error {
			ran[i].Store(true)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: job %d never ran", workers, i)
			}
		}
	}
	if err := runIndexed(context.Background(), 4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero jobs: %v", err)
	}
}

// TestGridFirstErrorDeterministicAcrossWorkers injects engine failures
// for two users and asserts the same (lowest-index) user surfaces in
// the error at every worker count.
func TestGridFirstErrorDeterministicAcrossWorkers(t *testing.T) {
	plan, err := NewCohortPlan(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fail := map[*int]string{
		&plan.users[3].Trace.Demand[0]: plan.users[3].Trace.User,
		&plan.users[7].Trace.Demand[0]: plan.users[7].Trace.User,
	}
	orig := simulateRun
	simulateRun = func(demand, newRes []int, cfg simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
		if _, bad := fail[&demand[0]]; bad {
			return simulate.Result{}, errors.New("injected engine failure")
		}
		return orig(demand, newRes, cfg, pol)
	}
	defer func() { simulateRun = orig }()

	policy, err := core.NewA3T4(plan.cfg.Instance, plan.cfg.SellingDiscount)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, par := range parallelisms() {
		plan.cfg.Parallelism = par
		plan.keeps = map[pricing.InstanceType][]KeepStat{} // reset cache so baselines re-run under the hook
		_, err := plan.RunGrid(context.Background(), []Cell{{Name: "probe", Policy: policy, Engine: plan.engineConfig()}})
		if err == nil {
			t.Fatalf("parallelism %d: injected failure not surfaced", par)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("parallelism %d: error %q differs from serial %q", par, err, want)
		}
	}
	if wantUser := plan.users[3].Trace.User; want == "" || !strings.Contains(want, wantUser) {
		t.Fatalf("error %q does not name lowest failing user %s", want, wantUser)
	}
}

// TestSweepKeepBaselineHoisted is the regression test for the latent
// per-cell waste in the old sweepOver: the Keep-Reserved baseline does
// not depend on the swept value, so a sweep over V values must cost
// exactly users*(V+1) engine runs — V cells plus one hoisted baseline —
// not users*2V.
func TestSweepKeepBaselineHoisted(t *testing.T) {
	var calls atomic.Int64
	orig := simulateRun
	simulateRun = func(demand, newRes []int, cfg simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
		calls.Add(1)
		return orig(demand, newRes, cfg, pol)
	}
	defer func() { simulateRun = orig }()

	cfg := smallConfig()
	values := []float64{0.25, 0.5, 0.75}
	if _, err := SweepFraction(context.Background(), cfg, values); err != nil {
		t.Fatal(err)
	}
	users := 3 * cfg.PerGroup
	want := int64(users * (len(values) + 1))
	if got := calls.Load(); got != want {
		t.Errorf("sweep over %d values cost %d engine runs, want %d (baseline hoisted out of the cell loop)",
			len(values), got, want)
	}
}

// TestSensitivityRunsOneBaselinePerCard extends the hoist guarantee to
// the 2D grid: a full a-by-k grid shares one baseline because the
// Keep-Reserved cost only depends on the price card.
func TestSensitivityRunsOneBaselinePerCard(t *testing.T) {
	var calls atomic.Int64
	orig := simulateRun
	simulateRun = func(demand, newRes []int, cfg simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
		calls.Add(1)
		return orig(demand, newRes, cfg, pol)
	}
	defer func() { simulateRun = orig }()

	cfg := smallConfig()
	discounts := []float64{0.2, 0.5, 0.8}
	fractions := []float64{0.25, 0.75}
	if _, err := Sensitivity(context.Background(), cfg, discounts, fractions); err != nil {
		t.Fatal(err)
	}
	users := 3 * cfg.PerGroup
	want := int64(users * (len(discounts)*len(fractions) + 1))
	if got := calls.Load(); got != want {
		t.Errorf("grid cost %d engine runs, want %d", got, want)
	}
}

// TestKeepBaselineIndependentOfSellingParams pins the invariant the
// KeepStats cache key relies on: Keep-Reserved never sells, so its
// cost and idle hours cannot depend on the selling discount or the
// market fee.
func TestKeepBaselineIndependentOfSellingParams(t *testing.T) {
	cfg := smallConfig()
	plan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := plan.users[0]
	configs := []simulate.Config{
		{Instance: cfg.Instance, SellingDiscount: 0.2},
		{Instance: cfg.Instance, SellingDiscount: 0.9, MarketFee: 0.12},
	}
	var ref simulate.Result
	for i, ec := range configs {
		run, err := simulate.Run(u.Trace.Demand, u.NewRes, ec, core.KeepReserved{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = run
			continue
		}
		if run.Cost.Total() != ref.Cost.Total() {
			t.Errorf("keep cost varies with selling params: %v vs %v", run.Cost.Total(), ref.Cost.Total())
		}
	}
}

// TestPlanReuseMatchesFreshRuns asserts a shared plan returns the same
// results as the one-shot drivers (the cache is an optimization, not a
// behavior change).
func TestPlanReuseMatchesFreshRuns(t *testing.T) {
	cfg := smallConfig()
	plan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotSweep, err := plan.SweepFraction(context.Background(), []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	wantSweep, err := SweepFraction(context.Background(), cfg, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSweep, wantSweep) {
		t.Errorf("plan sweep %+v != fresh sweep %+v", gotSweep, wantSweep)
	}
	gotGrid, err := plan.Sensitivity(context.Background(), []float64{0.4, 0.8}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	wantGrid, err := Sensitivity(context.Background(), cfg, []float64{0.4, 0.8}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotGrid, wantGrid) {
		t.Errorf("plan grid %+v != fresh grid %+v", gotGrid, wantGrid)
	}
	res, err := plan.Cohort(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCohort(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Users, want.Users) {
		t.Error("plan cohort differs from RunCohort")
	}
}

// TestRunGridValidation covers the executor's edge cases.
func TestRunGridValidation(t *testing.T) {
	plan, err := NewCohortPlan(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RunGrid(context.Background(), nil); err == nil {
		t.Error("empty cell list accepted")
	}
	if _, err := plan.RunGrid(context.Background(), []Cell{{Name: "nil policy", Engine: plan.engineConfig()}}); err == nil {
		t.Error("nil policy accepted")
	}
	if plan.Len() != 3*plan.Config().PerGroup {
		t.Errorf("Len = %d", plan.Len())
	}
	if len(plan.Users()) != plan.Len() {
		t.Errorf("Users() length %d != Len %d", len(plan.Users()), plan.Len())
	}
}
