package experiments

// Benchmarks for the sweep/grid hot path introduced with CohortPlan:
// the sensitivity grid and the ablation sweeps at the worker counts
// the -parallelism flag exposes, plus cached-plan variants that
// measure the marginal cost of a grid once the cohort, reservation
// plans and Keep-Reserved baselines are hoisted. Run with
//
//	go test ./internal/experiments -bench Sensitivity -benchmem
//
// and compare workers=1 (the serial seed path) against workers=4.

import (
	"context"
	"fmt"
	"testing"

	"rimarket/internal/pricing"
)

// benchDiscounts/benchFractions are riexp's sensitivity defaults.
var (
	benchDiscounts = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	benchFractions = []float64{0.125, 0.25, 0.5, 0.75, 0.875}
	benchSweepKs   = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875}
)

// BenchmarkSensitivityGrid measures the full driver — cohort
// synthesis, planning, baselines and the 25-cell grid — at increasing
// worker counts on the test-scale config.
func BenchmarkSensitivityGrid(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Sensitivity(context.Background(), cfg, benchDiscounts, benchFractions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSensitivityGridCachedPlan measures only the per-grid cost
// on a shared plan: planning and baselines are cached, so each
// iteration pays for the 25 cells alone.
func BenchmarkSensitivityGridCachedPlan(b *testing.B) {
	for _, workers := range []int{1, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		plan, err := NewCohortPlan(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.KeepStats(context.Background(), plan.engineConfig()); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Sensitivity(context.Background(), benchDiscounts, benchFractions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepFraction measures the sweep-k driver end to end.
func BenchmarkSweepFraction(b *testing.B) {
	for _, workers := range []int{1, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SweepFraction(context.Background(), cfg, benchSweepKs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepFractionCachedPlan isolates the per-sweep marginal
// cost on a shared plan.
func BenchmarkSweepFractionCachedPlan(b *testing.B) {
	cfg := TestScaleConfig()
	cfg.Parallelism = 4
	plan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plan.KeepStats(context.Background(), plan.engineConfig()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.SweepFraction(context.Background(), benchSweepKs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeepStatsCachedPlan isolates the engine inside the grid
// substrate: on a cached CohortPlan, KeepStats is a pure fan-out of
// simulate.Run over the cohort, so its time and allocation profile is
// the engine's — the cost every additional grid cell pays. The cache
// is cleared each iteration by using a fresh engine config edge: we
// rebuild the plan outside the timer and benchmark one full cohort of
// engine runs per iteration.
func BenchmarkKeepStatsCachedPlan(b *testing.B) {
	cfg := TestScaleConfig()
	cfg.Parallelism = 1
	plan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	engCfg := plan.engineConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.mu.Lock()
		plan.keeps = make(map[pricing.InstanceType][]KeepStat)
		plan.mu.Unlock()
		if _, err := plan.KeepStats(context.Background(), engCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCohortPlan measures the substrate every driver now shares:
// cohort synthesis plus reservation planning.
func BenchmarkCohortPlan(b *testing.B) {
	for _, workers := range []int{1, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewCohortPlan(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
