package experiments

// Benchmarks for the sweep/grid hot path introduced with CohortPlan:
// the sensitivity grid and the ablation sweeps at the worker counts
// the -parallelism flag exposes, plus cached-plan variants that
// measure the marginal cost of a grid once the cohort, reservation
// plans and Keep-Reserved baselines are hoisted. Run with
//
//	go test ./internal/experiments -bench Sensitivity -benchmem
//
// and compare workers=1 (the serial seed path) against workers=4.

import (
	"fmt"
	"testing"
)

// benchDiscounts/benchFractions are riexp's sensitivity defaults.
var (
	benchDiscounts = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	benchFractions = []float64{0.125, 0.25, 0.5, 0.75, 0.875}
	benchSweepKs   = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875}
)

// BenchmarkSensitivityGrid measures the full driver — cohort
// synthesis, planning, baselines and the 25-cell grid — at increasing
// worker counts on the test-scale config.
func BenchmarkSensitivityGrid(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Sensitivity(cfg, benchDiscounts, benchFractions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSensitivityGridCachedPlan measures only the per-grid cost
// on a shared plan: planning and baselines are cached, so each
// iteration pays for the 25 cells alone.
func BenchmarkSensitivityGridCachedPlan(b *testing.B) {
	for _, workers := range []int{1, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		plan, err := NewCohortPlan(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.KeepStats(plan.engineConfig()); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Sensitivity(benchDiscounts, benchFractions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepFraction measures the sweep-k driver end to end.
func BenchmarkSweepFraction(b *testing.B) {
	for _, workers := range []int{1, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SweepFraction(cfg, benchSweepKs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepFractionCachedPlan isolates the per-sweep marginal
// cost on a shared plan.
func BenchmarkSweepFractionCachedPlan(b *testing.B) {
	cfg := TestScaleConfig()
	cfg.Parallelism = 4
	plan, err := NewCohortPlan(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plan.KeepStats(plan.engineConfig()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.SweepFraction(benchSweepKs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCohortPlan measures the substrate every driver now shares:
// cohort synthesis plus reservation planning.
func BenchmarkCohortPlan(b *testing.B) {
	for _, workers := range []int{1, 4} {
		cfg := TestScaleConfig()
		cfg.Parallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewCohortPlan(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
