package experiments

// Cancellation and panic-containment tests for the worker pool and the
// grid on top of it. Run under -race in CI, these pin the failure
// model: a cancelled run drains in-flight jobs and reports
// context.Canceled with only fully-completed cells; a panicking job
// becomes a structured *JobPanicError instead of killing the process;
// and neither path leaks goroutines.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rimarket/internal/core"
	"rimarket/internal/simulate"
)

// settleGoroutines waits for the goroutine count to drop back to the
// baseline, tolerating runtime bookkeeping goroutines. No new deps:
// plain snapshot with retry-settle.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunIndexedPanicCaptured(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			err := runIndexed(context.Background(), workers, 16, func(i int) error {
				if i == 5 {
					panic("boom")
				}
				return nil
			})
			var pe *JobPanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *JobPanicError", err)
			}
			if pe.Index != 5 || pe.Value != "boom" {
				t.Errorf("panic error = {Index: %d, Value: %v}, want {5, boom}", pe.Index, pe.Value)
			}
			if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
				t.Errorf("panic stack not captured: %q", pe.Stack)
			}
			if !strings.Contains(pe.Error(), "job 5 panicked") {
				t.Errorf("Error() = %q", pe.Error())
			}
		})
	}
}

// TestRunIndexedPanicLowestIndexWins pins that panics participate in
// the lowest-index-error rule exactly like returned errors, at any
// worker count.
func TestRunIndexedPanicLowestIndexWins(t *testing.T) {
	cases := []struct {
		name      string
		panicAt   int
		errAt     int
		wantPanic bool
	}{
		{name: "error below panic", panicAt: 9, errAt: 4, wantPanic: false},
		{name: "panic below error", panicAt: 2, errAt: 11, wantPanic: true},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 3, 16} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				err := runIndexed(context.Background(), workers, 16, func(i int) error {
					switch i {
					case tc.panicAt:
						panic("pool panic")
					case tc.errAt:
						return errors.New("pool error")
					}
					return nil
				})
				var pe *JobPanicError
				if got := errors.As(err, &pe); got != tc.wantPanic {
					t.Fatalf("errors.As(JobPanicError) = %v (err %v), want %v", got, err, tc.wantPanic)
				}
				if tc.wantPanic && pe.Index != tc.panicAt {
					t.Errorf("panic index = %d, want %d", pe.Index, tc.panicAt)
				}
			})
		}
	}
}

// TestRunIndexedPanicKeepsResultsDeterministic asserts that with a
// panicking job in the pool, every other job's output is still written
// exactly once, at any worker count.
func TestRunIndexedPanicKeepsResultsDeterministic(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 4, n} {
		out := make([]int, n)
		err := runIndexed(context.Background(), workers, n, func(i int) error {
			if i == n-1 {
				panic(i)
			}
			out[i] = i * i
			return nil
		})
		var pe *JobPanicError
		if !errors.As(err, &pe) || pe.Index != n-1 {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := 0; i < n-1; i++ {
			if out[i] != i*i {
				t.Fatalf("workers=%d: job %d output %d, want %d", workers, i, out[i], i*i)
			}
		}
	}
}

func TestRunIndexedPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := runIndexed(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", ran.Load())
	}
}

// TestRunIndexedCancelDrainsInFlight cancels while jobs are mid-run
// and asserts the pool waits for them (drain, never interrupt) and
// that no jobs start after the cancellation is observed.
func TestRunIndexedCancelDrainsInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	var started, finished atomic.Int64
	var once sync.Once
	err := runIndexed(ctx, 4, n, func(i int) error {
		started.Add(1)
		once.Do(cancel) // cancel from inside the first claimed job
		time.Sleep(time.Millisecond)
		finished.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Errorf("started %d != finished %d: in-flight jobs were not drained", s, f)
	}
	if s := started.Load(); s >= n {
		t.Errorf("all %d jobs ran despite cancellation", s)
	}
}

// TestRunIndexedCancelRacingCompletion: if every job in fact completed
// before the cancellation was observed, the run is whole and must
// report success, not a spurious context error.
func TestRunIndexedCancelRacingCompletion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	n := 8
	err := runIndexed(ctx, 2, n, func(i int) error {
		if ran.Add(1) == int64(n) {
			cancel() // fires after the last job's work is done
		}
		return nil
	})
	if err != nil {
		t.Fatalf("fully-completed run reported %v", err)
	}
}

func TestRunIndexedNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = runIndexed(ctx, 8, 64, func(i int) error {
			switch {
			case i == 10:
				panic("leak-check panic")
			case i == 20:
				cancel()
			}
			return nil
		})
		cancel()
	}
	settleGoroutines(t, baseline)
}

// TestRunGridCancellation is the -race property test from the issue: a
// cancelled grid returns context.Canceled and only fully-completed
// cells, whose values are byte-identical to an uncancelled run's.
func TestRunGridCancellation(t *testing.T) {
	cfg := smallConfig()
	plan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mkCells := func() []Cell {
		names := []float64{0.25, 0.5, 0.75}
		cells := make([]Cell, 0, len(names))
		for _, k := range names {
			policy, err := core.NewThreshold(cfg.Instance, cfg.SellingDiscount, k)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, Cell{Name: fmt.Sprintf("k=%v", k), Policy: policy, Engine: plan.engineConfig()})
		}
		return cells
	}
	ref, err := plan.RunGrid(context.Background(), mkCells())
	if err != nil {
		t.Fatal(err)
	}
	refByName := make(map[string]CellResult, len(ref))
	for _, cell := range ref {
		refByName[cell.Name] = cell
	}

	for _, par := range parallelisms() {
		for _, cancelAfter := range []int64{0, 1, int64(plan.Len()) / 2, int64(plan.Len())} {
			t.Run(fmt.Sprintf("par=%d/cancelAfter=%d", par, cancelAfter), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var calls atomic.Int64
				orig := simulateRun
				simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
					if calls.Add(1) > cancelAfter {
						cancel()
					}
					return orig(demand, newRes, ec, pol)
				}
				defer func() { simulateRun = orig }()

				plan.cfg.Parallelism = par
				got, err := plan.RunGrid(ctx, mkCells())
				if err == nil {
					t.Skip("cancellation raced completion; nothing to assert")
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled in chain", err)
				}
				var ce *CancelError
				if !errors.As(err, &ce) {
					t.Fatalf("err = %v, want *CancelError", err)
				}
				if ce.Total != 3 {
					t.Errorf("CancelError.Total = %d, want 3", ce.Total)
				}
				if len(got) != len(ce.Completed) {
					t.Fatalf("%d results for %d completed names", len(got), len(ce.Completed))
				}
				if len(got) == 3 {
					t.Error("cancelled grid reports every cell complete yet returned an error")
				}
				for i, cell := range got {
					if cell.Name != ce.Completed[i] {
						t.Errorf("result %d named %q, CancelError says %q", i, cell.Name, ce.Completed[i])
					}
					want := refByName[cell.Name]
					for u := range want.Cost {
						if cell.Cost[u] != want.Cost[u] || cell.Norm[u] != want.Norm[u] || cell.Sold[u] != want.Sold[u] {
							t.Fatalf("completed cell %q differs from uncancelled run at user %d", cell.Name, u)
						}
					}
				}
			})
		}
	}
}

// TestCohortCancellation pins the end-to-end path riexp exercises on
// SIGINT: RunCohort under a cancelled context surfaces
// context.Canceled, not a partial result.
func TestCohortCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCohort(ctx, smallConfig())
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCohort under cancelled ctx = (%v, %v)", res, err)
	}
}

// TestKeepStatsNotCachedOnCancel: a cancelled baseline computation must
// not poison the per-card cache with half-filled stats.
func TestKeepStatsNotCachedOnCancel(t *testing.T) {
	plan, err := NewCohortPlan(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.KeepStats(cancelled, plan.engineConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ks, err := plan.KeepStats(context.Background(), plan.engineConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range ks {
		if k.Total == 0 && plan.users[i].Reserved > 0 {
			t.Fatalf("user %d baseline is zero after a cancelled first attempt (stale cache?)", i)
		}
	}
}

// TestGridPanicContained: a panic inside an engine run surfaces as a
// *JobPanicError from RunGrid — the process survives one poisoned
// (cell, user) pair.
func TestGridPanicContained(t *testing.T) {
	plan, err := NewCohortPlan(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	orig := simulateRun
	var calls atomic.Int64
	simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
		if calls.Add(1) == 3 {
			panic("engine bug")
		}
		return orig(demand, newRes, ec, pol)
	}
	defer func() { simulateRun = orig }()

	policy, err := core.NewA3T4(plan.cfg.Instance, plan.cfg.SellingDiscount)
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.RunGrid(context.Background(), []Cell{{Name: "probe", Policy: policy, Engine: plan.engineConfig()}})
	var pe *JobPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *JobPanicError", err)
	}
	if pe.Value != "engine bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
}
