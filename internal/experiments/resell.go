package experiments

import (
	"fmt"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/stats"
	"rimarket/internal/workload"
)

// The paper's related work (Section II) discusses an alternative to
// selling whole remaining periods: reselling a reserved instance's
// *idle hours* pay-as-you-go (Zhang et al., ICWS 2017; Wang et al.,
// TPDS 2015). The paper dismisses it as "not supported by public IaaS
// cloud providers" but never compares costs. This file implements that
// baseline so the comparison the paper only argues qualitatively can
// be measured: the user keeps every reservation and earns gamma * p
// for each idle reserved hour it manages to resell.

// HourResellRow compares one policy against the hour-reselling
// baseline at one resale-efficiency setting.
type HourResellRow struct {
	// Gamma is the fraction of the on-demand rate an idle hour earns
	// (market efficiency of the hypothetical hour-resale broker).
	Gamma float64
	// ResellMean is the hour-reselling baseline's mean normalized cost.
	ResellMean float64
	// A3T4Mean, AT4Mean are the paper's algorithms on the same cohort.
	A3T4Mean, AT4Mean float64
	// CrossoverBeaten reports whether hour-reselling beats the paper's
	// best algorithm at this gamma.
	CrossoverBeaten bool
}

// HourResellComparison evaluates the idle-hour-reselling baseline
// against A_{3T/4} and A_{T/4} across resale efficiencies. The
// baseline's cost is derived from the Keep-Reserved run: it keeps
// every reservation and recoups gamma * p per idle reserved hour.
func HourResellComparison(cfg Config, gammas []float64) ([]HourResellRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gammas) == 0 {
		return nil, fmt.Errorf("experiments: no gamma values")
	}
	for _, g := range gammas {
		if g < 0 || g > 1 {
			return nil, fmt.Errorf("experiments: gamma %v outside [0, 1]", g)
		}
	}
	a3, err := core.NewA3T4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	a4, err := core.NewAT4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	traces, err := workload.NewCohort(workload.CohortConfig{
		PerGroup: cfg.PerGroup,
		Hours:    cfg.Hours,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	engCfg := simulate.Config{Instance: cfg.Instance, SellingDiscount: cfg.SellingDiscount}

	type userRun struct {
		keep      float64
		idleHours int
		a3, a4    float64
	}
	runs := make([]userRun, 0, len(traces))
	for i, tr := range traces {
		planner, err := behaviorPolicy(cfg, Behaviors[i%len(Behaviors)], int64(i))
		if err != nil {
			return nil, err
		}
		newRes, err := purchasing.PlanReservations(tr.Demand, cfg.Instance.PeriodHours, planner)
		if err != nil {
			return nil, err
		}
		keepRun, err := simulate.Run(tr.Demand, newRes, engCfg, core.KeepReserved{})
		if err != nil {
			return nil, err
		}
		a3Run, err := simulate.Run(tr.Demand, newRes, engCfg, a3)
		if err != nil {
			return nil, err
		}
		a4Run, err := simulate.Run(tr.Demand, newRes, engCfg, a4)
		if err != nil {
			return nil, err
		}
		idle := 0
		for _, h := range keepRun.Hours {
			served := h.Demand - h.OnDemand
			idle += h.ActiveRes - served
		}
		runs = append(runs, userRun{
			keep:      keepRun.Cost.Total(),
			idleHours: idle,
			a3:        a3Run.Cost.Total(),
			a4:        a4Run.Cost.Total(),
		})
	}

	p := cfg.Instance.OnDemandHourly
	rows := make([]HourResellRow, 0, len(gammas))
	for _, gamma := range gammas {
		var resell, a3n, a4n []float64
		for _, r := range runs {
			if r.keep == 0 {
				continue
			}
			resellCost := r.keep - gamma*p*float64(r.idleHours)
			resell = append(resell, resellCost/r.keep)
			a3n = append(a3n, r.a3/r.keep)
			a4n = append(a4n, r.a4/r.keep)
		}
		row := HourResellRow{
			Gamma:      gamma,
			ResellMean: stats.Mean(resell),
			A3T4Mean:   stats.Mean(a3n),
			AT4Mean:    stats.Mean(a4n),
		}
		row.CrossoverBeaten = row.ResellMean < row.AT4Mean
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderHourResell renders the related-work comparison.
func RenderHourResell(rows []HourResellRow) string {
	var b strings.Builder
	b.WriteString("Related-work baseline — reselling idle hours pay-as-you-go vs selling the period\n")
	fmt.Fprintf(&b, "%-8s %14s %12s %12s %10s\n",
		"gamma", "hour-resell", "A_{3T/4}", "A_{T/4}", "winner")
	for _, r := range rows {
		winner := "period sale"
		if r.CrossoverBeaten {
			winner = "hour resell"
		}
		fmt.Fprintf(&b, "%-8.2f %14.4f %12.4f %12.4f %10s\n",
			r.Gamma, r.ResellMean, r.A3T4Mean, r.AT4Mean, winner)
	}
	return b.String()
}
