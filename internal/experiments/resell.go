package experiments

import (
	"context"
	"fmt"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/simulate"
	"rimarket/internal/stats"
)

// The paper's related work (Section II) discusses an alternative to
// selling whole remaining periods: reselling a reserved instance's
// *idle hours* pay-as-you-go (Zhang et al., ICWS 2017; Wang et al.,
// TPDS 2015). The paper dismisses it as "not supported by public IaaS
// cloud providers" but never compares costs. This file implements that
// baseline so the comparison the paper only argues qualitatively can
// be measured: the user keeps every reservation and earns gamma * p
// for each idle reserved hour it manages to resell.

// HourResellRow compares one policy against the hour-reselling
// baseline at one resale-efficiency setting.
type HourResellRow struct {
	// Gamma is the fraction of the on-demand rate an idle hour earns
	// (market efficiency of the hypothetical hour-resale broker).
	Gamma float64
	// ResellMean is the hour-reselling baseline's mean normalized cost.
	ResellMean float64
	// A3T4Mean, AT4Mean are the paper's algorithms on the same cohort.
	A3T4Mean, AT4Mean float64
	// CrossoverBeaten reports whether hour-reselling beats the paper's
	// best algorithm at this gamma.
	CrossoverBeaten bool
}

// HourResellComparison evaluates the idle-hour-reselling baseline on
// the plan's cohort. The baseline's cost is derived from the cached
// Keep-Reserved baseline: it keeps every reservation and recoups
// gamma * p per idle reserved hour, so only the two period-selling
// policies need engine runs.
func (p *CohortPlan) HourResellComparison(ctx context.Context, gammas []float64) ([]HourResellRow, error) {
	if len(gammas) == 0 {
		return nil, fmt.Errorf("experiments: no gamma values")
	}
	for _, g := range gammas {
		if g < 0 || g > 1 {
			return nil, fmt.Errorf("experiments: gamma %v outside [0, 1]", g)
		}
	}
	cfg := p.cfg
	a3, err := core.NewA3T4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	a4, err := core.NewAT4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	engCfg := simulate.Config{Instance: cfg.Instance, SellingDiscount: cfg.SellingDiscount}
	keeps, err := p.KeepStats(ctx, engCfg)
	if err != nil {
		return nil, err
	}
	grid, err := p.RunGridNamed(ctx, "resell", []Cell{
		{Name: PolicyA3T4, Policy: a3, Engine: engCfg},
		{Name: PolicyAT4, Policy: a4, Engine: engCfg},
	})
	if err != nil {
		return nil, err
	}

	od := cfg.Instance.OnDemandHourly
	rows := make([]HourResellRow, 0, len(gammas))
	for _, gamma := range gammas {
		var resell, a3n, a4n []float64
		for i, ks := range keeps {
			if ks.Total == 0 {
				continue
			}
			resellCost := ks.Total - gamma*od*float64(ks.IdleHours)
			resell = append(resell, resellCost/ks.Total)
			a3n = append(a3n, grid[0].Norm[i])
			a4n = append(a4n, grid[1].Norm[i])
		}
		row := HourResellRow{
			Gamma:      gamma,
			ResellMean: stats.Mean(resell),
			A3T4Mean:   stats.Mean(a3n),
			AT4Mean:    stats.Mean(a4n),
		}
		row.CrossoverBeaten = row.ResellMean < row.AT4Mean
		rows = append(rows, row)
	}
	return rows, nil
}

// HourResellComparison evaluates the idle-hour-reselling baseline
// against A_{3T/4} and A_{T/4} across resale efficiencies.
func HourResellComparison(ctx context.Context, cfg Config, gammas []float64) ([]HourResellRow, error) {
	if len(gammas) == 0 {
		return nil, fmt.Errorf("experiments: no gamma values")
	}
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return plan.HourResellComparison(ctx, gammas)
}

// RenderHourResell renders the related-work comparison.
func RenderHourResell(rows []HourResellRow) string {
	var b strings.Builder
	b.WriteString("Related-work baseline — reselling idle hours pay-as-you-go vs selling the period\n")
	fmt.Fprintf(&b, "%-8s %14s %12s %12s %10s\n",
		"gamma", "hour-resell", "A_{3T/4}", "A_{T/4}", "winner")
	for _, r := range rows {
		winner := "period sale"
		if r.CrossoverBeaten {
			winner = "hour resell"
		}
		fmt.Fprintf(&b, "%-8.2f %14.4f %12.4f %12.4f %10s\n",
			r.Gamma, r.ResellMean, r.A3T4Mean, r.AT4Mean, winner)
	}
	return b.String()
}
