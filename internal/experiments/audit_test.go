package experiments

import (
	"context"
	"strings"
	"testing"

	"rimarket/internal/core"
)

func TestRatioAudit(t *testing.T) {
	cfg := smallConfig()
	res, err := RatioAudit(context.Background(), cfg, core.FractionT2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audited == 0 {
		t.Fatal("nothing audited")
	}
	if res.MaxMeasured > res.Bound.Ratio+1e-9 {
		t.Errorf("max measured %v exceeds bound %v", res.MaxMeasured, res.Bound.Ratio)
	}
	if res.MeanMeasured < 1-1e-9 {
		t.Errorf("mean measured %v below 1 (online cannot beat OPT)", res.MeanMeasured)
	}
	if res.MaxMeasured < res.MeanMeasured {
		t.Errorf("max %v below mean %v", res.MaxMeasured, res.MeanMeasured)
	}
	out := RenderAudit([]AuditResult{res})
	if !strings.Contains(out, "A_{T/2}") || !strings.Contains(out, "bound") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRatioAuditValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := RatioAudit(context.Background(), cfg, 0); err == nil {
		t.Error("invalid fraction accepted")
	}
	bad := cfg
	bad.PerGroup = 0
	if _, err := RatioAudit(context.Background(), bad, 0.5); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRenderAuditGenericFraction(t *testing.T) {
	out := RenderAudit([]AuditResult{{Fraction: 0.3, Audited: 1, MeanMeasured: 1, MaxMeasured: 1}})
	if !strings.Contains(out, "A_{0.3T}") {
		t.Errorf("render:\n%s", out)
	}
}
