package experiments

// BenchmarkGridSkewed pins the scheduler cost the sharded pool was
// built to fix: a heavy-tailed grid where contiguous shards leave one
// worker serializing the expensive cells. The uniform/skewed x
// steal on/off matrix is snapshotted into BENCH_6.json by
// scripts/bench.sh, and CI's benchgate holds the skewed wall time so a
// scheduler regression (or an accidental stealing disable) fails the
// build. On multi-core machines dist=skewed/steal=off is the slow
// quadrant; the committed baseline is only ever compared against runs
// on the same machine class.

import (
	"context"
	"fmt"
	"testing"
)

func BenchmarkGridSkewed(b *testing.B) {
	const (
		n       = 256
		workers = 4
	)
	dists := []struct {
		name  string
		units func(i int) int
	}{
		// Same total work in both distributions, so the pair isolates
		// scheduling: uniform spreads it evenly, skewed piles ~75% of it
		// onto the four indices the first shard owns.
		{name: "uniform", units: func(i int) int { return 4_000 }},
		{name: "skewed", units: heavyTailUnits},
	}
	for _, dist := range dists {
		for _, steal := range []bool{true, false} {
			mode := "on"
			if !steal {
				mode = "off"
			}
			b.Run(fmt.Sprintf("dist=%s/steal=%s", dist.name, mode), func(b *testing.B) {
				defer func(prev bool) { stealEnabled = prev }(stealEnabled)
				stealEnabled = steal
				out := make([]float64, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, _, err := runShardedDone(context.Background(), workers, n, func(_, j int) error {
						out[j] = spinWork(j, dist.units(j))
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
