package experiments

import (
	"context"
	"fmt"
	"strings"

	"rimarket/internal/analysis"
	"rimarket/internal/core"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/workload"
)

// AuditResult summarizes a per-instance competitive-ratio audit: every
// full-period instance schedule the cohort produces is replayed
// through the online algorithm and the restricted offline OPT, and the
// measured ratios are checked against the proven bound.
type AuditResult struct {
	// Fraction is the audited algorithm's checkpoint fraction k.
	Fraction float64
	// Audited counts the instance schedules examined.
	Audited int
	// MaxMeasured is the largest online/OPT ratio observed.
	MaxMeasured float64
	// MeanMeasured is the average ratio.
	MeanMeasured float64
	// Bound is the proven per-instance bound for the experiment's card.
	Bound analysis.Bound
	// AtBoundFraction is the share of instances within 5% of the bound.
	AtBoundFraction float64
}

// RatioAudit measures per-instance competitive ratios on cohort-driven
// schedules for A_{kT}. The horizon is extended to two periods so
// instances reserved during the first period live out their full term
// and have complete schedules.
func RatioAudit(ctx context.Context, cfg Config, fraction float64) (AuditResult, error) {
	if err := cfg.Validate(); err != nil {
		return AuditResult{}, err
	}
	policy, err := core.NewThreshold(cfg.Instance, cfg.SellingDiscount, fraction)
	if err != nil {
		return AuditResult{}, err
	}
	bound, err := analysis.BoundForInstance(cfg.Instance, fraction, cfg.SellingDiscount)
	if err != nil {
		return AuditResult{}, err
	}

	period := cfg.Instance.PeriodHours
	traces, err := workload.NewCohort(workload.CohortConfig{
		PerGroup: cfg.PerGroup,
		Hours:    2 * period,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return AuditResult{}, err
	}

	res := AuditResult{Fraction: fraction, Bound: bound}
	var sum float64
	nearBound := 0
	engCfg := simulate.Config{
		Instance:        cfg.Instance,
		SellingDiscount: cfg.SellingDiscount,
		RecordSchedules: true,
	}
	for i, tr := range traces {
		if err := ctx.Err(); err != nil {
			return AuditResult{}, err
		}
		planner, err := behaviorPolicy(cfg, Behaviors[i%len(Behaviors)], int64(i))
		if err != nil {
			return AuditResult{}, err
		}
		newRes, err := purchasing.PlanReservations(tr.Demand, period, planner)
		if err != nil {
			return AuditResult{}, err
		}
		run, err := simulate.Run(tr.Demand, newRes, engCfg, core.KeepReserved{})
		if err != nil {
			return AuditResult{}, err
		}
		for _, inst := range run.Instances {
			if inst.Start+period > tr.Len() {
				continue // truncated lifetime: schedule incomplete
			}
			measured, _, err := analysis.VerifyBound(inst.Schedule, policy, cfg.SellingDiscount)
			if err != nil {
				return AuditResult{}, fmt.Errorf("experiments: user %s instance at %d: %w",
					tr.User, inst.Start, err)
			}
			res.Audited++
			sum += measured
			if measured > res.MaxMeasured {
				res.MaxMeasured = measured
			}
			if measured >= bound.Ratio*0.95 {
				nearBound++
			}
		}
	}
	if res.Audited == 0 {
		return AuditResult{}, fmt.Errorf("experiments: no full-period instances to audit")
	}
	res.MeanMeasured = sum / float64(res.Audited)
	res.AtBoundFraction = float64(nearBound) / float64(res.Audited)
	return res, nil
}

// RenderAudit renders audits for the paper's three fractions.
func RenderAudit(results []AuditResult) string {
	var b strings.Builder
	b.WriteString("Competitive-ratio audit — measured online/OPT per instance on cohort schedules\n")
	fmt.Fprintf(&b, "%-10s %9s %10s %10s %10s %12s\n",
		"algorithm", "audited", "mean", "max", "bound", "within 5%")
	for _, r := range results {
		name := fmt.Sprintf("A_{%.3gT}", r.Fraction)
		switch r.Fraction {
		case core.Fraction3T4:
			name = "A_{3T/4}"
		case core.FractionT2:
			name = "A_{T/2}"
		case core.FractionT4:
			name = "A_{T/4}"
		}
		fmt.Fprintf(&b, "%-10s %9d %10.4f %10.4f %10.4f %11.1f%%\n",
			name, r.Audited, r.MeanMeasured, r.MaxMeasured, r.Bound.Ratio, r.AtBoundFraction*100)
	}
	return b.String()
}
