package experiments

import (
	"fmt"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/stats"
	"rimarket/internal/workload"
)

// SensitivityGrid is the 2D ablation over selling discount a (rows)
// and checkpoint fraction k (columns): each cell is the cohort-mean
// normalized cost of A_{kT} when sellers list at discount a.
type SensitivityGrid struct {
	// Discounts are the row values (a).
	Discounts []float64
	// Fractions are the column values (k).
	Fractions []float64
	// Mean[i][j] is the mean normalized cost at (Discounts[i],
	// Fractions[j]).
	Mean [][]float64
}

// Sensitivity runs the full a-by-k grid on one cohort. Reservation
// plans are computed once (they do not depend on a or k); each cell
// replays the cohort's selling runs.
func Sensitivity(cfg Config, discounts, fractions []float64) (SensitivityGrid, error) {
	if err := cfg.Validate(); err != nil {
		return SensitivityGrid{}, err
	}
	if len(discounts) == 0 || len(fractions) == 0 {
		return SensitivityGrid{}, fmt.Errorf("experiments: empty sensitivity axes")
	}
	traces, err := workload.NewCohort(workload.CohortConfig{
		PerGroup: cfg.PerGroup,
		Hours:    cfg.Hours,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return SensitivityGrid{}, err
	}

	type planned struct{ demand, newRes []int }
	plans := make([]planned, 0, len(traces))
	for i, tr := range traces {
		planner, err := behaviorPolicy(cfg, Behaviors[i%len(Behaviors)], int64(i))
		if err != nil {
			return SensitivityGrid{}, err
		}
		newRes, err := purchasing.PlanReservations(tr.Demand, cfg.Instance.PeriodHours, planner)
		if err != nil {
			return SensitivityGrid{}, err
		}
		plans = append(plans, planned{demand: tr.Demand, newRes: newRes})
	}

	grid := SensitivityGrid{
		Discounts: append([]float64(nil), discounts...),
		Fractions: append([]float64(nil), fractions...),
		Mean:      make([][]float64, len(discounts)),
	}
	for i, a := range discounts {
		grid.Mean[i] = make([]float64, len(fractions))
		engCfg := simulate.Config{
			Instance:        cfg.Instance,
			SellingDiscount: a,
			MarketFee:       cfg.MarketFee,
		}
		// Keep-Reserved baselines are independent of k but not of the
		// engine config; compute once per row.
		keeps := make([]float64, len(plans))
		for p, pl := range plans {
			keepRun, err := simulate.Run(pl.demand, pl.newRes, engCfg, core.KeepReserved{})
			if err != nil {
				return SensitivityGrid{}, err
			}
			keeps[p] = keepRun.Cost.Total()
		}
		for j, k := range fractions {
			policy, err := core.NewThreshold(cfg.Instance, a, k)
			if err != nil {
				return SensitivityGrid{}, fmt.Errorf("experiments: cell (a=%v, k=%v): %w", a, k, err)
			}
			normalized := make([]float64, 0, len(plans))
			for p, pl := range plans {
				run, err := simulate.Run(pl.demand, pl.newRes, engCfg, policy)
				if err != nil {
					return SensitivityGrid{}, err
				}
				if keeps[p] == 0 {
					normalized = append(normalized, 1)
					continue
				}
				normalized = append(normalized, run.Cost.Total()/keeps[p])
			}
			grid.Mean[i][j] = stats.Mean(normalized)
		}
	}
	return grid, nil
}

// RenderSensitivity renders the grid as a table (rows a, columns k).
func RenderSensitivity(grid SensitivityGrid) string {
	var b strings.Builder
	b.WriteString("Sensitivity — mean normalized cost of A_{kT} by selling discount a and fraction k\n")
	fmt.Fprintf(&b, "%8s", "a \\ k")
	for _, k := range grid.Fractions {
		fmt.Fprintf(&b, " %8.3g", k)
	}
	b.WriteString("\n")
	for i, a := range grid.Discounts {
		fmt.Fprintf(&b, "%8.2f", a)
		for j := range grid.Fractions {
			fmt.Fprintf(&b, " %8.4f", grid.Mean[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}
