package experiments

import (
	"context"
	"fmt"
	"strings"

	"rimarket/internal/core"
)

// SensitivityGrid is the 2D ablation over selling discount a (rows)
// and checkpoint fraction k (columns): each cell is the cohort-mean
// normalized cost of A_{kT} when sellers list at discount a.
type SensitivityGrid struct {
	// Discounts are the row values (a).
	Discounts []float64
	// Fractions are the column values (k).
	Fractions []float64
	// Mean[i][j] is the mean normalized cost at (Discounts[i],
	// Fractions[j]).
	Mean [][]float64
}

// Sensitivity runs the a-by-k grid on the plan's cohort: one engine
// run per (cell, user), fanned out over the plan's worker pool. The
// reservation plans and the Keep-Reserved baseline are the plan's
// cached copies, so repeated grids on one plan cost only the cells.
func (p *CohortPlan) Sensitivity(ctx context.Context, discounts, fractions []float64) (SensitivityGrid, error) {
	if len(discounts) == 0 || len(fractions) == 0 {
		return SensitivityGrid{}, fmt.Errorf("experiments: empty sensitivity axes")
	}
	cells := make([]Cell, 0, len(discounts)*len(fractions))
	for _, a := range discounts {
		engCfg := p.engineConfig()
		engCfg.SellingDiscount = a
		for _, k := range fractions {
			policy, err := core.NewThreshold(p.cfg.Instance, a, k)
			if err != nil {
				return SensitivityGrid{}, fmt.Errorf("experiments: cell (a=%v, k=%v): %w", a, k, err)
			}
			cells = append(cells, Cell{
				Name:   fmt.Sprintf("a=%v,k=%v", a, k),
				Policy: policy,
				Engine: engCfg,
			})
		}
	}
	grid, err := p.RunGridNamed(ctx, "sensitivity", cells)
	if err != nil {
		return SensitivityGrid{}, err
	}
	out := SensitivityGrid{
		Discounts: append([]float64(nil), discounts...),
		Fractions: append([]float64(nil), fractions...),
		Mean:      make([][]float64, len(discounts)),
	}
	for i := range discounts {
		out.Mean[i] = make([]float64, len(fractions))
		for j := range fractions {
			out.Mean[i][j] = grid[i*len(fractions)+j].MeanNorm()
		}
	}
	return out, nil
}

// Sensitivity runs the full a-by-k grid on one cohort. Reservation
// plans are computed once (they do not depend on a or k); each cell
// replays the cohort's selling runs.
func Sensitivity(ctx context.Context, cfg Config, discounts, fractions []float64) (SensitivityGrid, error) {
	if len(discounts) == 0 || len(fractions) == 0 {
		return SensitivityGrid{}, fmt.Errorf("experiments: empty sensitivity axes")
	}
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return SensitivityGrid{}, err
	}
	return plan.Sensitivity(ctx, discounts, fractions)
}

// RenderSensitivity renders the grid as a table (rows a, columns k).
func RenderSensitivity(grid SensitivityGrid) string {
	var b strings.Builder
	b.WriteString("Sensitivity — mean normalized cost of A_{kT} by selling discount a and fraction k\n")
	fmt.Fprintf(&b, "%8s", "a \\ k")
	for _, k := range grid.Fractions {
		fmt.Fprintf(&b, " %8.3g", k)
	}
	b.WriteString("\n")
	for i, a := range grid.Discounts {
		fmt.Fprintf(&b, "%8.2f", a)
		for j := range grid.Fractions {
			fmt.Fprintf(&b, " %8.4f", grid.Mean[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}
