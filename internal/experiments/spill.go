package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"

	"rimarket/internal/gridstore"
	"rimarket/internal/obs"
	"rimarket/internal/pricing"
)

// This file wires RunGrid to the gridstore spill/resume store: the
// grid's canonical identity (the config hash resume validates), the
// label → subdirectory mapping, and the per-cell append/prefill glue.

// gridIdentity is the canonical, JSON-stable identity of one grid:
// everything that determines its results and nothing that does not.
// Parallelism, SpillDir and Resume are deliberately absent — a grid
// interrupted at one worker count must resume at another — as are the
// engine's non-semantic knobs (Metrics, RecordSchedules), which the
// zero-perturbation suite pins as result-neutral.
type gridIdentity struct {
	Grid     string               `json:"grid"`
	Instance pricing.InstanceType `json:"instance"`
	PerGroup int                  `json:"per_group"`
	Hours    int                  `json:"hours"`
	Seed     int64                `json:"seed"`
	Users    int                  `json:"users"`
	Cells    []gridCellIdentity   `json:"cells"`
}

// gridCellIdentity is one cell's semantic engine parameters. The
// policy itself is not hashable (it is code), but every cell name in
// this package encodes the policy and its parameters, so Name plus
// the engine config pins the cell.
type gridCellIdentity struct {
	Name            string               `json:"name"`
	Instance        pricing.InstanceType `json:"instance"`
	SellingDiscount float64              `json:"selling_discount"`
	MarketFee       float64              `json:"market_fee"`
}

// gridSpec derives the gridstore spec binding a spill directory to
// this exact grid: config hash over the grid's identity, the cohort
// seed, and the result shape.
func gridSpec(cfg Config, name string, cells []Cell, users int) (gridstore.Spec, error) {
	id := gridIdentity{
		Grid:     name,
		Instance: cfg.Instance,
		PerGroup: cfg.PerGroup,
		Hours:    cfg.Hours,
		Seed:     cfg.Seed,
		Users:    users,
		Cells:    make([]gridCellIdentity, 0, len(cells)),
	}
	names := make([]string, 0, len(cells))
	for _, c := range cells {
		id.Cells = append(id.Cells, gridCellIdentity{
			Name:            c.Name,
			Instance:        c.Engine.Instance,
			SellingDiscount: c.Engine.SellingDiscount,
			MarketFee:       c.Engine.MarketFee,
		})
		names = append(names, c.Name)
	}
	raw, err := json.Marshal(id)
	if err != nil {
		return gridstore.Spec{}, fmt.Errorf("experiments: encoding grid identity: %w", err)
	}
	sum := sha256.Sum256(raw)
	return gridstore.Spec{
		Version:    gridstore.FormatVersion,
		ConfigHash: hex.EncodeToString(sum[:]),
		Seed:       cfg.Seed,
		Cells:      names,
		Users:      users,
	}, nil
}

// spillDirName maps a grid label to its subdirectory under
// Config.SpillDir. Labels are fixed identifiers in this package, but
// sanitize anyway so a label can never escape the spill root.
func spillDirName(label string) string {
	if label == "" {
		return "grid"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, label)
}

// gridSpill is one RunGrid invocation's spill state: the open store,
// and which cells were restored from disk rather than scheduled.
type gridSpill struct {
	store   *gridstore.Store
	dir     string
	resumed []bool
}

// openSpill opens the grid's store under SpillDir/<label>. With
// Config.Resume set it loads valid spilled cells into out and marks
// them resumed on the tracker; otherwise (or when there is nothing to
// resume) it creates a fresh store. Dropped records — torn tails,
// checksum failures, duplicates — leave their cells pending, so they
// are recomputed, never merged.
func (p *CohortPlan) openSpill(name string, cells []Cell, users int, out []CellResult, tracker *obs.GridTracker) (*gridSpill, error) {
	spec, err := gridSpec(p.cfg, name, cells, users)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(p.cfg.SpillDir, spillDirName(name))
	g := &gridSpill{dir: dir, resumed: make([]bool, len(cells))}
	if p.cfg.Resume {
		store, loaded, err := gridstore.Open(dir, spec)
		switch {
		case err == nil:
			g.store = store
			for idx, rec := range loaded.Cells {
				out[idx] = CellResult{Name: rec.Name, Cost: rec.Cost, Norm: rec.Norm, Sold: rec.Sold}
				g.resumed[idx] = true
				tracker.CellResumed(idx)
			}
			return g, nil
		case errors.Is(err, fs.ErrNotExist):
			// Nothing spilled yet; start a fresh store below.
		default:
			return nil, fmt.Errorf("experiments: resuming grid %q from %s: %w", name, dir, err)
		}
	}
	store, err := gridstore.Create(dir, spec)
	if err != nil {
		return nil, fmt.Errorf("experiments: opening spill store for grid %q: %w", name, err)
	}
	g.store = store
	return g, nil
}

// appendCell spills one fully-completed cell to the claiming worker's
// shard. An append failure surfaces through the pool's error path like
// any job error: the sweep stops rather than silently losing
// resumability.
func (g *gridSpill) appendCell(worker, ci int, cell *CellResult) error {
	err := g.store.Append(worker, gridstore.CellRecord{
		Index: ci,
		Name:  cell.Name,
		Cost:  cell.Cost,
		Norm:  cell.Norm,
		Sold:  cell.Sold,
	})
	if err != nil {
		return fmt.Errorf("experiments: spilling cell %s: %w", cell.Name, err)
	}
	return nil
}

// close flushes and closes the store. Nil-safe, so RunGrid's no-spill
// path needs no branches.
func (g *gridSpill) close() error {
	if g == nil || g.store == nil {
		return nil
	}
	err := g.store.Close()
	g.store = nil
	if err != nil {
		return fmt.Errorf("experiments: closing spill store: %w", err)
	}
	return nil
}
