package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rimarket/internal/core"
	"rimarket/internal/marketplace"
	"rimarket/internal/obs"
	"rimarket/internal/pricing"
	"rimarket/internal/simulate"
	"rimarket/internal/trade"
)

// MarketScenario parameterizes a two-sided market session: one shared
// cohort configuration and the set of price cards traded on the book.
// Per card, the cohort is re-planned (reservation behaviors depend on
// the card); each user's sell decisions under one of the paper's three
// online algorithms — assigned round-robin across the cohort, so
// listings arrive from T/4 onward instead of all at 3T/4 — become the
// seller side, while the planned reservation schedules become the
// buyer side: every new reservation a behavior would buy fresh first
// shops the order book for a cheaper-per-hour used listing. No
// exogenous sale probability or buyer arrival rate enters anywhere:
// fills emerge from the two sides meeting on the book.
type MarketScenario struct {
	// Base is the shared cohort configuration. Base.Instance is ignored
	// (Cards supplies the traded types); Base.MarketFee is the book's
	// fee; Base.SellingDiscount is the sellers' listing discount a.
	Base Config
	// Cards are the instance types traded in the session.
	Cards []pricing.InstanceType
}

// Validate reports whether the scenario is usable.
func (s MarketScenario) Validate() error {
	if len(s.Cards) == 0 {
		return fmt.Errorf("experiments: market scenario has no instance cards")
	}
	seen := make(map[string]bool, len(s.Cards))
	for _, card := range s.Cards {
		if err := card.Validate(); err != nil {
			return err
		}
		if seen[card.Name] {
			return fmt.Errorf("experiments: market scenario lists card %q twice", card.Name)
		}
		seen[card.Name] = true
	}
	cfg := s.Base
	cfg.Instance = s.Cards[0]
	return cfg.Validate()
}

// MarketOutcome is one instance type's measured market behavior over a
// session: how the seller side fared (sale probability, time to sale)
// and how the buyer side sourced its reservations (used fills versus
// fresh purchases). SaleProbability is the paper's alpha as a measured
// quantity — Sold/Listed from matched trades, with nothing assumed.
//
//rilint:frozen
type MarketOutcome struct {
	// Type names the instance type.
	Type string
	// Listed, Sold, Expired and OpenAtEnd count the type's listings
	// through their session outcomes.
	Listed, Sold, Expired, OpenAtEnd int
	// SaleProbability is Sold/Listed (0 when nothing listed); listings
	// still open at the horizon count as unsold.
	SaleProbability float64
	// MeanHoursToSale averages the listing-to-fill wait over sold
	// listings.
	MeanHoursToSale float64
	// BuyerDemand counts reservation units the cohort's behaviors
	// wanted; UsedFills of them came off the book, FreshBuys fell
	// through to a fresh reservation.
	BuyerDemand, UsedFills, FreshBuys int
	// FillRate is UsedFills/BuyerDemand (0 when no demand).
	FillRate float64
	// PeakDepth and MeanDepth describe the book's open-listing count
	// for the type over the session's hours.
	PeakDepth int
	MeanDepth float64
	// BuyerPaid, SellerProceeds and Fees are the type's money flows,
	// each summed in trade order. Conservation is per trade and
	// bit-exact — PricePaid == Fee + SellerProceeds for every fill, so
	// the trade-order sum of recompositions equals BuyerPaid exactly —
	// while BuyerPaid and SellerProceeds+Fees, being independently
	// accumulated sums, may differ in the last ulp.
	BuyerPaid, SellerProceeds, Fees float64
}

// MarketResult is a completed two-sided market session.
type MarketResult struct {
	// Horizon is the session length in hours.
	Horizon int
	// Outcomes holds one outcome per card, in scenario card order.
	Outcomes []MarketOutcome
	// BuyerPaid, SellerProceeds and Fees are the session-wide money
	// flows from the book's ledger, summed in trade order (see the
	// conservation note on MarketOutcome).
	BuyerPaid, SellerProceeds, Fees float64
}

// marketTally accumulates one card's session statistics before the
// frozen outcome is built.
type marketTally struct {
	listed, sold, expired int
	hoursToSale           int
	demand, used, fresh   int
	peakDepth             int
	depthSum              int64
	paid, proceeds, fees  float64
	// split re-sums fee+proceeds per trade in the same order as paid;
	// paid == split bit-exactly because each trade recomposes exactly.
	split float64
}

// cardStream is one card's precomputed session input: the seller
// events in fill order and the planned users whose reservation
// schedules drive the buyer side.
type cardStream struct {
	card   pricing.InstanceType
	events []trade.SellEvent
	next   int
	users  []PlannedUser
}

// mixedSellEvents builds one card's seller stream: user i sells under
// SellingPolicies[i mod 3], so the three online algorithms coexist in
// one market and listings arrive throughout the horizon. Events are
// merged in cohort order, then stable-sorted by hour, so listing order
// — and hence equal-ask fill priority — is deterministic.
func mixedSellEvents(ctx context.Context, plan *CohortPlan, card pricing.InstanceType, discount float64) ([]trade.SellEvent, error) {
	a3, err := core.NewA3T4(card, discount)
	if err != nil {
		return nil, err
	}
	a2, err := core.NewAT2(card, discount)
	if err != nil {
		return nil, err
	}
	a4, err := core.NewAT4(card, discount)
	if err != nil {
		return nil, err
	}
	perUser := make([][]trade.SellEvent, plan.Len())
	for pi, policy := range []simulate.SellingPolicy{a3, a2, a4} {
		got, err := plan.sellEventsPerUser(ctx, policy)
		if err != nil {
			return nil, err
		}
		for i := pi; i < len(got); i += 3 {
			perUser[i] = got[i]
		}
	}
	var events []trade.SellEvent
	for _, evs := range perUser {
		events = append(events, evs...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Hour < events[j].Hour })
	return events, nil
}

// RunMarketScenario plans the scenario's cohort once per card, then
// replays all cards through a single hour-stepped order book:
// each hour ages the book (expiring and repricing listings), lists the
// hour's sell decisions, and routes the hour's planned reservations
// through the book before falling back to fresh purchases. The session
// loop is sequential, and its inputs are concatenated in cohort order
// by deterministic fan-outs, so the result is byte-identical at any
// Parallelism and in batch or per-user mode alike.
//
// Reservation plans are fixed upstream, as in the paper's pipeline:
// buying used covers the same demand at the same reserved rate, so the
// session measures market clearing without feeding back into planning.
func RunMarketScenario(ctx context.Context, sc MarketScenario) (*MarketResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sp := obs.StartSpan(ctx, "market-session")
	defer sp.End()
	m := obs.FromContext(ctx)

	streams := make([]*cardStream, len(sc.Cards))
	for ci, card := range sc.Cards {
		cfg := sc.Base
		cfg.Instance = card
		plan, err := NewCohortPlan(ctx, cfg)
		if err != nil {
			return nil, err
		}
		events, err := mixedSellEvents(ctx, plan, card, cfg.SellingDiscount)
		if err != nil {
			return nil, err
		}
		streams[ci] = &cardStream{card: card, events: events, users: plan.Users()}
	}

	book, err := marketplace.NewOrderBook(sc.Base.MarketFee)
	if err != nil {
		return nil, err
	}
	tallies := make([]marketTally, len(sc.Cards))
	byName := make(map[string]*marketTally, len(sc.Cards))
	for ci := range tallies {
		byName[sc.Cards[ci].Name] = &tallies[ci]
	}

	horizon := sc.Base.Hours
	for hour := 0; hour < horizon; hour++ {
		if hour > 0 {
			res := book.Step()
			for _, lst := range res.Expired {
				byName[lst.Instance.Name].expired++
				if m != nil {
					m.MarketExpiries.Add(1)
				}
			}
		}

		// Sellers list this hour's sell decisions under the scenario's
		// declining schedule.
		for ci, st := range streams {
			t := &tallies[ci]
			for st.next < len(st.events) && st.events[st.next].Hour == hour {
				ev := st.events[st.next]
				st.next++
				if _, err := book.ListDeclining(ev.Seller, st.card, ev.RemainingHours, sc.Base.SellingDiscount); err != nil {
					return nil, fmt.Errorf("experiments: listing %s's reservation at hour %d: %w", ev.Seller, hour, err)
				}
				t.listed++
				if m != nil {
					m.MarketListings.Add(1)
				}
			}
		}

		// Buyers: each planned reservation shops the book first. A used
		// listing is taken when its per-remaining-hour price beats a
		// fresh reservation's per-hour upfront; otherwise (or when the
		// book is empty) the unit is bought fresh.
		for ci, st := range streams {
			t := &tallies[ci]
			freshPerHour := st.card.Upfront / float64(st.card.PeriodHours)
			for _, u := range st.users {
				want := 0
				if hour < len(u.NewRes) {
					want = u.NewRes[hour]
				}
				for k := 0; k < want; k++ {
					t.demand++
					if m != nil {
						m.MarketBuyOrders.Add(1)
					}
					d := book.Depth(st.card.Name)
					if d.Open == 0 || d.BestAsk > freshPerHour*float64(d.BestRemaining) {
						t.fresh++
						if m != nil {
							m.MarketFreshBuys.Add(1)
						}
						continue
					}
					trades, err := book.Buy(u.Trace.User, st.card.Name, 1)
					if err != nil {
						return nil, fmt.Errorf("experiments: buying %s at hour %d: %w", st.card.Name, hour, err)
					}
					tr := trades[0]
					wait := tr.Hour - tr.ListedAt
					t.used++
					t.sold++
					t.hoursToSale += wait
					t.paid += tr.PricePaid
					t.split += tr.Fee + tr.SellerProceeds
					t.proceeds += tr.SellerProceeds
					t.fees += tr.Fee
					if m != nil {
						m.MarketTrades.Add(1)
						m.MarketHoursToSale.Add(int64(wait))
					}
				}
			}
		}

		for ci, st := range streams {
			d := book.Depth(st.card.Name)
			t := &tallies[ci]
			t.depthSum += int64(d.Open)
			if d.Open > t.peakDepth {
				t.peakDepth = d.Open
			}
		}
	}

	res := &MarketResult{Horizon: horizon, Outcomes: make([]MarketOutcome, len(sc.Cards))}
	for ci, st := range streams {
		t := &tallies[ci]
		// Per-card conservation: fee+proceeds recomposes the price paid
		// bit-exactly per trade, so the trade-order sums must be equal.
		if t.paid != t.split {
			return nil, fmt.Errorf("experiments: market session conservation broken for %s: buyers paid %v, sellers+fees received %v",
				st.card.Name, t.paid, t.split)
		}
		var saleProb, meanWait, fillRate float64
		if t.listed > 0 {
			saleProb = float64(t.sold) / float64(t.listed)
		}
		if t.sold > 0 {
			meanWait = float64(t.hoursToSale) / float64(t.sold)
		}
		if t.demand > 0 {
			fillRate = float64(t.used) / float64(t.demand)
		}
		res.Outcomes[ci] = MarketOutcome{
			Type:            st.card.Name,
			Listed:          t.listed,
			Sold:            t.sold,
			Expired:         t.expired,
			OpenAtEnd:       book.Depth(st.card.Name).Open,
			SaleProbability: saleProb,
			MeanHoursToSale: meanWait,
			BuyerDemand:     t.demand,
			UsedFills:       t.used,
			FreshBuys:       t.fresh,
			FillRate:        fillRate,
			PeakDepth:       t.peakDepth,
			MeanDepth:       float64(t.depthSum) / float64(horizon),
			BuyerPaid:       t.paid,
			SellerProceeds:  t.proceeds,
			Fees:            t.fees,
		}
	}

	// Session-wide conservation, checked in the book's own trade order:
	// re-summing the ledger's recompositions must reproduce the paid
	// total bit-exactly, and the book's running totals must match their
	// ledger re-sums (both accumulate per trade in the same order).
	var paid, split, proceeds, fees float64
	for _, tr := range book.Trades() {
		paid += tr.PricePaid
		split += tr.Fee + tr.SellerProceeds
		proceeds += tr.SellerProceeds
		fees += tr.Fee
	}
	gotPaid, gotProceeds, gotFees := book.Totals()
	if paid != split || gotPaid != paid || gotProceeds != proceeds || gotFees != fees {
		return nil, fmt.Errorf("experiments: market session conservation broken: ledger re-sums (%v, %v, %v, %v) vs book totals (%v, %v, %v)",
			paid, split, proceeds, fees, gotPaid, gotProceeds, gotFees)
	}
	res.BuyerPaid = gotPaid
	res.SellerProceeds = gotProceeds
	res.Fees = gotFees
	return res, nil
}

// RenderMarketOutcomes renders the session's per-instance-type table:
// the paper's exogenous sale probability alpha and waiting time as
// measured quantities.
func RenderMarketOutcomes(res *MarketResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Two-sided market session — emergent sale probability over %d hours\n", res.Horizon)
	fmt.Fprintf(&b, "%-12s %7s %6s %8s %6s %8s %10s %7s %6s %6s %7s %8s\n",
		"type", "listed", "sold", "expired", "open", "P(sale)", "wait(h)", "demand", "used", "fresh", "fill", "fees($)")
	for _, o := range res.Outcomes {
		fmt.Fprintf(&b, "%-12s %7d %6d %8d %6d %8.3f %10.1f %7d %6d %6d %6.1f%% %8.2f\n",
			o.Type, o.Listed, o.Sold, o.Expired, o.OpenAtEnd, o.SaleProbability, o.MeanHoursToSale,
			o.BuyerDemand, o.UsedFills, o.FreshBuys, o.FillRate*100, o.Fees)
	}
	fmt.Fprintf(&b, "totals: buyers paid $%.2f = sellers $%.2f + fees $%.2f\n",
		res.BuyerPaid, res.SellerProceeds, res.Fees)
	return b.String()
}
