package experiments

// Grid-level differential suite for Config.Batch: every driver must
// return results bit-identical to the per-user engine — costs, norms,
// sold counts, Keep-Reserved baselines, market events — with matching
// error text, cancellation semantics, and spill stores that
// interchange between modes (Batch is execution plumbing, never part
// of the grid's identity).

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"rimarket/internal/obs"
	"rimarket/internal/simulate"
)

func withBatch(cfg Config) Config {
	cfg.Batch = true
	return cfg
}

// batchPlans builds a per-user and a batch plan over the same cohort.
func batchPlans(t *testing.T, cfg Config) (*CohortPlan, *CohortPlan) {
	t.Helper()
	ref, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewCohortPlan(context.Background(), withBatch(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return ref, bat
}

// TestBatchCohortEquivalence: the full paper pipeline — baselines, all
// six selling-policy cells, normalization — is bit-identical under the
// batch engine at every worker count, under -race.
func TestBatchCohortEquivalence(t *testing.T) {
	cfg := smallConfig()
	ref, err := RunCohort(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range parallelisms() {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			got, err := RunCohort(context.Background(), withBatch(withParallelism(cfg, par)))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Users, ref.Users) {
				t.Fatal("batch cohort differs from per-user cohort")
			}
		})
	}
}

// TestBatchGridEquivalence compares RunGrid cell by cell, including
// the cached Keep-Reserved baselines both grids normalize against.
func TestBatchGridEquivalence(t *testing.T) {
	cfg := smallConfig()
	refPlan, batPlan := batchPlans(t, cfg)
	ref, err := refPlan.RunGrid(context.Background(), resumeCells(t, cfg, refPlan))
	if err != nil {
		t.Fatal(err)
	}
	refKeeps, err := refPlan.KeepStats(context.Background(), refPlan.engineConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range parallelisms() {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			batPlan.cfg.Parallelism = par
			got, err := batPlan.RunGrid(context.Background(), resumeCells(t, cfg, batPlan))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatal("batch grid differs from per-user grid")
			}
		})
	}
	batKeeps, err := batPlan.KeepStats(context.Background(), batPlan.engineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batKeeps, refKeeps) {
		t.Fatal("batch KeepStats differ from per-user KeepStats (Total or IdleHours)")
	}
}

// TestBatchMarketSessionEquivalence: the sale events feeding market
// replay come out of the batch engine in the same order with the same
// hours, so the session statistics match exactly.
func TestBatchMarketSessionEquivalence(t *testing.T) {
	cfg := smallConfig()
	rates := []float64{0.05, 0.5}
	ref, err := MarketSession(context.Background(), cfg, rates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MarketSession(context.Background(), withBatch(cfg), rates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("batch market session differs from per-user session")
	}
}

// TestBatchErrorParity: the batch engine's first-invalid-user error is
// rewritten into the exact per-user error text, for both the grid (cell
// prefix) and the baseline (no prefix) call sites.
func TestBatchErrorParity(t *testing.T) {
	cfg := smallConfig()
	refPlan, batPlan := batchPlans(t, cfg)

	cells := []Cell{{Name: "poison", Policy: nil, Engine: refPlan.engineConfig()}}
	_, refErr := refPlan.RunGrid(context.Background(), cells)
	_, batErr := batPlan.RunGrid(context.Background(), cells)
	if refErr == nil || batErr == nil {
		t.Fatalf("nil-policy cell accepted: per-user %v, batch %v", refErr, batErr)
	}
	if refErr.Error() != batErr.Error() {
		t.Fatalf("grid error text diverges:\n  per-user: %v\n  batch:    %v", refErr, batErr)
	}

	// An invalid price card: it misses the per-card baseline cache (the
	// cache is keyed on the instance) and fails engine validation.
	bad := refPlan.engineConfig()
	bad.Instance.PeriodHours = 0
	_, refErr = refPlan.KeepStats(context.Background(), bad)
	_, batErr = batPlan.KeepStats(context.Background(), bad)
	if refErr == nil || batErr == nil {
		t.Fatalf("bad engine config accepted: per-user %v, batch %v", refErr, batErr)
	}
	if refErr.Error() != batErr.Error() {
		t.Fatalf("baseline error text diverges:\n  per-user: %v\n  batch:    %v", refErr, batErr)
	}
}

// TestBatchGridCancellation: cancelling a batch grid mid-flight drains
// the in-flight cell, discards it wholesale, and reports the completed
// prefix through the same *CancelError contract as the per-user pool.
func TestBatchGridCancellation(t *testing.T) {
	cfg := smallConfig()
	refPlan, batPlan := batchPlans(t, cfg)
	ref, err := refPlan.RunGrid(context.Background(), resumeCells(t, cfg, refPlan))
	if err != nil {
		t.Fatal(err)
	}
	refByName := make(map[string]CellResult, len(ref))
	for _, cell := range ref {
		refByName[cell.Name] = cell
	}
	warmBaseline(t, batPlan)

	for _, cancelAfter := range []int64{0, 1, 2} {
		t.Run(fmt.Sprintf("cancelAfter=%d", cancelAfter), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			orig := simulateRunBatchTotals
			simulateRunBatchTotals = func(ctx context.Context, users []simulate.BatchUser, ec simulate.Config, pol simulate.SellingPolicy, opts simulate.BatchOptions) ([]simulate.BatchTotal, error) {
				if calls.Add(1) > cancelAfter {
					cancel()
				}
				return orig(ctx, users, ec, pol, opts)
			}
			defer func() { simulateRunBatchTotals = orig }()

			got, err := batPlan.RunGrid(ctx, resumeCells(t, cfg, batPlan))
			if err == nil {
				t.Skip("cancellation raced completion; nothing to assert")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled in chain", err)
			}
			var ce *CancelError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CancelError", err)
			}
			if ce.Total != 3 {
				t.Errorf("CancelError.Total = %d, want 3", ce.Total)
			}
			if len(got) != len(ce.Completed) {
				t.Fatalf("%d results for %d completed names", len(got), len(ce.Completed))
			}
			for i, cell := range got {
				if cell.Name != ce.Completed[i] {
					t.Errorf("result %d named %q, CancelError says %q", i, cell.Name, ce.Completed[i])
				}
				if !reflect.DeepEqual(cell, refByName[cell.Name]) {
					t.Fatalf("completed cell %q differs from uncancelled per-user run", cell.Name)
				}
			}
		})
	}
}

// TestBatchSpillInterop: Batch is excluded from the grid's config hash,
// so a store spilled by one engine resumes under the other — in both
// directions — without recomputing a single cell.
func TestBatchSpillInterop(t *testing.T) {
	cfg := smallConfig()
	for _, dir := range []struct {
		name           string
		writer, reader bool
	}{
		{name: "per-user-to-batch", writer: false, reader: true},
		{name: "batch-to-per-user", writer: true, reader: false},
	} {
		t.Run(dir.name, func(t *testing.T) {
			spillDir := t.TempDir()
			wCfg := cfg
			wCfg.Batch = dir.writer
			wCfg.SpillDir = spillDir
			wPlan, err := NewCohortPlan(context.Background(), wCfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := wPlan.RunGrid(context.Background(), resumeCells(t, cfg, wPlan))
			if err != nil {
				t.Fatal(err)
			}

			rCfg := cfg
			rCfg.Batch = dir.reader
			rCfg.SpillDir = spillDir
			rCfg.Resume = true
			rPlan, err := NewCohortPlan(context.Background(), rCfg)
			if err != nil {
				t.Fatal(err)
			}
			// Baselines are per-plan caches, never spilled; warm them so
			// the instrumented window sees only cell work.
			warmBaseline(t, rPlan)
			// Any engine invocation would mean a cell failed to resume.
			origRun, origBatch := simulateRun, simulateRunBatchTotals
			var engineCalls atomic.Int64
			simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
				engineCalls.Add(1)
				return origRun(demand, newRes, ec, pol)
			}
			simulateRunBatchTotals = func(ctx context.Context, users []simulate.BatchUser, ec simulate.Config, pol simulate.SellingPolicy, opts simulate.BatchOptions) ([]simulate.BatchTotal, error) {
				engineCalls.Add(1)
				return origBatch(ctx, users, ec, pol, opts)
			}
			defer func() { simulateRun, simulateRunBatchTotals = origRun, origBatch }()

			got, err := rPlan.RunGrid(context.Background(), resumeCells(t, cfg, rPlan))
			if err != nil {
				t.Fatal(err)
			}
			if n := engineCalls.Load(); n != 0 {
				t.Fatalf("resume across engine modes recomputed: %d engine calls, want 0", n)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatal("resumed grid differs from the run that spilled it")
			}
		})
	}
}

// TestBatchObsParity pins the counter contract: a batch grid books the
// same job and cell totals as the per-user pool (one job per (cell,
// user) pair), plus its own batch-call counters, and the engine's
// per-run counters mean the same thing in both modes.
func TestBatchObsParity(t *testing.T) {
	cfg := smallConfig()
	snapshot := func(batch bool) *obs.Snapshot {
		c := cfg
		c.Batch = batch
		m := obs.New(obs.SystemClock)
		ctx := obs.WithMetrics(context.Background(), m)
		plan, err := NewCohortPlan(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.RunGrid(ctx, resumeCells(t, cfg, plan)); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot()
	}
	ref := snapshot(false)
	got := snapshot(true)

	if got.JobsTotal != ref.JobsTotal || got.JobsDone != ref.JobsDone {
		t.Errorf("batch jobs total/done = %d/%d, per-user %d/%d",
			got.JobsTotal, got.JobsDone, ref.JobsTotal, ref.JobsDone)
	}
	if got.CellsTotal != ref.CellsTotal || got.CellsDone != ref.CellsDone {
		t.Errorf("batch cells total/done = %d/%d, per-user %d/%d",
			got.CellsTotal, got.CellsDone, ref.CellsTotal, ref.CellsDone)
	}
	if got.EngineRuns != ref.EngineRuns || got.EngineHours != ref.EngineHours ||
		got.EngineInstances != ref.EngineInstances || got.EngineSold != ref.EngineSold {
		t.Errorf("engine counters diverge: batch %+v, per-user %+v", got, ref)
	}
	// Baseline (1 call) + three grid cells = 4 batch calls over the
	// whole cohort each.
	if got.BatchRuns != 4 || got.BatchUsers != 4*int64(cfg.PerGroup*3) {
		t.Errorf("batch calls = %d over %d users, want 4 over %d",
			got.BatchRuns, got.BatchUsers, 4*cfg.PerGroup*3)
	}
	if ref.BatchRuns != 0 || ref.BatchUsers != 0 {
		t.Errorf("per-user run booked batch counters: %d/%d", ref.BatchRuns, ref.BatchUsers)
	}
}

// TestBatchAtScaleConfig runs the full pipeline comparison once at
// TestScaleConfig — the shape integration tests use — guarding against
// divergence that only appears past the unit-test cohort size. Skipped
// in -short mode.
func TestBatchAtScaleConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("scale comparison skipped in -short mode")
	}
	cfg := TestScaleConfig()
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	ref, err := RunCohort(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCohort(context.Background(), withBatch(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Users, ref.Users) {
		t.Fatal("batch pipeline diverges from per-user pipeline at test scale")
	}
}
