package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestHourResellComparison(t *testing.T) {
	cfg := smallConfig()
	rows, err := HourResellComparison(context.Background(), cfg, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// gamma = 0 earns nothing: the baseline equals Keep-Reserved.
	if rows[0].ResellMean != 1 {
		t.Errorf("gamma 0 mean = %v, want 1", rows[0].ResellMean)
	}
	// The baseline's cost is linear and decreasing in gamma.
	if !(rows[2].ResellMean < rows[1].ResellMean && rows[1].ResellMean < rows[0].ResellMean) {
		t.Errorf("not monotone: %v %v %v", rows[0].ResellMean, rows[1].ResellMean, rows[2].ResellMean)
	}
	// The paper's algorithms are unaffected by gamma.
	if rows[0].A3T4Mean != rows[2].A3T4Mean || rows[0].AT4Mean != rows[2].AT4Mean {
		t.Error("period-sale means vary with gamma")
	}
	out := RenderHourResell(rows)
	if !strings.Contains(out, "hour-resell") || !strings.Contains(out, "winner") {
		t.Errorf("render:\n%s", out)
	}
}

func TestHourResellValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := HourResellComparison(context.Background(), cfg, nil); err == nil {
		t.Error("empty gammas accepted")
	}
	if _, err := HourResellComparison(context.Background(), cfg, []float64{2}); err == nil {
		t.Error("gamma above 1 accepted")
	}
	bad := cfg
	bad.Hours = 0
	if _, err := HourResellComparison(context.Background(), bad, []float64{0.5}); err == nil {
		t.Error("bad config accepted")
	}
}
