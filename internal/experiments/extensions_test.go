package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestExtensions(t *testing.T) {
	cfg := smallConfig()
	rows, err := Extensions(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := make(map[string]ExtensionRow, len(rows))
	for _, r := range rows {
		if r.MeanNormalized <= 0 || r.MeanNormalized > 1.2 {
			t.Errorf("%s: mean %v implausible", r.Policy, r.MeanNormalized)
		}
		byName[r.Policy] = r
	}
	// The multi-checkpoint policy dominates single A_{T/4} on average:
	// it makes the same first decision and gets extra chances to shed
	// the instance later.
	multi, single := byName["Multi{T/4,T/2,3T/4}"], byName[PolicyAT4]
	if multi.MeanNormalized > single.MeanNormalized+1e-9 {
		t.Errorf("multi mean %v worse than single A_{T/4} %v", multi.MeanNormalized, single.MeanNormalized)
	}
	out := RenderExtensions(rows)
	for _, want := range []string{"A_rand", "Multi", "worst increase"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionsRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Hours = 0
	if _, err := Extensions(context.Background(), cfg); err == nil {
		t.Error("bad config accepted")
	}
}

func TestExtensionsDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Extensions(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extensions(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestExtensionsRandomizedTamesTail asserts the reproduction's
// observation on the paper's future-work speculation: the exponential
// randomized algorithm's worst case is far below fixed A_{T/4}'s while
// keeping most of its average savings.
func TestExtensionsRandomizedTamesTail(t *testing.T) {
	if testing.Short() {
		t.Skip("cohort experiment skipped in -short mode")
	}
	cfg := TestScaleConfig()
	cfg.PerGroup = 40
	rows, err := Extensions(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]ExtensionRow, len(rows))
	for _, r := range rows {
		byName[r.Policy] = r
	}
	randExp := byName["A_rand exp(e^x/(e-1))"]
	fixed := byName[PolicyAT4]
	if randExp.Policy == "" || fixed.Policy == "" {
		t.Fatalf("rows missing: %+v", rows)
	}
	if randExp.WorstIncrease > fixed.WorstIncrease {
		t.Errorf("randomized worst %+.3f not below fixed A_{T/4} worst %+.3f",
			randExp.WorstIncrease, fixed.WorstIncrease)
	}
	if randExp.MeanNormalized >= 1 {
		t.Errorf("randomized mean %v does not save", randExp.MeanNormalized)
	}
}
