package experiments

// Property tests for the sharded, work-stealing scheduler (shard.go):
// deliberately skewed job costs — a heavy tail on a few cells — must
// not change a single output byte or the lowest-index-first-error
// pick at any parallelism, with stealing on or off, including when
// the failing or panicking job is one a thief claimed. Run under
// -race in CI, these are also the proof the stolen-claim path has no
// data races.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rimarket/internal/core"
	"rimarket/internal/simulate"
)

// spinWork burns deterministic CPU proportional to units and returns
// a value derived from it, so the compiler cannot elide the loop and
// the result is reproducible for assertions.
func spinWork(i, units int) float64 {
	acc := uint64(i) + 0x9e3779b97f4a7c15
	for k := 0; k < units; k++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	return float64(acc%1000) + float64(i)
}

// heavyTailUnits gives jobs at the front of the index space ~100x the
// work of the rest — the adversarial case for contiguous shards,
// because without stealing worker 0 serializes the whole tail.
func heavyTailUnits(i int) int {
	if i%64 == 0 {
		return 200_000
	}
	return 1_000
}

func TestShardedSkewDeterminism(t *testing.T) {
	const n = 192
	for _, stealing := range []bool{true, false} {
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = spinWork(i, heavyTailUnits(i))
		}
		for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			t.Run(fmt.Sprintf("steal=%v/par=%d", stealing, par), func(t *testing.T) {
				defer func(prev bool) { stealEnabled = prev }(stealEnabled)
				stealEnabled = stealing
				out := make([]float64, n)
				done, _, err := runShardedDone(context.Background(), par, n, func(_, i int) error {
					out[i] = spinWork(i, heavyTailUnits(i))
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range out {
					if !done[i] {
						t.Fatalf("job %d not marked done", i)
					}
					if out[i] != ref[i] {
						t.Fatalf("job %d = %v, want %v", i, out[i], ref[i])
					}
				}
			})
		}
	}
}

func TestShardedSkewFirstErrorDeterministic(t *testing.T) {
	const n = 192
	failAt := map[int]bool{3: true, 77: true, 130: true}
	for _, stealing := range []bool{true, false} {
		for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			t.Run(fmt.Sprintf("steal=%v/par=%d", stealing, par), func(t *testing.T) {
				defer func(prev bool) { stealEnabled = prev }(stealEnabled)
				stealEnabled = stealing
				ran := make([]bool, n)
				_, _, err := runShardedDone(context.Background(), par, n, func(_, i int) error {
					ran[i] = true
					spinWork(i, heavyTailUnits(i))
					if failAt[i] {
						return fmt.Errorf("job %d failed", i)
					}
					return nil
				})
				if err == nil || err.Error() != "job 3 failed" {
					t.Fatalf("err = %v, want the lowest-index failure (job 3)", err)
				}
				for i := 0; i < 3; i++ {
					if !ran[i] {
						t.Errorf("job %d below the failing index never ran", i)
					}
				}
			})
		}
	}
}

// TestShardedPanicFromStolenJob forces a steal and makes the stolen
// job panic. Worker 0's first job blocks until the last job of worker
// 0's own shard has run — which can only happen if another worker
// steals it — so the test deadlocks (and fails by watchdog) if
// stealing is broken, and otherwise proves a thief's panic is captured
// as a *JobPanicError under the lowest-index rule like any other
// failure.
func TestShardedPanicFromStolenJob(t *testing.T) {
	const (
		n       = 16
		workers = 4 // shards of 4: worker 0 owns jobs 0-3
	)
	release := make(chan struct{})
	_, stats, err := runShardedDone(context.Background(), workers, n, func(_, i int) error {
		switch i {
		case 0:
			select {
			case <-release:
			case <-time.After(10 * time.Second):
				t.Error("job 3 was never stolen: job 0 timed out waiting")
			}
		case 3:
			close(release)
			panic("boom from stolen job")
		}
		return nil
	})
	var pe *JobPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *JobPanicError", err)
	}
	if pe.Index != 3 {
		t.Fatalf("panic captured at index %d, want 3", pe.Index)
	}
	if pe.Value != "boom from stolen job" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if stats.steals == 0 {
		t.Fatal("no steals recorded despite the forced-steal construction")
	}
}

// TestGridSkewDeterminism runs the real RunGrid with the engine hook
// slowed down on a few cells (a deterministic spin before the real
// run), asserting the grid's results are exactly equal to the
// unskewed reference at parallelism {1, 4, NumCPU} — the end-to-end
// version of the scheduler property, through the plan cache, obs
// tracker, and result assembly.
func TestGridSkewDeterminism(t *testing.T) {
	cfg := smallConfig()
	ctx := context.Background()
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mkCells := func() []Cell {
		var cells []Cell
		for _, k := range []float64{0.25, 0.5, 0.75} {
			policy, err := core.NewThreshold(cfg.Instance, cfg.SellingDiscount, k)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, Cell{Name: fmt.Sprintf("k=%v", k), Policy: policy, Engine: plan.engineConfig()})
		}
		return cells
	}
	ref, err := plan.RunGrid(ctx, mkCells())
	if err != nil {
		t.Fatal(err)
	}

	// Make cell 0 heavy: every one of its engine runs spins before
	// delegating, so worker 0's shard is the hot spot thieves drain.
	orig := simulateRun
	var sink atomic.Uint64 // workers run the hook concurrently
	simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
		sink.Add(uint64(spinWork(0, 50_000)))
		return orig(demand, newRes, ec, pol)
	}
	defer func() { simulateRun = orig }()

	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			plan.cfg.Parallelism = par
			got, err := plan.RunGrid(ctx, mkCells())
			if err != nil {
				t.Fatal(err)
			}
			assertGridsEqual(t, got, ref)
		})
	}
}

// assertGridsEqual requires bit-exact equality between two grids —
// the byte-identical-at-any-parallelism contract, checked at float64
// bit granularity rather than tolerance.
func assertGridsEqual(t *testing.T, got, want []CellResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d cells, want %d", len(got), len(want))
	}
	for ci := range want {
		if got[ci].Name != want[ci].Name {
			t.Fatalf("cell %d named %q, want %q", ci, got[ci].Name, want[ci].Name)
		}
		for u := range want[ci].Cost {
			if got[ci].Cost[u] != want[ci].Cost[u] ||
				got[ci].Norm[u] != want[ci].Norm[u] ||
				got[ci].Sold[u] != want[ci].Sold[u] {
				t.Fatalf("cell %q user %d differs from reference", want[ci].Name, u)
			}
		}
	}
}
