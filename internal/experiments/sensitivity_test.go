package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestSensitivity(t *testing.T) {
	cfg := smallConfig()
	discounts := []float64{0.2, 0.8}
	fractions := []float64{0.25, 0.75}
	grid, err := Sensitivity(context.Background(), cfg, discounts, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Mean) != 2 || len(grid.Mean[0]) != 2 {
		t.Fatalf("grid shape = %dx%d", len(grid.Mean), len(grid.Mean[0]))
	}
	for i := range grid.Mean {
		for j, v := range grid.Mean[i] {
			if v <= 0 || v > 1.2 {
				t.Errorf("cell (%d,%d) = %v implausible", i, j, v)
			}
		}
	}
	// Higher a saves at least as much at every k (income grows and the
	// sell region widens).
	for j := range fractions {
		if grid.Mean[1][j] > grid.Mean[0][j]+1e-9 {
			t.Errorf("k=%v: a=0.8 mean %v above a=0.2 mean %v",
				fractions[j], grid.Mean[1][j], grid.Mean[0][j])
		}
	}
	out := RenderSensitivity(grid)
	if !strings.Contains(out, "a \\ k") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSensitivityValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := Sensitivity(context.Background(), cfg, nil, []float64{0.5}); err == nil {
		t.Error("empty discounts accepted")
	}
	if _, err := Sensitivity(context.Background(), cfg, []float64{0.5}, nil); err == nil {
		t.Error("empty fractions accepted")
	}
	if _, err := Sensitivity(context.Background(), cfg, []float64{0.5}, []float64{2}); err == nil {
		t.Error("invalid fraction accepted")
	}
	bad := cfg
	bad.Hours = 0
	if _, err := Sensitivity(context.Background(), bad, []float64{0.5}, []float64{0.5}); err == nil {
		t.Error("bad config accepted")
	}
}
