package experiments

import (
	"fmt"
	"sort"
	"strings"

	"rimarket/internal/pricing"
	"rimarket/internal/stats"
	"rimarket/internal/workload"
)

// Table1 renders the paper's Table I: the four payment options of an
// instance type (default d2.xlarge, US East, Linux).
func Table1(it pricing.InstanceType) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — pricing of %s (1-year term)\n", it.Name)
	fmt.Fprintf(&b, "%-16s %10s %10s %18s\n", "Payment Option", "Upfront", "Monthly", "Effective Hourly")
	for _, plan := range it.Plans() {
		if plan.Option == pricing.OnDemand {
			fmt.Fprintf(&b, "%-16s %10s %10s %18s\n", plan.Option,
				"-", "-", fmt.Sprintf("$%.3f per Hour", plan.Hourly))
			continue
		}
		fmt.Fprintf(&b, "%-16s %10s %10s %18s\n", plan.Option,
			fmt.Sprintf("$%.0f", plan.Upfront),
			fmt.Sprintf("$%.2f", plan.Monthly),
			fmt.Sprintf("$%.3f", plan.Hourly))
	}
	fmt.Fprintf(&b, "alpha = %.3f, theta = %.2f\n", it.Alpha(), it.Theta())
	return b.String()
}

// Fig2Stats summarizes demand fluctuation per group (the paper's
// Fig. 2).
type Fig2Stats struct {
	// Group is the fluctuation band.
	Group workload.Group
	// Count is the number of users in the band.
	Count int
	// MinRatio, MeanRatio, MaxRatio summarize sigma/mu inside the band.
	MinRatio, MeanRatio, MaxRatio float64
	// Ratios are the individual sigma/mu values, sorted.
	Ratios []float64
}

// Fig2 computes the per-group fluctuation statistics of a cohort.
func Fig2(r *CohortResult) []Fig2Stats {
	grouped := r.ByGroup()
	out := make([]Fig2Stats, 0, 3)
	for _, g := range []workload.Group{workload.GroupStable, workload.GroupModerate, workload.GroupVolatile} {
		users := grouped[g]
		st := Fig2Stats{Group: g, Count: len(users)}
		for _, u := range users {
			st.Ratios = append(st.Ratios, u.Fluctuation)
		}
		sort.Float64s(st.Ratios)
		if len(st.Ratios) > 0 {
			st.MinRatio = st.Ratios[0]
			st.MaxRatio = st.Ratios[len(st.Ratios)-1]
			st.MeanRatio = stats.Mean(st.Ratios)
		}
		out = append(out, st)
	}
	return out
}

// RenderFig2 renders Fig. 2 as per-group histograms of sigma/mu.
func RenderFig2(groups []Fig2Stats) string {
	var b strings.Builder
	b.WriteString("Fig. 2 — demand fluctuation (sigma/mu) per user group\n")
	for _, g := range groups {
		fmt.Fprintf(&b, "\n%s: %d users, sigma/mu in [%.2f, %.2f], mean %.2f\n",
			g.Group, g.Count, g.MinRatio, g.MaxRatio, g.MeanRatio)
		if len(g.Ratios) == 0 {
			continue
		}
		edges, counts, err := stats.Histogram(g.Ratios, 6)
		if err == nil {
			b.WriteString(stats.RenderHistogram(edges, counts, 40))
		}
	}
	return b.String()
}

// Fig3Summary is the paper's Fig. 3 for one online algorithm: the CDF
// of normalized cost against the All-Selling and Keep-Reserved
// benchmarks over all users, plus the headline fractions the paper
// quotes ("more than 60% of users reduce their costs", ...).
type Fig3Summary struct {
	// Policy is the online algorithm under test.
	Policy string
	// AllSellingPolicy is the matching All-Selling benchmark.
	AllSellingPolicy string
	// OnlineCDF and AllSellingCDF are the normalized-cost CDFs
	// (Keep-Reserved is the constant 1.0 by construction).
	OnlineCDF, AllSellingCDF *stats.CDF
	// FracSaved is the fraction of users with normalized cost < 1.
	FracSaved float64
	// FracSaved20 and FracSaved30 are fractions saving more than
	// 20% and 30%.
	FracSaved20, FracSaved30 float64
	// FracWorse is the fraction of users paying more than before.
	FracWorse float64
	// WorstIncrease is the largest normalized-cost excess over 1.
	WorstIncrease float64
	// MeanNormalized is the average normalized cost.
	MeanNormalized float64
	// Summary is the full distribution summary of the online policy's
	// normalized costs.
	Summary stats.Summary
}

// allSellingFor maps an online policy to its matching benchmark.
func allSellingFor(policy string) string {
	switch policy {
	case PolicyA3T4:
		return PolicySell3T4
	case PolicyAT2:
		return PolicySellT2
	case PolicyAT4:
		return PolicySellT4
	default:
		return ""
	}
}

// Fig3 computes the Fig. 3 summary for one online policy over a user
// slice (all users for the paper's Fig. 3; a single group for Fig. 4's
// per-group reading).
func Fig3(users []UserResult, policy string) (Fig3Summary, error) {
	bench := allSellingFor(policy)
	if bench == "" {
		return Fig3Summary{}, fmt.Errorf("experiments: %q is not an online selling policy", policy)
	}
	online := NormalizedCosts(users, policy)
	selling := NormalizedCosts(users, bench)
	summary, err := stats.Summarize(online)
	if err != nil {
		return Fig3Summary{}, fmt.Errorf("experiments: %w", err)
	}
	sum := Fig3Summary{
		Policy:           policy,
		AllSellingPolicy: bench,
		OnlineCDF:        stats.NewCDF(online),
		AllSellingCDF:    stats.NewCDF(selling),
		FracSaved:        stats.FractionBelow(online, 1.0),
		FracSaved20:      stats.FractionBelow(online, 0.8),
		FracSaved30:      stats.FractionBelow(online, 0.7),
		FracWorse:        stats.FractionAbove(online, 1.0),
		MeanNormalized:   stats.Mean(online),
		Summary:          summary,
	}
	for _, v := range online {
		if v-1 > sum.WorstIncrease {
			sum.WorstIncrease = v - 1
		}
	}
	return sum, nil
}

// RenderFig3 renders one Fig. 3 panel as an ASCII CDF chart plus the
// headline fractions.
func RenderFig3(sum Fig3Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — normalized cost CDF, %s vs %s vs %s\n",
		sum.Policy, sum.AllSellingPolicy, PolicyKeep)
	series := []stats.Series{
		{Name: sum.Policy, Points: sum.OnlineCDF.Points(60)},
		{Name: sum.AllSellingPolicy, Points: sum.AllSellingCDF.Points(60)},
	}
	b.WriteString(stats.RenderCDFs(series, 60, 14))
	fmt.Fprintf(&b, "users saving: %.0f%%   saving >20%%: %.0f%%   saving >30%%: %.0f%%   paying more: %.0f%% (worst +%.1f%%)\n",
		sum.FracSaved*100, sum.FracSaved20*100, sum.FracSaved30*100,
		sum.FracWorse*100, sum.WorstIncrease*100)
	fmt.Fprintf(&b, "mean normalized cost: %.4f (Keep-Reserved = 1)\n", sum.MeanNormalized)
	fmt.Fprintf(&b, "distribution: %s\n", sum.Summary)
	return b.String()
}

// Fig4Group is one panel of the paper's Fig. 4: the three online
// algorithms compared within one fluctuation group.
type Fig4Group struct {
	// Group is the fluctuation band.
	Group workload.Group
	// CDFs maps each online policy to its normalized-cost CDF.
	CDFs map[string]*stats.CDF
	// Means maps each online policy to its mean normalized cost.
	Means map[string]float64
}

// Fig4 computes the per-group comparison of the three online
// algorithms.
func Fig4(r *CohortResult) []Fig4Group {
	grouped := r.ByGroup()
	out := make([]Fig4Group, 0, 3)
	for _, g := range []workload.Group{workload.GroupStable, workload.GroupModerate, workload.GroupVolatile} {
		users := grouped[g]
		fg := Fig4Group{
			Group: g,
			CDFs:  make(map[string]*stats.CDF, len(SellingPolicies)),
			Means: make(map[string]float64, len(SellingPolicies)),
		}
		for _, p := range SellingPolicies {
			costs := NormalizedCosts(users, p)
			fg.CDFs[p] = stats.NewCDF(costs)
			fg.Means[p] = stats.Mean(costs)
		}
		out = append(out, fg)
	}
	return out
}

// RenderFig4 renders one Fig. 4 panel.
func RenderFig4(fg Fig4Group) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — normalized cost CDFs in %s\n", fg.Group)
	series := make([]stats.Series, 0, len(SellingPolicies))
	for _, p := range SellingPolicies {
		series = append(series, stats.Series{Name: p, Points: fg.CDFs[p].Points(60)})
	}
	b.WriteString(stats.RenderCDFs(series, 60, 14))
	for _, p := range SellingPolicies {
		fmt.Fprintf(&b, "mean normalized cost %-10s %.4f\n", p, fg.Means[p])
	}
	return b.String()
}

// Table2 renders the paper's Table II: the actual cost of each online
// algorithm and Keep-Reserved for the cohort's most volatile user.
func Table2(r *CohortResult) (string, error) {
	u, err := r.ExtremeVolatileUser()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — actual cost for the most fluctuating user (%s, sigma/mu = %.2f, behavior %s)\n",
		u.User, u.Fluctuation, u.Behavior)
	fmt.Fprintf(&b, "%-14s %-14s %-14s %-14s\n", PolicyA3T4, PolicyAT2, PolicyAT4, PolicyKeep)
	fmt.Fprintf(&b, "%-14.4g %-14.4g %-14.4g %-14.4g\n",
		u.Costs[PolicyA3T4], u.Costs[PolicyAT2], u.Costs[PolicyAT4], u.Costs[PolicyKeep])
	return b.String(), nil
}

// Table3Row is one row of the paper's Table III.
type Table3Row struct {
	// Policy is the online algorithm.
	Policy string
	// Group1, Group2, Group3 and All are mean normalized costs.
	Group1, Group2, Group3, All float64
}

// Table3 computes the paper's Table III: average normalized cost per
// group and over all users, per online algorithm.
func Table3(r *CohortResult) []Table3Row {
	grouped := r.ByGroup()
	rows := make([]Table3Row, 0, len(SellingPolicies))
	for _, p := range SellingPolicies {
		row := Table3Row{
			Policy: p,
			Group1: stats.Mean(NormalizedCosts(grouped[workload.GroupStable], p)),
			Group2: stats.Mean(NormalizedCosts(grouped[workload.GroupModerate], p)),
			Group3: stats.Mean(NormalizedCosts(grouped[workload.GroupVolatile], p)),
			All:    stats.Mean(NormalizedCosts(r.Users, p)),
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable3 renders Table III.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table III — average cost performance (normalized to Keep-Reserved)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %10s\n", "", "Group 1", "Group 2", "Group 3", "All users")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-10s %8.4f %8.4f %8.4f %10.4f\n",
			row.Policy, row.Group1, row.Group2, row.Group3, row.All)
	}
	return b.String()
}
