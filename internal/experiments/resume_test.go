package experiments

// Crash/resume differential suite — the proof the issue asks for: a
// grid interrupted mid-flight and resumed by a fresh plan (modelling a
// process restart) must produce results byte-identical to a run that
// was never interrupted, at parallelism {1, 4, NumCPU}, under -race,
// and must recompute exactly the cells that were not fully spilled.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"rimarket/internal/core"
	"rimarket/internal/simulate"
)

// resumeCells builds the same three-cell threshold grid for any plan,
// so the reference run and each crash/resume pair evaluate identical
// work from independently-constructed plans.
func resumeCells(t *testing.T, cfg Config, plan *CohortPlan) []Cell {
	t.Helper()
	cells := make([]Cell, 0, 3)
	for _, k := range []float64{0.25, 0.5, 0.75} {
		policy, err := core.NewThreshold(cfg.Instance, cfg.SellingDiscount, k)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, Cell{Name: fmt.Sprintf("k=%v", k), Policy: policy, Engine: plan.engineConfig()})
	}
	return cells
}

// warmBaseline computes the plan's Keep-Reserved baseline outside the
// instrumented window, so the simulateRun hooks below observe (and
// count) only the grid's own engine runs.
func warmBaseline(t *testing.T, plan *CohortPlan) {
	t.Helper()
	if _, err := plan.KeepStats(context.Background(), plan.engineConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestGridCrashResumeDifferential(t *testing.T) {
	cfg := smallConfig()
	refPlan, err := NewCohortPlan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refPlan.RunGrid(context.Background(), resumeCells(t, cfg, refPlan))
	if err != nil {
		t.Fatal(err)
	}
	users := refPlan.Len()

	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, cancelAfter := range []int64{0, 1, int64(users), 2 * int64(users)} {
			t.Run(fmt.Sprintf("par=%d/cancelAfter=%d", par, cancelAfter), func(t *testing.T) {
				spillDir := t.TempDir()

				// Crash phase: a fresh plan spills until the hook pulls the
				// plug mid-grid.
				crashCfg := cfg
				crashCfg.Parallelism = par
				crashCfg.SpillDir = spillDir
				crashPlan, err := NewCohortPlan(context.Background(), crashCfg)
				if err != nil {
					t.Fatal(err)
				}
				warmBaseline(t, crashPlan)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var calls atomic.Int64
				orig := simulateRun
				simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
					if calls.Add(1) > cancelAfter {
						cancel()
					}
					return orig(demand, newRes, ec, pol)
				}
				_, err = crashPlan.RunGrid(ctx, resumeCells(t, cfg, crashPlan))
				simulateRun = orig
				if err == nil {
					t.Skip("cancellation raced completion; nothing to resume")
				}
				var ce *CancelError
				if !errors.As(err, &ce) {
					t.Fatalf("interrupted grid returned %v, want *CancelError", err)
				}

				// Resume phase: another fresh plan (the restarted process),
				// deliberately at a different parallelism — the spilled
				// shards must validate regardless of worker count.
				resumePar := 1
				if par == 1 {
					resumePar = 4
				}
				resumeCfg := cfg
				resumeCfg.Parallelism = resumePar
				resumeCfg.SpillDir = spillDir
				resumeCfg.Resume = true
				resumePlan, err := NewCohortPlan(context.Background(), resumeCfg)
				if err != nil {
					t.Fatal(err)
				}
				warmBaseline(t, resumePlan)
				var recomputed atomic.Int64
				simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
					recomputed.Add(1)
					return orig(demand, newRes, ec, pol)
				}
				defer func() { simulateRun = orig }()
				got, err := resumePlan.RunGrid(context.Background(), resumeCells(t, cfg, resumePlan))
				if err != nil {
					t.Fatalf("resume failed: %v", err)
				}
				assertGridsEqual(t, got, ref)

				// Exactly the cells the crash did not finish are recomputed:
				// every name in CancelError.Completed was spilled whole.
				want := int64(len(ref)-len(ce.Completed)) * int64(users)
				if recomputed.Load() != want {
					t.Errorf("resume ran the engine %d times, want %d (%d of %d cells resumed)",
						recomputed.Load(), want, len(ce.Completed), len(ref))
				}
			})
		}
	}
}

// TestGridResumeAfterCompletion pins the no-op resume: a grid whose
// spill store is complete recomputes nothing and still returns the
// byte-identical result.
func TestGridResumeAfterCompletion(t *testing.T) {
	cfg := smallConfig()
	spillDir := t.TempDir()

	firstCfg := cfg
	firstCfg.SpillDir = spillDir
	firstPlan, err := NewCohortPlan(context.Background(), firstCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := firstPlan.RunGrid(context.Background(), resumeCells(t, cfg, firstPlan))
	if err != nil {
		t.Fatal(err)
	}

	resumeCfg := cfg
	resumeCfg.SpillDir = spillDir
	resumeCfg.Resume = true
	resumePlan, err := NewCohortPlan(context.Background(), resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	warmBaseline(t, resumePlan)
	var recomputed atomic.Int64
	orig := simulateRun
	simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
		recomputed.Add(1)
		return orig(demand, newRes, ec, pol)
	}
	defer func() { simulateRun = orig }()
	got, err := resumePlan.RunGrid(context.Background(), resumeCells(t, cfg, resumePlan))
	if err != nil {
		t.Fatal(err)
	}
	assertGridsEqual(t, got, ref)
	if recomputed.Load() != 0 {
		t.Errorf("complete store still triggered %d engine runs", recomputed.Load())
	}
}

// TestGridResumeTornTail damages the spill store the way a crash
// mid-append would — a torn record at the tail of a shard — and
// asserts the resume re-runs exactly the lost cell and nothing else,
// with the final grid still byte-identical.
func TestGridResumeTornTail(t *testing.T) {
	cfg := smallConfig()
	spillDir := t.TempDir()

	firstCfg := cfg
	firstCfg.Parallelism = 1 // one shard, records in cell order
	firstCfg.SpillDir = spillDir
	firstPlan, err := NewCohortPlan(context.Background(), firstCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := firstPlan.RunGrid(context.Background(), resumeCells(t, cfg, firstPlan))
	if err != nil {
		t.Fatal(err)
	}

	shard := filepath.Join(spillDir, "grid", "shard-000.grid")
	info, err := os.Stat(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(shard, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	resumeCfg := cfg
	resumeCfg.SpillDir = spillDir
	resumeCfg.Resume = true
	resumePlan, err := NewCohortPlan(context.Background(), resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	warmBaseline(t, resumePlan)
	var recomputed atomic.Int64
	orig := simulateRun
	simulateRun = func(demand, newRes []int, ec simulate.Config, pol simulate.SellingPolicy) (simulate.Result, error) {
		recomputed.Add(1)
		return orig(demand, newRes, ec, pol)
	}
	defer func() { simulateRun = orig }()
	got, err := resumePlan.RunGrid(context.Background(), resumeCells(t, cfg, resumePlan))
	if err != nil {
		t.Fatal(err)
	}
	assertGridsEqual(t, got, ref)
	if want := int64(resumePlan.Len()); recomputed.Load() != want {
		t.Errorf("torn tail re-ran the engine %d times, want %d (one cell)", recomputed.Load(), want)
	}
}
