package experiments

import (
	"context"
	"sync"
	"sync/atomic"

	"rimarket/internal/obs"
)

// This file is the package's fan-out scheduler: a sharded,
// work-stealing worker pool with per-worker result accumulators,
// merged deterministically after the pool joins (DESIGN.md §4.5).
//
// Each worker owns a contiguous shard of the job index space and
// claims from its own shard's atomic cursor. A worker whose shard is
// exhausted steals from the victim with the most remaining jobs, via
// the same cursor — so every job is still claimed exactly once, and a
// few heavy cells at one end of a grid no longer serialize the sweep
// behind a single unlucky worker. Because jobs write only their own
// index and completions/failures are merged in index order at the
// end, the output stays byte-identical at any parallelism and the
// lowest-index-first-error rule is preserved exactly.

// stealEnabled gates the stealing phase of claim. It exists for the
// BenchmarkGridSkewed pair (stealing on vs off under a heavy-tail
// grid) and for tests that pin the no-stealing tail behavior;
// production code never touches it and it must only be flipped while
// no pool is running.
var stealEnabled = true

// shardStats reports one fan-out's scheduling behavior. Steals is
// inherently timing-dependent (a fast machine steals less), so it
// feeds observability and benchmarks only — never results.
type shardStats struct {
	// steals counts jobs claimed from another worker's shard.
	steals int64
}

// indexedErr is one failed job in a worker's private log.
type indexedErr struct {
	i   int
	err error
}

// workerLog is one worker's private accumulator. Only its owning
// goroutine touches it while the pool runs; the merge loop reads all
// logs after wg.Wait, so no field needs atomics.
type workerLog struct {
	completed []int
	failed    []indexedErr
	steals    int64
}

// cursor is a shard's claim index, padded out to its own cache line so
// workers hammering neighboring shards do not false-share.
type cursor struct {
	next atomic.Int64
	_    [56]byte
}

// claimJob returns the next job for worker w: the head of w's own
// shard while it lasts, then — when stealing is enabled — a job from
// the victim with the most remaining work. Returns -1 when no shard
// has jobs left. bounds[v]..bounds[v+1] is worker v's shard.
func claimJob(cursors []cursor, bounds []int64, w int, stealing bool, lg *workerLog) int {
	if c := &cursors[w]; c.next.Load() < bounds[w+1] {
		if i := c.next.Add(1) - 1; i < bounds[w+1] {
			return int(i)
		}
	}
	if !stealing {
		return -1
	}
	for {
		victim, best := -1, int64(0)
		for v := range cursors {
			if v == w {
				continue
			}
			if rem := bounds[v+1] - cursors[v].next.Load(); rem > best {
				victim, best = v, rem
			}
		}
		if victim < 0 {
			return -1
		}
		// The claim may race another thief past the shard end; rescan.
		if i := cursors[victim].next.Add(1) - 1; i < bounds[victim+1] {
			lg.steals++
			return int(i)
		}
	}
}

// runShardedDone evaluates fn(worker, 0..n-1) over the sharded,
// work-stealing pool and returns the completion bitmap, scheduling
// stats, and the fan-out error. It preserves runIndexed's contract
// verbatim (see that doc comment): deterministic outputs at any
// parallelism, lowest-index-first-error with full drain below the
// best-known failing index, panic containment via *JobPanicError, and
// drain-don't-interrupt cancellation. fn additionally receives the
// claiming worker's id, which spill-to-disk uses to route each
// completed cell to that worker's shard file.
func runShardedDone(ctx context.Context, parallelism, n int, fn func(worker, i int) error) ([]bool, shardStats, error) {
	done := make([]bool, n)
	if n <= 0 {
		return done, shardStats{}, ctx.Err()
	}
	// Job accounting is observation only: the counters feed progress
	// lines and the manifest, never scheduling, so the pool's claiming
	// order and lowest-index-error rule are untouched.
	m := obs.FromContext(ctx)
	if m != nil {
		m.JobsTotal.Add(int64(n))
	}
	workers := workerCount(parallelism, n)
	bounds := make([]int64, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = int64(w) * int64(n) / int64(workers)
	}
	cursors := make([]cursor, workers)
	for w := range cursors {
		cursors[w].next.Store(bounds[w])
	}
	logs := make([]workerLog, workers)
	stealing := stealEnabled
	var (
		wg     sync.WaitGroup
		minErr atomic.Int64
	)
	minErr.Store(int64(n))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lg := &logs[w]
			for {
				if ctx.Err() != nil {
					return // stop claiming; in-flight jobs drain elsewhere
				}
				i := claimJob(cursors, bounds, w, stealing, lg)
				if i < 0 {
					return
				}
				if int64(i) > minErr.Load() {
					continue // canceled: a lower-index job already failed
				}
				if err := runJob(i, func(i int) error { return fn(w, i) }); err != nil {
					lg.failed = append(lg.failed, indexedErr{i: i, err: err})
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				} else {
					lg.completed = append(lg.completed, i)
					if m != nil {
						m.JobsDone.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Deterministic merge: fold every worker's private log into the
	// shared bitmap and pick the lowest-index failure, regardless of
	// which worker hit it or when.
	var stats shardStats
	var firstErr error
	firstIdx := n
	for w := range logs {
		stats.steals += logs[w].steals
		for _, i := range logs[w].completed {
			done[i] = true
		}
		for _, fe := range logs[w].failed {
			if fe.i < firstIdx {
				firstIdx, firstErr = fe.i, fe.err
			}
		}
	}
	if m != nil {
		m.JobsStolen.Add(stats.steals)
	}
	if firstErr != nil {
		return done, stats, firstErr
	}
	if err := ctx.Err(); err != nil {
		// Cancellation may race the tail of the run: if every job in
		// fact completed, the results are whole and the run succeeded.
		for _, d := range done {
			if !d {
				return done, stats, err
			}
		}
	}
	return done, stats, nil
}
