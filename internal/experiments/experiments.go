// Package experiments reproduces the paper's evaluation (Section VI):
// it synthesizes the 300-user cohort, imitates reservation behavior
// with the four purchasing algorithms, replays every selling policy
// through the cost engine, and renders each of the paper's tables and
// figures (Table I-III, Fig. 2-4) plus the reproduction's extra
// ablation sweeps.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"rimarket/internal/core"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/workload"
)

// Policy names used as keys in per-user cost maps.
const (
	PolicyKeep    = "Keep-Reserved"
	PolicyA3T4    = "A_{3T/4}"
	PolicyAT2     = "A_{T/2}"
	PolicyAT4     = "A_{T/4}"
	PolicySell3T4 = "All-Selling@3T/4"
	PolicySellT2  = "All-Selling@T/2"
	PolicySellT4  = "All-Selling@T/4"
)

// SellingPolicies lists the online algorithms in presentation order.
var SellingPolicies = []string{PolicyA3T4, PolicyAT2, PolicyAT4}

// Behaviors names the paper's four reservation-behavior imitators
// (Section VI.A).
var Behaviors = []string{"all-reserved", "random", "wang-online", "wang-variant"}

// Config parameterizes one cohort experiment.
type Config struct {
	// Instance is the price card; the paper uses d2.xlarge. Its
	// PeriodHours may be scaled down from a year for fast runs — the
	// break-even math is scale-free.
	Instance pricing.InstanceType
	// SellingDiscount is the seller's listing discount a.
	SellingDiscount float64
	// MarketFee is the marketplace's cut of sale income (0 matches the
	// paper's Eq. (1); 0.12 models Amazon's fee).
	MarketFee float64
	// PerGroup is the number of users per fluctuation group (paper: 100).
	PerGroup int
	// Hours is the simulation horizon (paper: one reservation period).
	Hours int
	// Seed makes the cohort and the random purchasing behavior
	// reproducible.
	Seed int64
	// Parallelism bounds the worker goroutines evaluating users
	// concurrently; 0 means GOMAXPROCS. Results are identical at any
	// parallelism: every user's work is seeded independently and results
	// are returned in cohort order.
	Parallelism int
	// Batch switches the drivers from one simulate.Run per (cell, user)
	// pair to the streaming batch engine (simulate.RunBatchTotals),
	// which advances a whole cohort one hour per outer step over
	// struct-of-arrays state. Results are bit-identical either way —
	// pinned by the differential suite in batch_test.go — so Batch is
	// execution plumbing like Parallelism: it changes no result and is
	// excluded from the grid's config hash, letting spill stores
	// interchange between modes.
	Batch bool
	// SpillDir, when non-empty, streams each fully-completed grid cell
	// to a resumable on-disk store under SpillDir/<grid-label>
	// (internal/gridstore), so an interrupted sweep can continue
	// instead of restarting. Like Parallelism, it is execution
	// plumbing: it changes no result and is excluded from the grid's
	// config hash.
	SpillDir string
	// Resume makes RunGrid load the valid cells already present in
	// SpillDir — validated against the grid's config hash, seed, and
	// cell list — and recompute only the missing or invalid ones.
	// Requires SpillDir.
	Resume bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Instance.Validate(); err != nil {
		return err
	}
	if c.SellingDiscount < 0 || c.SellingDiscount > 1 {
		return fmt.Errorf("experiments: selling discount %v outside [0, 1]", c.SellingDiscount)
	}
	if c.PerGroup <= 0 {
		return fmt.Errorf("experiments: PerGroup %d must be positive", c.PerGroup)
	}
	if c.Hours <= 0 {
		return fmt.Errorf("experiments: Hours %d must be positive", c.Hours)
	}
	if c.Resume && c.SpillDir == "" {
		return fmt.Errorf("experiments: Resume requires SpillDir")
	}
	return nil
}

// DefaultConfig returns the paper's settings at full scale: d2.xlarge,
// a = 0.8, 100 users per group, a one-year horizon.
func DefaultConfig() Config {
	return Config{
		Instance:        pricing.D2XLarge(),
		SellingDiscount: 0.8,
		PerGroup:        100,
		Hours:           pricing.HoursPerYear,
		Seed:            2018, // the paper's publication year; any fixed seed works
	}
}

// TestScaleConfig returns a smaller configuration (scaled period and
// cohort) that preserves every shape the paper reports while running in
// well under a second; used by tests, benches and the quickstart.
func TestScaleConfig() Config {
	it := pricing.D2XLarge()
	// Scale the year down to 60 days, shrinking the upfront fee by the
	// same factor so alpha and theta (and hence break-evens and bounds)
	// are unchanged.
	scale := 6.0
	it.PeriodHours = int(float64(pricing.HoursPerYear) / scale)
	it.Upfront /= scale
	return Config{
		Instance:        it,
		SellingDiscount: 0.8,
		PerGroup:        30,
		Hours:           it.PeriodHours,
		Seed:            2018,
	}
}

// UserResult is one user's outcome across all selling policies.
type UserResult struct {
	// User names the synthetic user.
	User string
	// Group is the user's demand-fluctuation band.
	Group workload.Group
	// Fluctuation is the user's sigma/mu.
	Fluctuation float64
	// Behavior is the purchasing algorithm that imitated the user's
	// reservations (assigned round-robin across the cohort).
	Behavior string
	// Reserved is the total number of instances the behavior reserved.
	Reserved int
	// Costs maps policy name to the run's total cost (Eq. 1).
	Costs map[string]float64
	// Normalized maps policy name to cost / Keep-Reserved cost.
	Normalized map[string]float64
	// Sold maps policy name to the number of instances sold.
	Sold map[string]int
}

// CohortResult is a completed cohort experiment.
type CohortResult struct {
	// Config echoes the experiment's parameters.
	Config Config
	// Users holds one result per user, in cohort order.
	Users []UserResult
}

// RunCohort executes the full pipeline: cohort synthesis, reservation
// planning, and one engine run per (user, selling policy). Cancelling
// ctx drains in-flight engine runs and surfaces an error satisfying
// errors.Is(err, context.Canceled).
func RunCohort(ctx context.Context, cfg Config) (*CohortResult, error) {
	plan, err := NewCohortPlan(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return plan.Cohort(ctx)
}

// RunTraces evaluates externally supplied user traces — e.g. real EC2
// usage logs loaded with gtrace.LoadEC2LogDir — through the same
// pipeline as RunCohort. Each trace is clipped or zero-padded to
// cfg.Hours; fluctuation groups come from the traces themselves, so
// group sizes need not be balanced. cfg.PerGroup is ignored.
func RunTraces(ctx context.Context, cfg Config, traces []workload.Trace) (*CohortResult, error) {
	plan, err := PlanTraces(ctx, cfg, traces)
	if err != nil {
		return nil, err
	}
	return plan.Cohort(ctx)
}

// Cohort evaluates the paper's full policy set on the plan: one grid
// cell per selling policy, with the Keep-Reserved baseline coming from
// the plan's cache instead of a per-user rerun.
func (p *CohortPlan) Cohort(ctx context.Context) (*CohortResult, error) {
	policies, err := buildPolicies(p.cfg)
	if err != nil {
		return nil, err
	}
	engCfg := p.engineConfig()
	keeps, err := p.KeepStats(ctx, engCfg)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(policies)-1)
	for _, np := range policies {
		if np.name == PolicyKeep {
			continue // baseline comes from KeepStats
		}
		cells = append(cells, Cell{Name: np.name, Policy: np.policy, Engine: engCfg})
	}
	grid, err := p.RunGridNamed(ctx, "cohort", cells)
	if err != nil {
		return nil, err
	}

	res := &CohortResult{Config: p.cfg, Users: make([]UserResult, len(p.users))}
	for i, u := range p.users {
		ur := UserResult{
			User:        u.Trace.User,
			Group:       workload.Classify(u.Trace),
			Fluctuation: u.Trace.FluctuationRatio(),
			Behavior:    u.Behavior,
			Reserved:    u.Reserved,
			Costs:       make(map[string]float64, len(policies)),
			Normalized:  make(map[string]float64, len(policies)),
			Sold:        make(map[string]int, len(policies)),
		}
		ur.Costs[PolicyKeep] = keeps[i].Total
		ur.Sold[PolicyKeep] = 0
		for c, cell := range cells {
			ur.Costs[cell.Name] = grid[c].Cost[i]
			ur.Sold[cell.Name] = grid[c].Sold[i]
		}
		keep := keeps[i].Total
		for name, cost := range ur.Costs {
			if keep != 0 {
				ur.Normalized[name] = cost / keep
			} else {
				ur.Normalized[name] = 1
			}
		}
		res.Users[i] = ur
	}
	return res, nil
}

// namedPolicy pairs a selling policy with its presentation name.
type namedPolicy struct {
	name   string
	policy simulate.SellingPolicy
}

func buildPolicies(cfg Config) ([]namedPolicy, error) {
	a3, err := core.NewA3T4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	a2, err := core.NewAT2(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	a4, err := core.NewAT4(cfg.Instance, cfg.SellingDiscount)
	if err != nil {
		return nil, err
	}
	s3, err := core.NewAllSelling(core.Fraction3T4)
	if err != nil {
		return nil, err
	}
	s2, err := core.NewAllSelling(core.FractionT2)
	if err != nil {
		return nil, err
	}
	s4, err := core.NewAllSelling(core.FractionT4)
	if err != nil {
		return nil, err
	}
	return []namedPolicy{
		{name: PolicyKeep, policy: core.KeepReserved{}},
		{name: PolicyA3T4, policy: a3},
		{name: PolicyAT2, policy: a2},
		{name: PolicyAT4, policy: a4},
		{name: PolicySell3T4, policy: s3},
		{name: PolicySellT2, policy: s2},
		{name: PolicySellT4, policy: s4},
	}, nil
}

func behaviorPolicy(cfg Config, behavior string, seed int64) (purchasing.Policy, error) {
	switch behavior {
	case "all-reserved":
		return purchasing.AllReserved{}, nil
	case "random":
		return purchasing.NewRandom(cfg.Seed ^ seed), nil
	case "wang-online":
		return purchasing.NewWangOnline(cfg.Instance), nil
	case "wang-variant":
		return purchasing.NewWangVariant(cfg.Instance), nil
	default:
		return nil, fmt.Errorf("experiments: unknown behavior %q", behavior)
	}
}

// ByGroup partitions user results by fluctuation group.
func (r *CohortResult) ByGroup() map[workload.Group][]UserResult {
	out := make(map[workload.Group][]UserResult, 3)
	for _, u := range r.Users {
		out[u.Group] = append(out[u.Group], u)
	}
	return out
}

// NormalizedCosts extracts the normalized cost of one policy across a
// user slice.
func NormalizedCosts(users []UserResult, policy string) []float64 {
	out := make([]float64, 0, len(users))
	for _, u := range users {
		out = append(out, u.Normalized[policy])
	}
	return out
}

// MostVolatileUser returns the user with the highest sigma/mu — the
// paper's Table II subject.
func (r *CohortResult) MostVolatileUser() (UserResult, error) {
	if len(r.Users) == 0 {
		return UserResult{}, fmt.Errorf("experiments: empty cohort")
	}
	// Among users who actually reserved something (a user with no
	// reservations has identical costs under every selling policy).
	candidates := make([]UserResult, 0, len(r.Users))
	for _, u := range r.Users {
		if u.Reserved > 0 {
			candidates = append(candidates, u)
		}
	}
	if len(candidates) == 0 {
		candidates = r.Users
	}
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].Fluctuation > candidates[j].Fluctuation
	})
	return candidates[0], nil
}

// ExtremeVolatileUser returns the paper's Table II subject: the
// volatile user for whom early selling backfires the most (largest
// A_{T/4} cost relative to A_{3T/4}). When no such inversion exists in
// the cohort — it requires a small selling discount, see EXPERIMENTS.md
// — it falls back to the most volatile user.
func (r *CohortResult) ExtremeVolatileUser() (UserResult, error) {
	best := -1
	var bestGap float64
	for i, u := range r.Users {
		if u.Group != workload.GroupVolatile || u.Reserved == 0 {
			continue
		}
		gap := u.Normalized[PolicyAT4] - u.Normalized[PolicyA3T4]
		if gap > bestGap {
			bestGap = gap
			best = i
		}
	}
	if best >= 0 {
		return r.Users[best], nil
	}
	return r.MostVolatileUser()
}
