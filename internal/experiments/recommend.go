package experiments

import (
	"context"
	"errors"
	"fmt"

	"rimarket/internal/obs"
	"rimarket/internal/simulate"
)

// Point-in-time recommendation actions. The vocabulary is closed: a
// Recommendation's Action is always exactly one of these strings.
const (
	// ActionSell: the policy's checkpoint falls on the queried hour and
	// the decision rule says sell now.
	ActionSell = "sell"
	// ActionKeep: the policy has no further checkpoints for this
	// instance inside the horizon; it rides to expiry.
	ActionKeep = "keep"
	// ActionHold: keep for now — the policy revisits the decision at
	// NextCheckpoint.
	ActionHold = "hold"
	// ActionSold: the instance was already sold before the queried hour.
	ActionSold = "sold"
	// ActionExpired: the reservation period ended before the queried
	// hour.
	ActionExpired = "expired"
	// ActionPending: the instance is not reserved yet at the queried
	// hour.
	ActionPending = "pending"
)

// Sentinel errors Evaluate wraps, so servers can map lookup failures
// to status codes without string matching.
var (
	ErrUnknownUser     = errors.New("experiments: unknown user")
	ErrUnknownPolicy   = errors.New("experiments: unknown policy")
	ErrUnknownInstance = errors.New("experiments: unknown instance")
	ErrHourOutOfRange  = errors.New("experiments: hour outside horizon")
)

// Query is one point-in-time recommendation request: should this
// user's instance (by reservation-order index) be sold at this hour?
type Query struct {
	User     string `json:"user"`
	Policy   string `json:"policy"`
	Instance int    `json:"instance"`
	Hour     int    `json:"hour"`
}

// Recommendation is the deterministic answer to a Query. It is the
// wire type the rid daemon serves verbatim, which is why every field
// is a plain JSON-stable scalar: marshaling a Recommendation computed
// offline and one computed by a daemon holding the same snapshot must
// yield identical bytes.
type Recommendation struct {
	User     string `json:"user"`
	Policy   string `json:"policy"`
	Instance int    `json:"instance"`
	Hour     int    `json:"hour"`
	// Action is the verdict at Hour: sell, keep, hold, sold, expired or
	// pending.
	Action string `json:"action"`
	// Start is the hour the instance was reserved; ExpiresAt is
	// Start + PeriodHours.
	Start     int `json:"start"`
	ExpiresAt int `json:"expires_at"`
	// SoldAt is the hour the policy sells the instance over the whole
	// replay, -1 when it never sells.
	SoldAt int `json:"sold_at"`
	// NextCheckpoint is the next hour after Hour at which the policy
	// revisits the decision, -1 when there is none (only set for
	// ActionHold).
	NextCheckpoint int `json:"next_checkpoint"`
	// Reserved is the user's total number of reserved instances.
	Reserved int `json:"reserved"`
	// KeepCost is the user's Keep-Reserved baseline total (Eq. 1);
	// PolicyCost the full-replay total under the queried policy.
	KeepCost   float64 `json:"keep_cost"`
	PolicyCost float64 `json:"policy_cost"`
}

// instSkeleton is the policy-independent identity of one reserved
// instance: reservation decisions are fixed inputs (the paper's
// pipeline plans them before any selling is considered), so start,
// batch index and expiry are shared by every policy's decision table.
type instSkeleton struct {
	start, batch, expiry int
}

// userDecisions is one (policy, user) decision table: the replay's
// sale hour per instance plus the run's total cost. A nil soldAt means
// the policy never sells (Keep-Reserved). ages is non-nil only for
// per-instance policies; everyone else shares policyDecisions.ages.
type userDecisions struct {
	soldAt []int
	ages   [][]int
	cost   float64
}

// policyDecisions is one policy's decision tables across the cohort.
type policyDecisions struct {
	ages  []int // shared checkpoint ages; nil for per-instance policies
	users []userDecisions
}

// DecisionSet is the immutable point-in-time evaluation state: every
// (policy, user, instance) selling decision resolved once from the
// replay engine, plus the Keep-Reserved baselines. It is the snapshot
// a recommendation daemon holds resident and swaps atomically — after
// construction it is never mutated, so Evaluate is lock-free and
// allocation-free, safe for any number of concurrent readers.
//
// Answers are bit-identical to the offline pipeline by construction:
// the tables come from the same simulate.Run replays the experiment
// drivers use, and simulate.DecisionAges shares the engine's
// checkpoint-age resolution.
//
//rilint:frozen
type DecisionSet struct {
	cfg       Config
	horizon   int
	policies  []string
	byPolicy  map[string]*policyDecisions
	skel      []userSkeleton
	keeps     []KeepStat
	userIndex map[string]int
}

// userSkeleton names one user and lists its reserved instances in
// reservation order (start ascending, batch index ascending — the
// order simulate.Result.Instances uses).
type userSkeleton struct {
	name  string
	insts []instSkeleton
}

// Decisions resolves the plan's full decision tables: one engine
// replay per (selling policy, user), the Keep-Reserved baseline from
// the plan's cache, and the per-instance checkpoint ages. The fan-out
// honors Config.Parallelism and cancelling ctx drains it; metrics on
// ctx observe the runs like any other driver. The result is immutable
// and independent of the plan's lifetime.
func (p *CohortPlan) Decisions(ctx context.Context) (*DecisionSet, error) {
	sp := obs.StartSpan(ctx, "decisions")
	defer sp.End()
	m := obs.FromContext(ctx)

	policies, err := buildPolicies(p.cfg)
	if err != nil {
		return nil, err
	}
	engCfg := p.engineConfig()
	keeps, err := p.KeepStats(ctx, engCfg)
	if err != nil {
		return nil, err
	}
	if m != nil {
		engCfg.Metrics = m.EngineHook()
	}

	period := p.cfg.Instance.PeriodHours
	s := &DecisionSet{
		cfg:       p.cfg,
		horizon:   p.cfg.Hours,
		byPolicy:  make(map[string]*policyDecisions, len(policies)),
		skel:      make([]userSkeleton, len(p.users)),
		keeps:     keeps,
		userIndex: make(map[string]int, len(p.users)),
	}
	for i, u := range p.users {
		insts := make([]instSkeleton, 0, u.Reserved)
		for t, n := range u.NewRes {
			for b := 1; b <= n; b++ {
				insts = append(insts, instSkeleton{start: t, batch: b, expiry: t + period})
			}
		}
		s.skel[i] = userSkeleton{name: u.Trace.User, insts: insts}
		s.userIndex[u.Trace.User] = i
	}

	// One decision table per policy. Keep-Reserved never sells, so its
	// table needs no replay: nil soldAt means "never sold" and its cost
	// is the cached baseline.
	var replayed []namedPolicy
	for _, np := range policies {
		s.policies = append(s.policies, np.name)
		pd := &policyDecisions{users: make([]userDecisions, len(p.users))}
		s.byPolicy[np.name] = pd
		if np.name == PolicyKeep {
			for i := range p.users {
				pd.users[i] = userDecisions{cost: keeps[i].Total}
			}
			continue
		}
		if _, perInst := np.policy.(simulate.PerInstancePolicy); !perInst {
			pd.ages = simulate.DecisionAges(np.policy, 0, 1, period)
		}
		replayed = append(replayed, np)
	}

	// Fan the (policy, user) replays out over the worker pool; each job
	// writes a distinct table slot, so results are identical at any
	// parallelism.
	if m != nil {
		m.JobsTotal.Add(int64(len(replayed) * len(p.users)))
	}
	err = runIndexed(ctx, p.cfg.Parallelism, len(replayed)*len(p.users), func(k int) error {
		np := replayed[k/len(p.users)]
		ui := k % len(p.users)
		u := &p.users[ui]
		res, _, err := obsRun(m, u.Trace.Demand, u.NewRes, engCfg, np.policy)
		if err != nil {
			return fmt.Errorf("experiments: policy %s: user %s: %w", np.name, u.Trace.User, err)
		}
		ud := userDecisions{soldAt: make([]int, len(res.Instances)), cost: res.Cost.Total()}
		pd := s.byPolicy[np.name]
		if pd.ages == nil {
			ud.ages = make([][]int, len(res.Instances))
		}
		for j, in := range res.Instances {
			ud.soldAt[j] = in.SoldAt
			if ud.ages != nil {
				ud.ages[j] = simulate.DecisionAges(np.policy, in.Start, in.BatchIndex, period)
			}
		}
		pd.users[ui] = ud
		if m != nil {
			m.JobsDone.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Config returns the experiment configuration the set was built from.
func (s *DecisionSet) Config() Config { return s.cfg }

// Horizon returns the queryable hour range: Evaluate accepts hours in
// [0, Horizon).
func (s *DecisionSet) Horizon() int { return s.horizon }

// Policies lists the policy names the set can answer for, in
// presentation order.
func (s *DecisionSet) Policies() []string { return s.policies }

// Users returns the number of users in the set.
func (s *DecisionSet) Users() int { return len(s.skel) }

// UserName returns the i-th user's name in cohort order.
func (s *DecisionSet) UserName(i int) string { return s.skel[i].name }

// Reserved returns the i-th user's number of reserved instances.
func (s *DecisionSet) Reserved(i int) int { return len(s.skel[i].insts) }

// Evaluate answers one point-in-time query from the resolved tables.
// It never blocks, takes no locks, and allocates only on the error
// path, so a server can call it from any number of goroutines against
// an atomically swapped *DecisionSet.
func (s *DecisionSet) Evaluate(q Query) (Recommendation, error) {
	ui, ok := s.userIndex[q.User]
	if !ok {
		return Recommendation{}, fmt.Errorf("%w: %q", ErrUnknownUser, q.User)
	}
	pd, ok := s.byPolicy[q.Policy]
	if !ok {
		return Recommendation{}, fmt.Errorf("%w: %q", ErrUnknownPolicy, q.Policy)
	}
	if q.Hour < 0 || q.Hour >= s.horizon {
		return Recommendation{}, fmt.Errorf("%w: hour %d outside [0, %d)", ErrHourOutOfRange, q.Hour, s.horizon)
	}
	sk := &s.skel[ui]
	if q.Instance < 0 || q.Instance >= len(sk.insts) {
		return Recommendation{}, fmt.Errorf("%w: user %q has %d reserved instances, asked for index %d",
			ErrUnknownInstance, q.User, len(sk.insts), q.Instance)
	}
	in := sk.insts[q.Instance]
	ud := &pd.users[ui]
	soldAt := -1
	if ud.soldAt != nil {
		soldAt = ud.soldAt[q.Instance]
	}
	ages := pd.ages
	if ud.ages != nil {
		ages = ud.ages[q.Instance]
	}

	r := Recommendation{
		User:           q.User,
		Policy:         q.Policy,
		Instance:       q.Instance,
		Hour:           q.Hour,
		Start:          in.start,
		ExpiresAt:      in.expiry,
		SoldAt:         soldAt,
		NextCheckpoint: -1,
		Reserved:       len(sk.insts),
		KeepCost:       s.keeps[ui].Total,
		PolicyCost:     ud.cost,
	}
	switch {
	case q.Hour < in.start:
		r.Action = ActionPending
	case soldAt >= 0 && q.Hour == soldAt:
		r.Action = ActionSell
	case soldAt >= 0 && q.Hour > soldAt:
		r.Action = ActionSold
	case q.Hour >= in.expiry:
		r.Action = ActionExpired
	default:
		// Held at q.Hour. The next consultation is the first checkpoint
		// age strictly after q.Hour that the engine actually reaches:
		// ages are sorted, and checkpoints at or beyond the horizon are
		// never consulted (the replay ends first).
		r.Action = ActionKeep
		for _, a := range ages {
			ck := in.start + a
			if ck >= s.horizon {
				break
			}
			if ck > q.Hour {
				r.Action = ActionHold
				r.NextCheckpoint = ck
				break
			}
		}
	}
	return r, nil
}
