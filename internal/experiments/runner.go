package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rimarket/internal/simulate"
	"rimarket/internal/stats"
)

// simulateRun indirects the cost engine so tests can count or fail
// invocations; production code always calls the real simulate.Run.
var simulateRun = simulate.Run

// workerCount resolves the Config.Parallelism contract: non-positive
// means GOMAXPROCS, and there is never more than one worker per job.
func workerCount(parallelism, jobs int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > jobs {
		parallelism = jobs
	}
	return parallelism
}

// runIndexed evaluates fn(0..n-1) over a bounded worker pool. It is the
// package's one fan-out primitive, with two guarantees that make every
// caller byte-identical at any worker count:
//
//   - each job writes only its own index, so outputs land in
//     deterministic order regardless of scheduling;
//   - the returned error is the one from the lowest-index failing job,
//     not the temporally first. On failure the pool cancels all jobs
//     above the best-known failing index but still drains every job
//     below it (any of those could fail with a lower index), so the
//     same error surfaces whether n workers race or one worker walks
//     the jobs in order.
func runIndexed(parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := workerCount(parallelism, n)
	errs := make([]error, n)
	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		minErr atomic.Int64
	)
	minErr.Store(int64(n))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > minErr.Load() {
					continue // canceled: a lower-index job already failed
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if m := minErr.Load(); m < int64(n) {
		return errs[m]
	}
	return nil
}

// Cell is one grid cell of a sweep or sensitivity experiment: a selling
// policy and the engine configuration it runs under.
type Cell struct {
	// Name labels the cell in error messages.
	Name string
	// Policy is the selling policy the cell evaluates.
	Policy simulate.SellingPolicy
	// Engine is the cost-engine configuration for the cell's runs.
	Engine simulate.Config
}

// CellResult holds one cell's per-user outcomes, in cohort order.
type CellResult struct {
	// Cost is each user's total cost (Eq. 1) under the cell's policy.
	Cost []float64
	// Norm is Cost normalized to the user's Keep-Reserved baseline
	// (1 when the baseline is zero).
	Norm []float64
	// Sold is each user's number of instances sold.
	Sold []int
}

// MeanNorm is the cohort-mean normalized cost.
func (c CellResult) MeanNorm() float64 { return stats.Mean(c.Norm) }

// FracSaved is the fraction of users strictly below the baseline.
func (c CellResult) FracSaved() float64 { return stats.FractionBelow(c.Norm, 1) }

// RunGrid evaluates every (cell, user) pair over the plan's worker
// pool and returns one CellResult per cell, in cell order. Reservation
// plans and Keep-Reserved baselines come from the plan's caches, so a
// grid costs exactly one engine run per pair (plus one baseline run
// per user for each price card not seen before).
func (p *CohortPlan) RunGrid(cells []Cell) ([]CellResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiments: no grid cells")
	}
	// Resolve baselines before the fan-out: cells sharing a price card
	// share one cached baseline computation.
	keeps := make([][]KeepStat, len(cells))
	for i, c := range cells {
		ks, err := p.KeepStats(c.Engine)
		if err != nil {
			return nil, err
		}
		keeps[i] = ks
	}
	users := len(p.users)
	out := make([]CellResult, len(cells))
	for i := range out {
		out[i] = CellResult{
			Cost: make([]float64, users),
			Norm: make([]float64, users),
			Sold: make([]int, users),
		}
	}
	err := runIndexed(p.cfg.Parallelism, len(cells)*users, func(j int) error {
		ci, ui := j/users, j%users
		u := &p.users[ui]
		run, err := simulateRun(u.Trace.Demand, u.NewRes, cells[ci].Engine, cells[ci].Policy)
		if err != nil {
			return fmt.Errorf("experiments: cell %s: user %s: %w", cells[ci].Name, u.Trace.User, err)
		}
		cell := &out[ci]
		cell.Cost[ui] = run.Cost.Total()
		cell.Sold[ui] = run.SoldCount()
		if keep := keeps[ci][ui].Total; keep != 0 {
			cell.Norm[ui] = run.Cost.Total() / keep
		} else {
			cell.Norm[ui] = 1
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachUser runs fn once per planned user over the plan's worker
// pool. fn is called concurrently and must write only state owned by
// its index; errors follow runIndexed's lowest-index-wins rule.
func (p *CohortPlan) ForEachUser(fn func(i int, u PlannedUser) error) error {
	return runIndexed(p.cfg.Parallelism, len(p.users), func(i int) error {
		return fn(i, p.users[i])
	})
}
