package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"

	"rimarket/internal/obs"
	"rimarket/internal/simulate"
	"rimarket/internal/stats"
)

// simulateRun indirects the cost engine so tests can count or fail
// invocations; production code always calls the real simulate.Run.
var simulateRun = simulate.Run

// obsRun is the drivers' timed engine call: one clock pair around
// simulateRun feeding the run-latency histogram, so the engine itself
// never reads a clock (floatdet forbids it there). With observability
// off (nil m) it is exactly simulateRun. Returns the run's wall time
// in nanoseconds for per-cell attribution.
func obsRun(m *obs.Metrics, demand, newRes []int, cfg simulate.Config, policy simulate.SellingPolicy) (simulate.Result, int64, error) {
	if m == nil {
		res, err := simulateRun(demand, newRes, cfg, policy)
		return res, 0, err
	}
	start := m.Now()
	res, err := simulateRun(demand, newRes, cfg, policy)
	ns := m.Now().Sub(start).Nanoseconds()
	if err == nil {
		m.EngineRunNs.Observe(ns)
	}
	return res, ns, err
}

// simulateRunBatchTotals indirects the batch engine the same way
// simulateRun indirects the per-user one, so tests can count or fail
// batch invocations.
var simulateRunBatchTotals = simulate.RunBatchTotals

// obsBatch is the drivers' timed batch-engine call: one clock pair
// around RunBatchTotals feeding the run-latency histogram with the
// whole batch's wall time (the batch engine replaces many Run calls
// with one, so it gets one observation). With observability off it is
// exactly RunBatchTotals. Returns the call's wall time in nanoseconds
// for per-cell attribution.
func obsBatch(ctx context.Context, m *obs.Metrics, users []simulate.BatchUser, cfg simulate.Config, policy simulate.SellingPolicy, opts simulate.BatchOptions) ([]simulate.BatchTotal, int64, error) {
	if m == nil {
		totals, err := simulateRunBatchTotals(ctx, users, cfg, policy, opts)
		return totals, 0, err
	}
	start := m.Now()
	totals, err := simulateRunBatchTotals(ctx, users, cfg, policy, opts)
	ns := m.Now().Sub(start).Nanoseconds()
	if err == nil {
		m.EngineRunNs.Observe(ns)
	}
	return totals, ns, err
}

// mapBatchErr rewrites the batch engine's first-invalid-user error into
// the exact per-user error text the per-user fan-out produces for the
// same inputs (cell prefix included when cellName is non-empty), so
// callers see identical failures whichever engine ran. Any other error
// — notably a verbatim ctx.Err() from a cancelled batch — passes
// through untouched, preserving the cancellation contract.
func (p *CohortPlan) mapBatchErr(err error, cellName string) error {
	var be *simulate.BatchUserError
	if !errors.As(err, &be) || be.Index < 0 || be.Index >= len(p.users) {
		return err
	}
	user := p.users[be.Index].Trace.User
	if cellName != "" {
		return fmt.Errorf("experiments: cell %s: user %s: %w", cellName, user, be.Err)
	}
	return fmt.Errorf("experiments: user %s: %w", user, be.Err)
}

// workerCount resolves the Config.Parallelism contract: non-positive
// means GOMAXPROCS, and there is never more than one worker per job.
func workerCount(parallelism, jobs int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > jobs {
		parallelism = jobs
	}
	return parallelism
}

// JobPanicError is a panic captured from a worker-pool job. The pool
// converts panics to errors instead of letting one bad cell or user
// kill the whole process: the panic value and stack are preserved so
// the failure is as debuggable as the crash would have been, while
// every other job drains normally.
type JobPanicError struct {
	// Index is the panicking job's index.
	Index int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, captured at recover.
	Stack []byte
}

func (e *JobPanicError) Error() string {
	return fmt.Sprintf("experiments: job %d panicked: %v", e.Index, e.Value)
}

// CancelError reports a fan-out cut short by context cancellation:
// in-flight jobs were drained, jobs not yet started were abandoned.
// It unwraps to the context's error so callers can branch with
// errors.Is(err, context.Canceled).
type CancelError struct {
	// Completed names the fully-completed units of work (grid cells for
	// RunGrid; empty for plain user fan-outs).
	Completed []string
	// Total is the number of units the run was asked for.
	Total int
	// Err is the context's error (context.Canceled or DeadlineExceeded).
	Err error
}

func (e *CancelError) Error() string {
	if len(e.Completed) == 0 {
		return fmt.Sprintf("experiments: %v (0 of %d cells completed)", e.Err, e.Total)
	}
	return fmt.Sprintf("experiments: %v (%d of %d cells completed: %s)",
		e.Err, len(e.Completed), e.Total, strings.Join(e.Completed, ", "))
}

func (e *CancelError) Unwrap() error { return e.Err }

// runJob invokes fn(i) with panic containment: a panic becomes a
// *JobPanicError carrying the job index, panic value and stack.
func runJob(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &JobPanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// runIndexed evaluates fn(0..n-1) over the sharded, work-stealing
// worker pool (shard.go). It is the package's one fan-out primitive,
// with guarantees that make every caller byte-identical at any worker
// count:
//
//   - each job writes only its own index, so outputs land in
//     deterministic order regardless of scheduling;
//   - the returned error is the one from the lowest-index failing job,
//     not the temporally first. On failure the pool cancels all jobs
//     above the best-known failing index but still drains every job
//     below it (any of those could fail with a lower index), so the
//     same error surfaces whether n workers race or one worker walks
//     the jobs in order;
//   - a panicking job is captured as a *JobPanicError and participates
//     in the lowest-index rule like any other failure — the process
//     never crashes because one job did;
//   - cancelling ctx stops workers from claiming new jobs; jobs already
//     running are drained, never interrupted. Job errors take
//     precedence; otherwise, if any job was abandoned, the context's
//     error is returned.
func runIndexed(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	_, err := runIndexedDone(ctx, parallelism, n, fn)
	return err
}

// runIndexedDone is runIndexed plus a completion bitmap: done[i]
// reports whether fn(i) ran to completion without error. The bitmap is
// what lets RunGrid report which cells fully completed after a
// cancellation.
func runIndexedDone(ctx context.Context, parallelism, n int, fn func(i int) error) ([]bool, error) {
	done, _, err := runShardedDone(ctx, parallelism, n, func(_, i int) error { return fn(i) })
	return done, err
}

// Cell is one grid cell of a sweep or sensitivity experiment: a selling
// policy and the engine configuration it runs under.
type Cell struct {
	// Name labels the cell in error messages.
	Name string
	// Policy is the selling policy the cell evaluates.
	Policy simulate.SellingPolicy
	// Engine is the cost-engine configuration for the cell's runs.
	Engine simulate.Config
}

// CellResult holds one cell's per-user outcomes, in cohort order.
type CellResult struct {
	// Name echoes the cell's label, so partial grids returned after a
	// cancellation remain identifiable.
	Name string
	// Cost is each user's total cost (Eq. 1) under the cell's policy.
	Cost []float64
	// Norm is Cost normalized to the user's Keep-Reserved baseline
	// (1 when the baseline is zero).
	Norm []float64
	// Sold is each user's number of instances sold.
	Sold []int
}

// MeanNorm is the cohort-mean normalized cost.
func (c CellResult) MeanNorm() float64 { return stats.Mean(c.Norm) }

// FracSaved is the fraction of users strictly below the baseline.
func (c CellResult) FracSaved() float64 { return stats.FractionBelow(c.Norm, 1) }

// RunGrid evaluates every (cell, user) pair over the plan's worker
// pool and returns one CellResult per cell, in cell order. Reservation
// plans and Keep-Reserved baselines come from the plan's caches, so a
// grid costs exactly one engine run per pair (plus one baseline run
// per user for each price card not seen before).
//
// When ctx is cancelled mid-grid the in-flight runs are drained and
// RunGrid returns the fully-completed cells (in cell order) together
// with a *CancelError naming them; errors.Is(err, context.Canceled)
// holds and no partially-evaluated cell is ever returned.
func (p *CohortPlan) RunGrid(ctx context.Context, cells []Cell) ([]CellResult, error) {
	return p.RunGridNamed(ctx, "grid", cells)
}

// RunGridNamed is RunGrid with an explicit grid label. The label names
// the grid's spill subdirectory (Config.SpillDir/<label>), so the
// several grids one riexp invocation can run — cohort, sweeps,
// sensitivity — spill side by side without colliding. With
// Config.SpillDir unset the label changes nothing.
//
// With spill enabled, each fully-completed cell is appended to the
// grid's gridstore the moment its last user lands; with Config.Resume
// also set, cells already valid on disk are loaded instead of
// recomputed (the store is validated against the grid's config hash,
// seed, and cell list first — a mismatch is an error, never a merge).
// Resumed cells count toward CancelError.Completed: they are fully
// completed, just not by this process.
func (p *CohortPlan) RunGridNamed(ctx context.Context, name string, cells []Cell) ([]CellResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiments: no grid cells")
	}
	// Resolve baselines before the fan-out: cells sharing a price card
	// share one cached baseline computation.
	keeps := make([][]KeepStat, len(cells))
	for i, c := range cells {
		ks, err := p.KeepStats(ctx, c.Engine)
		if err != nil {
			return nil, err
		}
		keeps[i] = ks
	}
	users := len(p.users)
	out := make([]CellResult, len(cells))
	names := make([]string, len(cells))
	for i := range out {
		names[i] = cells[i].Name
		out[i] = CellResult{
			Name: cells[i].Name,
			Cost: make([]float64, users),
			Norm: make([]float64, users),
			Sold: make([]int, users),
		}
	}
	// Observability: time the grid as a span, track per-cell progress,
	// and hand each cell's engine runs the metrics hook via a config
	// copy (the Metrics field changes no engine result — pinned by the
	// differential suite). All of it is inert when the context carries
	// no metrics.
	m := obs.FromContext(ctx)
	sp := obs.StartSpan(ctx, "grid")
	defer sp.End()
	tracker := m.StartGrid(names, users)
	defer tracker.Finish()
	engs := make([]simulate.Config, len(cells))
	for i := range cells {
		engs[i] = cells[i].Engine
		if m != nil {
			engs[i].Metrics = m.EngineHook()
		}
	}
	// Spill/resume: open (or create) the grid's on-disk store, prefill
	// out with the cells recovered from a previous run, and fan out
	// over only the still-pending cells.
	var spill *gridSpill
	if p.cfg.SpillDir != "" {
		var err error
		spill, err = p.openSpill(name, cells, users, out, tracker)
		if err != nil {
			return nil, err
		}
	}
	pending := make([]int, 0, len(cells))
	for ci := range cells {
		if spill == nil || !spill.resumed[ci] {
			pending = append(pending, ci)
		}
	}
	if p.cfg.Batch {
		return p.runGridBatch(ctx, cells, keeps, engs, out, pending, spill, m, tracker)
	}
	// remaining counts each pending cell's outstanding jobs; the worker
	// whose decrement hits zero owns the cell's spill append. The
	// atomic decrement orders every user's result write before that
	// worker's read, so encoding the record is race-free.
	remaining := make([]atomic.Int64, len(cells))
	for _, ci := range pending {
		remaining[ci].Store(int64(users))
	}
	done, _, err := runShardedDone(ctx, p.cfg.Parallelism, len(pending)*users, func(w, j int) error {
		ci, ui := pending[j/users], j%users
		u := &p.users[ui]
		run, ns, err := obsRun(m, u.Trace.Demand, u.NewRes, engs[ci], cells[ci].Policy)
		if err != nil {
			return fmt.Errorf("experiments: cell %s: user %s: %w", cells[ci].Name, u.Trace.User, err)
		}
		tracker.JobDone(ci, ns)
		cell := &out[ci]
		cell.Cost[ui] = run.Cost.Total()
		cell.Sold[ui] = run.SoldCount()
		if keep := keeps[ci][ui].Total; keep != 0 {
			cell.Norm[ui] = run.Cost.Total() / keep
		} else {
			cell.Norm[ui] = 1
		}
		if remaining[ci].Add(-1) == 0 && spill != nil {
			return spill.appendCell(w, ci, cell)
		}
		return nil
	})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && err == ctxErr {
			// Drained cleanly after cancellation: what is spilled so
			// far is complete, so close before reporting.
			if cerr := spill.close(); cerr != nil {
				return nil, cerr
			}
			completed := make([]CellResult, 0, len(cells))
			names := make([]string, 0, len(cells))
			whole := make([]bool, len(cells))
			for ci := range cells {
				whole[ci] = spill != nil && spill.resumed[ci]
			}
			for pi, ci := range pending {
				whole[ci] = true
				for ui := 0; ui < users; ui++ {
					if !done[pi*users+ui] {
						whole[ci] = false
						break
					}
				}
			}
			for ci := range cells {
				if whole[ci] {
					completed = append(completed, out[ci])
					names = append(names, cells[ci].Name)
				}
			}
			return completed, &CancelError{Completed: names, Total: len(cells), Err: ctxErr}
		}
		// The run already failed; the close error, if any, is secondary.
		_ = spill.close()
		return nil, err
	}
	if err := spill.close(); err != nil {
		return nil, err
	}
	return out, nil
}

// runGridBatch is RunGridNamed's batch-engine fan-out: one streaming
// RunBatchTotals call per pending cell — each internally sharded over
// Config.Parallelism workers — instead of one pool job per (cell,
// user) pair. Results, error text, spill behavior and cancellation
// semantics match the per-user fan-out exactly, pinned by the
// grid-level differential suite in batch_test.go. Cells run in cell
// order; within a cell the batch engine guarantees bit-identical
// outputs at any parallelism.
func (p *CohortPlan) runGridBatch(ctx context.Context, cells []Cell, keeps [][]KeepStat, engs []simulate.Config, out []CellResult, pending []int, spill *gridSpill, m *obs.Metrics, tracker *obs.GridTracker) ([]CellResult, error) {
	users := len(p.users)
	// Job accounting mirrors the pool's: every pending (cell, user)
	// pair is admitted up front, completions land a cell at a time.
	if m != nil {
		m.JobsTotal.Add(int64(len(pending) * users))
	}
	bu := p.batchUsers()
	opts := simulate.BatchOptions{Parallelism: p.cfg.Parallelism}
	whole := make([]bool, len(cells))
	for ci := range cells {
		whole[ci] = spill != nil && spill.resumed[ci]
	}
	for _, ci := range pending {
		totals, ns, err := obsBatch(ctx, m, bu, engs[ci], cells[ci].Policy, opts)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil && err == ctxErr {
				// A cancelled batch discards its cell wholesale, so every
				// cell filled before this one is complete; close the spill
				// before reporting them, like the per-user path.
				if cerr := spill.close(); cerr != nil {
					return nil, cerr
				}
				completed := make([]CellResult, 0, len(cells))
				names := make([]string, 0, len(cells))
				for ci := range cells {
					if whole[ci] {
						completed = append(completed, out[ci])
						names = append(names, cells[ci].Name)
					}
				}
				return completed, &CancelError{Completed: names, Total: len(cells), Err: ctxErr}
			}
			_ = spill.close()
			return nil, p.mapBatchErr(err, cells[ci].Name)
		}
		cell := &out[ci]
		for ui := range totals {
			cell.Cost[ui] = totals[ui].Cost.Total()
			cell.Sold[ui] = totals[ui].Sold
			if keep := keeps[ci][ui].Total; keep != 0 {
				cell.Norm[ui] = totals[ui].Cost.Total() / keep
			} else {
				cell.Norm[ui] = 1
			}
		}
		tracker.JobsDone(ci, users, ns)
		if m != nil {
			m.JobsDone.Add(int64(users))
		}
		whole[ci] = true
		if spill != nil {
			if err := spill.appendCell(0, ci, cell); err != nil {
				_ = spill.close()
				return nil, err
			}
		}
	}
	if err := spill.close(); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachUser runs fn once per planned user over the plan's worker
// pool. fn is called concurrently and must write only state owned by
// its index; errors follow runIndexed's lowest-index-wins rule, panics
// are captured as *JobPanicError, and cancelling ctx drains in-flight
// users and returns the context's error.
func (p *CohortPlan) ForEachUser(ctx context.Context, fn func(i int, u PlannedUser) error) error {
	return runIndexed(ctx, p.cfg.Parallelism, len(p.users), func(i int) error {
		return fn(i, p.users[i])
	})
}
