package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"rimarket/internal/obs"
)

// The observability differential suite: the layer's load-bearing
// invariant is that enabling metrics must not perturb experiment
// results. Each test renders a full experiment to bytes twice — once
// on a bare context, once with a Metrics attached — at several worker
// counts, and demands byte equality everywhere. Run under -race in CI,
// this also exercises the concurrent metric recording from the worker
// pool.

// obsDiffParallelisms are the worker counts the satellite task pins:
// serial, a fixed small pool, and whatever the host has.
func obsDiffParallelisms() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// obsDiffConfig is a cohort small enough to run the full matrix in
// seconds but large enough that every cell has work at parallelism 4.
func obsDiffConfig(parallelism int) Config {
	cfg := TestScaleConfig()
	cfg.PerGroup = 4
	cfg.Parallelism = parallelism
	return cfg
}

// obsCtx returns a bare context and, when observed, one carrying fresh
// metrics on a fake clock (the differential property must hold no
// matter what the clock returns).
func obsCtx(observed bool) (context.Context, *obs.Metrics) {
	if !observed {
		return context.Background(), nil
	}
	m := obs.New(obs.FakeClock(time.Unix(0, 0).UTC(), time.Microsecond))
	return obs.WithMetrics(context.Background(), m), m
}

// renderGrid runs the full cohort experiment and serializes it the way
// riexp -format json does.
func renderGrid(t *testing.T, ctx context.Context, parallelism int) []byte {
	t.Helper()
	plan, err := NewCohortPlan(ctx, obsDiffConfig(parallelism))
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Cohort(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderSweep(t *testing.T, ctx context.Context, parallelism int) []byte {
	t.Helper()
	plan, err := NewCohortPlan(ctx, obsDiffConfig(parallelism))
	if err != nil {
		t.Fatal(err)
	}
	points, err := plan.SweepFraction(ctx, []float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return []byte(RenderSweep("sweep", "fraction", points))
}

func renderResell(t *testing.T, ctx context.Context, parallelism int) []byte {
	t.Helper()
	plan, err := NewCohortPlan(ctx, obsDiffConfig(parallelism))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := plan.HourResellComparison(ctx, []float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	return []byte(RenderHourResell(rows))
}

func runObsDifferential(t *testing.T, render func(*testing.T, context.Context, int) []byte) {
	t.Helper()
	var reference []byte
	for _, par := range obsDiffParallelisms() {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			plainCtx, _ := obsCtx(false)
			obsCtxVal, m := obsCtx(true)
			plain := render(t, plainCtx, par)
			observed := render(t, obsCtxVal, par)
			if !bytes.Equal(plain, observed) {
				t.Errorf("output differs with observability on at parallelism %d:\n--- off ---\n%s\n--- on ---\n%s",
					par, plain, observed)
			}
			// Guard against vacuity: the observed run must actually have
			// recorded engine activity.
			s := m.Snapshot()
			if s.EngineRuns == 0 || s.JobsDone == 0 {
				t.Fatalf("observed run recorded nothing (runs=%d jobs=%d); differential test is vacuous",
					s.EngineRuns, s.JobsDone)
			}
			if s.JobsDone != s.JobsTotal {
				t.Errorf("jobs done %d != total %d on a clean run", s.JobsDone, s.JobsTotal)
			}
			// And against cross-parallelism drift, observed or not.
			if reference == nil {
				reference = plain
			} else if !bytes.Equal(reference, plain) {
				t.Errorf("output differs across parallelism levels")
			}
		})
	}
}

func TestObsDifferentialGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cohort differential; skipped in -short")
	}
	runObsDifferential(t, renderGrid)
}

func TestObsDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cohort differential; skipped in -short")
	}
	runObsDifferential(t, renderSweep)
}

func TestObsDifferentialResell(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cohort differential; skipped in -short")
	}
	runObsDifferential(t, renderResell)
}

// TestObsGridAccounting checks the driver-side bookkeeping against
// ground truth: a cohort grid of C cells over U users must book
// exactly C cells and C*U grid jobs, one engine-histogram observation
// per engine run, and per-cell job counts of U.
func TestObsGridAccounting(t *testing.T) {
	ctx, m := obsCtx(true)
	plan, err := NewCohortPlan(ctx, obsDiffConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	users := plan.Len()
	if _, err := plan.Cohort(ctx); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.CellsTotal == 0 || s.CellsDone != s.CellsTotal {
		t.Fatalf("cells %d/%d", s.CellsDone, s.CellsTotal)
	}
	gridJobs := s.CellsTotal * int64(users)
	if int64(len(s.Cells)) != s.CellsTotal {
		t.Fatalf("recorded %d cell stats, want %d", len(s.Cells), s.CellsTotal)
	}
	for _, c := range s.Cells {
		if c.Jobs != int64(users) {
			t.Errorf("cell %s booked %d jobs, want %d", c.Name, c.Jobs, users)
		}
	}
	// Engine runs = grid jobs + baseline runs (one per user per price
	// card computed). The cohort uses one price card, computed once.
	wantRuns := gridJobs + int64(users)*s.BaselineMisses
	if s.EngineRuns != wantRuns {
		t.Errorf("engine runs = %d, want %d (grid %d + %d baseline misses x %d users)",
			s.EngineRuns, wantRuns, gridJobs, s.BaselineMisses, users)
	}
	if int64(s.EngineRunNs.Count) != s.EngineRuns {
		t.Errorf("histogram count %d != engine runs %d", s.EngineRunNs.Count, s.EngineRuns)
	}
	if s.BaselineMisses == 0 {
		t.Error("cohort computed no baselines; accounting test is vacuous")
	}
	if s.BaselineHits == 0 {
		t.Error("cohort grid shares a price card across cells; expected baseline cache hits")
	}
	// Spans: plan + baseline + at least one grid.
	spanNames := map[string]bool{}
	for _, sp := range s.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"plan", "baseline", "grid"} {
		if !spanNames[want] {
			t.Errorf("missing span %q in %+v", want, s.Spans)
		}
	}
}
