package experiments

import (
	"context"
	"fmt"
	"sync"

	"rimarket/internal/core"
	"rimarket/internal/obs"
	"rimarket/internal/pricing"
	"rimarket/internal/purchasing"
	"rimarket/internal/simulate"
	"rimarket/internal/workload"
)

// PlannedUser is one cohort member with its reservation plan resolved.
type PlannedUser struct {
	// Trace is the user's demand series, fitted to the config horizon.
	Trace workload.Trace
	// Behavior is the purchasing imitator assigned to the user.
	Behavior string
	// NewRes is the hourly reservation schedule the behavior produced.
	NewRes []int
	// Reserved is the total number of instances reserved.
	Reserved int
}

// KeepStat is one user's Keep-Reserved baseline: the quantities every
// driver normalizes against or derives secondary baselines from.
type KeepStat struct {
	// Total is the Keep-Reserved run's total cost (Eq. 1).
	Total float64
	// IdleHours counts reserved hours that served no demand (the
	// hour-reselling baseline's income source).
	IdleHours int
}

// CohortPlan is the shared substrate of every cohort experiment: the
// traces, the per-user reservation plans, and cached Keep-Reserved
// baselines. Sweeps and grids that differ only in selling parameters
// reuse one plan instead of re-synthesizing and re-planning per cell —
// reservation decisions never depend on the selling side (the paper's
// pipeline fixes them before any selling is considered).
//
// A plan is safe for concurrent use.
type CohortPlan struct {
	cfg   Config
	users []PlannedUser

	mu sync.Mutex
	// keeps caches baselines per price card. Keep-Reserved never sells,
	// so its cost is independent of the selling discount and market fee;
	// only the instance card matters (pinned by tests in runner_test.go).
	keeps map[pricing.InstanceType][]KeepStat

	// batchOnce/batch lazily build the batch engine's input view of the
	// cohort. Each BatchUser aliases the planned user's Demand/NewRes
	// slices — the batch engine reads but never writes them — so the
	// view costs one slice header pair per user, not a copy of the
	// traces.
	batchOnce sync.Once
	batch     []simulate.BatchUser
}

// batchUsers returns the cohort as batch-engine inputs, in cohort
// order, built once and shared by every batch-mode driver.
func (p *CohortPlan) batchUsers() []simulate.BatchUser {
	p.batchOnce.Do(func() {
		p.batch = make([]simulate.BatchUser, len(p.users))
		for i := range p.users {
			p.batch[i] = simulate.BatchUser{Demand: p.users[i].Trace.Demand, NewRes: p.users[i].NewRes}
		}
	})
	return p.batch
}

// NewCohortPlan synthesizes the config's cohort and plans every user's
// reservations once, fanning the planning out over Config.Parallelism
// workers (results are identical at any worker count: each user's
// behavior is seeded from its cohort index). Cancelling ctx drains the
// in-flight planning jobs and returns the context's error.
func NewCohortPlan(ctx context.Context, cfg Config) (*CohortPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	traces, err := workload.NewCohort(workload.CohortConfig{
		PerGroup: cfg.PerGroup,
		Hours:    cfg.Hours,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return newPlan(ctx, cfg, traces)
}

// PlanTraces builds a plan from externally supplied traces (e.g. real
// EC2 usage logs). Each trace is clipped or zero-padded to cfg.Hours;
// cfg.PerGroup is ignored.
func PlanTraces(ctx context.Context, cfg Config, traces []workload.Trace) (*CohortPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("experiments: no traces")
	}
	fitted := make([]workload.Trace, len(traces))
	for i, tr := range traces {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if tr.Len() > cfg.Hours {
			tr = tr.Clip(cfg.Hours)
		} else if tr.Len() < cfg.Hours {
			demand := make([]int, cfg.Hours)
			copy(demand, tr.Demand)
			tr = workload.Trace{User: tr.User, Demand: demand}
		}
		fitted[i] = tr
	}
	return newPlan(ctx, cfg, fitted)
}

func newPlan(ctx context.Context, cfg Config, traces []workload.Trace) (*CohortPlan, error) {
	sp := obs.StartSpan(ctx, "plan")
	defer sp.End()
	p := &CohortPlan{
		cfg:   cfg,
		users: make([]PlannedUser, len(traces)),
		keeps: make(map[pricing.InstanceType][]KeepStat),
	}
	err := runIndexed(ctx, cfg.Parallelism, len(traces), func(i int) error {
		tr := traces[i]
		behavior := Behaviors[i%len(Behaviors)]
		planner, err := behaviorPolicy(cfg, behavior, int64(i))
		if err != nil {
			return err
		}
		newRes, err := purchasing.PlanReservations(tr.Demand, cfg.Instance.PeriodHours, planner)
		if err != nil {
			return fmt.Errorf("experiments: user %s: %w", tr.User, err)
		}
		reserved := 0
		for _, n := range newRes {
			reserved += n
		}
		p.users[i] = PlannedUser{Trace: tr, Behavior: behavior, NewRes: newRes, Reserved: reserved}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Config returns the plan's experiment configuration.
func (p *CohortPlan) Config() Config { return p.cfg }

// Len returns the number of planned users.
func (p *CohortPlan) Len() int { return len(p.users) }

// Users returns the planned users in cohort order. The slice is shared;
// callers must not mutate it.
func (p *CohortPlan) Users() []PlannedUser { return p.users }

// KeepStats returns each user's Keep-Reserved baseline under the given
// engine configuration, computing it at most once per price card (see
// the cache invariant on CohortPlan.keeps). A cancelled or failed
// computation is never cached.
func (p *CohortPlan) KeepStats(ctx context.Context, engCfg simulate.Config) ([]KeepStat, error) {
	m := obs.FromContext(ctx)
	p.mu.Lock()
	cached, ok := p.keeps[engCfg.Instance]
	p.mu.Unlock()
	if ok {
		if m != nil {
			m.BaselineHits.Add(1)
		}
		return cached, nil
	}
	if m != nil {
		m.BaselineMisses.Add(1)
		engCfg.Metrics = m.EngineHook()
	}
	sp := obs.StartSpan(ctx, "baseline")
	defer sp.End()
	out := make([]KeepStat, len(p.users))
	if p.cfg.Batch {
		// Job accounting mirrors the per-user fan-out: one job per user,
		// admitted up front, completed all-or-nothing with the batch call.
		if m != nil {
			m.JobsTotal.Add(int64(len(p.users)))
		}
		totals, _, err := obsBatch(ctx, m, p.batchUsers(), engCfg, core.KeepReserved{},
			simulate.BatchOptions{Parallelism: p.cfg.Parallelism})
		if err != nil {
			return nil, p.mapBatchErr(err, "")
		}
		if m != nil {
			m.JobsDone.Add(int64(len(p.users)))
		}
		for i, tot := range totals {
			out[i] = KeepStat{Total: tot.Cost.Total(), IdleHours: tot.IdleHours}
		}
	} else {
		err := runIndexed(ctx, p.cfg.Parallelism, len(p.users), func(i int) error {
			u := &p.users[i]
			run, _, err := obsRun(m, u.Trace.Demand, u.NewRes, engCfg, core.KeepReserved{})
			if err != nil {
				return fmt.Errorf("experiments: user %s: %w", u.Trace.User, err)
			}
			idle := 0
			for _, h := range run.Hours {
				served := h.Demand - h.OnDemand
				idle += h.ActiveRes - served
			}
			out[i] = KeepStat{Total: run.Cost.Total(), IdleHours: idle}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	p.mu.Lock()
	p.keeps[engCfg.Instance] = out
	p.mu.Unlock()
	return out, nil
}

// engineConfig is the engine configuration the plan's own experiment
// parameters imply.
func (p *CohortPlan) engineConfig() simulate.Config {
	return simulate.Config{
		Instance:        p.cfg.Instance,
		SellingDiscount: p.cfg.SellingDiscount,
		MarketFee:       p.cfg.MarketFee,
	}
}
