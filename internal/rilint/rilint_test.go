package rilint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseAllowsFromSrc(t *testing.T, src string) (map[allowKey]*allowGrant, []*allowGrant, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return parseAllows(fset, []*ast.File{f})
}

func TestParseAllowsGrants(t *testing.T) {
	allows, grants, malformed := parseAllowsFromSrc(t, `package p

func f() {
	//rilint:allow nopanic -- justified here.
	panic("x")
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed annotations: %v", malformed)
	}
	if len(grants) != 1 {
		t.Fatalf("want one grant, got %d", len(grants))
	}
	// The annotation on line 4 covers lines 4 and 5, sharing one grant.
	for _, line := range []int{4, 5} {
		g := allows[allowKey{"src.go", line, "nopanic"}]
		if g == nil {
			t.Errorf("line %d not covered by the annotation", line)
		} else if g != grants[0] {
			t.Errorf("line %d resolves to a different grant than line 4", line)
		}
	}
	if allows[allowKey{"src.go", 6, "nopanic"}] != nil {
		t.Error("annotation leaked past the following line")
	}
	if allows[allowKey{"src.go", 4, "floatdet"}] != nil {
		t.Error("annotation granted an analyzer it did not name")
	}
}

func TestParseAllowsMultipleNames(t *testing.T) {
	allows, grants, malformed := parseAllowsFromSrc(t, `package p

//rilint:allow nopanic, errwrap -- one reason for two analyzers.
var X = 1
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed annotations: %v", malformed)
	}
	if len(grants) != 2 {
		t.Fatalf("two names on one line should yield two grants, got %d", len(grants))
	}
	for _, name := range []string{"nopanic", "errwrap"} {
		if allows[allowKey{"src.go", 3, name}] == nil {
			t.Errorf("annotation did not grant %q", name)
		}
	}
	// The two grants are independent ledger entries: using one must
	// not retire the other.
	allows[allowKey{"src.go", 3, "nopanic"}].used = true
	if allows[allowKey{"src.go", 3, "errwrap"}].used {
		t.Error("marking nopanic used retired the errwrap grant too")
	}
}

func TestParseAllowsRequiresJustification(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//rilint:allow nopanic\nvar X = 1\n",
		"package p\n\n//rilint:allow nopanic -- \nvar X = 1\n",
		"package p\n\n//rilint:allow -- reason with no analyzer name.\nvar X = 1\n",
	} {
		allows, grants, malformed := parseAllowsFromSrc(t, src)
		if len(allows) != 0 || len(grants) != 0 {
			t.Errorf("malformed annotation granted suppressions: %q", src)
		}
		if len(malformed) != 1 {
			t.Errorf("want exactly one malformed diagnostic for %q, got %v", src, malformed)
			continue
		}
		if !strings.Contains(malformed[0].Message, "justification") {
			t.Errorf("malformed diagnostic should demand a justification, got %q", malformed[0].Message)
		}
	}
}

// Annotation-parser edge cases shared by every analyzer: the separator
// must be exactly " -- ", names may be comma-separated with arbitrary
// spacing, and an annotation on an otherwise-blank line covers the
// next line.
func TestParseAllowsEdgeCases(t *testing.T) {
	t.Run("blank line annotation covers next line", func(t *testing.T) {
		allows, _, malformed := parseAllowsFromSrc(t, "package p\n\n//rilint:allow nopanic -- standalone annotation line.\n\nvar X = 1\n")
		if len(malformed) != 0 {
			t.Fatalf("unexpected malformed: %v", malformed)
		}
		if allows[allowKey{"src.go", 3, "nopanic"}] == nil || allows[allowKey{"src.go", 4, "nopanic"}] == nil {
			t.Error("standalone annotation should cover its own line and the next (blank) line")
		}
		if allows[allowKey{"src.go", 5, "nopanic"}] != nil {
			t.Error("annotation must not reach across the blank line to line 5")
		}
	})
	t.Run("missing -- separator with reason text", func(t *testing.T) {
		_, grants, malformed := parseAllowsFromSrc(t, "package p\n\n//rilint:allow nopanic because reasons\nvar X = 1\n")
		if len(grants) != 0 {
			t.Error("annotation without ` -- ` must grant nothing")
		}
		if len(malformed) != 1 {
			t.Errorf("want one malformed diagnostic, got %v", malformed)
		}
	})
	t.Run("comma spacing and empty names", func(t *testing.T) {
		allows, grants, malformed := parseAllowsFromSrc(t, "package p\n\n//rilint:allow nopanic,,  errwrap , -- two names, sloppy commas.\nvar X = 1\n")
		if len(malformed) != 0 {
			t.Fatalf("unexpected malformed: %v", malformed)
		}
		if len(grants) != 2 {
			t.Errorf("empty comma segments must be dropped: want 2 grants, got %d", len(grants))
		}
		for _, name := range []string{"nopanic", "errwrap"} {
			if allows[allowKey{"src.go", 3, name}] == nil {
				t.Errorf("missing grant for %q", name)
			}
		}
	})
	t.Run("indented and trailing annotations", func(t *testing.T) {
		allows, _, malformed := parseAllowsFromSrc(t, "package p\n\nvar X = 1 //rilint:allow nopanic -- trailing form.\n")
		if len(malformed) != 0 {
			t.Fatalf("unexpected malformed: %v", malformed)
		}
		if allows[allowKey{"src.go", 3, "nopanic"}] == nil {
			t.Error("trailing annotation must cover its own line")
		}
	})
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "nopanic",
		Pos:      token.Position{Filename: "lib.go", Line: 7, Column: 2},
		Message:  "panic in library code",
	}
	want := "lib.go:7:2: nopanic: panic in library code"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// typeCheckSrc builds a *Package from one in-memory source file with
// no imports, for driving Check without the go tool.
func typeCheckSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	typed, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Types: typed, TypesInfo: info}
}

// lineReporter is a test analyzer reporting one diagnostic at a fixed
// line of every file.
func lineReporter(name string, line int) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				pos := p.Fset.Position(f.Pos())
				p.report(Diagnostic{
					Analyzer: name,
					Pos:      token.Position{Filename: pos.Filename, Line: line, Column: 1},
					Message:  "synthetic finding",
				})
			}
			return nil
		},
	}
}

func TestCheckSuppressionLedger(t *testing.T) {
	src := `package p

//rilint:allow hit -- suppresses the synthetic finding on the next line.
var A = 1

//rilint:allow stale -- suppresses nothing; the ledger must flag it.
var B = 2

//rilint:allow notrun -- names an analyzer outside this run; left alone.
var C = 3
`
	pkg := typeCheckSrc(t, src)
	hit := lineReporter("hit", 4)
	stale := &Analyzer{Name: "stale", Doc: "never fires", Run: func(*Pass) error { return nil }}
	diags, err := Check([]*Package{pkg}, []*Analyzer{hit, stale})
	if err != nil {
		t.Fatal(err)
	}
	var ledger []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "hit" {
			t.Errorf("suppressed finding leaked: %s", d)
		}
		if d.Analyzer == LedgerAnalyzer {
			ledger = append(ledger, d)
		}
	}
	if len(ledger) != 1 {
		t.Fatalf("want exactly one stale-ledger finding, got %v", ledger)
	}
	if !strings.Contains(ledger[0].Message, "stale") || ledger[0].Pos.Line != 6 {
		t.Errorf("ledger finding should name the stale grant at line 6, got %s", ledger[0])
	}
}

func TestCheckLedgerRespectsRunSet(t *testing.T) {
	// Running only one analyzer must not flag another analyzer's
	// escapes as stale — the single-analyzer fixture harness depends
	// on this.
	pkg := typeCheckSrc(t, "package p\n\n//rilint:allow other -- held for an analyzer not in this run.\nvar A = 1\n")
	only := &Analyzer{Name: "only", Doc: "never fires", Run: func(*Pass) error { return nil }}
	diags, err := Check([]*Package{pkg}, []*Analyzer{only})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestFactsCrossPackageExportImport(t *testing.T) {
	// Facts flow in package order: an exporter analyzed first is
	// visible to the importer analyzed second, regardless of file.
	pkgA := typeCheckSrc(t, "package p\n\nvar A = 1\n")
	pkgB := typeCheckSrc(t, "package p\n\nvar B = 2\n")
	pkgA.ImportPath, pkgB.ImportPath = "a", "b"
	var got any
	exporter := &Analyzer{Name: "exp", Doc: "d", Run: func(p *Pass) error {
		if p.Pkg.Path() == "p" && p.Files != nil && p.Fset.Position(p.Files[0].Pos()).Filename == "src.go" {
			p.Facts.Export("k", "v")
		}
		return nil
	}}
	importer := &Analyzer{Name: "imp", Doc: "d", Run: func(p *Pass) error {
		got, _ = p.Facts.Import("k")
		return nil
	}}
	if _, err := Check([]*Package{pkgA, pkgB}, []*Analyzer{exporter, importer}); err != nil {
		t.Fatal(err)
	}
	if got != "v" {
		t.Errorf("fact exported in first package not visible later: got %v", got)
	}
}
