package rilint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseAllowsFromSrc(t *testing.T, src string) (map[allowKey]bool, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return parseAllows(fset, []*ast.File{f})
}

func TestParseAllowsGrants(t *testing.T) {
	allows, malformed := parseAllowsFromSrc(t, `package p

func f() {
	//rilint:allow nopanic -- justified here.
	panic("x")
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed annotations: %v", malformed)
	}
	// The annotation on line 4 covers lines 4 and 5.
	for _, line := range []int{4, 5} {
		if !allows[allowKey{"src.go", line, "nopanic"}] {
			t.Errorf("line %d not covered by the annotation", line)
		}
	}
	if allows[allowKey{"src.go", 6, "nopanic"}] {
		t.Error("annotation leaked past the following line")
	}
	if allows[allowKey{"src.go", 4, "floatdet"}] {
		t.Error("annotation granted an analyzer it did not name")
	}
}

func TestParseAllowsMultipleNames(t *testing.T) {
	allows, malformed := parseAllowsFromSrc(t, `package p

//rilint:allow nopanic, errwrap -- one reason for two analyzers.
var X = 1
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed annotations: %v", malformed)
	}
	for _, name := range []string{"nopanic", "errwrap"} {
		if !allows[allowKey{"src.go", 3, name}] {
			t.Errorf("annotation did not grant %q", name)
		}
	}
}

func TestParseAllowsRequiresJustification(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//rilint:allow nopanic\nvar X = 1\n",
		"package p\n\n//rilint:allow nopanic -- \nvar X = 1\n",
		"package p\n\n//rilint:allow -- reason with no analyzer name.\nvar X = 1\n",
	} {
		allows, malformed := parseAllowsFromSrc(t, src)
		if len(allows) != 0 {
			t.Errorf("malformed annotation granted suppressions: %q", src)
		}
		if len(malformed) != 1 {
			t.Errorf("want exactly one malformed diagnostic for %q, got %v", src, malformed)
			continue
		}
		if !strings.Contains(malformed[0].Message, "justification") {
			t.Errorf("malformed diagnostic should demand a justification, got %q", malformed[0].Message)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "nopanic",
		Pos:      token.Position{Filename: "lib.go", Line: 7, Column: 2},
		Message:  "panic in library code",
	}
	want := "lib.go:7:2: nopanic: panic in library code"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
