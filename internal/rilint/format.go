package rilint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Formats cmd/rilint can emit. Text is the human one-line-per-finding
// form; JSON is a stable machine-readable envelope for scripting; SARIF
// is the 2.1.0 subset CI artifact viewers ingest.
const (
	FormatText  = "text"
	FormatJSON  = "json"
	FormatSARIF = "sarif"
)

// frameworkRules are the virtual analyzers the framework itself
// reports under, so every possible ruleId in a result has a matching
// rule descriptor.
var frameworkRules = []struct{ name, doc string }{
	{"rilint", "malformed //rilint:allow annotation: the justification after ` -- ` is mandatory"},
	{LedgerAnalyzer, "stale suppression ledger: an //rilint:allow annotation that no longer suppresses any finding"},
}

// WriteDiagnostics renders diags to w in the named format. analyzers
// supplies the rule catalog for formats that carry descriptors
// (SARIF); diags must already be sorted (Check sorts).
func WriteDiagnostics(w io.Writer, format string, diags []Diagnostic, analyzers []*Analyzer) error {
	switch format {
	case FormatText:
		for _, d := range diags {
			if _, err := fmt.Fprintln(w, d); err != nil {
				return err
			}
		}
		return nil
	case FormatJSON:
		return writeJSON(w, diags)
	case FormatSARIF:
		return writeSARIF(w, diags, analyzers)
	default:
		return fmt.Errorf("rilint: unknown output format %q (want %s, %s or %s)", format, FormatText, FormatJSON, FormatSARIF)
	}
}

// jsonFinding is one diagnostic in the -format json envelope.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings []jsonFinding `json:"findings"`
	}{findings})
}

// SARIF 2.1.0 subset: one run, one tool driver, a rule descriptor per
// analyzer (plus the framework's virtual rules), one result per
// diagnostic. Kept to the fields CI viewers actually consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+len(frameworkRules))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	for _, fr := range frameworkRules {
		rules = append(rules, sarifRule{ID: fr.name, ShortDescription: sarifMessage{Text: fr.doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line := d.Pos.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based; a position-less finding still needs one
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rilint", Rules: rules}},
			Results: results,
		}},
	})
}
