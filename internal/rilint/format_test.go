package rilint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

var formatDiags = []Diagnostic{
	{Analyzer: "alpha", Pos: token.Position{Filename: "a.go", Line: 3, Column: 2}, Message: "first finding"},
	{Analyzer: LedgerAnalyzer, Pos: token.Position{Filename: "b.go", Line: 9, Column: 1}, Message: "unused //rilint:allow alpha annotation"},
}

var formatAnalyzers = []*Analyzer{
	{Name: "alpha", Doc: "alpha doc"},
	{Name: "beta", Doc: "beta doc"},
}

func TestWriteDiagnosticsText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDiagnostics(&buf, FormatText, formatDiags, formatAnalyzers); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("text format emitted %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if lines[0] != "a.go:3:2: alpha: first finding" {
		t.Errorf("unexpected text line: %q", lines[0])
	}
}

func TestWriteDiagnosticsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDiagnostics(&buf, FormatJSON, nil, formatAnalyzers); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Findings []jsonFinding `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
		t.Fatalf("json format output does not parse: %v", err)
	}
	if envelope.Findings == nil || len(envelope.Findings) != 0 {
		t.Errorf("empty diagnostics must render as an empty (non-null) findings array, got %v", buf.String())
	}

	buf.Reset()
	if err := WriteDiagnostics(&buf, FormatJSON, formatDiags, formatAnalyzers); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
		t.Fatal(err)
	}
	if len(envelope.Findings) != 2 || envelope.Findings[0].Analyzer != "alpha" || envelope.Findings[0].Line != 3 {
		t.Errorf("unexpected envelope: %+v", envelope)
	}
}

func TestWriteDiagnosticsSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDiagnostics(&buf, FormatSARIF, formatDiags, formatAnalyzers); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("sarif output does not parse as JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected sarif shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	rules := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		rules[r.ID] = true
	}
	// Every analyzer plus the framework's virtual rules gets a
	// descriptor, so every possible result ruleId resolves.
	for _, id := range []string{"alpha", "beta", "rilint", LedgerAnalyzer} {
		if !rules[id] {
			t.Errorf("missing rule descriptor for %q", id)
		}
	}
	if len(log.Runs[0].Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(log.Runs[0].Results))
	}
	for _, r := range log.Runs[0].Results {
		if !rules[r.RuleID] {
			t.Errorf("result ruleId %q lacks a descriptor", r.RuleID)
		}
		if r.Level != "error" || len(r.Locations) != 1 {
			t.Errorf("unexpected result shape: %+v", r)
		}
		if line := r.Locations[0].PhysicalLocation.Region.StartLine; line < 1 {
			t.Errorf("SARIF regions are 1-based, got startLine %d", line)
		}
	}
}

func TestWriteDiagnosticsUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	err := WriteDiagnostics(&buf, "yaml", formatDiags, formatAnalyzers)
	if err == nil {
		t.Fatal("unknown format accepted")
	}
	if !strings.Contains(err.Error(), "yaml") {
		t.Errorf("error should name the rejected format: %v", err)
	}
}
