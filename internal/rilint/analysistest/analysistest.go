// Package analysistest runs a rilint analyzer over a fixture module
// and checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a self-contained module under testdata/src/<name>/
// whose module path is `rimarket`, so that path-scoped analyzers see
// the same import-path suffixes as in the real tree. Expectations are
// written on the line the diagnostic lands on:
//
//	total += p // want `float accumulation inside range over map`
//
// Each `want` takes one or more quoted regular expressions; every
// diagnostic on the line must match a distinct expectation and vice
// versa. Suppression annotations are honored before matching, so a
// fixture line carrying //rilint:allow and no want comment is the
// escape-hatch test.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rimarket/internal/rilint"
)

// wantRE matches the expectation marker anywhere in a source line, so
// it works in trailing comments and inside annotation comments alike.
var wantRE = regexp.MustCompile(`// want (.*)$`)

// expectation is one unmatched want pattern at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run loads the fixture module at dir, checks it with a (plus the
// framework's annotation hygiene), and reports every mismatch between
// diagnostics and want comments as a test error.
func Run(t *testing.T, dir string, a *rilint.Analyzer, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := rilint.Load(dir, patterns)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	diags, err := rilint.Check(pkgs, []*rilint.Analyzer{a})
	if err != nil {
		t.Fatalf("checking fixture %s: %v", dir, err)
	}

	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if w != nil {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// claimWant consumes the first unclaimed expectation on the
// diagnostic's line that matches its message.
func claimWant(wants []*expectation, d rilint.Diagnostic) bool {
	for i, w := range wants {
		if w == nil || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			wants[i] = nil
			return true
		}
	}
	return false
}

// collectWants scans every analyzed source file for want comments.
func collectWants(pkgs []*rilint.Package) ([]*expectation, error) {
	seen := map[string]bool{}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			fileWants, err := scanFile(name)
			if err != nil {
				return nil, err
			}
			wants = append(wants, fileWants...)
		}
	}
	return wants, nil
}

func scanFile(name string) ([]*expectation, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			quoted, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: malformed want pattern %q: %w", name, i+1, rest, err)
			}
			pattern, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: unquoting %q: %w", name, i+1, quoted, err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: compiling want regexp: %w", name, i+1, err)
			}
			wants = append(wants, &expectation{file: name, line: i + 1, re: re})
			rest = strings.TrimSpace(rest[len(quoted):])
		}
	}
	return wants, nil
}
