package rilint

import (
	"go/types"
)

// Facts is the shared fact store for one Check run. Analyzers use it
// to exchange per-type and per-field facts across files and across
// packages: a fact exported while analyzing one package is visible to
// every analyzer run after it, in the same package or a later one.
//
// Keys are strings, not types.Object identities, because the same
// declaration is a different object on each side of an export-data
// import boundary: internal/coltrace type-checked from source and
// internal/coltrace imported by cmd/ritrace yield distinct
// *types.Named for the same Cohort. TypeFactKey and FieldFactKey
// build canonical "<kind>:<pkgpath>.<name>" keys that survive the
// boundary.
//
// Cross-package facts rely on analysis order: Load returns targets in
// the dependency order `go list -deps` emits (dependencies before
// dependents), and Check analyzes them in that order, so a package's
// facts are always exported before any importer is analyzed.
type Facts struct {
	m map[string]any
}

func newFacts() *Facts { return &Facts{m: map[string]any{}} }

// Export records v under key, overwriting any previous fact.
func (f *Facts) Export(key string, v any) { f.m[key] = v }

// Import returns the fact recorded under key, if any.
func (f *Facts) Import(key string) (any, bool) {
	v, ok := f.m[key]
	return v, ok
}

// Memo returns the fact under key, building and recording it on first
// use. Analyzers that share one expensive per-package scan (the
// concurrency suite's field/type collection) memoize it here so the
// scan runs once per package, not once per analyzer.
func (f *Facts) Memo(key string, build func() any) any {
	if v, ok := f.m[key]; ok {
		return v
	}
	v := build()
	f.m[key] = v
	return v
}

// TypeFactKey is the canonical cross-package key for a fact about a
// named type: "<kind>:<pkgpath>.<name>".
func TypeFactKey(kind string, obj *types.TypeName) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return kind + ":" + pkg + "." + obj.Name()
}

// FieldFactKey is the canonical cross-package key for a fact about
// one field of a named type.
func FieldFactKey(kind string, owner *types.TypeName, field string) string {
	return TypeFactKey(kind, owner) + "." + field
}
