// Package obs is the floatdet fixture's Clock-seam package: wall-clock
// references here get the seam-specific message — and they are caught
// as references, so storing time.Now in a function-typed variable is
// flagged even though no call expression appears.
package obs

import "time"

// Clock mirrors the real seam type.
type Clock func() time.Time

// SystemClock is the sanctioned seam: annotated, silenced.
//
//rilint:allow floatdet -- fixture: the Clock seam itself exercising the annotation escape hatch.
var SystemClock Clock = time.Now

// RogueClock stores the wall clock as a function value without the
// annotation: no call expression, so only the reference check sees it.
var RogueClock Clock = time.Now // want `wall-clock read time.Now outside the sanctioned Clock seam`

// Stamp calls the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want `wall-clock read time.Now outside the sanctioned Clock seam`
}

// Elapsed reads wall time through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since outside the sanctioned Clock seam`
}

// ReadThrough takes the seam as a parameter: clean.
func ReadThrough(c Clock) time.Time { return c() }
