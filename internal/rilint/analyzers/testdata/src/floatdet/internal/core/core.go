// Package core is the floatdet fixture: it sits on a scoped import
// path (…/internal/core), so every nondeterminism source below must
// be flagged unless annotated.
package core

import (
	"math/rand"
	"time"
)

// MapOrderSum accumulates floats in map iteration order.
func MapOrderSum(prices map[string]float64) float64 {
	var total float64
	for _, p := range prices {
		total += p // want `float accumulation inside range over map`
	}
	return total
}

// SpelledOutSum is the x = x + y form of the same accumulation.
func SpelledOutSum(prices map[string]float64) float64 {
	total := 0.0
	for _, p := range prices {
		total = total + p // want `float accumulation inside range over map`
	}
	return total
}

// SortedSum ranges over a slice: deterministic, clean.
func SortedSum(keys []string, prices map[string]float64) float64 {
	var total float64
	for _, k := range keys {
		total += prices[k]
	}
	return total
}

// CountUsers accumulates an int in map order: order-independent,
// clean.
func CountUsers(prices map[string]float64) int {
	n := 0
	for range prices {
		n += 1
	}
	return n
}

// GlobalJitter draws from the process-global source.
func GlobalJitter() float64 {
	return rand.Float64() // want `rand.Float64 draws from the process-global source`
}

// SeededJitter builds a private seeded source: clean.
func SeededJitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `wall-clock read time.Now`
}

// clockValue stores the wall clock as a function value: no call
// expression, so only the reference check catches the dependency.
var clockValue func() time.Time = time.Now // want `wall-clock read time.Now`

// useClockValue keeps the stored clock referenced.
func useClockValue() time.Time { return clockValue() }

// Elapsed reads the wall clock through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since`
}

// SanctionedSum demonstrates the escape hatch: annotated, silenced.
func SanctionedSum(prices map[string]float64) float64 {
	var total float64
	for _, p := range prices {
		//rilint:allow floatdet -- fixture: sanctioned accumulation exercising the annotation escape hatch.
		total += p
	}
	return total
}
