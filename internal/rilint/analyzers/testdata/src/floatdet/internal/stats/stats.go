// Package stats sits outside floatdet's scope (only internal/core
// and internal/simulate are pinned): the same patterns are clean
// here.
package stats

import "time"

// MapOrderSum would be flagged in a scoped package.
func MapOrderSum(xs map[string]float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}

// Stamp would be flagged in a scoped package.
func Stamp() time.Time {
	return time.Now()
}
