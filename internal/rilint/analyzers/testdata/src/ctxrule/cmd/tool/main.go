// Command tool shows that main packages own the root context: the
// Background/TODO ban does not apply to them.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
