// Package other is ordinary library code: the Background/TODO ban is
// module-wide, but the spawn-signature rule does not apply here.
package other

import "context"

// Root mints a root context in library code.
func Root() context.Context {
	return context.Background() // want `library code calls context.Background`
}

// Sanctioned demonstrates the escape hatch.
func Sanctioned() context.Context {
	//rilint:allow ctxrule -- fixture: sanctioned root context exercising the annotation escape hatch.
	return context.Background()
}

// Spawn starts a goroutine in a non-driver package: the signature
// rule is scoped to the experiment drivers, so this is clean.
func Spawn() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
