// Package ridserver is the ctxrule fixture's serving package: the
// Background/TODO ban gets a handler-specific diagnostic here, the
// ctx-first signature rule applies to exported entry points, and
// handler-shaped functions are exempt from it (the request carries
// their context).
package ridserver

import (
	"context"
	"net/http"
)

func evaluate(ctx context.Context) error { return ctx.Err() }

// HandleGood is the well-formed handler: its context is the
// request's. Handler-shaped, so the ctx-first rule does not apply
// even though it calls context-taking code.
func HandleGood(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 0)
	defer cancel()
	_ = evaluate(ctx)
}

// HandleDetached mints a root context inside a handler: the request
// deadline and client disconnects no longer propagate.
func HandleDetached(w http.ResponseWriter, r *http.Request) {
	_ = evaluate(context.Background()) // want `HTTP handler calls context.Background: derive from r.Context\(\)`
}

// Middleware wraps a handler in a literal of the same shape: the
// handler diagnostic follows the shape, not the declaration form.
func Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = evaluate(context.TODO()) // want `HTTP handler calls context.TODO: derive from r.Context\(\)`
		next.ServeHTTP(w, r)
	})
}

// Reload is serving machinery, not a handler: outside handler spans
// the generic library diagnostic applies — and as an exported entry
// point handing work to context-taking code, it is also flagged for
// not accepting a ctx of its own.
func Reload() error { // want `exported Reload calls context-taking code`
	return evaluate(context.Background()) // want `library code calls context.Background`
}

// Warm spawns work without accepting a context: ridserver is a driver
// package now, so the ctx-first signature rule bites.
func Warm() { // want `exported Warm starts a goroutine`
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// Serve is the well-formed entry point: ctx first.
func Serve(ctx context.Context) error { return evaluate(ctx) }
