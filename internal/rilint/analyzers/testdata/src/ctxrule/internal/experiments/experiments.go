// Package experiments is the ctxrule fixture's driver package: its
// exported entry points spawn work, so they must take ctx first.
package experiments

import "context"

func process(ctx context.Context) error { return ctx.Err() }

// Run is the well-formed driver: ctx first, threaded through.
func Run(ctx context.Context) error { return process(ctx) }

// RunAll spawns a goroutine without accepting a context.
func RunAll() { // want `exported RunAll starts a goroutine`
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// Drive hands work to context-taking code without accepting one,
// which forces it to mint a root context in library code.
func Drive() error { // want `exported Drive calls context-taking code`
	return process(context.TODO()) // want `library code calls context.TODO`
}

// Misplaced buries the context in the middle of the signature.
func Misplaced(n int, ctx context.Context) error { // want `takes context.Context at position 1`
	_ = n
	return process(ctx)
}

// Render spawns nothing: exempt.
func Render() string { return "ok" }

// helper is unexported: the signature rule is about exported API.
func helper() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// Sanctioned demonstrates the escape hatch on the signature rule.
//
//rilint:allow ctxrule -- fixture: sanctioned back-compat entry point exercising the annotation escape hatch.
func Sanctioned() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
