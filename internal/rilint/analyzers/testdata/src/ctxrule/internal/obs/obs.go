// Package obs is the ctxrule fixture's context-riding package: the
// metrics travel on the context, so its exported entry points must
// accept ctx first like the experiment drivers do.
package obs

import "context"

type key struct{}

// WithMetrics is the well-formed attach point: ctx first.
func WithMetrics(ctx context.Context, v int) context.Context {
	return context.WithValue(ctx, key{}, v)
}

// FromContext is the well-formed read side: ctx first, no spawning.
func FromContext(ctx context.Context) int {
	v, _ := ctx.Value(key{}).(int)
	return v
}

// Detached mints its own root context to carry metrics, detaching the
// span from the caller's cancellation and observability.
func Detached(v int) context.Context { // want `exported Detached calls context-taking code`
	return WithMetrics(context.Background(), v) // want `library code calls context.Background`
}

// Sanctioned demonstrates the escape hatch on the signature rule.
//
//rilint:allow ctxrule -- fixture: sanctioned back-compat shim exercising the annotation escape hatch.
func Sanctioned(v int) context.Context {
	//rilint:allow ctxrule -- fixture: the shim's root context too.
	return WithMetrics(context.Background(), v)
}
