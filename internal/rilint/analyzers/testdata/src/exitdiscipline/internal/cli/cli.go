// Package cli is the fixture's stub of the shared exit-code
// vocabulary; exitdiscipline recognizes it by its import-path suffix.
package cli

// Exit codes shared by every binary.
const (
	ExitOK    = 0
	ExitError = 1
	ExitUsage = 2
)

// ExitCode maps a run function's error to the process exit code.
func ExitCode(err error) int {
	if err != nil {
		return ExitError
	}
	return ExitOK
}
