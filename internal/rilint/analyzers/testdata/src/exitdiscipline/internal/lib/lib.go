// Package lib is library code: it must return errors, never exit.
package lib

import (
	"log"
	"os"
)

// Die exits the process from library code.
func Die() {
	os.Exit(1) // want `os.Exit outside a main package's main.go`
}

// DieLoud exits through the logger.
func DieLoud() {
	log.Fatal("boom") // want `log.Fatal outside a main package's main.go`
}

// DiePanicky exits through log.Panicf.
func DiePanicky() {
	log.Panicf("boom %d", 1) // want `log.Panicf outside a main package's main.go`
}

// Sanctioned demonstrates the escape hatch.
func Sanctioned() {
	//rilint:allow exitdiscipline -- fixture: sanctioned direct exit exercising the annotation escape hatch.
	os.Exit(1)
}
