package main

import "os"

// die exits from a helper file: even in a main package, process
// termination belongs in main.go.
func die() {
	os.Exit(0) // want `os.Exit outside a main package's main.go`
}
