// Command bad exits with ad-hoc codes instead of the vocabulary.
package main

import "os"

func main() {
	os.Exit(3) // want `os.Exit code must come from the internal/cli vocabulary`
}
