// Command good terminates only through the cli vocabulary: clean.
package main

import (
	"errors"
	"log"
	"os"

	"rimarket/internal/cli"
)

func main() {
	if err := run(); err != nil {
		os.Exit(cli.ExitCode(err))
	}
	// log.Fatal is permitted in a main package's main.go.
	log.Fatal("unreachable")
	os.Exit(cli.ExitOK)
}

func run() error { return errors.New("always fails") }
