module rimarket

go 1.22
