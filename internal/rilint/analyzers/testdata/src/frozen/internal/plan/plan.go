// Package plan is the frozen fixture: a //rilint:frozen type follows
// publish-then-freeze, so its fields may only be assigned inside
// functions reachable from its constructors.
package plan

// Plan is a published snapshot.
//
//rilint:frozen
type Plan struct {
	Name  string
	Costs []float64
}

// New is a constructor: its writes, and its helpers' writes, are
// sanctioned.
func New(name string, n int) *Plan {
	p := &Plan{}
	p.Name = name
	fill(p, n)
	return p
}

// fill is reachable from New through the package call graph.
func fill(p *Plan, n int) {
	p.Costs = make([]float64, n)
	for i := range p.Costs {
		p.Costs[i] = 1
	}
}

// Rename mutates after publication.
func (p *Plan) Rename(name string) {
	p.Name = name // want `field Name of frozen type Plan is assigned`
}

// Scale mutates the shared backing array every reader of the snapshot
// sees.
func (p *Plan) Scale(f float64) {
	for i := range p.Costs {
		p.Costs[i] *= f // want `field Costs of frozen type Plan is mutated through its backing storage`
	}
}

// Reset carries the sanctioned escape.
func (p *Plan) Reset() {
	//rilint:allow frozen -- fixture: test-only reset documented as unsafe outside construction.
	p.Name = ""
}
