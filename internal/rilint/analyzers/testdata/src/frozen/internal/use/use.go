// Package use consumes frozen plans across a package boundary:
// composite literals are construction, post-construction writes are
// findings via the exported frozen fact.
package use

import "rimarket/internal/plan"

// Fresh builds a plan wholesale; a composite literal is construction,
// not mutation.
func Fresh() *plan.Plan {
	return &plan.Plan{Name: "fresh"}
}

// Tamper mutates an imported frozen value; other packages hold frozen
// types read-only.
func Tamper(p *plan.Plan) {
	p.Name = "tampered" // want `field Name of frozen type Plan is assigned`
}
