// Package lib is the nopanic fixture: library panics escape the
// worker pool's containment and are banned without an annotation.
package lib

// Explode panics from library code.
func Explode() {
	panic("boom") // want `panic in library code`
}

// Sanctioned demonstrates the allowlist annotation.
func Sanctioned() {
	//rilint:allow nopanic -- fixture: sanctioned init-time check exercising the annotation escape hatch.
	panic("sanctioned")
}

// Malformed shows that an annotation without a justification both
// fails to suppress and is itself reported.
func Malformed() {
	//rilint:allow nopanic // want `allow annotation needs`
	panic("still flagged") // want `panic in library code`
}

// recoverOnly uses recover, which is always fine.
func recoverOnly() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	return nil
}
