// Command tool shows the rule is scoped to library code: a main
// package may panic (the binary owns its own crash).
package main

func main() {
	panic("mains may crash themselves")
}
