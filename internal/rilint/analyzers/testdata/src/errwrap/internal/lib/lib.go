// Package lib is the errwrap fixture: %w discipline for fmt.Errorf
// and Unwrap discipline for exported error types.
package lib

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// Flatten loses the cause: errors.Is can no longer see errBase.
func Flatten() error {
	return fmt.Errorf("run failed: %v", errBase) // want `fmt.Errorf flattens an error argument`
}

// Wrap preserves the chain: clean.
func Wrap() error {
	return fmt.Errorf("run failed: %w", errBase)
}

// NoErrorArgs formats plain data: clean.
func NoErrorArgs(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// Stringified passes a string, not an error: the flattening was
// explicit at the call site, so errwrap stays quiet.
func Stringified() error {
	return fmt.Errorf("run failed: %s", errBase.Error())
}

// SanctionedFlatten demonstrates the escape hatch.
func SanctionedFlatten() error {
	//rilint:allow errwrap -- fixture: sanctioned flattening exercising the annotation escape hatch.
	return fmt.Errorf("run failed: %v", errBase)
}

// LoadError carries a cause but hides it from errors.Is/As.
type LoadError struct { // want `exported error type LoadError carries a wrapped cause`
	Path string
	Err  error
}

func (e *LoadError) Error() string { return e.Path + ": " + e.Err.Error() }

// ParseError carries a cause and exposes it: clean.
type ParseError struct {
	Row int
	Err error
}

func (e *ParseError) Error() string { return fmt.Sprintf("row %d: %v", e.Row, e.Err) }
func (e *ParseError) Unwrap() error { return e.Err }

// FlatError carries no cause: nothing to unwrap, clean.
type FlatError struct{ Msg string }

func (e *FlatError) Error() string { return e.Msg }

// SanctionedError demonstrates the escape hatch on the type rule.
//
//rilint:allow errwrap -- fixture: sanctioned opaque error type exercising the annotation escape hatch.
type SanctionedError struct {
	Err error
}

func (e *SanctionedError) Error() string { return e.Err.Error() }
