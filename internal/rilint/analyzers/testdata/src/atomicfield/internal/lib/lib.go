// Package lib is the atomicfield fixture: once a struct field is
// atomic — by declared type or by use — every access must stay atomic.
package lib

import "sync/atomic"

// Counter mixes an atomic-typed field with a plain field promoted to
// atomic by how the package uses it.
type Counter struct {
	hits  atomic.Int64
	drops int64
	plain int64
}

// Record uses both fields the sanctioned way.
func (c *Counter) Record() {
	c.hits.Add(1)
	atomic.AddInt64(&c.drops, 1)
}

// Snapshot reads both fields the sanctioned way.
func (c *Counter) Snapshot() (int64, int64) {
	return c.hits.Load(), atomic.LoadInt64(&c.drops)
}

// Leak copies the atomic-typed field as a value, smuggling a plain
// read past the memory model.
func (c *Counter) Leak() int64 {
	h := c.hits // want `atomic field Counter.hits is used as a value`
	return h.Load()
}

// Race reads the atomically-updated plain field directly.
func (c *Counter) Race() int64 {
	return c.drops // want `field Counter.drops is accessed through sync/atomic elsewhere`
}

// Bump writes it directly.
func (c *Counter) Bump() {
	c.drops++ // want `field Counter.drops is accessed through sync/atomic elsewhere`
}

// Plain never meets sync/atomic; direct access is fine.
func (c *Counter) Plain() int64 {
	c.plain++
	return c.plain
}

// Sanctioned demonstrates the annotation escape hatch.
func (c *Counter) Sanctioned() int64 {
	//rilint:allow atomicfield -- fixture: single-threaded teardown path reads the counter directly.
	return c.drops
}

// Histogram exercises arrays of atomics: indexing into the array to
// reach a method is fine, copying an element out is not.
type Histogram struct {
	buckets [4]atomic.Int64
}

// Observe touches a bucket through its methods.
func (h *Histogram) Observe(i int) {
	h.buckets[i].Add(1)
}

// Copy lifts a bucket out as a value.
func (h *Histogram) Copy(i int) int64 {
	b := h.buckets[i] // want `atomic field Histogram.buckets is used as a value`
	return b.Load()
}

//rilint:allow atomicfield -- fixture: stale grant retained to exercise the suppression ledger. // want `unused //rilint:allow atomicfield annotation`
