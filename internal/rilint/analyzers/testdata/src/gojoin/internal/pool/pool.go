// Package pool is the gojoin fixture: every go statement in library
// code needs a visible join path.
package pool

import (
	"context"
	"sync"
)

// Joined runs a pool and waits for it: WaitGroup evidence.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Abandoned builds the pool but forgets the join — what deleting a
// Wait during a refactor looks like.
func Abandoned(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `Abandoned builds a goroutine pool with WaitGroup.Add but never calls Wait`
			defer wg.Done()
		}()
	}
}

// ChannelJoined observes completion through the channel it drains.
func ChannelJoined() int {
	done := make(chan int)
	go func() {
		done <- 1
	}()
	return <-done
}

// CtxGuarded ties the goroutine's lifetime to a cancellation the
// caller owns.
func CtxGuarded(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Orphan has no join evidence at all.
func Orphan() {
	go func() { // want `go statement in Orphan has no visible join path`
		_ = 1
	}()
}

// Named spawns a declared function; a name is not join evidence
// because the spawner still cannot observe completion.
func Named() {
	go helper() // want `go statement in Named has no visible join path`
}

func helper() {}

// Daemon is a sanctioned process-lifetime goroutine.
func Daemon() {
	//rilint:allow gojoin -- fixture: process-lifetime daemon sanctioned by design review.
	go func() {
		_ = 1
	}()
}
