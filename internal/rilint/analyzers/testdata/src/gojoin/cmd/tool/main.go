// Command tool shows the main-package exemption: the process lifetime
// is main's to spend, so unjoined goroutines are not findings here.
package main

import "time"

func main() {
	go func() {
		time.Sleep(time.Millisecond)
	}()
	time.Sleep(10 * time.Millisecond)
}
