// Package analyzers holds the rilint invariant checkers. Each
// analyzer encodes one repo-wide rule that the differential tests,
// the bench gate, or the CLI contract otherwise only catch after the
// fact; DESIGN.md §4.3 is the human-readable catalog.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"rimarket/internal/rilint"
)

// All returns the full analyzer suite in catalog order: the five
// original invariants (PR 4), then the concurrency-discipline trio.
func All() []*rilint.Analyzer {
	return []*rilint.Analyzer{
		Floatdet,
		Ctxrule,
		Errwrap,
		Exitdiscipline,
		Nopanic,
		Atomicfield,
		Frozen,
		Gojoin,
	}
}

// pathHasSuffix reports whether an import path ends with one of the
// given repo-relative suffixes (on a path-segment boundary). Matching
// by suffix instead of full path keeps the analyzers honest in
// analysistest fixtures, whose modules mirror the repo layout under a
// different module name.
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the package-level function
// or method it statically invokes, or nil.
func calleeFunc(pass *rilint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// errorInterface is the built-in error interface type.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface
// (directly or through its pointer method set).
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}
