package analyzers_test

import (
	"path/filepath"
	"testing"

	"rimarket/internal/rilint/analysistest"
	"rimarket/internal/rilint/analyzers"
)

// fixture returns the self-contained module for one analyzer's
// want-comment suite.
func fixture(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestFloatdet(t *testing.T) {
	analysistest.Run(t, fixture(t, "floatdet"), analyzers.Floatdet)
}

func TestCtxrule(t *testing.T) {
	analysistest.Run(t, fixture(t, "ctxrule"), analyzers.Ctxrule)
}

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, fixture(t, "errwrap"), analyzers.Errwrap)
}

func TestExitdiscipline(t *testing.T) {
	analysistest.Run(t, fixture(t, "exitdiscipline"), analyzers.Exitdiscipline)
}

func TestNopanic(t *testing.T) {
	analysistest.Run(t, fixture(t, "nopanic"), analyzers.Nopanic)
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, fixture(t, "atomicfield"), analyzers.Atomicfield)
}

func TestFrozen(t *testing.T) {
	analysistest.Run(t, fixture(t, "frozen"), analyzers.Frozen)
}

func TestGojoin(t *testing.T) {
	analysistest.Run(t, fixture(t, "gojoin"), analyzers.Gojoin)
}

func TestAllCatalog(t *testing.T) {
	all := analyzers.All()
	if len(all) < 8 {
		t.Fatalf("analyzer catalog has %d entries, want at least 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"floatdet", "ctxrule", "errwrap", "exitdiscipline", "nopanic", "atomicfield", "frozen", "gojoin"} {
		if !seen[name] {
			t.Errorf("catalog is missing analyzer %q", name)
		}
	}
}
