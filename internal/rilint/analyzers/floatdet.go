package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"rimarket/internal/rilint"
)

// floatPkgs are the packages whose float accounting must be
// bit-identical across runs and worker counts: the cost engines that
// the differential suite and the bench gate pin.
var floatPkgs = []string{"internal/core", "internal/simulate"}

// clockSeamPkgs are the packages that may touch wall time only through
// the obs.Clock seam: the observability layer is timestamped, but every
// read must be substitutable with a FakeClock so manifests and progress
// lines stay testable byte-for-byte. The seam itself (SystemClock)
// carries the rilint:allow annotation.
var clockSeamPkgs = []string{"internal/obs"}

// Floatdet forbids the three classic sources of run-to-run float
// drift inside the deterministic simulation packages:
//
//   - float accumulation inside a range over a map (iteration order
//     is randomized, and float addition does not commute in rounding);
//   - math/rand package-level functions, which draw from the global,
//     process-seeded source;
//   - wall-clock reads (time.Now / Since / Until), which leak real
//     time into simulated accounting. These are caught as references,
//     not just calls, so storing time.Now in a function-typed variable
//     is flagged too; in the Clock-seam packages the fix is to route
//     the read through obs.Clock.
var Floatdet = &rilint.Analyzer{
	Name: "floatdet",
	Doc:  "forbid nondeterminism sources (map-order float accumulation, global rand, wall clock) in internal/core, internal/simulate and internal/obs",
	Run:  runFloatdet,
}

func runFloatdet(pass *rilint.Pass) error {
	seam := pathHasSuffix(pass.Pkg.Path(), clockSeamPkgs...)
	if !seam && !pathHasSuffix(pass.Pkg.Path(), floatPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkWallClockRef(pass, n, seam)
			case *ast.CallExpr:
				checkFloatdetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRangeAccumulation(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWallClockRef flags any reference to time.Now / Since / Until —
// a SelectorExpr, so both direct calls and function-value uses like
// `clock := time.Now` are caught (a stored clock is still a wall-clock
// dependency; the call-site check alone would miss it).
func checkWallClockRef(pass *rilint.Pass, sel *ast.SelectorExpr, seam bool) {
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	if !isPkgFunc(fn, "time", "Now") &&
		!isPkgFunc(fn, "time", "Since") &&
		!isPkgFunc(fn, "time", "Until") {
		return
	}
	if seam {
		pass.Reportf(sel.Pos(),
			"wall-clock read time.%s outside the sanctioned Clock seam; take an obs.Clock so tests can substitute FakeClock", fn.Name())
		return
	}
	pass.Reportf(sel.Pos(),
		"wall-clock read time.%s in deterministic simulation code; thread simulated hours instead", fn.Name())
}

func checkFloatdetCall(pass *rilint.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewZipf, ...) build the seeded
		// private sources the engines are required to use; everything
		// else at package level draws from the shared global source.
		if len(fn.Name()) >= 3 && fn.Name()[:3] == "New" {
			return
		}
		pass.Reportf(call.Pos(),
			"rand.%s draws from the process-global source; use a seeded *rand.Rand so runs are reproducible", fn.Name())
	}
}

// checkMapRangeAccumulation flags float accumulation whose result
// depends on map iteration order: compound assignments (+=, -=, *=,
// /=) to a float lvalue inside the body of a range over a map, and
// the spelled-out x = x + ... form of the same thing.
func checkMapRangeAccumulation(pass *rilint.Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range assign.Lhs {
				if isFloatExpr(pass, lhs) {
					pass.Reportf(assign.Pos(),
						"float accumulation inside range over map: iteration order is randomized, so rounding differs run to run; iterate a sorted slice of keys")
					return true
				}
			}
		case token.ASSIGN:
			for i, lhs := range assign.Lhs {
				if i >= len(assign.Rhs) || !isFloatExpr(pass, lhs) {
					continue
				}
				if exprMentions(assign.Rhs[i], lhs) {
					pass.Reportf(assign.Pos(),
						"float accumulation inside range over map: iteration order is randomized, so rounding differs run to run; iterate a sorted slice of keys")
					return true
				}
			}
		}
		return true
	})
}

func isFloatExpr(pass *rilint.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprMentions reports whether rhs contains a subexpression
// syntactically equal to lvalue (an ident / selector / index chain).
func exprMentions(rhs, lvalue ast.Expr) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && sameLvalue(e, lvalue) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func sameLvalue(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		b, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameLvalue(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := ast.Unparen(b).(*ast.IndexExpr)
		return ok && sameLvalue(a.X, b.X) && sameLvalue(a.Index, b.Index)
	}
	return false
}
