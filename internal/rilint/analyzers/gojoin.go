package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"rimarket/internal/rilint"
)

// Gojoin requires every `go` statement in library packages to have a
// visible join path in its enclosing function declaration — the
// repo's pools are all joined (runShardedDone's wg.Wait, RunBatch's
// shard join, ridserver's result channel), and a goroutine with no
// join is either a leak or an invisible lifetime contract. Accepted
// join evidence, in order:
//
//   - WaitGroup: the function calls wg.Wait on a sync.WaitGroup. If
//     the function calls wg.Add but never wg.Wait, that is its own
//     finding — the pool is built but never joined, which is exactly
//     what deleting a Wait during a refactor looks like;
//   - result channel: the spawned function literal sends on or closes
//     a channel that the enclosing function receives from (or ranges
//     over), so the spawner observes completion;
//   - ctx guard: the spawned literal checks ctx.Done()/ctx.Err() on a
//     context.Context, tying its lifetime to a cancellation the
//     caller owns.
//
// Sanctioned daemons (a pprof listener, a process-lifetime signal
// watcher) carry `//rilint:allow gojoin -- <reason>`; main packages
// are exempt (the process lifetime is theirs to spend).
var Gojoin = &rilint.Analyzer{
	Name: "gojoin",
	Doc:  "every go statement in library code needs a visible join path (WaitGroup Wait, result-channel receive, or ctx guard) or a //rilint:allow gojoin annotation",
	Run:  runGojoin,
}

func runGojoin(pass *rilint.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	conc(pass) // keep the shared scan warm (exports frozen facts in declaration order)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGojoinFunc(pass, fd)
		}
	}
	return nil
}

func checkGojoinFunc(pass *rilint.Pass, fd *ast.FuncDecl) {
	var gos []*ast.GoStmt
	wgAdd, wgWait := false, false
	recvs := map[types.Object]bool{} // channels the function receives from or ranges over
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			gos = append(gos, n)
		case *ast.CallExpr:
			switch waitGroupMethod(pass, n) {
			case "Add":
				wgAdd = true
			case "Wait":
				wgWait = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanObj(pass, n.X); obj != nil {
					recvs[obj] = true
				}
			}
		case *ast.RangeStmt:
			if obj := chanObj(pass, n.X); obj != nil {
				recvs[obj] = true
			}
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	if wgWait {
		return // the pool joins; every goroutine in this function rides it
	}
	if wgAdd {
		pass.Reportf(gos[0].Pos(),
			"%s builds a goroutine pool with WaitGroup.Add but never calls Wait; the pool is spawned and abandoned — join it before returning", funcName(fd))
		return
	}
	for _, g := range gos {
		if joinedByChannel(pass, g, recvs) || ctxGuarded(pass, g) {
			continue
		}
		pass.Reportf(g.Pos(),
			"go statement in %s has no visible join path (no WaitGroup Wait, no receive from a channel it signals, no ctx guard); join it or annotate //rilint:allow gojoin -- <reason>", funcName(fd))
	}
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := fd.Recv.List[0].Type; t != nil {
			if se, ok := t.(*ast.StarExpr); ok {
				if id, ok := se.X.(*ast.Ident); ok {
					return "(*" + id.Name + ")." + fd.Name.Name
				}
			}
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "." + fd.Name.Name
			}
		}
	}
	return fd.Name.Name
}

// waitGroupMethod returns the method name if call is a method call on
// a sync.WaitGroup (by value or pointer), else "".
func waitGroupMethod(pass *rilint.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if !isNamedType(t, "sync", "WaitGroup") {
		return ""
	}
	return fn.Name()
}

// chanObj resolves e to the object of a channel-typed identifier (the
// root of a selector chain counts), or nil.
func chanObj(pass *rilint.Pass, e ast.Expr) types.Object {
	t := pass.TypeOf(e)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return nil
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(x)
	case *ast.SelectorExpr:
		return pass.ObjectOf(x.Sel)
	}
	return nil
}

// joinedByChannel reports whether g spawns a function literal that
// sends on or closes a channel the enclosing function receives from.
func joinedByChannel(pass *rilint.Pass, g *ast.GoStmt, recvs map[types.Object]bool) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := chanObj(pass, n.Chan); obj != nil && recvs[obj] {
				joined = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					if obj := chanObj(pass, n.Args[0]); obj != nil && recvs[obj] {
						joined = true
					}
				}
			}
		}
		return true
	})
	return joined
}

// ctxGuarded reports whether g spawns a function literal whose body
// consults ctx.Done() or ctx.Err() on a context.Context.
func ctxGuarded(pass *rilint.Pass, g *ast.GoStmt) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	guarded := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
			return true
		}
		if t := pass.TypeOf(sel.X); t != nil && isContextType(t) {
			guarded = true
		}
		return true
	})
	return guarded
}
