package analyzers

import (
	"go/ast"
	"go/types"

	"rimarket/internal/rilint"
)

// Nopanic bans panic in library code. The experiment runner converts
// worker panics into structured *JobPanicError values under the
// lowest-index-first-error rule — a panic that escapes anywhere else
// tears down the whole process and bypasses that containment. The
// sanctioned exceptions (init-time validation of compiled-in data)
// carry a `//rilint:allow nopanic -- <why>` annotation, which is the
// designated allowlist mechanism.
var Nopanic = &rilint.Analyzer{
	Name: "nopanic",
	Doc:  "no panic in non-main, non-test library code; sanctioned sites carry a //rilint:allow nopanic annotation",
	Run:  runNopanic,
}

func runNopanic(pass *rilint.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// A shadowing function named panic is not the builtin.
			if _, builtin := pass.ObjectOf(id).(*types.Builtin); !builtin {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in library code escapes the worker pool's containment (JobPanicError); return an error, or annotate a sanctioned init-time check")
			return true
		})
	}
	return nil
}
