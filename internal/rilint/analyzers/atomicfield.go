package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"rimarket/internal/rilint"
)

// Atomicfield enforces all-or-nothing atomicity per struct field. A
// field is atomic if its declared type comes from sync/atomic
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], an array of them) or
// if the package passes its address to a sync/atomic function
// anywhere. Once atomic, every access must stay atomic:
//
//   - an atomic-typed field may only be used through its methods
//     (Load/Store/Add/Swap/CompareAndSwap) or by taking its address —
//     copying or rebinding the value smuggles a plain read past the
//     memory model;
//   - a plain field used with atomic.AddInt64(&s.f, ...)-style calls
//     may not be read or written directly anywhere else in the
//     package — mixed access is exactly the race the snapshot-swap
//     and padded-cursor conventions exist to prevent.
//
// The inventory is package-wide (the fact scan covers every file
// before any access is judged), so an atomic.AddInt64 in one file
// convicts a bare `s.f++` in another.
var Atomicfield = &rilint.Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed through sync/atomic (or of an atomic.* type) must never be read or written non-atomically anywhere in the package",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *rilint.Pass) error {
	facts := conc(pass)
	if len(facts.atomicTyped) == 0 && len(facts.atomicOps) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := selectedField(pass, sel)
			if v == nil {
				return true
			}
			switch {
			case facts.atomicTyped[v]:
				if !atomicTypedUseOK(pass, sel, stack) {
					pass.Reportf(sel.Pos(),
						"atomic field %s.%s is used as a value here; it must only be accessed through its sync/atomic methods (Load/Store/Add/Swap/CompareAndSwap)",
						fieldOwner(v), v.Name())
				}
			default:
				if pos, atomic := facts.atomicOps[v]; atomic && !atomicOpUseOK(pass, stack) {
					pass.Reportf(sel.Pos(),
						"field %s.%s is accessed through sync/atomic elsewhere in this package (%s); this plain access races with it — use the atomic operations everywhere or nowhere",
						fieldOwner(v), v.Name(), pos)
				}
			}
			return true
		})
	}
	return nil
}

// selectedField resolves sel to the struct field it names, or nil.
func selectedField(pass *rilint.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if s.Kind() != types.FieldVal {
			return nil
		}
		return s.Obj().(*types.Var)
	}
	if v, ok := pass.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// fieldOwner names the struct a field belongs to, best-effort, for
// diagnostics.
func fieldOwner(v *types.Var) string {
	if v.Pkg() == nil {
		return "?"
	}
	// The field's parent scope is not the named type, so recover the
	// owner by position: scan the package scope for a named struct
	// type that declares this exact object.
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return "(struct)"
}

// atomicTypedUseOK reports whether a selector naming an atomic-typed
// field appears in a sanctioned context: a method call on the field
// (possibly through an index expression, for arrays of atomics) or an
// address-of (the pointer's pointee is still operated on atomically).
func atomicTypedUseOK(pass *rilint.Pass, sel ast.Expr, stack []ast.Node) bool {
	cur := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p
				continue
			}
			return false // the field is the index, not the operand: a plain read
		case *ast.SelectorExpr:
			if p.X != cur {
				return false
			}
			_, isMethod := pass.ObjectOf(p.Sel).(*types.Func)
			return isMethod
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == cur
		default:
			return false
		}
	}
	return false
}

// atomicOpUseOK reports whether the selector's context is
// `&x.f` handed to a sync/atomic call.
func atomicOpUseOK(pass *rilint.Pass, stack []ast.Node) bool {
	// stack[len-1] is the selector's parent. Expect UnaryExpr(&) then
	// (possibly parenthesized) a sync/atomic CallExpr argument.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	un, ok := stack[i].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	for i--; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(pass, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
	}
	return false
}

// inspectWithStack is ast.Inspect with the ancestor stack exposed:
// stack holds every ancestor of n, outermost first, excluding n.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			// Pruned nodes get no f(nil) callback, so push only when
			// Inspect will descend (and therefore pop).
			stack = append(stack, n)
		}
		return keep
	})
}
