package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"rimarket/internal/rilint"
)

// Errwrap enforces the error-chain contract the CLI exit-code mapping
// depends on: cli.ExitCode classifies failures with errors.Is /
// errors.As, which only see through chains built with %w and Unwrap.
//
//   - fmt.Errorf given an error argument must wrap it with %w, not
//     flatten it with %v/%s — flattening silently breaks ErrPartial
//     and UsageError classification downstream;
//   - an exported error type that carries a wrapped cause (an
//     error-typed field) must define Unwrap so errors.Is can traverse
//     it.
var Errwrap = &rilint.Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must use %w; exported error types carrying a cause must define Unwrap",
	Run:  runErrwrap,
}

func runErrwrap(pass *rilint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				checkErrorfWrap(pass, call)
			}
			return true
		})
	}
	checkUnwrapMethods(pass)
	return nil
}

func checkErrorfWrap(pass *rilint.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return // format string not a literal; nothing to verify
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if implementsError(pass.TypeOf(arg)) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf flattens an error argument without %%w: the cause disappears from the errors.Is/As chain that cli.ExitCode classifies")
			return
		}
	}
}

// checkUnwrapMethods flags exported error types with an error-typed
// field but no Unwrap method.
func checkUnwrapMethods(pass *rilint.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !implementsError(named) {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		wraps := false
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if types.Identical(ft, errorInterface) || implementsError(ft) {
				wraps = true
				break
			}
		}
		if !wraps || hasUnwrap(named) {
			continue
		}
		pass.Reportf(tn.Pos(),
			"exported error type %s carries a wrapped cause but defines no Unwrap method; errors.Is/As cannot see through it", name)
	}
}

func hasUnwrap(named *types.Named) bool {
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, named.Obj().Pkg(), "Unwrap")
		if fn, ok := obj.(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				return true
			}
		}
	}
	return false
}
