package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rimarket/internal/rilint"
)

// This file is the concurrency suite's shared fact scan. The three
// analyzers (atomicfield, frozen, gojoin) all need the same
// per-package inventory — which struct fields are atomic, which types
// are frozen, which functions construct them — collected across every
// file of the package before any single access can be judged. The
// scan runs once per package, memoized in the run-wide fact store,
// and exports the cross-package facts (frozen types) other packages'
// passes import.

// FrozenPrefix marks a type whose fields may only be assigned inside
// functions reachable from its constructors: put `//rilint:frozen` in
// the type's doc comment.
const FrozenPrefix = "rilint:frozen"

// frozenFactKind keys the cross-package "this type is frozen" fact.
const frozenFactKind = "frozen"

// concFacts is one package's concurrency inventory.
type concFacts struct {
	// atomicTyped maps struct fields whose type is (or is an array of)
	// a sync/atomic type to the field object.
	atomicTyped map[*types.Var]bool
	// atomicOps maps plain-typed struct fields that are passed by
	// address to a sync/atomic function somewhere in the package to
	// one such position, for the mixed-access message.
	atomicOps map[*types.Var]token.Position
	// frozen is the set of //rilint:frozen-annotated types declared in
	// this package.
	frozen map[*types.TypeName]bool
	// ctors maps each frozen type to its declared constructors: the
	// package-level functions and methods whose results include the
	// type (by value or pointer).
	ctors map[*types.TypeName][]*types.Func
	// calls is the package-internal static call graph: declared
	// function -> same-package declared functions it calls (calls from
	// nested function literals attribute to the enclosing declaration).
	calls map[*types.Func][]*types.Func
	// decls maps each declared function object to its declaration, for
	// position-independent lookups.
	decls map[*types.Func]*ast.FuncDecl
}

// conc returns the package's concurrency facts, scanning on first use.
func conc(pass *rilint.Pass) *concFacts {
	v := pass.Facts.Memo("conc:"+pass.Pkg.Path(), func() any {
		return scanConc(pass)
	})
	return v.(*concFacts)
}

func scanConc(pass *rilint.Pass) *concFacts {
	f := &concFacts{
		atomicTyped: map[*types.Var]bool{},
		atomicOps:   map[*types.Var]token.Position{},
		frozen:      map[*types.TypeName]bool{},
		ctors:       map[*types.TypeName][]*types.Func{},
		calls:       map[*types.Func][]*types.Func{},
		decls:       map[*types.Func]*ast.FuncDecl{},
	}
	for _, file := range pass.Files {
		scanFrozenMarks(pass, file, f)
		scanFields(pass, file, f)
		scanFuncs(pass, file, f)
	}
	for tn := range f.frozen {
		pass.Facts.Export(rilint.TypeFactKey(frozenFactKind, tn), true)
	}
	return f
}

// isFrozenType reports whether named's declaration is frozen: declared
// in this package and annotated, or declared elsewhere with an
// exported frozen fact (the annotated package is analyzed first, in
// dependency order).
func isFrozenType(pass *rilint.Pass, f *concFacts, tn *types.TypeName) bool {
	if tn.Pkg() == pass.Pkg {
		return f.frozen[tn]
	}
	_, ok := pass.Facts.Import(rilint.TypeFactKey(frozenFactKind, tn))
	return ok
}

// scanFrozenMarks records every type declaration whose doc comment
// carries the //rilint:frozen marker.
func scanFrozenMarks(pass *rilint.Pass, file *ast.File, f *concFacts) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !hasFrozenMark(gd.Doc) && !hasFrozenMark(ts.Doc) {
				continue
			}
			if tn, ok := pass.ObjectOf(ts.Name).(*types.TypeName); ok {
				f.frozen[tn] = true
			}
		}
	}
}

func hasFrozenMark(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == FrozenPrefix {
			return true
		}
	}
	return false
}

// atomicCore reports whether t is a sync/atomic type, or an array of
// one (obs.Histogram's bucket array is the motivating case).
func atomicCore(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return atomicCore(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// scanFields collects the two kinds of atomic fields: those whose
// declared type is atomic, and plain fields handed by address to a
// sync/atomic function anywhere in the file.
func scanFields(pass *rilint.Pass, file *ast.File, f *concFacts) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, fld := range n.Fields.List {
				for _, name := range fld.Names {
					v, ok := pass.ObjectOf(name).(*types.Var)
					if ok && v.IsField() && atomicCore(v.Type()) {
						f.atomicTyped[v] = true
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range n.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := fieldOfSelector(pass, un.X); v != nil && !atomicCore(v.Type()) {
					if _, seen := f.atomicOps[v]; !seen {
						f.atomicOps[v] = pass.Fset.Position(n.Pos())
					}
				}
			}
		}
		return true
	})
}

// fieldOfSelector resolves e to the struct field a selector (possibly
// through index expressions: x.f[i]) ultimately names, or nil.
func fieldOfSelector(pass *rilint.Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj().(*types.Var)
			}
			if v, ok := pass.ObjectOf(x.Sel).(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// scanFuncs records declarations, the package-internal call graph, and
// frozen-type constructors.
func scanFuncs(pass *rilint.Pass, file *ast.File, f *concFacts) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := pass.ObjectOf(fd.Name).(*types.Func)
		if !ok {
			continue
		}
		f.decls[obj] = fd

		sig := obj.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			if tn := namedResult(sig.Results().At(i).Type()); tn != nil && tn.Pkg() == pass.Pkg {
				f.ctors[tn] = append(f.ctors[tn], obj)
			}
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
				f.calls[obj] = append(f.calls[obj], callee)
			}
			return true
		})
	}
}

// namedResult peels a result type to the TypeName it constructs: T,
// *T, []T or []*T (a batch constructor returning a slice still owns
// the values it built).
func namedResult(t types.Type) *types.TypeName {
	switch t := t.(type) {
	case *types.Pointer:
		return namedResult(t.Elem())
	case *types.Slice:
		return namedResult(t.Elem())
	case *types.Named:
		return t.Obj()
	}
	return nil
}

// reachableFromCtors returns the set of declared functions reachable
// from tn's constructors through the package-internal call graph —
// the functions allowed to assign tn's fields.
func (f *concFacts) reachableFromCtors(tn *types.TypeName) map[*types.Func]bool {
	reach := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), f.ctors[tn]...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if reach[fn] {
			continue
		}
		reach[fn] = true
		queue = append(queue, f.calls[fn]...)
	}
	return reach
}
