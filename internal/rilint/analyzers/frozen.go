package analyzers

import (
	"go/ast"
	"go/types"

	"rimarket/internal/rilint"
)

// Frozen turns the "immutable snapshot" comment contract into a
// checked invariant. A type annotated `//rilint:frozen` in its doc
// comment (experiments.DecisionSet, coltrace.Cohort, gridstore.Spec)
// follows publish-then-freeze: after a constructor returns it, no
// field is ever assigned again — that is what makes lock-free
// atomic.Pointer swaps and any-parallelism sharing sound.
//
// Enforcement: a field of a frozen type (including writes through the
// field — s.F[i] = v, s.M[k] = v — which mutate shared backing
// storage just as surely) may only be assigned inside functions
// reachable from the type's declared constructors: the package-level
// functions and methods whose results include the type, plus
// everything they call in the same package (function literals inside
// them included). Other packages construct frozen values with
// composite literals; any post-construction field assignment there is
// a finding too, via the cross-package frozen fact.
var Frozen = &rilint.Analyzer{
	Name: "frozen",
	Doc:  "fields of //rilint:frozen types may only be assigned inside functions reachable from the type's constructors (publish-then-freeze)",
	Run:  runFrozen,
}

func runFrozen(pass *rilint.Pass) error {
	facts := conc(pass)

	// Reachability per locally-frozen type, built lazily: most
	// packages have none.
	reach := map[*types.TypeName]map[*types.Func]bool{}
	allowed := func(tn *types.TypeName, in *types.Func) bool {
		if tn.Pkg() != pass.Pkg {
			return false // no constructors here: imported frozen types are read-only
		}
		r, ok := reach[tn]
		if !ok {
			r = facts.reachableFromCtors(tn)
			reach[tn] = r
		}
		return in != nil && r[in]
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.ObjectOf(fd.Name).(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkFrozenWrite(pass, facts, lhs, fn, allowed)
					}
				case *ast.IncDecStmt:
					checkFrozenWrite(pass, facts, n.X, fn, allowed)
				}
				return true
			})
		}
	}
	return nil
}

// checkFrozenWrite reports lhs if it writes a frozen type's field (or
// through one) outside the constructor-reachable set.
func checkFrozenWrite(pass *rilint.Pass, facts *concFacts, lhs ast.Expr, in *types.Func, allowed func(*types.TypeName, *types.Func) bool) {
	// Peel writes-through: s.F[i] = v and *s.F = v mutate storage the
	// frozen field shares with every reader of the snapshot.
	through := false
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs, through = x.X, true
			continue
		case *ast.StarExpr:
			lhs, through = x.X, true
			continue
		case *ast.SelectorExpr:
			if tn := frozenOwner(pass, facts, x); tn != nil {
				if allowed(tn, in) {
					return
				}
				how := "assigned"
				if through {
					how = "mutated through its backing storage"
				}
				pass.Reportf(x.Pos(),
					"field %s of frozen type %s is %s outside the type's constructors; %s is publish-then-freeze — build a new value and swap it instead",
					x.Sel.Name, tn.Name(), how, tn.Name())
				return
			}
			// Not a frozen owner at this level: keep peeling, so
			// s.Frozen.Inner = v and s.FrozenSlice[i].F = v still
			// resolve to the frozen field they mutate through.
			lhs, through = x.X, true
			continue
		default:
			return
		}
	}
}

// frozenOwner returns the frozen type whose field sel names, or nil.
func frozenOwner(pass *rilint.Pass, facts *concFacts, sel *ast.SelectorExpr) *types.TypeName {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	t := s.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if !isFrozenType(pass, facts, tn) {
		return nil
	}
	return tn
}
