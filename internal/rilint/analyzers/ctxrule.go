package analyzers

import (
	"go/ast"
	"go/types"

	"rimarket/internal/rilint"
)

// ctxPkgs are the packages whose exported API fans work out over the
// worker pool, or rides the context (obs metrics travel via
// WithMetrics/FromContext): every entry point must be cancellable —
// and observable — from the caller.
var ctxPkgs = []string{"internal/experiments", "internal/obs"}

// Ctxrule enforces the context-threading contract PR 3 established:
//
//   - library packages (anything not package main) never mint their
//     own root context with context.Background() or context.TODO() —
//     the root context belongs to the binary, and a buried Background
//     silently detaches work from SIGINT/SIGTERM cancellation;
//   - in the experiment-driver packages, an exported function that
//     spawns work (starts a goroutine, or calls anything whose first
//     parameter is a context.Context) must itself take a
//     context.Context as its first parameter;
//   - module-wide, a context.Context parameter is always first.
var Ctxrule = &rilint.Analyzer{
	Name: "ctxrule",
	Doc:  "library code must thread context.Context: no Background()/TODO() outside main packages, ctx first in experiment-driver entry points",
	Run:  runCtxrule,
}

func runCtxrule(pass *rilint.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	driverPkg := pathHasSuffix(pass.Pkg.Path(), ctxPkgs...)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isMain {
					return true
				}
				fn := calleeFunc(pass, n)
				if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					pass.Reportf(n.Pos(),
						"library code calls context.%s: it detaches work from the caller's cancellation; accept a ctx parameter instead", fn.Name())
				}
			case *ast.FuncDecl:
				checkCtxSignature(pass, n, driverPkg)
			}
			return true
		})
	}
	return nil
}

func checkCtxSignature(pass *rilint.Pass, decl *ast.FuncDecl, driverPkg bool) {
	if decl.Name == nil || !decl.Name.IsExported() || decl.Body == nil {
		return
	}
	obj, ok := pass.ObjectOf(decl.Name).(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)

	ctxIndex := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			ctxIndex = i
			break
		}
	}
	if ctxIndex > 0 {
		pass.Reportf(decl.Name.Pos(),
			"exported %s takes context.Context at position %d; by repo convention ctx is always the first parameter", decl.Name.Name, ctxIndex)
		return
	}
	if ctxIndex == 0 || !driverPkg {
		return
	}

	// Driver package, no ctx parameter: flag if the body spawns work.
	if reason := spawnsWork(pass, decl.Body); reason != "" {
		pass.Reportf(decl.Name.Pos(),
			"exported %s %s but does not take context.Context as its first parameter; grid and cohort work must be cancellable", decl.Name.Name, reason)
	}
}

// spawnsWork reports how a function body fans out work: it starts a
// goroutine, or calls something that itself demands a context (the
// mechanical signature of handing work to the runner).
func spawnsWork(pass *rilint.Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			reason = "starts a goroutine"
			return false
		case *ast.CallExpr:
			sig, ok := pass.TypeOf(n.Fun).(*types.Signature)
			if ok && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
				reason = "calls context-taking code"
				return false
			}
		}
		return true
	})
	return reason
}
