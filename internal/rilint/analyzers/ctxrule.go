package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"rimarket/internal/rilint"
)

// ctxPkgs are the packages whose exported API fans work out over the
// worker pool, or rides the context (obs metrics travel via
// WithMetrics/FromContext): every entry point must be cancellable —
// and observable — from the caller. internal/ridserver joined the
// list with the rid daemon: snapshot loads and reloads fan the same
// engine work out, so they obey the same contract.
var ctxPkgs = []string{"internal/experiments", "internal/obs", "internal/ridserver"}

// serverPkg is the package where the HTTP-handler refinement of the
// rule applies: a handler's context is the request's, so minting one
// is not just detached work — it is a request that ignores its own
// deadline.
const serverPkg = "internal/ridserver"

// Ctxrule enforces the context-threading contract PR 3 established
// (and PR 8 extended to the serving path):
//
//   - library packages (anything not package main) never mint their
//     own root context with context.Background() or context.TODO() —
//     the root context belongs to the binary, and a buried Background
//     silently detaches work from SIGINT/SIGTERM cancellation;
//   - in the experiment-driver packages, an exported function that
//     spawns work (starts a goroutine, or calls anything whose first
//     parameter is a context.Context) must itself take a
//     context.Context as its first parameter;
//   - in internal/ridserver, HTTP handlers derive their context from
//     r.Context() — a Background/TODO inside a handler gets a
//     handler-specific diagnostic, and handler-shaped functions are
//     exempt from the ctx-first signature rule (the request carries
//     their context);
//   - module-wide, a context.Context parameter is always first.
var Ctxrule = &rilint.Analyzer{
	Name: "ctxrule",
	Doc:  "library code must thread context.Context: no Background()/TODO() outside main packages, ctx first in experiment-driver entry points, r.Context() in rid handlers",
	Run:  runCtxrule,
}

func runCtxrule(pass *rilint.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	driverPkg := pathHasSuffix(pass.Pkg.Path(), ctxPkgs...)
	inServer := pathHasSuffix(pass.Pkg.Path(), serverPkg)

	for _, f := range pass.Files {
		// Handler spans: the positions inside handler-shaped functions
		// (declared or literal), where the Background/TODO diagnostic
		// should say "use r.Context()" instead of the generic message.
		var handlers []posSpan
		if inServer {
			handlers = handlerSpans(pass, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isMain {
					return true
				}
				fn := calleeFunc(pass, n)
				if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					if spansContain(handlers, n.Pos()) {
						pass.Reportf(n.Pos(),
							"HTTP handler calls context.%s: derive from r.Context() so the request deadline and client disconnects propagate", fn.Name())
					} else {
						pass.Reportf(n.Pos(),
							"library code calls context.%s: it detaches work from the caller's cancellation; accept a ctx parameter instead", fn.Name())
					}
				}
			case *ast.FuncDecl:
				checkCtxSignature(pass, n, driverPkg, inServer)
			}
			return true
		})
	}
	return nil
}

// posSpan is one source range, inclusive of Pos and exclusive of End.
type posSpan struct{ pos, end token.Pos }

func spansContain(spans []posSpan, p token.Pos) bool {
	for _, s := range spans {
		if s.pos <= p && p < s.end {
			return true
		}
	}
	return false
}

// handlerSpans collects the source ranges of handler-shaped functions
// in f: declarations and literals whose parameters are exactly
// (http.ResponseWriter, *http.Request).
func handlerSpans(pass *rilint.Pass, f *ast.File) []posSpan {
	var spans []posSpan
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && isHandlerSignature(funcDeclSignature(pass, n)) {
				spans = append(spans, posSpan{n.Body.Pos(), n.Body.End()})
			}
		case *ast.FuncLit:
			sig, _ := pass.TypeOf(n).(*types.Signature)
			if isHandlerSignature(sig) {
				spans = append(spans, posSpan{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	return spans
}

func funcDeclSignature(pass *rilint.Pass, decl *ast.FuncDecl) *types.Signature {
	obj, ok := pass.ObjectOf(decl.Name).(*types.Func)
	if !ok {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// isHandlerSignature reports whether sig is the http.HandlerFunc
// shape: exactly (net/http.ResponseWriter, *net/http.Request).
func isHandlerSignature(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 {
		return false
	}
	return isNamedType(sig.Params().At(0).Type(), "net/http", "ResponseWriter") &&
		isPtrToNamed(sig.Params().At(1).Type(), "net/http", "Request")
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isPtrToNamed reports whether t is *pkgPath.name.
func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), pkgPath, name)
}

func checkCtxSignature(pass *rilint.Pass, decl *ast.FuncDecl, driverPkg, inServer bool) {
	if decl.Name == nil || !decl.Name.IsExported() || decl.Body == nil {
		return
	}
	obj, ok := pass.ObjectOf(decl.Name).(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)

	// Handler-shaped exported functions are exempt: their context is
	// the request's, delivered by net/http, not a parameter.
	if inServer && isHandlerSignature(sig) {
		return
	}

	ctxIndex := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			ctxIndex = i
			break
		}
	}
	if ctxIndex > 0 {
		pass.Reportf(decl.Name.Pos(),
			"exported %s takes context.Context at position %d; by repo convention ctx is always the first parameter", decl.Name.Name, ctxIndex)
		return
	}
	if ctxIndex == 0 || !driverPkg {
		return
	}

	// Driver package, no ctx parameter: flag if the body spawns work.
	if reason := spawnsWork(pass, decl.Body); reason != "" {
		pass.Reportf(decl.Name.Pos(),
			"exported %s %s but does not take context.Context as its first parameter; grid and cohort work must be cancellable", decl.Name.Name, reason)
	}
}

// spawnsWork reports how a function body fans out work: it starts a
// goroutine, or calls something that itself demands a context (the
// mechanical signature of handing work to the runner). Nested
// function literals are not descended into: their bodies run later,
// under whatever context their eventual caller arranges (a middleware
// constructor returning a handler is the canonical case).
func spawnsWork(pass *rilint.Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			reason = "starts a goroutine"
			return false
		case *ast.CallExpr:
			sig, ok := pass.TypeOf(n.Fun).(*types.Signature)
			if ok && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
				reason = "calls context-taking code"
				return false
			}
		}
		return true
	})
	return reason
}
