package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"rimarket/internal/rilint"
)

// cliPkg is the path suffix of the package owning the exit-code
// vocabulary (0 ok, 1 error, 2 usage, 3 partial).
const cliPkg = "internal/cli"

// Exitdiscipline pins process termination to one place and one
// vocabulary:
//
//   - os.Exit and log.Fatal*/log.Panic* may appear only in the
//     main.go of a package main — library code returns errors and
//     lets the binary decide;
//   - an os.Exit argument must come from internal/cli: either the
//     cli.ExitCode(err) classifier or one of the package's Exit*
//     constants, so scripts can branch on documented status codes.
var Exitdiscipline = &rilint.Analyzer{
	Name: "exitdiscipline",
	Doc:  "os.Exit/log.Fatal only in a main package's main.go, and exit codes only from the internal/cli vocabulary",
	Run:  runExitdiscipline,
}

func runExitdiscipline(pass *rilint.Pass) error {
	for _, f := range pass.Files {
		fileName := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		inMainFile := pass.Pkg.Name() == "main" && fileName == "main.go"
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
				if !inMainFile {
					pass.Reportf(call.Pos(),
						"os.Exit outside a main package's main.go: library code returns an error and lets the binary map it with cli.ExitCode")
					return true
				}
				checkExitVocabulary(pass, call)
			case fn.Pkg().Path() == "log" && (strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")):
				if !inMainFile {
					pass.Reportf(call.Pos(),
						"log.%s outside a main package's main.go: it exits the process from library code; return an error instead", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkExitVocabulary requires the os.Exit argument to be derived
// from internal/cli: cli.ExitCode(...) or a cli constant.
func checkExitVocabulary(pass *rilint.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])

	if inner, ok := arg.(*ast.CallExpr); ok {
		if fn := calleeFunc(pass, inner); fn != nil && fn.Pkg() != nil &&
			pathHasSuffix(fn.Pkg().Path(), cliPkg) {
			return
		}
	}
	var id *ast.Ident
	switch a := arg.(type) {
	case *ast.Ident:
		id = a
	case *ast.SelectorExpr:
		id = a.Sel
	}
	if id != nil {
		if c, ok := pass.ObjectOf(id).(*types.Const); ok &&
			c.Pkg() != nil && pathHasSuffix(c.Pkg().Path(), cliPkg) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"os.Exit code must come from the internal/cli vocabulary (cli.ExitCode(err) or a cli.Exit* constant), not an ad-hoc value")
}
