// Package rilint is the repo's custom static-analysis framework: a
// stdlib-only reimplementation of the go/analysis driver shape
// (Analyzer / Pass / Diagnostic) plus a package loader built on
// `go list -export` and the gc export-data importer.
//
// Why not golang.org/x/tools/go/analysis directly: the module carries
// no external dependencies, and the build environment cannot fetch
// any. The API below mirrors x/tools closely enough that migrating an
// analyzer to the real framework is a mechanical edit (swap the Pass
// type, keep the Run body); see DESIGN.md §4.3.
//
// Analyzers report invariant violations as Diagnostics. A violation a
// human has reviewed and sanctioned is silenced in source with an
// annotation comment on the offending line or the line above:
//
//	//rilint:allow <name>[,<name>...] -- <justification>
//
// The justification is mandatory: an annotation without one does not
// suppress anything and is itself reported, so the escape hatch
// cannot be used silently.
package rilint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. It mirrors
// x/tools/go/analysis.Analyzer: Name appears in diagnostics and in
// allow annotations, Doc is the human catalog entry, and Run is
// invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one package: syntax, type
// information, the run-wide fact store, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is shared by every analyzer over every package in one
	// Check run; see the type's doc for keying and ordering rules.
	Facts *Facts

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier uses or defines, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Defs[id]
}

// A Diagnostic is one reported violation, positioned in the original
// source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// AllowPrefix introduces a suppression annotation comment.
const AllowPrefix = "rilint:allow"

// LedgerAnalyzer is the virtual analyzer name under which the
// suppression-ledger pass reports: an `//rilint:allow` annotation that
// no longer suppresses any finding is stale, and a stale ledger is
// itself a finding — otherwise escapes accrete silently after the
// violation they sanctioned is fixed or deleted.
const LedgerAnalyzer = "allowledger"

// allowKey identifies one (file, line, analyzer) suppression lookup.
type allowKey struct {
	file string
	line int
	name string
}

// allowGrant is one (annotation, analyzer-name) suppression grant in
// the ledger. A grant covers two lines (its own and the next) through
// two allowKey entries pointing at the same grant, so marking it used
// from either line retires it.
type allowGrant struct {
	pos  token.Position
	name string
	used bool
}

// parseAllows walks a package's comments and returns the suppression
// ledger — allowKey lookups into shared grants — plus diagnostics for
// malformed annotations. A valid annotation covers its own line and
// the next line, so it works both as a trailing comment and on the
// line above the violation.
func parseAllows(fset *token.FileSet, files []*ast.File) (map[allowKey]*allowGrant, []*allowGrant, []Diagnostic) {
	allows := map[allowKey]*allowGrant{}
	var grants []*allowGrant
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(text, AllowPrefix)
				names, reason, ok := strings.Cut(body, " -- ")
				if !ok || strings.TrimSpace(reason) == "" || strings.TrimSpace(names) == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "rilint",
						Pos:      pos,
						Message:  "allow annotation needs `//rilint:allow <name> -- <justification>`; nothing is suppressed",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					g := &allowGrant{pos: pos, name: name}
					grants = append(grants, g)
					allows[allowKey{pos.Filename, pos.Line, name}] = g
					allows[allowKey{pos.Filename, pos.Line + 1, name}] = g
				}
			}
		}
	}
	return allows, grants, malformed
}

// Check runs every analyzer over every package (in the given order —
// Load's dependency order, which cross-package facts rely on) and
// returns the surviving diagnostics, sorted by position. Suppressed
// diagnostics are dropped and retire their grant; malformed
// annotations are reported once per package; grants naming an
// analyzer in this run that retired nothing are reported as stale
// ledger entries under LedgerAnalyzer. Grants naming analyzers not in
// this run are left alone, so a single-analyzer fixture run does not
// misread another analyzer's escapes as stale.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	facts := newFacts()
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, grants, malformed := parseAllows(pkg.Fset, pkg.Files)
		out = append(out, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
				report: func(d Diagnostic) {
					if g := allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; g != nil {
						g.used = true
						return
					}
					out = append(out, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("rilint: analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		for _, g := range grants {
			if !g.used && running[g.name] {
				out = append(out, Diagnostic{
					Analyzer: LedgerAnalyzer,
					Pos:      g.pos,
					Message:  fmt.Sprintf("unused //rilint:allow %s annotation: it no longer suppresses any finding; remove the stale ledger entry", g.name),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Run loads the packages matched by patterns under dir and checks
// them with every analyzer. This is the entry point cmd/rilint and
// the analysistest harness share.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return Check(pkgs, analyzers)
}
