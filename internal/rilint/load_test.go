package rilint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a module under a temp dir from a path→source
// map and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadClassifiesSyntaxError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":            "module scratch\n\ngo 1.22\n",
		"internal/bad/b.go": "package bad\n\nfunc f() {\n", // unclosed body
	})
	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatal("Load accepted a module with a syntax error")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is not a *LoadError: %v", err)
	}
	if le.Stage != StageList {
		t.Errorf("syntax error classified as stage %q, want %q (go list -e reports it first)", le.Stage, StageList)
	}
	if !strings.HasSuffix(le.ImportPath, "internal/bad") {
		t.Errorf("LoadError names package %q, want .../internal/bad", le.ImportPath)
	}
	if le.Pos == "" || !strings.Contains(le.Pos, "b.go") {
		t.Errorf("LoadError carries position %q, want one inside b.go", le.Pos)
	}
	if !strings.Contains(le.Error(), le.ImportPath) || !strings.Contains(le.Error(), le.Stage) {
		t.Errorf("rendered message %q should carry the import path and stage", le.Error())
	}
}

func TestLoadClassifiesTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":            "module scratch\n\ngo 1.22\n",
		"internal/bad/b.go": "package bad\n\nvar X int = \"not an int\"\n",
	})
	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatal("Load accepted an ill-typed module")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is not a *LoadError: %v", err)
	}
	// The go tool itself notices the type error under -e; either
	// classification is attributable, but it must not be parse/export.
	if le.Stage != StageList && le.Stage != StageType {
		t.Errorf("type error classified as stage %q, want %q or %q", le.Stage, StageList, StageType)
	}
	if !strings.HasSuffix(le.ImportPath, "internal/bad") {
		t.Errorf("LoadError names package %q, want .../internal/bad", le.ImportPath)
	}
}

func TestLoadOKTreeHasDependencyOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":            "module scratch\n\ngo 1.22\n",
		"internal/lo/lo.go": "package lo\n\nconst N = 1\n",
		"internal/hi/hi.go": "package hi\n\nimport \"scratch/internal/lo\"\n\nconst M = lo.N + 1\n",
	})
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, p := range pkgs {
		idx[p.ImportPath] = i
	}
	li, lok := idx["scratch/internal/lo"]
	hi, hok := idx["scratch/internal/hi"]
	if !lok || !hok {
		t.Fatalf("expected both packages, got %v", idx)
	}
	if li > hi {
		t.Errorf("dependency lo (index %d) loaded after dependent hi (index %d); cross-package facts rely on deps-first order", li, hi)
	}
}

func TestTypeCheckListingMissingExportData(t *testing.T) {
	// Fabricate a listing whose target imports a dependency with no
	// Export entry: the classified failure must be StageExport and
	// unwrap to ErrNoExportData, distinguishing a stale build cache
	// from a genuinely ill-typed target.
	dir := writeModule(t, map[string]string{
		"p.go": "package p\n\nimport \"missing/dep\"\n\nvar X = dep.Y\n",
	})
	listed := []listedPackage{
		{ImportPath: "missing/dep", DepOnly: true}, // no Export path
		{ImportPath: "scratch/p", Dir: dir, Name: "p", GoFiles: []string{"p.go"}},
	}
	_, err := typeCheckListing(listed)
	if err == nil {
		t.Fatal("typeCheckListing accepted a listing with no export data for a dependency")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is not a *LoadError: %v", err)
	}
	if le.Stage != StageExport {
		t.Errorf("missing export data classified as stage %q, want %q", le.Stage, StageExport)
	}
	if le.ImportPath != "scratch/p" {
		t.Errorf("LoadError names package %q, want scratch/p", le.ImportPath)
	}
	if !errors.Is(err, ErrNoExportData) {
		t.Errorf("error chain does not include ErrNoExportData: %v", err)
	}
}

func TestTypeCheckListingParseFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p.go": "package p\n\nfunc broken( {\n",
	})
	listed := []listedPackage{
		{ImportPath: "scratch/p", Dir: dir, Name: "p", GoFiles: []string{"p.go"}},
	}
	_, err := typeCheckListing(listed)
	if err == nil {
		t.Fatal("typeCheckListing accepted an unparseable file")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is not a *LoadError: %v", err)
	}
	if le.Stage != StageParse {
		t.Errorf("parse failure classified as stage %q, want %q", le.Stage, StageParse)
	}
	if le.Pos == "" || !strings.Contains(le.Pos, "p.go") {
		t.Errorf("LoadError carries position %q, want one inside p.go", le.Pos)
	}
}
