package rilint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
)

// A Package is one loaded, type-checked target package. Only compiled
// non-test files are analyzed: every rilint invariant deliberately
// exempts _test.go files, so the loader never has to type-check test
// variants.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// Load stages, for classifying *LoadError.
const (
	// StageList: `go list` itself rejected the package (syntax errors,
	// unresolvable imports, build-constraint contradictions).
	StageList = "list"
	// StageParse: a compiled file failed to parse.
	StageParse = "parse"
	// StageType: the package parsed but failed type checking.
	StageType = "typecheck"
	// StageExport: a dependency's export data was missing or
	// unreadable, so the target could not resolve its imports.
	StageExport = "export"
)

// LoadError is a classified package-load failure: which package, at
// which stage of loading, and — when the go tool or parser reported
// one — at which source position. Callers branch on Stage or unwrap
// the cause with errors.As/Is; the rendered message always carries the
// import path so a multi-package load failure is attributable.
type LoadError struct {
	ImportPath string
	Stage      string
	Pos        string // "file:line:col" when known, else ""
	Err        error
}

func (e *LoadError) Error() string {
	at := ""
	if e.Pos != "" {
		at = " at " + e.Pos
	}
	return fmt.Sprintf("rilint: package %s: %s failed%s: %v", e.ImportPath, e.Stage, at, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// ErrNoExportData marks a dependency whose compiled export data was
// absent from the `go list -export` output — the go tool built the
// target but not (or not successfully) that dependency.
var ErrNoExportData = errors.New("rilint: no export data")

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *listedError
}

// listedError is go list's per-package error report; Pos is set for
// positioned failures (a syntax error in a file).
type listedError struct {
	Pos string
	Err string
}

// goList shells out to `go list -e -export -deps -json` so the go
// tool resolves patterns, builds dependencies, and hands back
// export-data paths for the importer. With -e, a broken package comes
// back as a per-package Error record (with a position when the go
// tool has one) instead of an opaque process failure, and is returned
// here as a *LoadError: rilint analyzes compiling trees only, but it
// tells you which package does not compile and where.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := bytes.TrimSpace(stderr.Bytes())
		return nil, fmt.Errorf("rilint: go list %v: %w\n%s", patterns, err, msg)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("rilint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			pos := p.Error.Pos
			if pos == "" {
				// Build errors arrive with Pos empty and the position
				// embedded in the message ("# pkg\nfile.go:4:1: ...").
				pos = embeddedErrorPos(p.Error.Err)
			}
			return nil, &LoadError{
				ImportPath: p.ImportPath,
				Stage:      StageList,
				Pos:        pos,
				Err:        errors.New(p.Error.Err),
			}
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns relative to dir (a module root or any
// directory inside one) and returns the matched packages parsed and
// type-checked from source, with dependencies satisfied from the go
// build cache's export data. Targets come back in the dependency
// order `go list -deps` emits, which Check's cross-package facts rely
// on. Failures are classified *LoadError values.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return typeCheckListing(listed)
}

// typeCheckListing parses and type-checks every non-dep-only entry of
// a `go list -export -deps` listing. Split from Load so the
// malformed-package and missing-export-data paths are testable
// without constructing a broken build cache.
func typeCheckListing(listed []listedPackage) ([]*Package, error) {
	exports := map[string]string{}
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// The importer's lookup errors surface through go/types flattened
	// into a types.Error message; exportErr keeps the classified cause
	// so a failed Check can be attributed to missing export data
	// rather than a genuinely ill-typed target.
	var exportErr error
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			err := fmt.Errorf("%w for %q", ErrNoExportData, path)
			exportErr = err
			return nil, err
		}
		f, err := os.Open(exp)
		if err != nil {
			exportErr = fmt.Errorf("%w for %q: %v", ErrNoExportData, path, err)
			return nil, exportErr
		}
		return f, nil
	})

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, &LoadError{
					ImportPath: t.ImportPath,
					Stage:      StageParse,
					Pos:        parseErrorPos(err),
					Err:        err,
				}
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		exportErr = nil
		typed, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			le := &LoadError{ImportPath: t.ImportPath, Stage: StageType, Err: err}
			var terr types.Error
			if errors.As(err, &terr) && terr.Pos.IsValid() {
				le.Pos = terr.Fset.Position(terr.Pos).String()
			}
			if exportErr != nil {
				le.Stage = StageExport
				le.Err = fmt.Errorf("%w (%v)", exportErr, err)
			}
			return nil, le
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      typed,
			TypesInfo:  info,
		})
	}
	return out, nil
}

// embeddedErrorPos extracts the first "file.go:line[:col]" position
// from a go list error message, or "".
var embeddedPosRE = regexp.MustCompile(`(?m)^\s*(\S+\.go:\d+(?::\d+)?)`)

func embeddedErrorPos(msg string) string {
	if m := embeddedPosRE.FindStringSubmatch(msg); m != nil {
		return m[1]
	}
	return ""
}

// parseErrorPos extracts the first positioned error from a parser
// failure, or "".
func parseErrorPos(err error) string {
	var list scanner.ErrorList
	if errors.As(err, &list) && len(list) > 0 {
		return list[0].Pos.String()
	}
	return ""
}
