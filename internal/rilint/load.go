package rilint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked target package. Only compiled
// non-test files are analyzed: every rilint invariant deliberately
// exempts _test.go files, so the loader never has to type-check test
// variants.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList shells out to `go list -export -deps -json` so the go tool
// resolves patterns, builds dependencies, and hands back export-data
// paths for the importer. Packages that fail to build are reported as
// errors: rilint analyzes compiling trees only.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := bytes.TrimSpace(stderr.Bytes())
		return nil, fmt.Errorf("rilint: go list %v: %w\n%s", patterns, err, msg)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("rilint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("rilint: package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns relative to dir (a module root or any
// directory inside one) and returns the matched packages parsed and
// type-checked from source, with dependencies satisfied from the go
// build cache's export data.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("rilint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("rilint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		typed, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("rilint: type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      typed,
			TypesInfo:  info,
		})
	}
	return out, nil
}
