// Package purchasing implements the four reservation-behavior
// algorithms the paper uses to imitate how users acquire reserved
// instances before any selling happens (Section VI.A):
//
//   - AllReserved — reserve whenever demand exceeds active reservations;
//   - Random — reserve toward a random target at each hour;
//   - WangOnline — the deterministic online purchasing algorithm of
//     Wang et al., ICAC 2013 ("To Reserve or Not to Reserve"): a demand
//     level is reserved once its on-demand spend inside one reservation-
//     period window reaches the reservation break-even point;
//   - WangVariant — the same with a smaller break-even point.
//
// PlanReservations drives a policy over a demand trace and emits the
// n_t series the selling engine consumes; per the paper's pipeline,
// planning happens before (and independently of) selling.
package purchasing

import (
	"fmt"
	"math/rand"

	"rimarket/internal/pricing"
)

// Policy decides how many instances to newly reserve at each hour.
// PlanReservations calls Reserve exactly once per hour, in order, so
// implementations may keep internal running state.
type Policy interface {
	// Reserve returns the number of instances to reserve at hour t given
	// the hour's demand and the number of reservations currently active.
	// The returned count must be non-negative.
	Reserve(t, demand, active int) int
}

// PlanReservations replays demand through the policy and returns the
// per-hour new-reservation series n_t. Reservations are active for
// periodHours hours from the hour they are made; no selling occurs at
// this stage, matching the paper's dataset-preparation step.
func PlanReservations(demand []int, periodHours int, p Policy) ([]int, error) {
	if periodHours <= 0 {
		return nil, fmt.Errorf("purchasing: period %d must be positive", periodHours)
	}
	if p == nil {
		return nil, fmt.Errorf("purchasing: nil policy")
	}
	newRes := make([]int, len(demand))
	active := 0
	// expiries[i] counts reservations expiring at hour i.
	expiries := make([]int, len(demand)+periodHours+1)
	for t, d := range demand {
		if d < 0 {
			return nil, fmt.Errorf("purchasing: negative demand %d at hour %d", d, t)
		}
		active -= expiries[t]
		n := p.Reserve(t, d, active)
		if n < 0 {
			return nil, fmt.Errorf("purchasing: policy returned negative count %d at hour %d", n, t)
		}
		newRes[t] = n
		active += n
		expiries[t+periodHours] += n
	}
	return newRes, nil
}

// AllReserved reserves enough instances at every hour to cover all
// demand with reservations — the paper's stand-in for users whose
// demands are stable enough that they reserve everything.
type AllReserved struct{}

// Reserve implements Policy.
func (AllReserved) Reserve(_, demand, active int) int {
	if demand > active {
		return demand - active
	}
	return 0
}

// Random reserves toward a uniformly random target in [0, demand] at
// each hour — the paper's second behavior imitator.
// Construct with NewRandom so runs are reproducible from a seed.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random policy seeded for reproducibility.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Reserve implements Policy.
func (r *Random) Reserve(_, demand, active int) int {
	if demand <= 0 {
		return 0
	}
	target := r.rng.Intn(demand + 1)
	if target > active {
		return target - active
	}
	return 0
}

// WangOnline is the deterministic online purchasing algorithm of Wang
// et al. (ICAC 2013): demand is decomposed into unit levels (level j is
// occupied at hour t iff d_t >= j); an uncovered level pays on-demand,
// and once a level's on-demand hours inside a sliding window of one
// reservation period reach the break-even point
//
//	beta = R / (p * (1 - alpha))
//
// the level is covered with a new reservation. BreakEvenScale shrinks
// beta for the paper's fourth behavior imitator (WangVariant).
type WangOnline struct {
	// Instance supplies R, p and alpha.
	Instance pricing.InstanceType
	// BreakEvenScale multiplies the break-even point; 1 is the original
	// algorithm, values in (0, 1) reserve more eagerly. Zero means 1.
	BreakEvenScale float64

	levels []levelState
	resExp []pendingExpiry
	active int
}

type levelState struct {
	// hours holds the timestamps of on-demand hours inside the current
	// window, oldest first.
	hours []int
}

type pendingExpiry struct {
	hour  int
	count int
}

// NewWangOnline returns the ICAC'13 online purchasing policy.
func NewWangOnline(it pricing.InstanceType) *WangOnline {
	return &WangOnline{Instance: it, BreakEvenScale: 1}
}

// NewWangVariant returns the paper's fourth behavior imitator: the
// ICAC'13 algorithm with a smaller break-even point (half by default).
func NewWangVariant(it pricing.InstanceType) *WangOnline {
	return &WangOnline{Instance: it, BreakEvenScale: 0.5}
}

// breakEvenHours returns the number of on-demand hours after which
// reserving is cheaper, scaled by BreakEvenScale.
func (w *WangOnline) breakEvenHours() float64 {
	scale := w.BreakEvenScale
	if scale == 0 {
		scale = 1
	}
	it := w.Instance
	return scale * it.Upfront / (it.OnDemandHourly * (1 - it.Alpha()))
}

// Reserve implements Policy. The active argument is ignored: the
// algorithm tracks its own coverage because its decisions depend on
// which demand levels its own reservations cover.
func (w *WangOnline) Reserve(t, demand, _ int) int {
	period := w.Instance.PeriodHours
	beta := w.breakEvenHours()

	// Expire our own reservations.
	kept := w.resExp[:0]
	for _, e := range w.resExp {
		if e.hour > t {
			kept = append(kept, e)
		} else {
			w.active -= e.count
		}
	}
	w.resExp = kept

	// Grow level state to cover this hour's demand.
	for len(w.levels) < demand {
		w.levels = append(w.levels, levelState{})
	}

	reserve := 0
	covered := w.active
	for j := 0; j < demand; j++ {
		if j < covered {
			continue // served by an active reservation, no on-demand spend
		}
		lv := &w.levels[j]
		lv.hours = append(lv.hours, t)
		// Prune hours that fell out of the window (t-period, t].
		cut := 0
		for cut < len(lv.hours) && lv.hours[cut] <= t-period {
			cut++
		}
		lv.hours = lv.hours[cut:]
		if float64(len(lv.hours)) >= beta {
			reserve++
			covered++
			lv.hours = lv.hours[:0]
		}
	}
	if reserve > 0 {
		w.active += reserve
		w.resExp = append(w.resExp, pendingExpiry{hour: t + period, count: reserve})
	}
	return reserve
}
