package purchasing

import (
	"reflect"
	"testing"
	"testing/quick"

	"rimarket/internal/pricing"
)

// testInstance: p = 1.0, R = 10, alpha = 0.5, T = 20.
// Break-even for WangOnline: 10 / (1 * 0.5) = 20 hours.
func testInstance() pricing.InstanceType {
	return pricing.InstanceType{
		Name:           "test.small",
		OnDemandHourly: 1.0,
		Upfront:        10,
		ReservedHourly: 0.5,
		PeriodHours:    20,
	}
}

func TestPlanReservationsValidation(t *testing.T) {
	if _, err := PlanReservations([]int{1}, 0, AllReserved{}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := PlanReservations([]int{1}, 10, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := PlanReservations([]int{-1}, 10, AllReserved{}); err == nil {
		t.Error("negative demand accepted")
	}
}

type negativePolicy struct{}

func (negativePolicy) Reserve(_, _, _ int) int { return -1 }

func TestPlanReservationsRejectsNegativePolicy(t *testing.T) {
	if _, err := PlanReservations([]int{1}, 10, negativePolicy{}); err == nil {
		t.Error("negative policy output accepted")
	}
}

func TestAllReservedCoversDemand(t *testing.T) {
	demand := []int{2, 3, 1, 5, 0, 5}
	newRes, err := PlanReservations(demand, 100, AllReserved{})
	if err != nil {
		t.Fatal(err)
	}
	// Active never expires within this horizon; reservations only grow
	// to the running max of demand.
	want := []int{2, 1, 0, 2, 0, 0}
	if !reflect.DeepEqual(newRes, want) {
		t.Errorf("newRes = %v, want %v", newRes, want)
	}
}

func TestAllReservedReplacesExpired(t *testing.T) {
	// Period 3: the reservation made at hour 0 expires at hour 3 and
	// must be replaced while demand persists.
	demand := []int{1, 1, 1, 1, 1, 1}
	newRes, err := PlanReservations(demand, 3, AllReserved{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0, 1, 0, 0}
	if !reflect.DeepEqual(newRes, want) {
		t.Errorf("newRes = %v, want %v", newRes, want)
	}
}

func TestRandomPolicyBounds(t *testing.T) {
	p := NewRandom(1)
	demand := make([]int, 200)
	for i := range demand {
		demand[i] = 7
	}
	newRes, err := PlanReservations(demand, 50, p)
	if err != nil {
		t.Fatal(err)
	}
	// Active reservations never exceed the max demand (target <= demand).
	active := 0
	expire := make([]int, len(demand)+51)
	someReserved := false
	for t2, n := range newRes {
		active -= expire[t2]
		active += n
		expire[t2+50] += n
		if active > 7 {
			t.Fatalf("hour %d: active %d exceeds demand bound 7", t2, active)
		}
		if n > 0 {
			someReserved = true
		}
	}
	if !someReserved {
		t.Error("random policy never reserved over 200 hours of demand 7")
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	demand := []int{5, 5, 5, 5, 5, 5, 5, 5}
	a, err := PlanReservations(demand, 10, NewRandom(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanReservations(demand, 10, NewRandom(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different plans")
	}
}

func TestRandomPolicyZeroDemand(t *testing.T) {
	p := NewRandom(3)
	if got := p.Reserve(0, 0, 0); got != 0 {
		t.Errorf("Reserve(demand=0) = %d, want 0", got)
	}
}

func TestWangOnlineReservesAtBreakEven(t *testing.T) {
	// Break-even = 20 on-demand hours; with constant demand 1 the policy
	// must reserve exactly at the 20th uncovered hour (t = 19) and then
	// stay covered for a full period.
	it := testInstance()
	demand := make([]int, 45)
	for i := range demand {
		demand[i] = 1
	}
	newRes, err := PlanReservations(demand, it.PeriodHours, NewWangOnline(it))
	if err != nil {
		t.Fatal(err)
	}
	firstRes := -1
	total := 0
	for t2, n := range newRes {
		total += n
		if n > 0 && firstRes == -1 {
			firstRes = t2
		}
	}
	if firstRes != 19 {
		t.Errorf("first reservation at hour %d, want 19 (20th on-demand hour)", firstRes)
	}
	// Covered during [19, 39); accumulation restarts at 39, so no second
	// reservation before hour 39+19 > horizon.
	if total != 1 {
		t.Errorf("total reservations = %d, want 1", total)
	}
}

func TestWangOnlineSparseDemandNeverReserves(t *testing.T) {
	// Demand one hour out of every 25 within a 20-hour window: a window
	// never accumulates 20 on-demand hours, so the policy never reserves.
	it := testInstance()
	demand := make([]int, 500)
	for i := 0; i < len(demand); i += 25 {
		demand[i] = 1
	}
	newRes, err := PlanReservations(demand, it.PeriodHours, NewWangOnline(it))
	if err != nil {
		t.Fatal(err)
	}
	for t2, n := range newRes {
		if n != 0 {
			t.Fatalf("hour %d: reserved %d, want never", t2, n)
		}
	}
}

func TestWangVariantReservesEarlier(t *testing.T) {
	it := testInstance()
	demand := make([]int, 45)
	for i := range demand {
		demand[i] = 1
	}
	variant, err := PlanReservations(demand, it.PeriodHours, NewWangVariant(it))
	if err != nil {
		t.Fatal(err)
	}
	firstRes := -1
	for t2, n := range variant {
		if n > 0 {
			firstRes = t2
			break
		}
	}
	// Half break-even = 10 hours -> first reservation at hour 9.
	if firstRes != 9 {
		t.Errorf("variant first reservation at hour %d, want 9", firstRes)
	}
}

func TestWangOnlineMultiLevel(t *testing.T) {
	// Demand 3 constantly: three levels accumulate in lockstep and all
	// reserve at hour 19.
	it := testInstance()
	demand := make([]int, 25)
	for i := range demand {
		demand[i] = 3
	}
	newRes, err := PlanReservations(demand, it.PeriodHours, NewWangOnline(it))
	if err != nil {
		t.Fatal(err)
	}
	if newRes[19] != 3 {
		t.Errorf("newRes[19] = %d, want 3", newRes[19])
	}
	total := 0
	for _, n := range newRes {
		total += n
	}
	if total != 3 {
		t.Errorf("total = %d, want 3", total)
	}
}

func TestWangOnlineReservationExpiresAndReaccumulates(t *testing.T) {
	// Horizon 80, period 20, constant demand: reserve at 19 (covers
	// 19..38), uncovered again 39.., accumulate 20 hours -> reserve at 58
	// (covers 58..77), uncovered at 78.
	it := testInstance()
	demand := make([]int, 80)
	for i := range demand {
		demand[i] = 1
	}
	newRes, err := PlanReservations(demand, it.PeriodHours, NewWangOnline(it))
	if err != nil {
		t.Fatal(err)
	}
	var hours []int
	for t2, n := range newRes {
		for i := 0; i < n; i++ {
			hours = append(hours, t2)
		}
	}
	want := []int{19, 58}
	if !reflect.DeepEqual(hours, want) {
		t.Errorf("reservation hours = %v, want %v", hours, want)
	}
}

func TestPropertyPlansNeverOverReserveAllReserved(t *testing.T) {
	f := func(raw []uint8, rawPeriod uint8) bool {
		period := int(rawPeriod)%30 + 2
		demand := make([]int, len(raw))
		maxD := 0
		for i, b := range raw {
			demand[i] = int(b % 9)
			if demand[i] > maxD {
				maxD = demand[i]
			}
		}
		newRes, err := PlanReservations(demand, period, AllReserved{})
		if err != nil {
			return false
		}
		// Active count tracks demand exactly from below: active >= demand
		// after each purchase, and active never exceeds running max demand.
		active := 0
		expire := make([]int, len(demand)+period+1)
		for t2, n := range newRes {
			active -= expire[t2]
			active += n
			expire[t2+period] += n
			if active < demand[t2] {
				return false
			}
			if active > maxD {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWangNeverReservesWithoutDemand(t *testing.T) {
	it := testInstance()
	f := func(raw []uint8) bool {
		demand := make([]int, len(raw))
		for i, b := range raw {
			demand[i] = int(b % 4)
		}
		newRes, err := PlanReservations(demand, it.PeriodHours, NewWangOnline(it))
		if err != nil {
			return false
		}
		for t2, n := range newRes {
			if n > 0 && demand[t2] == 0 {
				return false // reservations only happen on demand hours
			}
			if n > demand[t2] {
				return false // at most one reservation per uncovered level
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
