package gtrace

// Tests for the error-policy layer of the directory loader: strict vs
// best-effort, failure budgets, duplicate-user detection, and the
// structured errors (ErrNoTraces, ParseError, DuplicateUserError).
// Fault injection comes from internal/faultfs, so the degradation paths
// are exercised without touching the real filesystem.

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/fstest"

	"rimarket/internal/faultfs"
	"rimarket/internal/workload"
)

// gzLog renders tr as a gzipped EC2 usage log.
func gzLog(t *testing.T, tr workload.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := WriteEC2Log(zw, tr); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// logCorpus builds an in-memory directory of n gzipped usage logs with
// distinct users, mirroring the 36-application EC2 dataset the paper
// evaluates on.
func logCorpus(t *testing.T, n int) fstest.MapFS {
	t.Helper()
	m := fstest.MapFS{}
	for i := 0; i < n; i++ {
		tr := workload.Trace{
			User:   fmt.Sprintf("app-%02d", i),
			Demand: []int{i + 1, i + 2, i + 3, i + 4, i + 5, i + 6, i + 7, i + 8},
		}
		m[fmt.Sprintf("app-%02d.csv.gz", i)] = &fstest.MapFile{Data: gzLog(t, tr)}
	}
	return m
}

// TestLoadBestEffortSkipsInjectedFaults is the acceptance scenario from
// the issue: a seeded faultfs run over a 36-file trace directory with 4
// injected corrupt or truncated files completes in best-effort mode
// with a LoadReport listing exactly those 4 files.
func TestLoadBestEffortSkipsInjectedFaults(t *testing.T) {
	const files, faults, seed = 36, 4, 20180702
	ffs := faultfs.New(logCorpus(t, files))
	bad, err := ffs.InjectN(seed, faults,
		faultfs.KindOpenError, faultfs.KindReadError, faultfs.KindTruncate, faultfs.KindCorruptRow)
	if err != nil {
		t.Fatal(err)
	}

	traces, report, err := LoadEC2LogFS(ffs, LoadOptions{Policy: BestEffort})
	if err != nil {
		t.Fatalf("best-effort load failed: %v", err)
	}
	if len(traces) != files-faults {
		t.Errorf("loaded %d traces, want %d", len(traces), files-faults)
	}
	if !report.Partial() {
		t.Error("report.Partial() = false with skipped files")
	}
	if len(report.Loaded) != files-faults {
		t.Errorf("report.Loaded = %d files, want %d", len(report.Loaded), files-faults)
	}
	var skipped []string
	for _, s := range report.Skipped {
		skipped = append(skipped, s.File)
		if s.Err == nil {
			t.Errorf("skipped file %s has no error", s.File)
		}
		var perr *ParseError
		if !errors.As(s.Err, &perr) || perr.File != s.File {
			t.Errorf("skip reason for %s is not a *ParseError naming it: %v", s.File, s.Err)
		}
	}
	if strings.Join(skipped, ",") != strings.Join(bad, ",") {
		t.Errorf("skipped %v, want exactly the injected %v", skipped, bad)
	}
	users := make(map[string]bool, len(traces))
	for _, tr := range traces {
		users[tr.User] = true
	}
	for _, name := range bad {
		user := strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".csv")
		if users[user] {
			t.Errorf("faulted file %s still produced trace %s", name, user)
		}
	}
}

// TestLoadStrictFailsOnFirstInjectedFault is the strict half of the
// acceptance scenario: the same corpus fails with a *ParseError naming
// the first bad file in directory order.
func TestLoadStrictFailsOnFirstInjectedFault(t *testing.T) {
	const files, faults, seed = 36, 4, 20180702
	ffs := faultfs.New(logCorpus(t, files))
	bad, err := ffs.InjectN(seed, faults,
		faultfs.KindOpenError, faultfs.KindReadError, faultfs.KindTruncate, faultfs.KindCorruptRow)
	if err != nil {
		t.Fatal(err)
	}

	traces, _, err := LoadEC2LogFS(ffs, LoadOptions{Policy: Strict})
	if err == nil {
		t.Fatal("strict load of a faulted corpus succeeded")
	}
	if traces != nil {
		t.Errorf("strict failure still returned %d traces", len(traces))
	}
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if perr.File != bad[0] {
		t.Errorf("ParseError names %q, want first faulted file %q", perr.File, bad[0])
	}
}

func TestLoadFailureBudget(t *testing.T) {
	ffs := faultfs.New(logCorpus(t, 10))
	bad, err := ffs.InjectN(7, 3, faultfs.KindCorruptRow)
	if err != nil {
		t.Fatal(err)
	}

	// Budget below the fault count: the load fails once exceeded.
	_, report, err := LoadEC2LogFS(ffs, LoadOptions{Policy: BestEffort, FailureBudget: 2})
	if err == nil {
		t.Fatal("load with 3 faults passed a budget of 2")
	}
	if !strings.Contains(err.Error(), "failure budget of 2 exceeded") {
		t.Errorf("err = %v", err)
	}
	if len(report.Skipped) != 3 {
		t.Errorf("report records %d skips at failure, want 3", len(report.Skipped))
	}

	// Budget at the fault count: the load completes.
	if _, _, err := LoadEC2LogFS(ffs, LoadOptions{Policy: BestEffort, FailureBudget: 3}); err != nil {
		t.Errorf("load with 3 faults failed a budget of 3: %v", err)
	}

	// Zero budget means unlimited.
	traces, report, err := LoadEC2LogFS(ffs, LoadOptions{Policy: BestEffort})
	if err != nil {
		t.Fatalf("unlimited budget: %v", err)
	}
	if len(traces) != 7 || len(report.Skipped) != len(bad) {
		t.Errorf("loaded %d, skipped %d; want 7 and %d", len(traces), len(report.Skipped), len(bad))
	}
}

func TestLoadErrNoTraces(t *testing.T) {
	// No trace files at all.
	empty := fstest.MapFS{"README.md": &fstest.MapFile{Data: []byte("x")}}
	if _, _, err := LoadEC2LogFS(empty, LoadOptions{}); !errors.Is(err, ErrNoTraces) {
		t.Errorf("empty dir: err = %v, want ErrNoTraces", err)
	}

	// Every file skipped: best-effort cannot conjure traces from a
	// fully-corrupt corpus, and the failure still reads as "no traces".
	ffs := faultfs.New(logCorpus(t, 3))
	if _, err := ffs.InjectN(1, 3, faultfs.KindTruncate); err != nil {
		t.Fatal(err)
	}
	_, report, err := LoadEC2LogFS(ffs, LoadOptions{Policy: BestEffort})
	if !errors.Is(err, ErrNoTraces) {
		t.Errorf("all-skipped: err = %v, want ErrNoTraces in chain", err)
	}
	if len(report.Skipped) != 3 {
		t.Errorf("all-skipped report: %d skips, want 3", len(report.Skipped))
	}
}

func TestLoadDuplicateUser(t *testing.T) {
	// Same stem with and without compression: both resolve to user "x".
	plain := []byte("hour,instances\n0,5\n")
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	twin := fstest.MapFS{
		"x.csv":    &fstest.MapFile{Data: plain},
		"x.csv.gz": &fstest.MapFile{Data: gz.Bytes()},
	}
	for _, policy := range []ErrorPolicy{Strict, BestEffort} {
		_, _, err := LoadEC2LogFS(twin, LoadOptions{Policy: policy})
		var dup *DuplicateUserError
		if !errors.As(err, &dup) {
			t.Fatalf("%v: err = %v, want *DuplicateUserError", policy, err)
		}
		if dup.User != "x" || dup.Files != [2]string{"x.csv", "x.csv.gz"} {
			t.Errorf("%v: duplicate = %+v", policy, dup)
		}
		for _, f := range dup.Files {
			if !strings.Contains(err.Error(), f) {
				t.Errorf("%v: error %q does not name %s", policy, err, f)
			}
		}
	}

	// Two differently-named files whose "# user:" headers collide.
	headers := fstest.MapFS{
		"a.csv": &fstest.MapFile{Data: []byte("# user: shared\nhour,instances\n0,1\n")},
		"b.csv": &fstest.MapFile{Data: []byte("# user: shared\nhour,instances\n0,2\n")},
	}
	_, _, err := LoadEC2LogFS(headers, LoadOptions{Policy: BestEffort})
	var dup *DuplicateUserError
	if !errors.As(err, &dup) {
		t.Fatalf("header collision: err = %v, want *DuplicateUserError", err)
	}
	if dup.User != "shared" || dup.Files != [2]string{"a.csv", "b.csv"} {
		t.Errorf("header collision: duplicate = %+v", dup)
	}
}

func TestParseErrorRowAndFile(t *testing.T) {
	// Straight from the row parser: Row set, File empty.
	_, err := ReadEC2Log(strings.NewReader("hour,instances\n0,5\nnot-a-row\n"))
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if perr.Row != 3 || perr.File != "" {
		t.Errorf("ParseError = {File: %q, Row: %d}, want row 3, no file", perr.File, perr.Row)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("Error() = %q", err.Error())
	}

	// Through the directory loader: the same error gains the file name.
	corpus := fstest.MapFS{
		"bad.csv": &fstest.MapFile{Data: []byte("hour,instances\n0,5\nnot-a-row\n")},
	}
	_, _, err = LoadEC2LogFS(corpus, LoadOptions{})
	if !errors.As(err, &perr) {
		t.Fatalf("dir load err = %v, want *ParseError", err)
	}
	if perr.File != "bad.csv" || perr.Row != 3 {
		t.Errorf("ParseError = {File: %q, Row: %d}, want bad.csv line 3", perr.File, perr.Row)
	}
}

func TestErrorPolicyString(t *testing.T) {
	if Strict.String() != "strict" || BestEffort.String() != "best-effort" {
		t.Errorf("policy strings: %q, %q", Strict.String(), BestEffort.String())
	}
}

func TestLoadReportPartialNil(t *testing.T) {
	var r *LoadReport
	if r.Partial() {
		t.Error("nil report is partial")
	}
	if (&LoadReport{Loaded: []string{"a.csv"}}).Partial() {
		t.Error("clean report is partial")
	}
}
