package gtrace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"rimarket/internal/workload"
)

func TestInstanceCapacityValidate(t *testing.T) {
	tests := []struct {
		name   string
		cap    InstanceCapacity
		wantOK bool
	}{
		{name: "default", cap: DefaultCapacity, wantOK: true},
		{name: "zero cpu", cap: InstanceCapacity{CPU: 0, Memory: 1, Disk: 1}},
		{name: "negative memory", cap: InstanceCapacity{CPU: 1, Memory: -1, Disk: 1}},
		{name: "zero disk", cap: InstanceCapacity{CPU: 1, Memory: 1, Disk: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cap.Validate()
			if tt.wantOK != (err == nil) {
				t.Errorf("Validate = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestInstancesForTakesMaxDimension(t *testing.T) {
	cap := InstanceCapacity{CPU: 0.5, Memory: 0.25, Disk: 1}
	tests := []struct {
		cpu, mem, disk float64
		want           int
	}{
		{cpu: 1.0, mem: 0.1, disk: 0, want: 2},   // CPU-bound: ceil(1/0.5)
		{cpu: 0.1, mem: 1.0, disk: 0, want: 4},   // memory-bound: ceil(1/0.25)
		{cpu: 0, mem: 0, disk: 2.5, want: 3},     // disk-bound
		{cpu: 0, mem: 0, disk: 0, want: 0},       // no request
		{cpu: 0.01, mem: 0.01, disk: 0, want: 1}, // tiny request rounds up
	}
	for _, tt := range tests {
		if got := cap.instancesFor(tt.cpu, tt.mem, tt.disk); got != tt.want {
			t.Errorf("instancesFor(%v,%v,%v) = %d, want %d", tt.cpu, tt.mem, tt.disk, got, tt.want)
		}
	}
}

func TestAggregateByUser(t *testing.T) {
	events := []TaskEvent{
		{Timestamp: 0, EventType: EventSubmit, User: "alice", CPURequest: 0.5},
		{Timestamp: 10, EventType: EventSubmit, User: "alice", CPURequest: 0.5},
		{Timestamp: MicrosecondsPerHour, EventType: EventSchedule, User: "alice", CPURequest: 0.25},
		{Timestamp: 0, EventType: EventSubmit, User: "bob", MemoryRequest: 0.6},
		{Timestamp: 2 * MicrosecondsPerHour, EventType: EventFinish, User: "bob", CPURequest: 9}, // ignored
	}
	traces, err := AggregateByUser(events, InstanceCapacity{CPU: 0.25, Memory: 0.25, Disk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("len = %d, want 2", len(traces))
	}
	// Sorted by user: alice then bob.
	alice, bob := traces[0], traces[1]
	if alice.User != "alice" || bob.User != "bob" {
		t.Fatalf("order = %s, %s", alice.User, bob.User)
	}
	// alice hour 0: cpu 1.0 -> 4 instances; hour 1: cpu 0.25 -> 1; hour 2: 0.
	if want := []int{4, 1, 0}; !reflect.DeepEqual(alice.Demand, want) {
		t.Errorf("alice demand = %v, want %v", alice.Demand, want)
	}
	// bob hour 0: mem 0.6 -> ceil(0.6/0.25) = 3; FINISH event ignored.
	if want := []int{3, 0, 0}; !reflect.DeepEqual(bob.Demand, want) {
		t.Errorf("bob demand = %v, want %v", bob.Demand, want)
	}
}

func TestAggregateByUserErrors(t *testing.T) {
	if _, err := AggregateByUser(nil, InstanceCapacity{}); err == nil {
		t.Error("invalid capacity accepted")
	}
	bad := []TaskEvent{{Timestamp: -1, EventType: EventSubmit, User: "u"}}
	if _, err := AggregateByUser(bad, DefaultCapacity); err == nil {
		t.Error("negative timestamp accepted")
	}
	anon := []TaskEvent{{Timestamp: 0, EventType: EventSubmit}}
	if _, err := AggregateByUser(anon, DefaultCapacity); err == nil {
		t.Error("empty user accepted")
	}
}

func TestTaskEventsCSVRoundTrip(t *testing.T) {
	in := []TaskEvent{
		{Timestamp: 0, JobID: 1, TaskIndex: 0, EventType: EventSubmit, User: "alice", CPURequest: 0.5, MemoryRequest: 0.1, DiskRequest: 0.01},
		{Timestamp: 3600 * 1e6, JobID: 2, TaskIndex: 3, EventType: EventSchedule, User: "bob", CPURequest: 0.125},
	}
	var buf bytes.Buffer
	if err := WriteTaskEvents(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTaskEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestReadTaskEventsBlankResourceFields(t *testing.T) {
	// The real schema allows blank resource columns.
	row := "0,,1,0,,0,alice,,,,,,\n"
	events, err := ReadTaskEvents(strings.NewReader(row))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].CPURequest != 0 {
		t.Errorf("events = %+v", events)
	}
}

func TestReadTaskEventsErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "wrong column count", in: "1,2,3\n"},
		{name: "bad timestamp", in: "abc,,1,0,,0,alice,,,0.1,0.1,0.1,\n"},
		{name: "bad event type", in: "0,,1,0,,xx,alice,,,0.1,0.1,0.1,\n"},
		{name: "bad cpu", in: "0,,1,0,,0,alice,,,zz,0.1,0.1,\n"},
		{name: "bad job id", in: "0,,zz,0,,0,alice,,,0.1,0.1,0.1,\n"},
		{name: "bad task index", in: "0,,1,zz,,0,alice,,,0.1,0.1,0.1,\n"},
		{name: "bad memory", in: "0,,1,0,,0,alice,,,0.1,zz,0.1,\n"},
		{name: "bad disk", in: "0,,1,0,,0,alice,,,0.1,0.1,zz,\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadTaskEvents(strings.NewReader(tt.in)); err == nil {
				t.Error("parse succeeded, want error")
			}
		})
	}
	if _, err := ReadTaskEvents(strings.NewReader("")); !errors.Is(err, ErrNoEvents) {
		t.Errorf("empty input err = %v, want ErrNoEvents", err)
	}
}

func TestEC2LogRoundTrip(t *testing.T) {
	in := workload.Trace{User: "web-frontend", Demand: []int{3, 0, 0, 7, 1}}
	var buf bytes.Buffer
	if err := WriteEC2Log(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEC2Log(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.User != in.User {
		t.Errorf("user = %q, want %q", out.User, in.User)
	}
	if !reflect.DeepEqual(out.Demand, in.Demand) {
		t.Errorf("demand = %v, want %v", out.Demand, in.Demand)
	}
}

func TestReadEC2LogSparseAndUnordered(t *testing.T) {
	input := "# user: batch\nhour,instances\n5,2\n1,9\n"
	tr, err := ReadEC2Log(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 9, 0, 0, 0, 2}
	if tr.User != "batch" || !reflect.DeepEqual(tr.Demand, want) {
		t.Errorf("trace = %+v, want user=batch demand=%v", tr, want)
	}
}

func TestReadEC2LogErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "not a pair", in: "1,2,3\n"},
		{name: "bad hour", in: "x,2\n"},
		{name: "bad count", in: "1,y\n"},
		{name: "negative hour", in: "-1,2\n"},
		{name: "negative count", in: "1,-2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadEC2Log(strings.NewReader(tt.in)); err == nil {
				t.Error("parse succeeded, want error")
			}
		})
	}
	if _, err := ReadEC2Log(strings.NewReader("")); !errors.Is(err, ErrNoEvents) {
		t.Errorf("empty err = %v, want ErrNoEvents", err)
	}
	// Header-only file is an empty but valid trace.
	tr, err := ReadEC2Log(strings.NewReader("hour,instances\n"))
	if err != nil || tr.Len() != 0 {
		t.Errorf("header-only = (%+v, %v), want empty trace", tr, err)
	}
}

func TestWriteEC2LogRejectsInvalidTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEC2Log(&buf, workload.Trace{Demand: []int{1}}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSynthesizeRoundTrip(t *testing.T) {
	in := []workload.Trace{
		{User: "alice", Demand: []int{2, 0, 3}},
		{User: "bob", Demand: []int{1, 1, 1}},
	}
	events, err := SynthesizeTaskEvents(in, DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	out, err := AggregateByUser(events, DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	for i := range in {
		if out[i].User != in[i].User {
			t.Errorf("user[%d] = %q, want %q", i, out[i].User, in[i].User)
		}
		if !reflect.DeepEqual(out[i].Demand, in[i].Demand) {
			t.Errorf("%s demand = %v, want %v", in[i].User, out[i].Demand, in[i].Demand)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := SynthesizeTaskEvents(nil, InstanceCapacity{}); err == nil {
		t.Error("invalid capacity accepted")
	}
	if _, err := SynthesizeTaskEvents(nil, DefaultCapacity); !errors.Is(err, ErrNoEvents) {
		t.Errorf("no traces err = %v, want ErrNoEvents", err)
	}
	bad := []workload.Trace{{User: "", Demand: []int{1}}}
	if _, err := SynthesizeTaskEvents(bad, DefaultCapacity); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestPropertySynthesizeAggregatesBack(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 48 {
			raw = raw[:48]
		}
		demand := make([]int, len(raw))
		total := 0
		for i, b := range raw {
			demand[i] = int(b % 7)
			total += demand[i]
		}
		if total == 0 {
			return true // no events representable
		}
		// Trailing zero hours are not representable in the event stream;
		// trim them from the expectation.
		end := len(demand)
		for end > 0 && demand[end-1] == 0 {
			end--
		}
		in := []workload.Trace{{User: "u", Demand: demand}}
		events, err := SynthesizeTaskEvents(in, DefaultCapacity)
		if err != nil {
			return false
		}
		out, err := AggregateByUser(events, DefaultCapacity)
		if err != nil || len(out) != 1 {
			return false
		}
		return reflect.DeepEqual(out[0].Demand, demand[:end])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
