package gtrace

import (
	"errors"
	"fmt"
)

// ErrNoTraces is returned by the directory loaders when a directory
// holds no .csv or .csv.gz trace files, or when best-effort loading
// skipped every file it found. Callers branch with errors.Is instead of
// matching the message.
var ErrNoTraces = errors.New("gtrace: no .csv or .csv.gz trace files")

// ParseError locates a failure inside one trace file. Every per-file
// load failure the directory loaders see is wrapped in a ParseError so
// callers — the best-effort policy above all — can branch with
// errors.As and report the offending file without string matching.
type ParseError struct {
	// File is the file the failure occurred in; empty when parsing a
	// bare stream with no file identity.
	File string
	// Row is the 1-based line of the malformed row; 0 when the failure
	// is not row-specific (unreadable file, truncated gzip stream, ...).
	Row int
	// Err is the underlying cause.
	Err error
}

func (e *ParseError) Error() string {
	switch {
	case e.File != "" && e.Row > 0:
		return fmt.Sprintf("gtrace: %s: line %d: %v", e.File, e.Row, e.Err)
	case e.File != "":
		return fmt.Sprintf("gtrace: %s: %v", e.File, e.Err)
	case e.Row > 0:
		return fmt.Sprintf("gtrace: ec2 log line %d: %v", e.Row, e.Err)
	default:
		return fmt.Sprintf("gtrace: %v", e.Err)
	}
}

func (e *ParseError) Unwrap() error { return e.Err }

// DuplicateUserError reports two trace files resolving to the same
// user name — either a plain and a compressed copy of one log (x.csv
// beside x.csv.gz) or a "# user:" header colliding with another file's
// name. Loading both would silently double one user's demand in the
// cohort, so the loaders refuse in every error-policy mode.
type DuplicateUserError struct {
	// User is the colliding trace name.
	User string
	// Files are the two files that both claim it, in directory order.
	Files [2]string
}

func (e *DuplicateUserError) Error() string {
	return fmt.Sprintf("gtrace: duplicate trace user %q: %s and %s both resolve to it",
		e.User, e.Files[0], e.Files[1])
}
