package gtrace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"reflect"
	"testing"

	"rimarket/internal/workload"
)

func sampleEvents() []TaskEvent {
	return []TaskEvent{
		{Timestamp: 0, JobID: 1, EventType: EventSubmit, User: "alice", CPURequest: 0.5},
		{Timestamp: MicrosecondsPerHour, JobID: 2, EventType: EventSubmit, User: "bob", MemoryRequest: 0.25},
	}
}

func TestTaskEventsGZRoundTrip(t *testing.T) {
	in := sampleEvents()
	var buf bytes.Buffer
	if err := WriteTaskEventsGZ(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Must actually be gzip.
	if buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	out, err := ReadTaskEventsAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestReadTaskEventsAutoPlain(t *testing.T) {
	in := sampleEvents()
	var buf bytes.Buffer
	if err := WriteTaskEvents(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTaskEventsAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Error("plain round trip mismatch")
	}
}

func TestReadEC2LogAutoBothFormats(t *testing.T) {
	tr := workload.Trace{User: "gz-user", Demand: []int{1, 0, 2}}

	var plain bytes.Buffer
	if err := WriteEC2Log(&plain, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEC2LogAuto(&plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.User != tr.User {
		t.Errorf("plain user = %q", got.User)
	}

	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if err := WriteEC2Log(zw, tr); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadEC2LogAuto(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	if got.User != tr.User || !reflect.DeepEqual(got.Demand, tr.Demand) {
		t.Errorf("gz trace = %+v", got)
	}
}

func TestReadAutoEmptyAndCorrupt(t *testing.T) {
	if _, err := ReadTaskEventsAuto(bytes.NewReader(nil)); !errors.Is(err, ErrNoEvents) {
		t.Errorf("empty err = %v, want ErrNoEvents", err)
	}
	// Valid magic, garbage body.
	corrupt := []byte{0x1f, 0x8b, 0xff, 0x00, 0x01}
	if _, err := ReadTaskEventsAuto(bytes.NewReader(corrupt)); err == nil {
		t.Error("corrupt gzip accepted")
	}
	// One byte short of any magic.
	if _, err := ReadEC2LogAuto(bytes.NewReader([]byte{0x1f})); err == nil {
		t.Error("single-byte stream parsed as a trace")
	}
}
