// Package gtrace reads and writes the external trace formats the
// paper's evaluation is built on: Google cluster-usage task-event
// tables and per-user EC2 usage logs (Section VI.A). The real datasets
// are external downloads; this package parses their schemas so they can
// be plugged in when available, and writes synthetic files in the same
// schemas so the full pipeline (file -> parse -> preprocess -> demand
// trace) is exercised end to end either way.
//
// Preprocessing follows the paper: the number of instances a user needs
// in an hour is taken to be proportional to the resources requested in
// that hour, so requested CPU/memory/disk are converted to an instance
// count by dividing by a per-instance capacity and rounding up.
package gtrace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rimarket/internal/workload"
)

// TaskEvent is one row of a Google cluster-usage task-events table
// (clusterdata-2011 schema, the dataset the paper uses). Only the
// fields the paper's preprocessing consumes are retained.
type TaskEvent struct {
	// Timestamp is microseconds since trace start.
	Timestamp int64
	// JobID and TaskIndex identify the task.
	JobID     int64
	TaskIndex int64
	// EventType is the schema's event code (0 = SUBMIT, 1 = SCHEDULE, ...).
	EventType int
	// User is the obfuscated user name.
	User string
	// CPURequest, MemoryRequest, DiskRequest are normalized resource
	// requests in [0, 1] relative to the largest machine.
	CPURequest    float64
	MemoryRequest float64
	DiskRequest   float64
}

// Event type codes from the clusterdata-2011 task_events schema.
const (
	EventSubmit   = 0
	EventSchedule = 1
	EventEvict    = 2
	EventFail     = 3
	EventFinish   = 4
	EventKill     = 5
	EventLost     = 6
)

// MicrosecondsPerHour converts trace timestamps to hour buckets.
const MicrosecondsPerHour = int64(3600) * 1e6

// InstanceCapacity is the per-instance resource capacity used to turn
// requested resources into an instance count. Requests in the Google
// trace are normalized to the largest machine, so a capacity of 0.5
// means one instance stands in for half of the largest machine.
type InstanceCapacity struct {
	CPU    float64
	Memory float64
	Disk   float64
}

// DefaultCapacity is a mid-size instance: a quarter of the largest
// machine in CPU and memory, disk effectively unconstrained.
var DefaultCapacity = InstanceCapacity{CPU: 0.25, Memory: 0.25, Disk: 1.0}

// Validate reports whether the capacity is usable.
func (c InstanceCapacity) Validate() error {
	if c.CPU <= 0 || c.Memory <= 0 || c.Disk <= 0 {
		return fmt.Errorf("gtrace: capacity %+v must be positive in every dimension", c)
	}
	return nil
}

// instancesFor converts aggregate hourly resource requests to the
// instance count needed to fit them, the paper's "requested number of
// resources represents the number of instances required" rule.
func (c InstanceCapacity) instancesFor(cpu, mem, disk float64) int {
	need := math.Ceil(cpu / c.CPU)
	if m := math.Ceil(mem / c.Memory); m > need {
		need = m
	}
	if d := math.Ceil(disk / c.Disk); d > need {
		need = d
	}
	if need < 0 || math.IsNaN(need) {
		return 0
	}
	return int(need)
}

// AggregateByUser converts task events into per-user hourly demand
// traces: per user and hour, resource requests of submitted tasks are
// summed and converted to instance counts. Only SUBMIT and SCHEDULE
// events add demand (the paper counts requested resources).
func AggregateByUser(events []TaskEvent, cap InstanceCapacity) ([]workload.Trace, error) {
	if err := cap.Validate(); err != nil {
		return nil, err
	}
	type resources struct{ cpu, mem, disk float64 }
	perUser := make(map[string]map[int]*resources)
	maxHour := 0
	for i, ev := range events {
		if ev.Timestamp < 0 {
			return nil, fmt.Errorf("gtrace: event %d: negative timestamp %d", i, ev.Timestamp)
		}
		if ev.User == "" {
			return nil, fmt.Errorf("gtrace: event %d: empty user", i)
		}
		hour := int(ev.Timestamp / MicrosecondsPerHour)
		if hour > maxHour {
			maxHour = hour
		}
		if ev.EventType != EventSubmit && ev.EventType != EventSchedule {
			continue
		}
		hours := perUser[ev.User]
		if hours == nil {
			hours = make(map[int]*resources)
			perUser[ev.User] = hours
		}
		r := hours[hour]
		if r == nil {
			r = &resources{}
			hours[hour] = r
		}
		r.cpu += ev.CPURequest
		r.mem += ev.MemoryRequest
		r.disk += ev.DiskRequest
	}

	users := make([]string, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Strings(users)

	traces := make([]workload.Trace, 0, len(users))
	for _, u := range users {
		demand := make([]int, maxHour+1)
		for hour, r := range perUser[u] {
			demand[hour] = cap.instancesFor(r.cpu, r.mem, r.disk)
		}
		traces = append(traces, workload.Trace{User: u, Demand: demand})
	}
	return traces, nil
}

// ErrNoEvents is returned when a parse yields no usable rows.
var ErrNoEvents = errors.New("gtrace: no events")
