package gtrace

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"rimarket/internal/workload"
)

func writeTraceFile(t *testing.T, path string, tr workload.Trace, compress bool) {
	t.Helper()
	var buf bytes.Buffer
	if compress {
		zw := gzip.NewWriter(&buf)
		if err := WriteEC2Log(zw, tr); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := WriteEC2Log(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEC2LogDir(t *testing.T) {
	dir := t.TempDir()
	writeTraceFile(t, filepath.Join(dir, "b.csv"), workload.Trace{User: "bob", Demand: []int{1, 2}}, false)
	writeTraceFile(t, filepath.Join(dir, "a.csv.gz"), workload.Trace{User: "alice", Demand: []int{3}}, true)
	// Non-trace files and subdirectories are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	traces, report, err := LoadEC2LogDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Loaded) != 2 {
		t.Errorf("report.Loaded = %v, want both files", report.Loaded)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	// Sorted by file name: a.csv.gz first.
	if traces[0].User != "alice" || traces[1].User != "bob" {
		t.Errorf("order = %s, %s", traces[0].User, traces[1].User)
	}
}

func TestLoadEC2LogDirNamesAnonymousTraces(t *testing.T) {
	dir := t.TempDir()
	// A header-less file: the user defaults to the file name.
	if err := os.WriteFile(filepath.Join(dir, "webapp.csv"), []byte("0,3\n1,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	traces, _, err := LoadEC2LogDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if traces[0].User != "webapp" {
		t.Errorf("user = %q, want webapp", traces[0].User)
	}
}

// TestLoadEC2LogDirReportSurvives is the regression test for the
// legacy wrapper dropping the LoadReport on the floor: the non-Opts
// path must surface the same ingestion report as LoadEC2LogDirOpts —
// including on a strict failure, where the report names the files
// that had loaded cleanly before the bad one.
func TestLoadEC2LogDirReportSurvives(t *testing.T) {
	dir := t.TempDir()
	writeTraceFile(t, filepath.Join(dir, "a-good.csv"), workload.Trace{User: "alice", Demand: []int{1, 2}}, false)
	if err := os.WriteFile(filepath.Join(dir, "z-corrupt.csv"), []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	traces, report, err := LoadEC2LogDir(dir)
	if err == nil {
		t.Fatal("strict load over a corrupt file succeeded")
	}
	if traces != nil {
		t.Errorf("strict failure returned traces: %v", traces)
	}
	if report == nil {
		t.Fatal("legacy wrapper dropped the LoadReport")
	}
	if len(report.Loaded) != 1 || report.Loaded[0] != "a-good.csv" {
		t.Errorf("report.Loaded = %v, want [a-good.csv]", report.Loaded)
	}

	// The report must match the Opts path exactly, warnings included.
	optTraces, optReport, optErr := LoadEC2LogDirOpts(dir, LoadOptions{Policy: BestEffort})
	if optErr != nil {
		t.Fatal(optErr)
	}
	if len(optTraces) != 1 || !optReport.Partial() {
		t.Fatalf("best-effort load = %d traces, partial=%v", len(optTraces), optReport.Partial())
	}
	if optReport.Skipped[0].File != "z-corrupt.csv" {
		t.Errorf("skipped = %v, want z-corrupt.csv", optReport.Skipped)
	}
}

func TestLoadEC2LogDirErrors(t *testing.T) {
	if _, _, err := LoadEC2LogDir("/nonexistent-dir"); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, _, err := LoadEC2LogDir(empty); err == nil {
		t.Error("empty dir accepted")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "x.csv"), []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadEC2LogDir(bad); err == nil {
		t.Error("malformed trace accepted")
	}
}
