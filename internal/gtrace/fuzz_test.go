package gtrace

// Fuzz targets for the two trace parsers, covering the gzip
// auto-detection layer as well: arbitrary bytes — malformed rows,
// truncated gzip streams, hostile hour indices — must produce errors,
// never panics or unbounded allocations. Seed corpora live in
// testdata/fuzz; CI runs a short -fuzztime pass on both targets.

import (
	"bytes"
	"compress/gzip"
	"errors"
	"strings"
	"testing"
	"testing/fstest"
)

// gzipped compresses s so seeds can exercise the auto-gunzip path.
func gzipped(tb testing.TB, s string) []byte {
	tb.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(s)); err != nil {
		tb.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadEC2Log(f *testing.F) {
	valid := "# user: app-7\nhour,instances\n0,12\n1,14\n5,3\n"
	f.Add([]byte(valid))
	f.Add([]byte("hour,instances\n"))        // header only: empty trace, no error
	f.Add([]byte("0,1\n99999999999,5\n"))    // hostile hour index: must error, not allocate
	f.Add([]byte("0,1\n1,-3\n"))             // negative count
	f.Add([]byte("not,a,log\n"))             // wrong arity
	f.Add([]byte("12\n"))                    // missing column
	f.Add([]byte(""))                        // empty stream
	f.Add(gzipped(f, valid))                 // gzip-compressed valid log
	f.Add(gzipped(f, valid)[:10])            // truncated gzip stream
	f.Add([]byte{0x1f, 0x8b})                // bare gzip magic
	f.Add([]byte("hour,instances\n0,5\n1,")) // row cut mid-write (partial download)
	gz := gzipped(f, valid)
	f.Add(gz[:len(gz)-6]) // gzip cut mid-deflate-stream, past the header
	f.Add([]byte("# user: x\nhour,instances\n" + strings.Repeat("0,1\n", 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadEC2LogAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A nil error must yield a structurally sane trace.
		if tr.User == "" {
			t.Errorf("parsed trace has no user")
		}
		if len(tr.Demand) > MaxLogHours+1 {
			t.Errorf("series length %d exceeds the %d-hour cap", len(tr.Demand), MaxLogHours)
		}
		for h, d := range tr.Demand {
			if d < 0 {
				t.Errorf("hour %d: negative demand %d survived parsing", h, d)
			}
		}
	})
}

func FuzzReadTaskEvents(f *testing.F) {
	valid := "0,,6218406404,0,,0,alice,,,0.03,0.01,0.002,\n" +
		"3600,,6218406404,1,,1,bob,,,0.06,0.02,0.004,\n"
	f.Add([]byte(valid))
	f.Add([]byte("0,,1,0,,0,u,,,,,,\n"))    // blank resource fields parse as zero
	f.Add([]byte("0,,1,0,0\n"))             // wrong column count
	f.Add([]byte("x,,1,0,,0,u,,,0,0,0,\n")) // non-numeric timestamp
	f.Add([]byte(""))                       // empty stream: ErrNoEvents
	f.Add(gzipped(f, valid))                // gzip-compressed stream
	f.Add(gzipped(f, valid)[:8])            // truncated gzip stream
	f.Add([]byte{0x1f, 0x8b, 0x08})         // gzip magic, garbage header
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadTaskEventsAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(events) == 0 {
			t.Error("nil error with zero events (want ErrNoEvents)")
		}
	})
}

// FuzzLoadEC2LogFS drives the directory loader — the layer riexp
// -tracedir sits on — with one arbitrary file under both error
// policies. Whatever the bytes, the loader must return a coherent
// (traces, report, err) triple: strict either loads the file or fails,
// best-effort either loads it or records exactly one skip and reports
// ErrNoTraces; nothing panics.
func FuzzLoadEC2LogFS(f *testing.F) {
	valid := "# user: app-7\nhour,instances\n0,12\n1,14\n5,3\n"
	f.Add([]byte(valid))
	f.Add([]byte("hour,instances\n0,5\n1,")) // mid-row truncation
	f.Add(gzipped(f, valid))                 // valid gzip (magic-detected despite .csv name)
	gz := gzipped(f, valid)
	f.Add(gz[:len(gz)-6]) // truncated gzip stream
	f.Add([]byte(""))     // empty file
	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := fstest.MapFS{"f.csv": &fstest.MapFile{Data: data}}
		for _, policy := range []ErrorPolicy{Strict, BestEffort} {
			traces, report, err := LoadEC2LogFS(fsys, LoadOptions{Policy: policy})
			if err != nil {
				if len(traces) != 0 {
					t.Errorf("%v: error %v alongside %d traces", policy, err, len(traces))
				}
				if policy == BestEffort && !errors.Is(err, ErrNoTraces) {
					t.Errorf("best-effort single-file load failed with %v, want ErrNoTraces chain", err)
				}
				continue
			}
			if len(traces) != 1 || len(report.Loaded) != 1 || report.Partial() {
				t.Errorf("%v: clean load returned %d traces, report %+v", policy, len(traces), report)
			}
		}
	})
}

// TestHostileHourIndexRejected pins the MaxLogHours guard outside the
// fuzzer so the regression is caught even in -short runs.
func TestHostileHourIndexRejected(t *testing.T) {
	_, err := ReadEC2Log(strings.NewReader("0,1\n99999999999,5\n"))
	if err == nil {
		t.Fatal("terabyte-scale hour index accepted")
	}
	if !strings.Contains(err.Error(), "hour") {
		t.Errorf("error %q does not mention the hour cap", err)
	}
	// The boundary itself is accepted.
	tr, err := ReadEC2Log(strings.NewReader("# user: edge\nhour,instances\n" +
		"0,1\n"))
	if err != nil || tr.Len() != 1 {
		t.Fatalf("minimal log rejected: %v", err)
	}
}

// TestTruncatedGzipSurfacesError pins the truncated-stream behavior
// for both parsers.
func TestTruncatedGzipSurfacesError(t *testing.T) {
	log := gzipped(t, "# user: z\nhour,instances\n0,4\n1,5\n")
	if _, err := ReadEC2LogAuto(bytes.NewReader(log[:12])); err == nil {
		t.Error("truncated gzip ec2 log accepted")
	}
	events := gzipped(t, "0,,1,0,,0,u,,,0,0,0,\n")
	if _, err := ReadTaskEventsAuto(bytes.NewReader(events[:12])); err == nil {
		t.Error("truncated gzip task events accepted")
	}
}
