package gtrace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rimarket/internal/workload"
)

// The EC2 usage-log format stands in for the 36 per-application EC2
// usage files the paper cites (the UW cloudmeasure datasets): one CSV
// row per hour with the hour index and the number of instances in use.
//
//	# user: <name>
//	hour,instances
//	0,12
//	1,14
//	...
//
// Comment lines start with '#'; a "# user:" comment names the trace.

// MaxLogHours caps the hour index a usage-log row may carry. The
// reconstructed series is dense (one slot per hour up to the maximum
// index seen), so without a cap one malformed or hostile row like
// "99999999999,1" would make the parser attempt a terabyte-scale
// allocation. A century of hours is far beyond any reservation horizon.
const MaxLogHours = 100 * 365 * 24

// ReadEC2Log parses one EC2 usage-log stream into a demand trace.
// Hours may be sparse and out of order; missing hours have zero demand.
// Hour indices above MaxLogHours are rejected. Malformed rows surface
// as *ParseError carrying the 1-based line number.
func ReadEC2Log(r io.Reader) (workload.Trace, error) {
	sc := bufio.NewScanner(r)
	user := "ec2-log"
	demand := make(map[int]int)
	maxHour := -1
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "#"):
			if rest, ok := strings.CutPrefix(text, "# user:"); ok {
				if name := strings.TrimSpace(rest); name != "" {
					user = name
				}
			}
			continue
		case text == "hour,instances":
			sawHeader = true
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return workload.Trace{}, &ParseError{Row: line, Err: fmt.Errorf("%q is not hour,instances", text)}
		}
		hour, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return workload.Trace{}, &ParseError{Row: line, Err: fmt.Errorf("hour: %w", err)}
		}
		count, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return workload.Trace{}, &ParseError{Row: line, Err: fmt.Errorf("instances: %w", err)}
		}
		if hour < 0 || count < 0 {
			return workload.Trace{}, &ParseError{Row: line, Err: fmt.Errorf("negative value")}
		}
		if hour > MaxLogHours {
			return workload.Trace{}, &ParseError{Row: line, Err: fmt.Errorf("hour %d beyond the %d-hour limit", hour, MaxLogHours)}
		}
		demand[hour] = count
		if hour > maxHour {
			maxHour = hour
		}
	}
	if err := sc.Err(); err != nil {
		return workload.Trace{}, fmt.Errorf("gtrace: ec2 log: %w", err)
	}
	if maxHour < 0 {
		if sawHeader {
			return workload.Trace{User: user, Demand: nil}, nil
		}
		return workload.Trace{}, ErrNoEvents
	}
	series := make([]int, maxHour+1)
	for hour, count := range demand {
		series[hour] = count
	}
	return workload.Trace{User: user, Demand: series}, nil
}

// WriteEC2Log writes a demand trace in the EC2 usage-log format.
func WriteEC2Log(w io.Writer, tr workload.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# user: %s\n", tr.User)
	fmt.Fprintln(bw, "hour,instances")
	cw := csv.NewWriter(bw)
	for hour, count := range tr.Demand {
		if count == 0 {
			continue // sparse encoding
		}
		rec := []string{strconv.Itoa(hour), strconv.Itoa(count)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("gtrace: ec2 log write: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("gtrace: ec2 log flush: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("gtrace: ec2 log flush: %w", err)
	}
	return nil
}
