package gtrace

import (
	"fmt"

	"rimarket/internal/workload"
)

// SynthesizeTaskEvents converts demand traces into a task-events table
// that aggregates back to the same traces: for each user and hour with
// demand d, it emits d SUBMIT events each requesting exactly one
// instance's capacity. This is the inverse of AggregateByUser up to the
// trace length (trailing zero-demand hours are not representable) and
// lets the full file pipeline run without the external datasets.
func SynthesizeTaskEvents(traces []workload.Trace, cap InstanceCapacity) ([]TaskEvent, error) {
	if err := cap.Validate(); err != nil {
		return nil, err
	}
	var events []TaskEvent
	var jobID int64
	for _, tr := range traces {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("gtrace: synthesize: %w", err)
		}
		for hour, d := range tr.Demand {
			for i := 0; i < d; i++ {
				jobID++
				events = append(events, TaskEvent{
					Timestamp:     int64(hour) * MicrosecondsPerHour,
					JobID:         jobID,
					TaskIndex:     0,
					EventType:     EventSubmit,
					User:          tr.User,
					CPURequest:    cap.CPU,
					MemoryRequest: cap.Memory,
					DiskRequest:   0,
				})
			}
		}
	}
	if len(events) == 0 {
		return nil, ErrNoEvents
	}
	return events, nil
}
