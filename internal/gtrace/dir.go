package gtrace

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strings"

	"rimarket/internal/workload"
)

// ErrorPolicy selects how the directory loaders react to a file that
// cannot be read or parsed.
type ErrorPolicy int

const (
	// Strict fails the whole load on the first unreadable or malformed
	// file — the right posture for curated datasets, and the historical
	// behavior of LoadEC2LogDir.
	Strict ErrorPolicy = iota
	// BestEffort skips unreadable, corrupt or truncated files (up to
	// LoadOptions.FailureBudget) and records them in the LoadReport, so
	// one bad file in a directory of real usage logs degrades the run
	// per-file rather than per-run.
	BestEffort
)

// String renders the policy as its riexp flag spelling.
func (p ErrorPolicy) String() string {
	if p == BestEffort {
		return "best-effort"
	}
	return "strict"
}

// LoadOptions configures a directory load.
type LoadOptions struct {
	// Policy is the error policy; the zero value is Strict.
	Policy ErrorPolicy
	// FailureBudget caps how many files BestEffort may skip before the
	// load fails anyway; 0 or negative means unlimited. Ignored under
	// Strict.
	FailureBudget int
}

// SkippedFile records one file a best-effort load gave up on.
type SkippedFile struct {
	// File is the file name relative to the loaded directory.
	File string
	// Err is why it was skipped.
	Err error
}

// LoadReport is the structured outcome of a directory load: which
// files produced traces and which were skipped, with reasons. Callers
// surface Skipped to the user (riexp prints a partial-ingestion
// warning and exits 3) instead of silently dropping data.
type LoadReport struct {
	// Loaded names the files that produced traces, in load order.
	Loaded []string
	// Skipped lists the files a best-effort load gave up on, in
	// directory order; always empty under Strict.
	Skipped []SkippedFile
}

// Partial reports whether any file was skipped.
func (r *LoadReport) Partial() bool { return r != nil && len(r.Skipped) > 0 }

// LoadEC2LogDir reads every EC2-usage-log file (.csv or .csv.gz) in a
// directory into demand traces, sorted by file name, under the Strict
// policy. Users can point the experiment harness at a directory of
// real usage logs — like the 36 EC2 log files the paper cites —
// instead of the synthetic cohort.
//
// The LoadReport is returned even when err is non-nil: a strict load
// that fails midway still reports which files had loaded cleanly, so
// legacy callers see the same ingestion picture as LoadEC2LogDirOpts
// instead of having the report dropped on the floor.
func LoadEC2LogDir(dir string) ([]workload.Trace, *LoadReport, error) {
	return LoadEC2LogDirOpts(dir, LoadOptions{})
}

// LoadEC2LogDirOpts is LoadEC2LogDir with an explicit error policy,
// returning the load report alongside the traces.
func LoadEC2LogDirOpts(dir string, opts LoadOptions) ([]workload.Trace, *LoadReport, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, nil, fmt.Errorf("gtrace: %w", err)
	}
	return LoadEC2LogFS(os.DirFS(dir), opts)
}

// LoadEC2LogFS loads every EC2-usage-log file in the root of fsys.
// Taking an fs.FS keeps the degradation paths testable: the faultfs
// package wraps a real or in-memory filesystem with injected open
// errors, short reads and corrupt rows, and this loader must turn each
// of them into a Strict failure or a BestEffort skip — never a crash
// or a silent half-read trace.
//
// Directory-level problems are never skippable: an unreadable root
// returns its error, a root with no trace files returns ErrNoTraces,
// and two files resolving to the same user return *DuplicateUserError
// under either policy. Per-file failures are wrapped in *ParseError
// naming the file (and row, when the parser got that far).
func LoadEC2LogFS(fsys fs.FS, opts LoadOptions) ([]workload.Trace, *LoadReport, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return nil, nil, fmt.Errorf("gtrace: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".csv") || strings.HasSuffix(name, ".csv.gz") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, nil, ErrNoTraces
	}
	sort.Strings(names)

	report := &LoadReport{}
	traces := make([]workload.Trace, 0, len(names))
	owners := make(map[string]string, len(names)) // user -> file that claimed it
	for _, name := range names {
		tr, err := loadOneLog(fsys, name)
		if err != nil {
			if opts.Policy == BestEffort {
				report.Skipped = append(report.Skipped, SkippedFile{File: name, Err: err})
				if opts.FailureBudget > 0 && len(report.Skipped) > opts.FailureBudget {
					return nil, report, fmt.Errorf("gtrace: failure budget of %d exceeded: %w", opts.FailureBudget, err)
				}
				continue
			}
			return nil, report, err
		}
		if prev, dup := owners[tr.User]; dup {
			return nil, report, &DuplicateUserError{User: tr.User, Files: [2]string{prev, name}}
		}
		owners[tr.User] = name
		report.Loaded = append(report.Loaded, name)
		traces = append(traces, tr)
	}
	if len(traces) == 0 {
		return nil, report, fmt.Errorf("all %d trace files skipped: %w", len(names), ErrNoTraces)
	}
	return traces, report, nil
}

// loadOneLog reads one trace file, wrapping any failure — open, read,
// gunzip or parse — in a *ParseError naming the file.
func loadOneLog(fsys fs.FS, name string) (workload.Trace, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return workload.Trace{}, &ParseError{File: name, Err: err}
	}
	tr, err := ReadEC2LogAuto(f)
	closeErr := f.Close()
	if err == nil {
		err = closeErr
	}
	if err != nil {
		var perr *ParseError
		if errors.As(err, &perr) && perr.File == "" {
			perr.File = name
			return workload.Trace{}, err
		}
		return workload.Trace{}, &ParseError{File: name, Err: err}
	}
	if tr.User == "ec2-log" {
		// Files without a "# user:" header get named after the file.
		tr.User = strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".csv")
	}
	return tr, nil
}
