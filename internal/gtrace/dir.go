package gtrace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rimarket/internal/workload"
)

// LoadEC2LogDir reads every EC2-usage-log file (.csv or .csv.gz) in a
// directory into demand traces, sorted by file name. Users can point
// the experiment harness at a directory of real usage logs — like the
// 36 EC2 log files the paper cites — instead of the synthetic cohort.
func LoadEC2LogDir(dir string) ([]workload.Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gtrace: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".csv") || strings.HasSuffix(name, ".csv.gz") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("gtrace: no .csv or .csv.gz trace files in %s", dir)
	}
	sort.Strings(names)

	traces := make([]workload.Trace, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("gtrace: %w", err)
		}
		tr, err := ReadEC2LogAuto(f)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("gtrace: %s: %w", name, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("gtrace: %s: %w", name, closeErr)
		}
		if tr.User == "ec2-log" {
			// Files without a "# user:" header get named after the file.
			tr.User = strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".csv")
		}
		traces = append(traces, tr)
	}
	return traces, nil
}
