package gtrace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Column indices of the clusterdata-2011 task_events CSV schema.
const (
	colTimestamp = 0
	colJobID     = 2
	colTaskIndex = 3
	colEventType = 5
	colUser      = 6
	colCPU       = 9
	colMemory    = 10
	colDisk      = 11
	numColumns   = 13
)

// ReadTaskEvents parses a Google cluster-usage task_events CSV stream.
// Rows with blank resource fields (the schema allows missing data)
// parse as zero requests; malformed rows fail with a row-numbered
// error.
func ReadTaskEvents(r io.Reader) ([]TaskEvent, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	var events []TaskEvent
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gtrace: row %d: %w", row, err)
		}
		if len(rec) != numColumns {
			return nil, fmt.Errorf("gtrace: row %d: %d columns, want %d", row, len(rec), numColumns)
		}
		ev, err := parseTaskEvent(rec)
		if err != nil {
			return nil, fmt.Errorf("gtrace: row %d: %w", row, err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return nil, ErrNoEvents
	}
	return events, nil
}

func parseTaskEvent(rec []string) (TaskEvent, error) {
	ts, err := strconv.ParseInt(rec[colTimestamp], 10, 64)
	if err != nil {
		return TaskEvent{}, fmt.Errorf("timestamp: %w", err)
	}
	jobID, err := strconv.ParseInt(rec[colJobID], 10, 64)
	if err != nil {
		return TaskEvent{}, fmt.Errorf("job id: %w", err)
	}
	taskIdx, err := strconv.ParseInt(rec[colTaskIndex], 10, 64)
	if err != nil {
		return TaskEvent{}, fmt.Errorf("task index: %w", err)
	}
	evType, err := strconv.Atoi(rec[colEventType])
	if err != nil {
		return TaskEvent{}, fmt.Errorf("event type: %w", err)
	}
	cpu, err := parseOptionalFloat(rec[colCPU])
	if err != nil {
		return TaskEvent{}, fmt.Errorf("cpu request: %w", err)
	}
	mem, err := parseOptionalFloat(rec[colMemory])
	if err != nil {
		return TaskEvent{}, fmt.Errorf("memory request: %w", err)
	}
	disk, err := parseOptionalFloat(rec[colDisk])
	if err != nil {
		return TaskEvent{}, fmt.Errorf("disk request: %w", err)
	}
	return TaskEvent{
		Timestamp:     ts,
		JobID:         jobID,
		TaskIndex:     taskIdx,
		EventType:     evType,
		User:          rec[colUser],
		CPURequest:    cpu,
		MemoryRequest: mem,
		DiskRequest:   disk,
	}, nil
}

// parseOptionalFloat treats the schema's blank fields as zero.
func parseOptionalFloat(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// WriteTaskEvents writes events in the task_events CSV schema, filling
// the columns this package does not model with blanks. Round-tripping
// through ReadTaskEvents preserves every modeled field.
func WriteTaskEvents(w io.Writer, events []TaskEvent) error {
	cw := csv.NewWriter(w)
	rec := make([]string, numColumns)
	for _, ev := range events {
		for i := range rec {
			rec[i] = ""
		}
		rec[colTimestamp] = strconv.FormatInt(ev.Timestamp, 10)
		rec[colJobID] = strconv.FormatInt(ev.JobID, 10)
		rec[colTaskIndex] = strconv.FormatInt(ev.TaskIndex, 10)
		rec[colEventType] = strconv.Itoa(ev.EventType)
		rec[colUser] = ev.User
		rec[colCPU] = strconv.FormatFloat(ev.CPURequest, 'g', -1, 64)
		rec[colMemory] = strconv.FormatFloat(ev.MemoryRequest, 'g', -1, 64)
		rec[colDisk] = strconv.FormatFloat(ev.DiskRequest, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("gtrace: write: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("gtrace: flush: %w", err)
	}
	return nil
}
