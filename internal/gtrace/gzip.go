package gtrace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"

	"rimarket/internal/workload"
)

// gzipMagic is the two-byte gzip stream header.
var gzipMagic = [2]byte{0x1f, 0x8b}

// maybeGunzip wraps r with a gzip reader when the stream starts with
// the gzip magic bytes, passing plain streams through untouched. The
// real Google cluster-usage trace ships as part-?????-of-?????.csv.gz,
// so parsers auto-detect rather than trusting file extensions.
func maybeGunzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		// Short or empty streams cannot be gzip; hand them to the parser
		// unchanged so it reports its own (better) error.
		return br, nil //nolint:nilerr // deliberate: defer error to parser
	}
	if head[0] != gzipMagic[0] || head[1] != gzipMagic[1] {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("gtrace: gzip: %w", err)
	}
	return zr, nil
}

// ReadTaskEventsAuto parses a task-events stream that may be gzip
// compressed (auto-detected by magic bytes).
func ReadTaskEventsAuto(r io.Reader) ([]TaskEvent, error) {
	rr, err := maybeGunzip(r)
	if err != nil {
		return nil, err
	}
	return ReadTaskEvents(rr)
}

// ReadEC2LogAuto parses an EC2 usage log that may be gzip compressed
// (auto-detected by magic bytes).
func ReadEC2LogAuto(r io.Reader) (workload.Trace, error) {
	rr, err := maybeGunzip(r)
	if err != nil {
		return workload.Trace{}, err
	}
	return ReadEC2Log(rr)
}

// WriteTaskEventsGZ writes events as a gzip-compressed task-events CSV.
func WriteTaskEventsGZ(w io.Writer, events []TaskEvent) error {
	zw := gzip.NewWriter(w)
	if err := WriteTaskEvents(zw, events); err != nil {
		zw.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("gtrace: gzip close: %w", err)
	}
	return nil
}
