// Package faultfs is a deterministic fault-injecting fs.FS for testing
// degradation paths. It wraps an inner filesystem and serves most files
// untouched, while files selected for a fault fail to open, error
// mid-read, truncate silently, or carry a corrupted row — the failure
// modes real marketplace/usage-log corpora exhibit (partial downloads,
// interrupted gzip streams, mangled rows). Fault placement is chosen by
// seed, so a test naming a seed reproduces byte-identical faults on
// every run and every platform.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"sort"
	"time"
)

// ErrInjected is the error every injected open/read failure wraps, so
// tests can assert a failure came from the substrate rather than the
// code under test.
var ErrInjected = errors.New("faultfs: injected fault")

// Kind enumerates the fault modes.
type Kind int

const (
	// KindOpenError makes Open fail with ErrInjected.
	KindOpenError Kind = iota
	// KindReadError serves the first half of the file, then fails the
	// read with ErrInjected — an I/O error mid-stream.
	KindReadError
	// KindTruncate serves the first half of the file and then reports
	// EOF — a silently truncated download. For a .gz file this yields a
	// truncated gzip stream; for a plain CSV, a mid-row cut.
	KindTruncate
	// KindCorruptRow overwrites a span in the middle of the file with a
	// garbage row. A plain CSV gains an unparseable line; a gzip stream
	// fails its CRC or decode.
	KindCorruptRow
	// KindStall serves the file's bytes unmodified, but every Read call
	// first sleeps the file's configured delay (see InjectStall) — a
	// cold object store or a degraded network mount. Data is never
	// wrong, only late: the mode exercises deadline paths (reload
	// budgets, request timeouts) rather than parse errors.
	KindStall
)

// String names the kind for test output.
func (k Kind) String() string {
	switch k {
	case KindOpenError:
		return "open-error"
	case KindReadError:
		return "read-error"
	case KindTruncate:
		return "truncate"
	case KindCorruptRow:
		return "corrupt-row"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// corruptRow is the span KindCorruptRow splices into the file: its own
// line, with no comma, so a CSV parser rejects it on arity no matter
// where it lands.
const corruptRow = "\n!faultfs-corrupt-row!\n"

// FS is a fault-injecting filesystem. The zero value is not usable;
// call New. Configure faults with Inject or InjectN before handing the
// FS to the code under test; FS is safe for concurrent reads once
// configured.
type FS struct {
	inner  fs.FS
	faults map[string]Kind
	delays map[string]time.Duration
	sleep  func(time.Duration)
}

// New wraps inner with an empty fault set.
func New(inner fs.FS) *FS {
	return &FS{
		inner:  inner,
		faults: make(map[string]Kind),
		delays: make(map[string]time.Duration),
		sleep:  time.Sleep,
	}
}

// Inject assigns a fault to one file (a path relative to the FS root).
// A KindStall injected this way has zero delay — use InjectStall to
// set one.
func (f *FS) Inject(name string, kind Kind) { f.faults[name] = kind }

// InjectStall assigns KindStall to one file with the given per-read
// delay. A zero or negative delay stalls nothing (the file just takes
// the buffered-read path).
func (f *FS) InjectStall(name string, delay time.Duration) {
	f.faults[name] = KindStall
	f.delays[name] = delay
}

// SetSleep replaces the function stall delays are slept through —
// time.Sleep by default. Tests substitute a recording or collapsing
// sleeper so stall behavior is asserted without waiting out real time;
// a nil fn restores time.Sleep. Like fault configuration, SetSleep
// must happen before the FS is handed to concurrent readers.
func (f *FS) SetSleep(fn func(time.Duration)) {
	if fn == nil {
		fn = time.Sleep
	}
	f.sleep = fn
}

// StallDelay reports the configured delay for a name (zero when none).
func (f *FS) StallDelay(name string) time.Duration { return f.delays[name] }

// Faults returns a copy of the current fault assignment.
func (f *FS) Faults() map[string]Kind {
	out := make(map[string]Kind, len(f.faults))
	for name, kind := range f.faults {
		out[name] = kind
	}
	return out
}

// InjectN picks n regular files in the root of the inner filesystem —
// deterministically from seed — and assigns them the given kinds
// round-robin. It returns the faulted names sorted, so tests can
// assert exactly which files must be skipped. InjectN fails when the
// root holds fewer than n regular files.
func (f *FS) InjectN(seed int64, n int, kinds ...Kind) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faultfs: n = %d, want positive", n)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("faultfs: no fault kinds given")
	}
	entries, err := fs.ReadDir(f.inner, ".")
	if err != nil {
		return nil, fmt.Errorf("faultfs: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) < n {
		return nil, fmt.Errorf("faultfs: %d faults requested but only %d files", n, len(names))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(names))
	picked := make([]string, n)
	for i := 0; i < n; i++ {
		picked[i] = names[perm[i]]
	}
	sort.Strings(picked)
	for i, name := range picked {
		f.faults[name] = kinds[i%len(kinds)]
	}
	return picked, nil
}

// InjectStallN picks n regular files in the root of the inner
// filesystem — deterministically from seed, with the same selection
// rule as InjectN — and assigns each a KindStall with a per-read delay
// drawn from the same seeded stream, uniform in (0, maxDelay]. The
// returned map records the exact assignment, so a test naming a seed
// reproduces both which files stall and by how much, on every run and
// platform.
func (f *FS) InjectStallN(seed int64, n int, maxDelay time.Duration) (map[string]time.Duration, error) {
	if maxDelay <= 0 {
		return nil, fmt.Errorf("faultfs: maxDelay = %v, want positive", maxDelay)
	}
	picked, err := f.InjectN(seed, n, KindStall)
	if err != nil {
		return nil, err
	}
	// Delays are drawn from a fresh seeded stream in the sorted order
	// InjectN returns, so the (seed, n, maxDelay) triple and the file
	// set fully determine the assignment.
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]time.Duration, len(picked))
	for _, name := range picked {
		d := time.Duration(rng.Int63n(int64(maxDelay))) + 1
		f.delays[name] = d
		out[name] = d
	}
	return out, nil
}

// Open implements fs.FS. Non-faulted names pass through to the inner
// filesystem, so directory reads and clean files behave exactly as the
// wrapped FS does.
func (f *FS) Open(name string) (fs.File, error) {
	kind, faulted := f.faults[name]
	if !faulted {
		return f.inner.Open(name)
	}
	if kind == KindOpenError {
		return nil, &fs.PathError{Op: "open", Path: name, Err: ErrInjected}
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(inner)
	closeErr := inner.Close()
	if err == nil {
		err = closeErr
	}
	if err != nil {
		return nil, &fs.PathError{Op: "read", Path: name, Err: err}
	}
	info, err := fs.Stat(f.inner, name)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{name: name, info: info}
	switch kind {
	case KindReadError:
		ff.data = data[:len(data)/2]
		ff.errAfter = &fs.PathError{Op: "read", Path: name, Err: ErrInjected}
	case KindTruncate:
		ff.data = data[:len(data)/2]
	case KindCorruptRow:
		ff.data = spliceCorruptRow(data)
	case KindStall:
		ff.data = data
		ff.stall = f.delays[name]
		ff.sleep = f.sleep
	default:
		return nil, fmt.Errorf("faultfs: %s: unknown fault kind %d", name, int(kind))
	}
	return ff, nil
}

// spliceCorruptRow overwrites bytes around the midpoint with
// corruptRow, preserving length so the corruption is in-band rather
// than a truncation. The splice point backs off from the midpoint when
// needed so the whole garbage row lands inside the file; a file
// shorter than the row is replaced by it.
func spliceCorruptRow(data []byte) []byte {
	if len(data) <= len(corruptRow) {
		return []byte(corruptRow)
	}
	out := append([]byte(nil), data...)
	mid := len(out) / 2
	if mid > len(out)-len(corruptRow) {
		mid = len(out) - len(corruptRow)
	}
	copy(out[mid:], corruptRow)
	return out
}

// faultFile serves a transformed byte slice, failing with errAfter (if
// set) once the bytes run out.
type faultFile struct {
	name     string
	info     fs.FileInfo
	data     []byte
	off      int
	errAfter error
	closed   bool

	// stall/sleep implement KindStall: every Read sleeps stall through
	// sleep before serving bytes.
	stall time.Duration
	sleep func(time.Duration)
}

func (f *faultFile) Stat() (fs.FileInfo, error) { return f.info, nil }

func (f *faultFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, &fs.PathError{Op: "read", Path: f.name, Err: fs.ErrClosed}
	}
	if f.stall > 0 {
		f.sleep(f.stall)
	}
	if f.off >= len(f.data) {
		if f.errAfter != nil {
			return 0, f.errAfter
		}
		return 0, io.EOF
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

func (f *faultFile) Close() error {
	if f.closed {
		return &fs.PathError{Op: "close", Path: f.name, Err: fs.ErrClosed}
	}
	f.closed = true
	return nil
}
